//! A vendored, API-compatible subset of the `bytes` crate.
//!
//! The build environment has no network access and no crates.io
//! registry cache, so the workspace vendors the narrow slice of the
//! `bytes` API it actually uses: [`Bytes`], [`BytesMut`] and the
//! [`Buf`]/[`BufMut`] traits with little-endian integer accessors.
//! Semantics match the real crate for this subset (including panics on
//! buffer underflow); the zero-copy internals are deliberately not
//! reproduced — `Bytes` here owns its storage and `split_to` copies.

use std::ops::{Deref, DerefMut};

/// Read access to a contiguous buffer, cursor-style.
pub trait Buf {
    /// Bytes left between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;
    /// The unread portion of the buffer.
    fn chunk(&self) -> &[u8];
    /// Moves the cursor forward `cnt` bytes. Panics on overrun.
    fn advance(&mut self, cnt: usize);

    /// True if any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_out(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_out(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_out(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_out(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_out(&mut b);
        i64::from_le_bytes(b)
    }

    /// Copies `dst.len()` bytes out and advances. Panics on underflow,
    /// like the real crate.
    #[doc(hidden)]
    fn copy_out(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "buffer underflow: need {} bytes, have {}",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

/// Write access to a growable buffer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Creates a buffer holding a copy of `data`.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// Splits off and returns the first `at` unread bytes.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.remaining(), "split_to out of bounds");
        let head = self.data[self.pos..self.pos + at].to_vec();
        self.pos += at;
        Bytes { data: head, pos: 0 }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance out of bounds");
        self.pos += cnt;
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(n: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(n),
        }
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }

    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Extend<u8> for BytesMut {
    fn extend<T: IntoIterator<Item = u8>>(&mut self, iter: T) {
        self.data.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_integers() {
        let mut m = BytesMut::new();
        m.put_u8(7);
        m.put_u16_le(0xbeef);
        m.put_u32_le(0xdead_beef);
        m.put_u64_le(u64::MAX - 1);
        m.put_i64_le(-42);
        m.put_slice(b"xyz");
        let mut b = m.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 0xbeef);
        assert_eq!(b.get_u32_le(), 0xdead_beef);
        assert_eq!(b.get_u64_le(), u64::MAX - 1);
        assert_eq!(b.get_i64_le(), -42);
        assert_eq!(&*b.split_to(3), b"xyz");
        assert!(!b.has_remaining());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::copy_from_slice(&[1, 2]);
        let _ = b.get_u32_le();
    }
}
