//! A vendored, API-compatible subset of the `rand` crate.
//!
//! Offline build: only the surface the workspace uses is reproduced —
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`RngExt::random_range`] over integer ranges. The generator is
//! splitmix64: deterministic per seed (which is all the workloads
//! need), not the real crate's ChaCha12, and not cryptographic.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (splitmix64 here).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng {
                // Avoid the all-zero fixed point of the mixer.
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// A range that a value can be uniformly sampled from.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Convenience sampling methods on any generator.
pub trait RngExt: RngCore {
    /// A uniform sample from `range` (small modulo bias accepted).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let sa: Vec<u32> = (0..8).map(|_| a.random_range(0..1000u32)).collect();
        let sb: Vec<u32> = (0..8).map(|_| b.random_range(0..1000u32)).collect();
        let sc: Vec<u32> = (0..8).map(|_| c.random_range(0..1000u32)).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.random_range(10..20usize);
            assert!((10..20).contains(&v));
            let w = r.random_range(5..=5u64);
            assert_eq!(w, 5);
        }
    }
}
