//! A vendored, API-compatible subset of the `proptest` crate.
//!
//! The build environment is offline, so the workspace vendors the
//! slice of proptest it uses: the [`proptest!`]/[`prop_oneof!`]/
//! [`prop_assert!`] macros, [`strategy::Strategy`] with `prop_map`,
//! [`any`], integer/float range strategies, `&str` "regex" strategies
//! (a small `[class]{m,n}` subset), [`collection::vec`] and
//! [`sample::Index`].
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its inputs (via the
//!   assertion message) but is not minimized;
//! * cases are generated from a splitmix64 stream seeded from the test
//!   name (set `PROPTEST_SEED` to perturb it), so runs are
//!   deterministic by default;
//! * `&str` strategies support only `.`/`[set]` classes with an
//!   optional `{m,n}` repeat — the only forms used in this workspace.

use std::marker::PhantomData;
use std::ops::Range;

pub mod test_runner {
    /// Per-test configuration (case count only).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// The deterministic case-generation stream (splitmix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from the test name so every test gets an independent
        /// but reproducible stream. `PROPTEST_SEED` perturbs all
        /// streams at once.
        pub fn deterministic(test_name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
            }
            if let Ok(s) = std::env::var("PROPTEST_SEED") {
                if let Ok(n) = s.trim().parse::<u64>() {
                    h = h.wrapping_add(n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
                }
            }
            TestRng { state: h | 1 }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

use test_runner::TestRng;

pub mod strategy {
    use super::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategies compose by reference too (`&strat` generates like
    /// `strat`), which lets the `proptest!` macro avoid consuming the
    /// caller's expression.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    #[derive(Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy, so `prop_oneof!` can mix arms of
    /// different concrete types.
    pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Erases a strategy's type (used by `prop_oneof!`).
    pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        BoxedStrategy(Rc::new(move |rng| s.generate(rng)))
    }

    /// Uniform choice among same-valued strategies.
    #[derive(Clone)]
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }
}

use strategy::Strategy;

// ---- primitive strategies -------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// `&str` as a pattern strategy: a tiny subset of proptest's regex
/// strings. Supported: a sequence of `.` or `[chars]` classes (ranges
/// like `A-Z` allowed inside the set), each optionally followed by
/// `{m,n}`. `.` draws from printable ASCII plus a few multibyte
/// characters so UTF-8 handling is exercised.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

mod pattern {
    use super::test_runner::TestRng;

    const DOT_EXTRA: &[char] = &['é', 'λ', '中', '🦀', '\n', '\t'];

    fn class_char(set: &[(char, char)], rng: &mut TestRng) -> char {
        let total: u64 = set.iter().map(|(a, b)| (*b as u64) - (*a as u64) + 1).sum();
        let mut pick = rng.below(total.max(1));
        for (a, b) in set {
            let span = (*b as u64) - (*a as u64) + 1;
            if pick < span {
                return char::from_u32(*a as u32 + pick as u32).unwrap_or(*a);
            }
            pick -= span;
        }
        set.first().map(|(a, _)| *a).unwrap_or('a')
    }

    fn dot_char(rng: &mut TestRng) -> char {
        // Mostly printable ASCII, occasionally multibyte.
        if rng.below(8) == 0 {
            DOT_EXTRA[rng.below(DOT_EXTRA.len() as u64) as usize]
        } else {
            char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap_or('a')
        }
    }

    pub fn generate(pat: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pat.chars().collect();
        let mut i = 0;
        let mut out = String::new();
        while i < chars.len() {
            // Parse one class.
            enum Class {
                Dot,
                Set(Vec<(char, char)>),
                Lit(char),
            }
            let class = match chars[i] {
                '.' => {
                    i += 1;
                    Class::Dot
                }
                '[' => {
                    i += 1;
                    let mut set = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let a = chars[i];
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            set.push((a, chars[i + 2]));
                            i += 3;
                        } else {
                            set.push((a, a));
                            i += 1;
                        }
                    }
                    i += 1; // consume ']'
                    Class::Set(set)
                }
                c => {
                    i += 1;
                    Class::Lit(c)
                }
            };
            // Parse an optional {m,n} repeat.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..].iter().position(|c| *c == '}').map(|p| i + p);
                let close = close.expect("unclosed {m,n} in pattern strategy");
                let body: String = chars[i + 1..close].iter().collect();
                let mut parts = body.splitn(2, ',');
                let lo: usize = parts.next().unwrap_or("0").trim().parse().unwrap_or(0);
                let hi: usize = parts
                    .next()
                    .map(|s| s.trim().parse().unwrap_or(lo))
                    .unwrap_or(lo);
                i = close + 1;
                (lo, hi)
            } else {
                (1, 1)
            };
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                match &class {
                    Class::Dot => out.push(dot_char(rng)),
                    Class::Set(set) => out.push(class_char(set, rng)),
                    Class::Lit(c) => out.push(*c),
                }
            }
        }
        out
    }
}

// ---- tuples ---------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---- any / Arbitrary ------------------------------------------------------

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

/// The [`any`] strategy for `T`.
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---- collections ----------------------------------------------------------

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Vectors of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---- sample ---------------------------------------------------------------

pub mod sample {
    use super::test_runner::TestRng;
    use super::Arbitrary;

    /// An index into a collection whose length is only known at use
    /// time (`any::<Index>()` then `.index(len)`).
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

// ---- macros ---------------------------------------------------------------

/// Declares property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)) => {};
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!("proptest case {case} of {} failed: {message}", cfg.cases);
                }
            }
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// In a `proptest!` body: fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// In a `proptest!` body: fails the current case unless both sides are
/// equal (compared by reference, so operands are not consumed).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r,
            ));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

/// The glob import every proptest file starts with.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn pattern_subset_generates_within_class() {
        let mut rng = TestRng::deterministic("pattern");
        for _ in 0..200 {
            let s = Strategy::generate(&"[A-Z_]{1,12}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 12);
            assert!(
                s.chars().all(|c| c == '_' || c.is_ascii_uppercase()),
                "{s:?}"
            );
            let t = Strategy::generate(&".{0,8}", &mut rng);
            assert!(t.chars().count() <= 8);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The shim's own machinery: ranges stay in bounds, tuples and
        /// maps compose, oneof picks only listed arms.
        #[test]
        fn shim_self_check(
            x in 3u32..17,
            (a, b) in (0u8..4, 10u64..20),
            v in crate::collection::vec(0i64..5, 0..9),
            pick in prop_oneof![Just(1u8), Just(2u8), (4u8..6).prop_map(|x| x)],
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(a < 4 && (10..20).contains(&b));
            prop_assert!(v.len() < 9 && v.iter().all(|e| (0..5).contains(e)));
            prop_assert!(pick == 1 || pick == 2 || pick == 4 || pick == 5, "got {pick}");
        }
    }
}
