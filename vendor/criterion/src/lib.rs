//! A vendored, API-compatible subset of the `criterion` crate.
//!
//! Offline build: this reproduces the harness surface the workspace's
//! benches use — `criterion_group!`/`criterion_main!`, benchmark
//! groups, `Throughput`, `iter`/`iter_batched` — with a simple
//! mean-of-N timing loop instead of criterion's statistics engine.
//! Results print one line per benchmark:
//!
//! ```text
//! waldo/ingest_8000_entries  time: 812.44 µs/iter  thrpt: 9.85 Melem/s
//! ```
//!
//! Set `BENCH_QUICK=1` to shrink the measurement window (used by CI
//! smoke runs).

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work performed per iteration, for derived throughput lines.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// How `iter_batched` amortizes setup (ignored by this harness).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A `function_name/parameter` benchmark id.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new<P: Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

fn measurement_window() -> Duration {
    if std::env::var_os("BENCH_QUICK").is_some() {
        Duration::from_millis(30)
    } else {
        Duration::from_millis(300)
    }
}

/// Drives the timing loop for one benchmark.
pub struct Bencher {
    /// Mean wall time per iteration, filled in by `iter*`.
    elapsed_per_iter: Duration,
}

impl Bencher {
    /// Times `routine`, adaptively choosing an iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: grow the batch until it is measurable.
        let mut batch: u64 = 1;
        let t0 = Instant::now();
        loop {
            for _ in 0..batch {
                black_box(routine());
            }
            if t0.elapsed() > Duration::from_millis(20) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let window = measurement_window();
        let mut iters: u64 = 0;
        let start = Instant::now();
        while start.elapsed() < window {
            for _ in 0..batch {
                black_box(routine());
            }
            iters += batch;
        }
        self.elapsed_per_iter = start.elapsed() / iters.max(1) as u32;
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let window = measurement_window();
        let mut iters: u64 = 0;
        let mut busy = Duration::ZERO;
        let start = Instant::now();
        while start.elapsed() < window && iters < 1 << 24 {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            busy += t.elapsed();
            iters += 1;
        }
        self.elapsed_per_iter = busy / iters.max(1) as u32;
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn format_throughput(tp: Throughput, per_iter: Duration) -> String {
    let secs = per_iter.as_secs_f64().max(1e-12);
    let (count, unit) = match tp {
        Throughput::Elements(n) => (n as f64, "elem/s"),
        Throughput::Bytes(n) => (n as f64, "B/s"),
    };
    let rate = count / secs;
    if rate >= 1e9 {
        format!("{:.2} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} K{unit}", rate / 1e3)
    } else {
        format!("{rate:.2} {unit}")
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher {
        elapsed_per_iter: Duration::ZERO,
    };
    f(&mut b);
    let mut line = format!(
        "{label:<44} time: {}/iter",
        format_duration(b.elapsed_per_iter)
    );
    if let Some(tp) = throughput {
        line.push_str(&format!(
            "  thrpt: {}",
            format_throughput(tp, b.elapsed_per_iter)
        ));
    }
    println!("{line}");
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration work used for throughput lines.
    pub fn throughput(&mut self, tp: Throughput) {
        self.throughput = Some(tp);
    }

    pub fn bench_function<D: Display, F: FnMut(&mut Bencher)>(&mut self, id: D, f: F) {
        run_one(&format!("{}/{}", self.name, id), self.throughput, f);
    }

    pub fn bench_with_input<D, I, F>(&mut self, id: D, input: &I, mut f: F)
    where
        D: Display,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.throughput, |b| {
            f(b, input)
        });
    }

    pub fn finish(self) {}
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<D: Display, F: FnMut(&mut Bencher)>(&mut self, id: D, f: F) -> &mut Self {
        run_one(&id.to_string(), None, f);
        self
    }
}

/// Declares a group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`);
            // this simple harness ignores them.
            $($group();)+
        }
    };
}
