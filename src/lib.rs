//! Layered provenance: a reproduction of PASSv2 (*Layering in
//! Provenance Systems*, USENIX ATC 2009).
//!
//! This meta-crate re-exports every subsystem of the workspace so that
//! examples and integration tests can reach the whole stack through a
//! single dependency:
//!
//! * [`passv2`] — the PASS module (interceptor/observer, analyzer,
//!   distributor, libpass) and the Figure 2 system assembly;
//! * [`sim_os`] — the deterministic simulated kernel everything runs
//!   on;
//! * [`lasagna`] — the stackable provenance-aware file system and its
//!   write-ahead provenance log;
//! * [`waldo`] — the sharded, batch-committed provenance database and
//!   its polling daemon;
//! * [`pql`] — the path query language;
//! * [`dpapi`] — the disclosed-provenance API and wire format;
//! * [`pa_nfs`], [`pa_python`], [`links`], [`kepler`] — the four
//!   provenance-aware applications of §6;
//! * [`workloads`] — the §7 evaluation workloads;
//! * [`provtorture`] — the deterministic fault-injection and
//!   expressiveness harness (every tamper detected or provably
//!   harmless);
//! * [`provscope`] — cross-layer span tracing, unified metrics
//!   registry and per-layer latency attribution;
//! * [`sluice`] — the asynchronous pipelined disclosure front door:
//!   bounded submit queue, coalescing drainer, backpressure and
//!   per-client admission control over any DPAPI substrate.
//!
//! The repository-level documents this crate is the index for:
//! `DESIGN.md` (crate-to-component inventory and the storage engine's
//! shard/batch data flow) and `EXPERIMENTS.md` (the paper-versus-
//! measured record, with regeneration instructions).

pub use dpapi;
pub use kepler;
pub use lasagna;
pub use links;
pub use pa_nfs;
pub use pa_python;
pub use passv2;
pub use pql;
pub use provscope;
pub use provtorture;
pub use sim_os;
pub use sluice;
pub use waldo;
pub use workloads;
