//! Layered provenance: a reproduction of PASSv2 (*Layering in
//! Provenance Systems*, USENIX ATC 2009).
//!
//! This meta-crate re-exports every subsystem of the workspace so that
//! examples and integration tests can reach the whole stack through a
//! single dependency. See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-versus-measured record.

pub use dpapi;
pub use kepler;
pub use lasagna;
pub use links;
pub use pa_nfs;
pub use pa_python;
pub use passv2;
pub use pql;
pub use sim_os;
pub use waldo;
pub use workloads;
