//! Regenerates Table 1: the provenance record types each
//! provenance-aware application collects.
//!
//! Each application runs a small scenario on a fresh PASSv2 machine;
//! the distinct record attributes it disclosed are then read back out
//! of the provenance database.
//!
//! ```text
//! cargo run -p bench --bin table1
//! ```

use std::collections::BTreeSet;

use dpapi::VolumeId;
use links::{demo_web, Session};
use pa_python::Interp;
use passv2::System;
use sim_os::clock::Clock;
use sim_os::cost::CostModel;

/// Runs Waldo over a system's logs and returns every attribute name
/// recorded for objects of `subject_type`, plus (optionally) the
/// attributes on files they produced.
fn record_types(sys: &mut System, subject_types: &[&str]) -> BTreeSet<String> {
    let waldo_pid = sys.kernel.spawn_init("waldo");
    sys.pass.exempt(waldo_pid);
    let mut w = waldo::Waldo::new(waldo_pid);
    for (_, logs) in sys.rotate_all_logs() {
        for log in logs {
            w.ingest_log_file(&mut sys.kernel, &log);
        }
    }
    let mut out = BTreeSet::new();
    for ty in subject_types {
        for p in w.db.find_by_type(ty) {
            if let Some(obj) = w.db.object(p) {
                for v in obj.versions.values() {
                    for (a, _) in &v.attrs {
                        out.insert(a.as_str().to_string());
                    }
                    for (a, _) in &v.inputs {
                        out.insert(a.as_str().to_string());
                    }
                }
            }
        }
    }
    out
}

fn pa_links_types() -> BTreeSet<String> {
    let mut sys = System::single_volume();
    let pid = sys.spawn("links");
    sys.kernel.mkdir_p(pid, "/home").unwrap();
    let web = demo_web();
    let mut s = Session::open(&mut sys.kernel, pid).unwrap();
    s.visit(&mut sys.kernel, &web, "http://uni.example/")
        .unwrap();
    s.download(
        &mut sys.kernel,
        &web,
        "http://uni.example/graphs/speedup.gif",
        "/home/graph.gif",
    )
    .unwrap();
    // Collect from both the session object and the downloaded file
    // (FILE_URL / CURRENT_URL / INPUT live on the file).
    let waldo_pid = sys.kernel.spawn_init("waldo");
    sys.pass.exempt(waldo_pid);
    let mut w = waldo::Waldo::new(waldo_pid);
    for (_, logs) in sys.rotate_all_logs() {
        for log in logs {
            w.ingest_log_file(&mut sys.kernel, &log);
        }
    }
    let mut subjects = w.db.find_by_type("SESSION");
    subjects.extend(w.db.find_by_name("/home/graph.gif"));
    let mut out = BTreeSet::new();
    for p in subjects {
        if let Some(obj) = w.db.object(p) {
            for v in obj.versions.values() {
                for (a, _) in &v.attrs {
                    out.insert(a.as_str().to_string());
                }
                for (a, _) in &v.inputs {
                    out.insert(a.as_str().to_string());
                }
            }
        }
    }
    out
}

fn pa_kepler_types() -> BTreeSet<String> {
    let mut sys = System::single_volume();
    let driver = sys.spawn("kepler");
    let wl = workloads::PaKepler {
        rows: 50,
        cpu_per_stage: 10,
        provenance_aware: true,
    };
    workloads::Workload::run(&wl, &mut sys.kernel, driver, "/").unwrap();
    record_types(&mut sys, &["OPERATOR"])
}

fn pa_python_types() -> BTreeSet<String> {
    let mut sys = System::single_volume();
    let pid = sys.spawn("pythonette");
    sys.kernel
        .write_file(pid, "/exp.xml", b"<heat>12</heat>")
        .unwrap();
    let mut interp = Interp::new(pid);
    interp.wrap("crack_heat");
    interp
        .run(
            &mut sys.kernel,
            r#"
            def crack_heat(doc) { return xml_field(doc, "heat"); }
            let d = read_file("/exp.xml");
            write_file("/plot.dat", crack_heat(d));
            "#,
        )
        .unwrap();
    record_types(&mut sys, &["FUNCTION"])
}

fn pa_nfs_types() -> BTreeSet<String> {
    // Drive a chunked provenance transaction through a PA-NFS pair
    // and report the transaction-level record types plus FREEZE.
    use dpapi::{Attribute, Bundle, Dpapi, ProvenanceRecord, Value};
    use sim_os::fs::{DpapiVolume, FileSystem};
    let clock = Clock::new();
    let model = CostModel::default();
    let server = pa_nfs::pa_server(clock.clone(), model, VolumeId(3));
    let mut client = pa_nfs::client(&server, clock.clone(), model);
    let root = client.root();
    let ino = client.create(root, "big").unwrap();
    let h = client.handle_for_ino(ino).unwrap();
    client.pass_freeze(h).unwrap();
    // An oversized bundle forces BEGINTXN / ENDTXN.
    let mut bundle = Bundle::new();
    for i in 0..3000 {
        bundle.push(
            h,
            ProvenanceRecord::new(
                Attribute::Other("NOTE".into()),
                Value::str(format!("chunked provenance record number {i}")),
            ),
        );
    }
    client.pass_write(h, 0, b"data", bundle).unwrap();
    let mut types = BTreeSet::new();
    for image in server.borrow_mut().drain_provenance_logs() {
        let (entries, _) = lasagna::parse_log(&image);
        for e in entries {
            match e {
                lasagna::LogEntry::TxnBegin { .. } => {
                    types.insert("BEGINTXN".to_string());
                }
                lasagna::LogEntry::TxnEnd { .. } => {
                    types.insert("ENDTXN".to_string());
                }
                lasagna::LogEntry::Prov { record, .. } => {
                    if record.attribute == Attribute::Freeze {
                        types.insert("FREEZE".to_string());
                    }
                }
                lasagna::LogEntry::DataWrite { .. } => {}
            }
        }
    }
    types
}

fn print_section(app: &str, types: &BTreeSet<String>, expected: &[&str]) {
    println!("{app}");
    for t in types {
        let marker = if expected.contains(&t.as_str()) {
            " (Table 1)"
        } else {
            ""
        };
        println!("  {t}{marker}");
    }
    println!();
}

fn main() {
    println!("Table 1: Provenance records collected by each PA application\n");
    print_section("PA-NFS", &pa_nfs_types(), &["BEGINTXN", "ENDTXN", "FREEZE"]);
    print_section(
        "PA-Kepler",
        &pa_kepler_types(),
        &["TYPE", "NAME", "PARAMS", "INPUT"],
    );
    print_section(
        "PA-links",
        &pa_links_types(),
        &["TYPE", "VISITED_URL", "FILE_URL", "CURRENT_URL", "INPUT"],
    );
    print_section("PA-Python", &pa_python_types(), &["TYPE", "NAME", "INPUT"]);
}
