//! provtop — the operator's one-screen view of a running provenance
//! pipeline, fed entirely by the observability plane this repo grew:
//! sluice queue gauges, flight-recorder retention counters, per-layer
//! self-time quantiles from the span forest, the store's
//! lock-contention profile, health-rule verdicts and the slow-trace
//! ring.
//!
//! Drives the pipelined PA-NFS disclosure rig (sluice front door →
//! pa-nfs client/server → lasagna → waldo store) for a few ingest
//! ticks and renders one screen per tick:
//!
//! ```text
//! cargo run --release -p bench --bin provtop            # text screens
//! cargo run --release -p bench --bin provtop -- --json  # one JSON object per tick
//! cargo run --release -p bench --bin provtop -- --ticks 5 --txns 48
//! ```
//!
//! The JSON mode emits a deterministic, hand-rolled snapshot per tick
//! (sorted keys, virtual-clock timestamps) for dashboards and diff
//! tests; the wall-clock lock-wait quantiles are the one knowingly
//! nondeterministic block and are text-mode only.

use std::collections::BTreeMap;

use dpapi::{Attribute, Bundle, ObjectRef, ProvenanceRecord, Value, Version, VolumeId};
use provscope::{Histogram, RecorderConfig, Registry, Scope, Trace};
use sim_os::clock::Clock;
use sim_os::cost::CostModel;
use sim_os::fs::{DpapiVolume, FileSystem};
use sluice::{BackpressurePolicy, ClientId, Sluice, SluiceConfig};
use waldo::{ProvDb, WaldoConfig};

/// Per-layer self-time (span duration minus direct children) as a
/// histogram, so the screen can show p50/p99 instead of only sums.
fn layer_self_histograms(trace: &Trace) -> BTreeMap<&'static str, Histogram> {
    let mut child_ns = vec![0u64; trace.spans.len()];
    for s in &trace.spans {
        if let Some(p) = s.parent {
            if let Ok(i) = trace.spans.binary_search_by_key(&p.0, |x| x.id.0) {
                child_ns[i] += s.duration_ns();
            }
        }
    }
    let mut by_layer: BTreeMap<&'static str, Histogram> = BTreeMap::new();
    for (i, s) in trace.spans.iter().enumerate() {
        let self_ns = s.duration_ns().saturating_sub(child_ns[i]);
        by_layer.entry(s.layer).or_default().observe(self_ns);
    }
    by_layer
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

struct Args {
    ticks: usize,
    txns: usize,
    json: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        ticks: 3,
        txns: 24,
        json: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut num = |name: &str| {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} wants a number"))
        };
        match a.as_str() {
            "--ticks" => args.ticks = num("--ticks"),
            "--txns" => args.txns = num("--txns"),
            "--json" => args.json = true,
            other => panic!("unknown flag {other} (try --ticks N, --txns N, --json)"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let clock = Clock::new();
    let model = CostModel::default();
    let server = pa_nfs::pa_server(clock.clone(), model, VolumeId(7));
    let mut client = pa_nfs::client(&server, clock.clone(), model);
    let root = client.root();
    let ino = client
        .create(root, "provtop-target")
        .expect("create target");

    // The always-on scope: bounded ring, full sampling, tail pinning
    // at 150µs virtual — batch commits that slow are worth keeping
    // whole.
    let recorder = RecorderConfig {
        capacity: 2048,
        sample_per_million: 1_000_000,
        seed: 0,
        slow_threshold_ns: 150_000,
        slow_capacity: 1024,
    };
    let scope = {
        let c = clock.clone();
        Scope::recording(move || c.now(), recorder)
    };
    client.set_scope(scope.clone());

    let mut pipe = Sluice::new(SluiceConfig {
        max_queued_ops: 64,
        coalesce_ops: 8,
        policy: BackpressurePolicy::Block,
        ..SluiceConfig::default()
    });
    pipe.set_scope(scope.clone());
    {
        let c = clock.clone();
        pipe.set_now(move || c.now());
    }

    let db = ProvDb::with_config(WaldoConfig::default());
    let rules = provscope::health::standard_rules();

    for tick in 1..=args.ticks {
        // One ingest tick: submit, drain, land the logs in the store,
        // answer a query burst (the read side the contention profile
        // watches).
        let mut tickets = Vec::with_capacity(args.txns);
        for i in 0..args.txns {
            let h = client.handle_for_ino(ino).expect("handle");
            let mut txn = dpapi::Txn::new();
            txn.disclose(
                h,
                Bundle::single(
                    h,
                    ProvenanceRecord::new(
                        Attribute::Other(format!("PROVTOP_T{tick}")),
                        Value::str(format!("tick {tick} event {i}")),
                    ),
                ),
            );
            tickets.push(pipe.submit(&mut client, ClientId(1), txn).expect("submit"));
        }
        pipe.drain(&mut client);
        for t in tickets {
            pipe.take(t).expect("resolved").expect("committed");
        }
        for image in server.borrow_mut().drain_provenance_logs() {
            let (entries, _) = lasagna::parse_log(&image);
            db.ingest(&entries);
        }
        let mut pnodes = db.all_pnodes();
        pnodes.sort_unstable();
        for p in pnodes.iter().take(16) {
            let _ = db.ancestors(ObjectRef::new(*p, Version(0)));
        }

        // Snapshot the whole plane.
        let mut reg = Registry::new();
        pipe.export_metrics("sluice.", &mut reg);
        scope.export_metrics(&mut reg);
        db.export_contention("waldo.", &mut reg);
        reg.absorb("pa-nfs.client.", &client.stats());
        let health = provscope::health::evaluate(&rules, &reg);
        let trace = scope.snapshot();
        let layers = layer_self_histograms(&trace);
        let rec = scope.recorder_stats();
        let slow = scope.slow_traces();
        let con = db.contention_stats();
        let now = clock.now();

        if args.json {
            let layer_rows: Vec<String> = layers
                .iter()
                .map(|(l, h)| {
                    format!(
                        "{{\"layer\": \"{l}\", \"spans\": {}, \"self_p50_ns\": {}, \
                         \"self_p99_ns\": {}}}",
                        h.count(),
                        h.quantile(0.5),
                        h.quantile(0.99)
                    )
                })
                .collect();
            let violation_rows: Vec<String> = health
                .violations
                .iter()
                .map(|v| {
                    format!(
                        "{{\"metric\": \"{}\", \"value\": {}, \"limit\": {}}}",
                        json_escape(&v.metric),
                        v.value,
                        v.limit
                    )
                })
                .collect();
            let slow_rows: Vec<String> = slow
                .iter()
                .map(|s| {
                    format!(
                        "{{\"trace\": \"{:#x}\", \"root\": \"{}/{}\", \
                         \"duration_ns\": {}, \"spans\": {}}}",
                        s.trace.0,
                        json_escape(s.root_layer),
                        json_escape(&s.root_name),
                        s.duration_ns,
                        s.spans
                    )
                })
                .collect();
            println!(
                "{{\"tick\": {tick}, \"virtual_ns\": {now}, \
                 \"queue\": {{\"ops\": {}, \"bytes\": {}, \"peak_ops\": {}, \
                 \"budget_ops\": {}, \"peak_bytes\": {}, \"budget_bytes\": {}}}, \
                 \"recorder\": {{\"spans_live\": {}, \"spans_high_water\": {}, \
                 \"trees_retained\": {}, \"trees_evicted\": {}, \
                 \"trees_sampled_out\": {}, \"slow_trees\": {}, \"spans_shed\": {}}}, \
                 \"contention\": {{\"epoch_reads\": {}, \"epoch_retries\": {}, \
                 \"epoch_fallbacks\": {}, \"commit_windows\": {}}}, \
                 \"layers\": [{}], \
                 \"health\": {{\"healthy\": {}, \"rules\": {}, \"violations\": [{}]}}, \
                 \"slow_traces\": [{}]}}",
                reg.gauge("sluice.queue.ops"),
                reg.gauge("sluice.queue.bytes"),
                reg.gauge("sluice.queue.peak_ops"),
                reg.gauge("sluice.queue.budget_ops"),
                reg.gauge("sluice.queue.peak_bytes"),
                reg.gauge("sluice.queue.budget_bytes"),
                rec.spans_live,
                rec.spans_high_water,
                rec.trees_retained,
                rec.trees_evicted,
                rec.trees_sampled_out,
                rec.slow_trees,
                rec.spans_shed,
                con.epoch_reads,
                con.epoch_retries,
                con.epoch_fallbacks,
                con.commit_windows,
                layer_rows.join(", "),
                health.healthy(),
                health.rules_evaluated,
                violation_rows.join(", "),
                slow_rows.join(", "),
            );
            continue;
        }

        println!(
            "== provtop == tick {tick}/{} == virtual {:.3}s == spans live {} \
             (high water {}, cap {})",
            args.ticks,
            now as f64 / 1e9,
            rec.spans_live,
            rec.spans_high_water,
            recorder.capacity
        );
        println!(
            "queue       ops {:>4}/{:<5} bytes {:>7}/{:<8} (peaks: {} ops, {} bytes)",
            reg.gauge("sluice.queue.ops"),
            reg.gauge("sluice.queue.budget_ops"),
            reg.gauge("sluice.queue.bytes"),
            reg.gauge("sluice.queue.budget_bytes"),
            reg.gauge("sluice.queue.peak_ops"),
            reg.gauge("sluice.queue.peak_bytes"),
        );
        println!(
            "recorder    retained {} trees, evicted {}, sampled out {}, \
             slow {}, shed {}",
            rec.trees_retained,
            rec.trees_evicted,
            rec.trees_sampled_out,
            rec.slow_trees,
            rec.spans_shed
        );
        println!(
            "contention  epoch reads {}, retries {}, fallbacks {}, commit windows {}",
            con.epoch_reads, con.epoch_retries, con.epoch_fallbacks, con.commit_windows
        );
        println!(
            "lock waits  meta p99 {}ns, shard p99 {}ns, cache p99 {}ns, \
             commit window p99 {}ns (wall clock)",
            reg_hist_p99(&reg, "waldo.lock.meta_wait_ns"),
            reg_hist_p99(&reg, "waldo.lock.shard_wait_ns"),
            reg_hist_p99(&reg, "waldo.lock.cache_wait_ns"),
            reg_hist_p99(&reg, "waldo.commit_window_ns"),
        );
        println!(
            "{:<10} {:>7} {:>14} {:>14}",
            "layer", "spans", "self_p50_us", "self_p99_us"
        );
        for (l, h) in &layers {
            println!(
                "{:<10} {:>7} {:>14.3} {:>14.3}",
                l,
                h.count(),
                h.quantile(0.5) as f64 / 1_000.0,
                h.quantile(0.99) as f64 / 1_000.0
            );
        }
        if health.healthy() {
            println!("health      OK ({} rules)", health.rules_evaluated);
        } else {
            println!(
                "health      {} violation(s) of {} rules:",
                health.violations.len(),
                health.rules_evaluated
            );
            for v in &health.violations {
                println!("  !! {}", v.message);
            }
        }
        if slow.is_empty() {
            println!("slow traces (none over {}ns)", recorder.slow_threshold_ns);
        } else {
            println!(
                "slow traces ({} pinned, threshold {}ns):",
                slow.len(),
                recorder.slow_threshold_ns
            );
            for s in slow.iter().rev().take(3) {
                println!(
                    "  {:#018x}  {}/{}  {:.3}ms  {} spans",
                    s.trace.0,
                    s.root_layer,
                    s.root_name,
                    s.duration_ns as f64 / 1e6,
                    s.spans
                );
            }
        }
        println!();
    }
}

/// p99 of a registry histogram, 0 when absent or empty.
fn reg_hist_p99(reg: &Registry, key: &str) -> u64 {
    reg.histograms()
        .find(|(k, _)| *k == key)
        .map(|(_, h)| h.quantile(0.99))
        .unwrap_or(0)
}
