//! Regenerates Table 2: elapsed-time overheads for the five
//! workloads under Ext3 vs PASSv2 and NFS vs PA-NFS.
//!
//! ```text
//! cargo run --release -p bench --bin table2
//! ```
//!
//! Times are virtual seconds from the simulation's cost model; the
//! paper's numbers are reproduced in *shape* (which workloads hurt,
//! roughly how much, and how the ordering changes between local and
//! NFS), not in absolute magnitude.

use bench::{measure, overhead_pct, standard_workloads, Config};

fn main() {
    println!("Table 2: Elapsed time overheads (virtual seconds)");
    println!(
        "{:<20} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "Benchmark", "Ext3", "PASSv2", "Ovhd", "NFS", "PA-NFS", "Ovhd"
    );
    println!("{}", "-".repeat(80));
    for wl in standard_workloads() {
        let ext3 = measure(Config::Ext3, wl.as_ref());
        let pass = measure(Config::PassV2, wl.as_ref());
        let nfs = measure(Config::Nfs, wl.as_ref());
        let panfs = measure(Config::PaNfs, wl.as_ref());
        println!(
            "{:<20} {:>9.2} {:>9.2} {:>8.1}% {:>9.2} {:>9.2} {:>8.1}%",
            wl.name(),
            ext3.elapsed_s,
            pass.elapsed_s,
            overhead_pct(ext3.elapsed_s, pass.elapsed_s),
            nfs.elapsed_s,
            panfs.elapsed_s,
            overhead_pct(nfs.elapsed_s, panfs.elapsed_s),
        );
    }
    println!();
    println!("Paper reference (measured on real hardware, 2009):");
    println!("  Linux Compile     1746 / 2018 (15.6%)   3320 / 3353 (11.0%)");
    println!("  Postmark           453 /  505 (11.5%)    636 /  743 (16.8%)");
    println!("  Mercurial Activity 614 /  756 (23.1%)   2842 / 3089 ( 8.7%)");
    println!("  Blast               69 / 69.5 ( 0.7%)     52 /   53 ( 1.9%)");
    println!("  PA-Kepler         1246 / 1264 ( 1.4%)    160 /  164 ( 2.5%)");
}
