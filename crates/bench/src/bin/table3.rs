//! Regenerates Table 3: space overheads of the provenance database
//! and its indexes, as a percentage of the base data written.
//!
//! ```text
//! cargo run --release -p bench --bin table3 [-- --trace]
//! ```
//!
//! With `--trace`, additionally runs a traced PA-NFS Postmark round
//! and prints the per-layer latency attribution plus the Chrome-trace
//! JSON export path (load it in `chrome://tracing` / Perfetto).

use bench::{measure, standard_workloads, traced_postmark, Config};

fn mb(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn main() {
    println!("Table 3: Space overheads (MB), PASSv2 configuration");
    println!(
        "{:<20} {:>10} {:>16} {:>22}",
        "Benchmark", "Ext3", "Provenance", "Provenance+Indexes"
    );
    println!("{}", "-".repeat(74));
    let mut measured = Vec::new();
    for wl in standard_workloads() {
        let m = measure(Config::PassV2, wl.as_ref());
        let base = m.data_bytes;
        let prov = m.db_bytes;
        let total = m.db_bytes + m.index_bytes;
        println!(
            "{:<20} {:>10.2} {:>9.3} ({:>4.1}%) {:>14.3} ({:>4.1}%)",
            wl.name(),
            mb(base),
            mb(prov),
            prov as f64 / base as f64 * 100.0,
            mb(total),
            total as f64 / base as f64 * 100.0,
        );
        measured.push((wl.name().to_string(), m));
    }
    println!();
    println!("Operational counters (PASSv2 daemon: durable WAL + checkpoints,");
    println!("ancestry of the first 64 objects queried twice to exercise the");
    println!("cache; `planner.` rows are one §5.7-style name-equality ancestry");
    println!("query per run, root-bound via the attribute index)");
    let mut reg = provscope::Registry::new();
    for (name, m) in &measured {
        reg.absorb(&format!("{name}."), &m.ops);
    }
    println!("{}", reg.render_table());
    println!("Paper reference (MB):");
    println!("  Linux Compile      1287.9   88.9 (6.9%)   236.8 (18.4%)");
    println!("  Postmark           1289.5    0.8 (0.1%)     1.7 ( 0.1%)");
    println!("  Mercurial Activity  858.7   15.4 (1.8%)    28.9 ( 3.4%)");
    println!("  Blast                 5.6    0.1 (1.1%)     0.2 ( 3.8%)");
    println!("  PA-Kepler             3.5    0.2 (4.7%)     0.5 (14.2%)");

    if std::env::args().any(|a| a == "--trace") {
        let run = traced_postmark(8, true);
        println!();
        println!("Traced PA-NFS Postmark (8-op disclosure batches):");
        println!("{}", run.trace.render_latency_table());
        let path = "target/provscope-table3.json";
        match std::fs::write(path, provscope::chrome_trace_json(&run.trace)) {
            Ok(()) => println!("Chrome trace written to {path}"),
            Err(e) => println!("Chrome trace not written ({path}: {e})"),
        }
    }
}
