//! Regenerates Table 3: space overheads of the provenance database
//! and its indexes, as a percentage of the base data written.
//!
//! ```text
//! cargo run --release -p bench --bin table3
//! ```

use bench::{measure, standard_workloads, Config};

fn mb(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn main() {
    println!("Table 3: Space overheads (MB), PASSv2 configuration");
    println!(
        "{:<20} {:>10} {:>16} {:>22}",
        "Benchmark", "Ext3", "Provenance", "Provenance+Indexes"
    );
    println!("{}", "-".repeat(74));
    let mut measured = Vec::new();
    for wl in standard_workloads() {
        let m = measure(Config::PassV2, wl.as_ref());
        let base = m.data_bytes;
        let prov = m.db_bytes;
        let total = m.db_bytes + m.index_bytes;
        println!(
            "{:<20} {:>10.2} {:>9.3} ({:>4.1}%) {:>14.3} ({:>4.1}%)",
            wl.name(),
            mb(base),
            mb(prov),
            prov as f64 / base as f64 * 100.0,
            mb(total),
            total as f64 / base as f64 * 100.0,
        );
        measured.push((wl.name().to_string(), m));
    }
    println!();
    println!("Operational counters (PASSv2 daemon: durable WAL + checkpoints,");
    println!("ancestry of the first 64 objects queried twice to exercise the cache)");
    println!(
        "{:<20} {:>6} {:>11} {:>8} {:>6} {:>6} {:>8} {:>9} {:>8} {:>8}",
        "Benchmark",
        "shards",
        "cache h/m",
        "walerr",
        "ckpts",
        "fail",
        "segs",
        "seg KB",
        "trunc",
        "retired"
    );
    println!("{}", "-".repeat(99));
    for (name, m) in &measured {
        let o = &m.ops;
        println!(
            "{:<20} {:>6} {:>5}/{:<5} {:>8} {:>6} {:>6} {:>8} {:>9.1} {:>8} {:>8}",
            name,
            o.effective_shards,
            o.ancestry_cache.hits,
            o.ancestry_cache.misses,
            o.wal_errors,
            o.checkpoints.checkpoints,
            o.checkpoints.failures,
            o.checkpoints.segments_written,
            o.checkpoints.segment_bytes as f64 / 1024.0,
            o.checkpoints.frames_truncated,
            o.checkpoints.logs_retired,
        );
    }
    println!();
    println!("Query planner (one §5.7-style name-equality ancestry query per run:");
    println!("root binding via the attribute index, not a volume scan)");
    println!(
        "{:<20} {:>8} {:>6} {:>7} {:>8} {:>10} {:>9}",
        "Benchmark", "idx hit", "scans", "pushed", "pruned", "clo saved", "fallback"
    );
    println!("{}", "-".repeat(74));
    for (name, m) in &measured {
        let p = &m.ops.planner;
        println!(
            "{:<20} {:>8} {:>6} {:>7} {:>8} {:>10} {:>9}",
            name,
            p.index_hits,
            p.scan_bindings,
            p.predicates_pushed,
            p.rows_pruned,
            p.closure_calls_saved,
            p.naive_fallbacks,
        );
    }
    println!();
    println!("Paper reference (MB):");
    println!("  Linux Compile      1287.9   88.9 (6.9%)   236.8 (18.4%)");
    println!("  Postmark           1289.5    0.8 (0.1%)     1.7 ( 0.1%)");
    println!("  Mercurial Activity  858.7   15.4 (1.8%)    28.9 ( 3.4%)");
    println!("  Blast                 5.6    0.1 (1.1%)     0.2 ( 3.8%)");
    println!("  PA-Kepler             3.5    0.2 (4.7%)     0.5 (14.2%)");
}
