//! The flight-recorder acceptance harness: runs the traced PA-NFS
//! Postmark pipeline with the bounded recorder on and checks the
//! always-on contract end to end —
//!
//! * **free on the virtual clock** — a recorder run's virtual elapsed
//!   time is within 5% of the untraced run's (it is exactly equal:
//!   tracing reads the clock, never advances it);
//! * **byte-equality** — the recorder run's store
//!   ([`waldo::Store::segment_images`]) is byte-identical to the
//!   untraced run's;
//! * **bounded memory** — `spans_high_water <= capacity` at every
//!   batch size, with zero spans shed at an ample capacity;
//! * **deterministic sampling** — two same-seed runs with head
//!   sampling and tail pinning retain byte-identical sampled
//!   trace-id sets, Chrome JSON exports and slow-trace rings, and
//!   every retained trace id passes the pure sampling predicate.
//!
//! Prints the traced-ring-vs-untraced overhead table EXPERIMENTS.md
//! records, then `recorder_smoke: OK`. Exits nonzero on any
//! violation, so CI runs it as a smoke test:
//!
//! ```text
//! cargo run --release -p bench --bin recorder_smoke
//! ```

use std::collections::BTreeSet;

use bench::{traced_postmark_with, TraceMode, TracedRun};
use provscope::{chrome_trace_json, RecorderConfig};

/// Ring capacity for the bounded runs — ample for this pipeline, so
/// the memory gate (`high_water <= capacity`, zero shed) is strict.
const CAPACITY: usize = 4096;

fn keep_all_config() -> RecorderConfig {
    RecorderConfig {
        capacity: CAPACITY,
        sample_per_million: 1_000_000,
        seed: 0,
        slow_threshold_ns: u64::MAX,
        slow_capacity: CAPACITY,
    }
}

/// The retained trace-id set of a run, in sorted order.
fn trace_ids(run: &TracedRun) -> BTreeSet<u64> {
    run.trace
        .spans
        .iter()
        .filter_map(|s| s.trace.map(|t| t.0))
        .collect()
}

fn main() {
    println!("recorder_smoke: flight recorder vs untraced, PA-NFS Postmark pipeline");
    println!("(virtual clock; recorder capacity {CAPACITY} spans)\n");
    println!(
        "{:>9}  {:>14}  {:>14}  {:>9}  {:>10}",
        "batch_ops", "untraced_ns", "recorder_ns", "overhead%", "high_water"
    );
    for batch_ops in [1usize, 8, 32] {
        let base = traced_postmark_with(batch_ops, TraceMode::Off);
        let rec = traced_postmark_with(batch_ops, TraceMode::Recorder(keep_all_config()));

        // Gate 1: the recorder is free on the virtual clock (<= 5%).
        let overhead = bench::overhead_pct(base.elapsed_ns as f64, rec.elapsed_ns as f64);
        assert!(
            overhead.abs() <= 5.0,
            "recorder overhead {overhead:.2}% exceeds 5% at batch_ops={batch_ops}"
        );
        // Gate 2: not one stored byte changed.
        assert_eq!(
            rec.segment_images, base.segment_images,
            "recorder run diverged from untraced store bytes at batch_ops={batch_ops}"
        );
        // Gate 3: bounded span memory, nothing shed at ample capacity.
        assert!(
            rec.recorder.spans_high_water <= CAPACITY as u64,
            "high water {} exceeds capacity {CAPACITY}",
            rec.recorder.spans_high_water
        );
        assert_eq!(rec.recorder.spans_shed, 0, "ample capacity must not shed");
        rec.trace.validate().expect("well-formed retained forest");

        println!(
            "{:>9}  {:>14}  {:>14}  {:>8.2}%  {:>10}",
            batch_ops, base.elapsed_ns, rec.elapsed_ns, overhead, rec.recorder.spans_high_water
        );
    }

    // Deterministic sampling + tail pinning: pick a slow threshold at
    // a real root duration (so the slow ring is non-trivially
    // populated), then run the same sampled config twice.
    let full = traced_postmark_with(8, TraceMode::Recorder(keep_all_config()));
    let mut root_durations: Vec<u64> = full
        .batch_traces
        .iter()
        .filter_map(|t| {
            full.trace
                .spans
                .iter()
                .filter(|s| s.trace == Some(*t) && s.parent.is_none())
                .map(|s| s.end_ns.unwrap_or(s.start_ns) - s.start_ns)
                .max()
        })
        .collect();
    root_durations.sort_unstable();
    let threshold = root_durations[root_durations.len() / 2];
    let sampled_cfg = RecorderConfig {
        capacity: CAPACITY,
        sample_per_million: 500_000,
        seed: 0xC0FF_EE00,
        slow_threshold_ns: threshold,
        slow_capacity: CAPACITY,
    };

    let twin_a = traced_postmark_with(8, TraceMode::Recorder(sampled_cfg));
    let twin_b = traced_postmark_with(8, TraceMode::Recorder(sampled_cfg));
    assert_eq!(
        trace_ids(&twin_a),
        trace_ids(&twin_b),
        "same-seed runs must retain identical sampled trace-id sets"
    );
    assert_eq!(
        chrome_trace_json(&twin_a.trace),
        chrome_trace_json(&twin_b.trace),
        "same-seed runs must export byte-identical Chrome JSON"
    );
    assert_eq!(
        twin_a.slow, twin_b.slow,
        "same-seed runs must pin identical slow-trace rings"
    );
    assert!(
        !twin_a.slow.is_empty(),
        "the median-root threshold must pin at least one slow trace"
    );
    // Every retained *batch* trace either passed the pure sampling
    // predicate or was pinned by the tail rule.
    let slow: BTreeSet<u64> = twin_a.slow.iter().map(|s| s.trace.0).collect();
    for t in trace_ids(&twin_a) {
        let id = provscope::TraceId(t);
        if id.is_batch() {
            assert!(
                sampled_cfg.samples(id) || slow.contains(&t),
                "retained batch trace {t:#x} neither sampled nor slow-pinned"
            );
        }
    }
    println!(
        "\nsampling twin check: {} spans retained, {} slow trace(s) pinned \
         at threshold {threshold}ns, seed {:#x}",
        twin_a.trace.spans.len(),
        twin_a.slow.len(),
        sampled_cfg.seed
    );
    println!("recorder_smoke: OK");
}
