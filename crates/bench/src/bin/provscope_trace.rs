//! The provscope acceptance harness: runs a traced, batched Postmark
//! round on the PA-NFS configuration and checks the tentpole
//! contract end to end —
//!
//! * the Chrome-trace export parses and every disclosure batch is
//!   **one connected span tree** crossing at least five layers
//!   (kernel, dpapi, pa-nfs, lasagna, waldo);
//! * two same-seed traced runs export **byte-identical** JSON (spans
//!   live on the virtual clock; there is no ambient entropy to
//!   leak);
//! * a run with tracing disabled produces a **byte-identical store**
//!   ([`waldo::Store::segment_images`]) — tracing observes, never
//!   participates.
//!
//! Prints the per-layer latency attribution for disclosure batch
//! sizes 1, 8 and 32 (the EXPERIMENTS.md table) plus the unified
//! metrics registry, then `provscope: OK`. Exits nonzero on any
//! violation, so CI can run it as a smoke test:
//!
//! ```text
//! cargo run --release -p bench --bin provscope_trace
//! ```

use bench::{traced_postmark, TracedRun, TRACED_DISCLOSURES};
use provscope::{chrome_trace_json, parse_chrome_trace};

/// The layers a batched disclosure must cross on the PA-NFS machine.
const REQUIRED_LAYERS: [&str; 5] = ["dpapi", "kernel", "lasagna", "pa-nfs", "waldo"];

fn check_batch_trees(run: &TracedRun, batch_ops: usize) {
    assert_eq!(
        run.batch_traces.len(),
        TRACED_DISCLOSURES,
        "every multi-op disclosure allocates exactly one batch id"
    );
    for t in &run.batch_traces {
        assert!(t.is_batch(), "batch trace ids carry the batch tag bit");
        assert!(
            run.trace.is_connected_tree(*t),
            "batch {t:?} must form one connected span tree"
        );
        let layers = run.trace.layers_of(*t);
        for need in REQUIRED_LAYERS {
            assert!(
                layers.contains(&need),
                "batch {t:?} (batch_ops={batch_ops}) must cross {need}; got {layers:?}"
            );
        }
    }
}

fn main() {
    // Traced, batched: the span-tree contract and run-to-run
    // determinism.
    let run_a = traced_postmark(8, true);
    run_a.trace.validate().expect("well-formed span forest");
    let json_a = chrome_trace_json(&run_a.trace);
    let events = parse_chrome_trace(&json_a).expect("chrome trace parses");
    assert_eq!(
        events.len(),
        run_a.trace.spans.len(),
        "every span exports as one complete event"
    );
    check_batch_trees(&run_a, 8);

    let run_b = traced_postmark(8, true);
    let json_b = chrome_trace_json(&run_b.trace);
    assert_eq!(
        json_a, json_b,
        "same-seed traced runs must export byte-identical Chrome JSON"
    );

    // Tracing disabled: byte-equality of the resulting store.
    let run_off = traced_postmark(8, false);
    assert!(
        run_off.trace.spans.is_empty() && run_off.batch_traces.is_empty(),
        "a disabled scope records nothing"
    );
    assert_eq!(
        run_off.segment_images, run_a.segment_images,
        "tracing must not change a single store byte"
    );

    // The per-layer latency attribution across batch sizes — the
    // measured table EXPERIMENTS.md records.
    println!("provscope: per-layer latency attribution, PA-NFS Postmark");
    println!(
        "({} disclosure transactions per run, virtual clock)\n",
        TRACED_DISCLOSURES
    );
    for batch_ops in [1usize, 8, 32] {
        let run = if batch_ops == 8 {
            run_a.trace.clone()
        } else {
            let r = traced_postmark(batch_ops, true);
            r.trace.validate().expect("well-formed span forest");
            if batch_ops > 1 {
                check_batch_trees(&r, batch_ops);
            }
            r.trace.clone()
        };
        println!("batch_ops = {batch_ops}");
        println!("{}", run.render_latency_table());
    }

    println!("unified metrics registry (traced run, batch_ops = 8)");
    println!("{}", run_a.registry.render_table());
    println!("provscope: OK");
}
