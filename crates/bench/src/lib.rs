//! The evaluation rig: builds the four machine configurations of the
//! paper's §7 and runs workloads on them.
//!
//! * **Ext3** — plain local file system, no provenance (baseline 1);
//! * **PASSv2** — Lasagna over the base FS with the PASS module;
//! * **NFS** — client kernel over a plain NFS export (baseline 2);
//! * **PA-NFS** — client kernel with the PASS module over a
//!   provenance-aware export.
//!
//! All timing is virtual: the numbers regenerate the *shape* of
//! Tables 2 and 3, not the paper's wall-clock seconds.

use std::cell::RefCell;
use std::rc::Rc;

use dpapi::VolumeId;
use lasagna::parse_log;
use pa_nfs::NfsServer;
use passv2::{Pass, System, SystemBuilder};
use sim_os::clock::{Clock, NANOS_PER_SEC};
use sim_os::cost::CostModel;
use sim_os::proc::Pid;
use sim_os::syscall::Kernel;
use waldo::{CacheStats, CheckpointStats, ProvDb, WaldoConfig};
use workloads::{timed_run, Workload};

/// The four evaluated configurations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Config {
    /// Local base file system, no provenance.
    Ext3,
    /// Local Lasagna volume with the PASS module.
    PassV2,
    /// NFS client over a plain export.
    Nfs,
    /// PASS module over a provenance-aware export.
    PaNfs,
}

impl Config {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Config::Ext3 => "Ext3",
            Config::PassV2 => "PASSv2",
            Config::Nfs => "NFS",
            Config::PaNfs => "PA-NFS",
        }
    }

    /// True if this configuration collects provenance.
    pub fn is_pass(&self) -> bool {
        matches!(self, Config::PassV2 | Config::PaNfs)
    }
}

/// A built machine ready to run one workload.
pub struct Machine {
    /// The (client) kernel.
    pub kernel: Kernel,
    /// The PASS module, when installed.
    pub pass: Option<Rc<Pass>>,
    /// The NFS server, for the network configurations.
    pub server: Option<Rc<RefCell<NfsServer>>>,
    /// The driver process.
    pub driver: Pid,
    /// Storage tuning for the Waldo ingest that sizes the database.
    pub waldo_cfg: WaldoConfig,
}

/// Builds a machine for `cfg` with default Waldo storage tuning.
pub fn build(cfg: Config) -> Machine {
    build_with(cfg, WaldoConfig::default())
}

/// Builds a machine for `cfg`, threading explicit Waldo storage
/// tuning through the system so experiments can compare the batched
/// engine against the record-at-a-time original.
pub fn build_with(cfg: Config, waldo_cfg: WaldoConfig) -> Machine {
    let model = CostModel::default();
    match cfg {
        Config::Ext3 => {
            let mut sys: System = SystemBuilder::new(model)
                .plain_volume("/")
                .without_provenance()
                .build();
            let driver = sys.spawn("driver");
            Machine {
                kernel: sys.kernel,
                pass: None,
                server: None,
                driver,
                waldo_cfg,
            }
        }
        Config::PassV2 => {
            let mut sys: System = SystemBuilder::new(model)
                .pass_volume("/", VolumeId(1))
                .waldo_config(waldo_cfg)
                .build();
            let driver = sys.spawn("driver");
            Machine {
                kernel: sys.kernel,
                pass: Some(sys.pass),
                server: None,
                driver,
                waldo_cfg,
            }
        }
        Config::Nfs | Config::PaNfs => {
            let clock = Clock::new();
            let mut kernel = Kernel::new(clock.clone(), model);
            let server = if cfg == Config::PaNfs {
                pa_nfs::pa_server(clock.clone(), model, VolumeId(10))
            } else {
                pa_nfs::plain_server(clock.clone(), model)
            };
            let client = pa_nfs::client(&server, clock.clone(), model);
            kernel.mount("/", Box::new(client));
            let pass = if cfg == Config::PaNfs {
                let p = Pass::new_shared();
                kernel.install_module(p.clone());
                Some(p)
            } else {
                None
            };
            let driver = kernel.spawn_init("driver");
            Machine {
                kernel,
                pass,
                server: Some(server),
                driver,
                waldo_cfg,
            }
        }
    }
}

/// Operational counters of the Waldo daemon that served a run —
/// previously invisible in the rig, now threaded into the table
/// binaries (zeroed for configurations without a daemon).
#[derive(Clone, Copy, Debug, Default)]
pub struct WaldoOps {
    /// Effective (normalized) shard count of the store.
    pub effective_shards: usize,
    /// Ancestry-closure cache counters after the canned query pass.
    pub ancestry_cache: CacheStats,
    /// Commit frames that failed to persist to the WAL.
    pub wal_errors: u64,
    /// Checkpoint subsystem counters (segments/bytes written, WAL
    /// frames truncated, logs retired).
    pub checkpoints: CheckpointStats,
    /// PQL planner counters from the canned query pass (index hits,
    /// rows pruned, closure calls saved).
    pub planner: pql::PlanStats,
}

impl provscope::MetricSource for WaldoOps {
    /// Flattens the run's operational counters into one namespace so
    /// the table binaries and the cluster bench print through the
    /// same [`provscope::Registry`] renderer instead of hand-rolled
    /// column layouts.
    fn record(&self, out: &mut dyn FnMut(&str, u64)) {
        out("shards", self.effective_shards as u64);
        out("cache.hits", self.ancestry_cache.hits);
        out("cache.misses", self.ancestry_cache.misses);
        out("wal_errors", self.wal_errors);
        provscope::MetricSource::record(&self.checkpoints, &mut |k, v| {
            out(&format!("ckpt.{k}"), v)
        });
        provscope::MetricSource::record(&self.planner, &mut |k, v| out(&format!("planner.{k}"), v));
    }
}

/// The outcome of one measured run.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Virtual elapsed seconds.
    pub elapsed_s: f64,
    /// Bytes the workload wrote through the kernel (the "Ext3" space
    /// column denominator).
    pub data_bytes: u64,
    /// Waldo database bytes (0 for non-PASS configurations).
    pub db_bytes: u64,
    /// Waldo index bytes.
    pub index_bytes: u64,
    /// Daemon operational counters (PASSv2 only; partial for PA-NFS).
    pub ops: WaldoOps,
}

/// Runs `workload` on a fresh machine for `cfg` and measures it.
pub fn measure(cfg: Config, workload: &dyn Workload) -> Measurement {
    measure_with(cfg, workload, WaldoConfig::default())
}

/// Like [`measure`], with explicit Waldo storage tuning.
pub fn measure_with(cfg: Config, workload: &dyn Workload, waldo_cfg: WaldoConfig) -> Measurement {
    let mut m = build_with(cfg, waldo_cfg);
    let report = timed_run(workload, &mut m.kernel, m.driver, "/").expect("workload run");
    let data_bytes = m.kernel.stats().bytes_written;

    // Ingest provenance into Waldo to size the database. The PASSv2
    // daemon runs durably (WAL + checkpoints at `/waldo-db`) so the
    // checkpoint counters are real, then answers a canned ancestry
    // pass twice to exercise the query caches.
    let (db_bytes, index_bytes, ops) = if cfg == Config::PassV2 {
        let waldo_pid = m.kernel.spawn_init("waldo");
        if let Some(p) = &m.pass {
            p.exempt(waldo_pid);
        }
        let mut w = waldo::Waldo::with_config(waldo_pid, m.waldo_cfg);
        w.attach_db_dir(&mut m.kernel, "/waldo-db")
            .expect("durable Waldo attach; the table labels this run durable");
        if let Some(d) = m.kernel.dpapi_at(sim_os::proc::MountId(0)) {
            d.force_log_rotation();
        }
        w.poll_volume(&mut m.kernel, sim_os::proc::MountId(0), "/");
        let s = w.db.size();
        let ops = ops_report(&w);
        (s.db_bytes, s.index_bytes, ops)
    } else if cfg == Config::PaNfs {
        let db = ProvDb::with_config(m.waldo_cfg);
        if let Some(server) = &m.server {
            for image in server.borrow_mut().drain_provenance_logs() {
                let (entries, _) = parse_log(&image);
                db.ingest(&entries);
            }
        }
        let s = db.size();
        let ops = WaldoOps {
            effective_shards: m.waldo_cfg.effective_shards(),
            ..WaldoOps::default()
        };
        (s.db_bytes, s.index_bytes, ops)
    } else {
        (0, 0, WaldoOps::default())
    };

    Measurement {
        elapsed_s: report.elapsed_ns as f64 / NANOS_PER_SEC as f64,
        data_bytes,
        db_bytes,
        index_bytes,
        ops,
    }
}

/// Runs the canned query pass — the ancestry of the first 64 objects
/// (by pnode), each twice, the §3 drill-down pattern — and snapshots
/// the daemon's operational counters. The 64-object cap keeps the
/// pass O(1) across workload sizes; the printed hit/miss columns are
/// a fixed sample, not full coverage. A planned PQL ancestry query
/// with a `name` equality predicate (the paper's §5.7 shape) runs
/// against the first named object so the planner counters are real.
fn ops_report(w: &waldo::Waldo) -> WaldoOps {
    let mut pnodes: Vec<dpapi::Pnode> = w.db.all_pnodes();
    pnodes.sort_unstable();
    for p in pnodes.iter().take(64) {
        for _ in 0..2 {
            let _ = w.db.ancestors(dpapi::ObjectRef::new(*p, dpapi::Version(0)));
        }
    }
    let planner = pnodes
        .iter()
        .find_map(|p| {
            let obj = w.db.object(*p)?;
            let name = obj.first_attr(&dpapi::Attribute::Name)?;
            let dpapi::Value::Str(name) = name else {
                return None;
            };
            let name = name.clone();
            if name.contains('\'') {
                // No escape syntax in PQL string literals; pick
                // another object rather than emit a broken query.
                return None;
            }
            let q =
                format!("select A from Provenance.obj as F F.input* as A where F.name = '{name}'");
            pql::query_with_stats(&q, &w.db).ok().map(|out| out.stats)
        })
        .unwrap_or_default();
    WaldoOps {
        effective_shards: w.db.config().effective_shards(),
        ancestry_cache: w.db.cache_stats(),
        wal_errors: w.wal_errors(),
        checkpoints: w.checkpoint_stats(),
        planner,
    }
}

/// The five workloads of the evaluation, at their default scales.
pub fn standard_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(workloads::LinuxCompile::default()),
        Box::new(workloads::Postmark::default()),
        Box::new(workloads::MercurialActivity::default()),
        Box::new(workloads::Blast::default()),
        Box::new(workloads::PaKepler::default()),
    ]
}

/// Wires a [`provscope::Scope`] on the machine's virtual clock
/// through every layer it has: the kernel (which forwards to its
/// mounted DPAPI volumes — for PA-NFS that chain reaches the client,
/// the server and the server's Lasagna export) and the PASS module.
/// Waldo daemons are spawned later by the caller and get the
/// returned scope via [`waldo::Waldo::set_scope`].
pub fn enable_tracing(m: &mut Machine) -> provscope::Scope {
    enable_tracing_mode(m, TraceMode::Unbounded)
}

/// [`enable_tracing`] with an explicit retention mode; `TraceMode::Off`
/// wires a disabled scope (every span operation a no-op).
pub fn enable_tracing_mode(m: &mut Machine, mode: TraceMode) -> provscope::Scope {
    let clock = m.kernel.clock();
    let scope = match mode {
        TraceMode::Off => provscope::Scope::disabled(),
        TraceMode::Unbounded => provscope::Scope::enabled(move || clock.now()),
        TraceMode::Recorder(cfg) => provscope::Scope::recording(move || clock.now(), cfg),
    };
    m.kernel.set_scope(scope.clone());
    if let Some(p) = &m.pass {
        p.set_scope(scope.clone());
    }
    scope
}

/// How a traced bench run retains spans.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceMode {
    /// No tracing at all — the byte-equality baseline.
    Off,
    /// [`provscope::Scope::enabled`]: every span kept forever.
    Unbounded,
    /// [`provscope::Scope::recording`]: the bounded flight recorder.
    Recorder(provscope::RecorderConfig),
}

/// One traced PA-NFS Postmark round: the span forest, the unified
/// metrics registry, and the store images that pin the
/// tracing-is-free contract.
pub struct TracedRun {
    /// The span forest snapshot after ingest and one traced query.
    pub trace: provscope::Trace,
    /// Every layer's counters, absorbed into one registry
    /// (`kernel.`, `dpapi.`, `pa-nfs.server.`, `waldo.` prefixes).
    pub registry: provscope::Registry,
    /// Trace ids of the disclosure batches the run drove (empty for
    /// single-op disclosures, which allocate no batch id).
    pub batch_traces: Vec<provscope::TraceId>,
    /// Normalized segment images of the server-side Waldo store —
    /// the byte-equality witness that tracing changes no behavior.
    pub segment_images: Vec<Vec<u8>>,
    /// Virtual nanoseconds on the shared clock when the run finished —
    /// the recorder-overhead gate compares this across trace modes
    /// (tracing must not advance the clock).
    pub elapsed_ns: u64,
    /// Flight-recorder counters (all zero for `Off`/`Unbounded`).
    pub recorder: provscope::RecorderStats,
    /// The slow-trace ring, oldest first (empty unless a recorder
    /// with a finite `slow_threshold_ns` ran).
    pub slow: Vec<provscope::SlowTraceInfo>,
}

/// How many disclosure transactions [`traced_postmark`] drives after
/// the workload (each with the caller's per-transaction op count).
pub const TRACED_DISCLOSURES: usize = 4;

/// Runs a small Postmark on the PA-NFS configuration with span
/// tracing threaded through every layer, then drives
/// [`TRACED_DISCLOSURES`] disclosure transactions of `batch_ops`
/// DPAPI ops each, ingests the server-drained logs into a Waldo
/// daemon on the same scope, and serves one traced PQL query.
///
/// With `batch_ops >= 2` each disclosure allocates a volume-salted
/// batch id ([`lasagna::batch_txn_id`]), which *is* the trace id: the
/// resulting span tree crosses kernel → dpapi → pa-nfs → lasagna on
/// the synchronous commit path and gains the waldo ingest span
/// asynchronously when the daemon drains that batch's group frame.
/// With `traced = false` the run is identical except that every span
/// operation is a no-op — [`TracedRun::segment_images`] must not
/// notice the difference.
pub fn traced_postmark(batch_ops: usize, traced: bool) -> TracedRun {
    traced_postmark_with(
        batch_ops,
        if traced {
            TraceMode::Unbounded
        } else {
            TraceMode::Off
        },
    )
}

/// [`traced_postmark`] with an explicit [`TraceMode`] — the rig the
/// recorder-overhead smoke drives at each retention policy.
pub fn traced_postmark_with(batch_ops: usize, mode: TraceMode) -> TracedRun {
    assert!(
        batch_ops >= 1,
        "a disclosure transaction has at least one op"
    );
    let mut m = build(Config::PaNfs);
    let scope = enable_tracing_mode(&mut m, mode);

    let wl = workloads::Postmark {
        files: 12,
        transactions: 24,
        subdirs: 2,
        min_size: 512,
        max_size: 2048,
        seed: 11,
    };
    timed_run(&wl, &mut m.kernel, m.driver, "/").expect("workload run");

    // The disclosure rounds under measurement: `batch_ops` DPAPI ops
    // committed atomically per transaction (the DPAPI v2 batch
    // shape), all against one run object. The trailing `sync` is what
    // flushes the module-cached disclosure records into the volume
    // transaction — without it the module defers them and nothing
    // crosses the pa-nfs/lasagna boundary (so `batch_ops = 1`, a
    // bare sync, drives an *unbatched* volume commit: no batch id,
    // synthetic trace).
    let pid = m.driver;
    let h = m.kernel.pass_mkobj(pid, None).expect("mkobj on PA-NFS");
    for round in 0..TRACED_DISCLOSURES {
        let mut txn = dpapi::Txn::new();
        for i in 0..batch_ops - 1 {
            let mut bundle = dpapi::Bundle::new();
            bundle.push(
                h,
                dpapi::ProvenanceRecord::new(
                    dpapi::Attribute::Other(format!("TRACED_ROUND_{round}")),
                    dpapi::Value::Int(i as i64),
                ),
            );
            txn.disclose(h, bundle);
        }
        txn.sync(h);
        m.kernel.pass_commit(pid, txn).expect("disclosure commit");
    }
    let _ = m.kernel.pass_close(pid, h);

    // Server-side Waldo: drain the export's rotated logs and ingest
    // them on the same scope, linking each group frame's spans to the
    // disclosure trace that produced it.
    let waldo_pid = m.kernel.spawn_init("waldo");
    if let Some(p) = &m.pass {
        p.exempt(waldo_pid);
    }
    let mut w = waldo::Waldo::with_config(waldo_pid, m.waldo_cfg);
    w.set_scope(scope.clone());
    let images = m
        .server
        .as_ref()
        .expect("PA-NFS has a server")
        .borrow_mut()
        .drain_provenance_logs();
    for image in &images {
        w.ingest_log_image(&mut m.kernel, image);
    }

    let _ = w.query("select F from Provenance.obj as F where F.name like '*'");

    let mut registry = provscope::Registry::new();
    registry.absorb("kernel.", &m.kernel.stats());
    if let Some(p) = &m.pass {
        registry.absorb("dpapi.", &p.stats());
    }
    if let Some(s) = &m.server {
        registry.absorb("pa-nfs.server.", &s.borrow().stats());
    }
    registry.absorb("waldo.", &w);

    let trace = scope.snapshot();
    let batch_traces = trace.batch_traces();
    TracedRun {
        trace,
        registry,
        batch_traces,
        segment_images: w.db.segment_images(),
        elapsed_ns: m.kernel.clock().now(),
        recorder: scope.recorder_stats(),
        slow: scope.slow_traces(),
    }
}

/// Percentage overhead of `new` over `base`.
pub fn overhead_pct(base: f64, new: f64) -> f64 {
    if base <= 0.0 {
        return 0.0;
    }
    (new - base) / base * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_configs_build_and_run_a_tiny_workload() {
        let wl = workloads::Postmark {
            files: 10,
            transactions: 10,
            subdirs: 2,
            min_size: 1024,
            max_size: 4096,
            seed: 1,
        };
        for cfg in [Config::Ext3, Config::PassV2, Config::Nfs, Config::PaNfs] {
            let m = measure(cfg, &wl);
            assert!(m.elapsed_s > 0.0, "{cfg:?} must advance the clock");
            assert!(m.data_bytes > 0);
            if cfg.is_pass() {
                assert!(m.db_bytes > 0, "{cfg:?} must produce provenance");
            } else {
                assert_eq!(m.db_bytes, 0);
            }
        }
    }

    #[test]
    fn pass_costs_more_than_ext3() {
        let wl = workloads::MercurialActivity {
            tree_files: 20,
            patches: 10,
            files_per_patch: 2,
            file_bytes: 2048,
            ..Default::default()
        };
        let base = measure(Config::Ext3, &wl);
        let pass = measure(Config::PassV2, &wl);
        assert!(
            pass.elapsed_s > base.elapsed_s,
            "provenance collection cannot be free: {} vs {}",
            pass.elapsed_s,
            base.elapsed_s
        );
    }

    #[test]
    fn overhead_pct_math() {
        assert!((overhead_pct(100.0, 115.0) - 15.0).abs() < 1e-9);
        assert_eq!(overhead_pct(0.0, 10.0), 0.0);
    }
}
