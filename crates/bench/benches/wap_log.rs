//! Write-ahead-provenance log throughput: encode, digest and parse.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dpapi::{Attribute, ObjectRef, Pnode, ProvenanceRecord, Value, Version, VolumeId};
use lasagna::{encode_entry, md5, parse_log, LogEntry};
use std::hint::black_box;

fn subject(n: u64) -> ObjectRef {
    ObjectRef::new(Pnode::new(VolumeId(1), n), Version(0))
}

fn sample_entries(n: usize) -> Vec<LogEntry> {
    (0..n)
        .map(|i| match i % 3 {
            0 => LogEntry::Prov {
                subject: subject(i as u64),
                record: ProvenanceRecord::new(
                    Attribute::Name,
                    Value::str(format!("/data/file{i}.dat")),
                ),
            },
            1 => LogEntry::Prov {
                subject: subject(i as u64),
                record: ProvenanceRecord::input(subject(i as u64 + 1)),
            },
            _ => LogEntry::DataWrite {
                subject: subject(i as u64),
                offset: (i * 4096) as u64,
                len: 4096,
                digest: [i as u8; 16],
            },
        })
        .collect()
}

fn bench_log(c: &mut Criterion) {
    let entries = sample_entries(1000);
    let mut image = bytes::BytesMut::new();
    for e in &entries {
        encode_entry(&mut image, e).unwrap();
    }
    let image = image.to_vec();

    let mut group = c.benchmark_group("wap_log");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("encode_1000_entries", |b| {
        b.iter(|| {
            let mut buf = bytes::BytesMut::new();
            for e in &entries {
                encode_entry(&mut buf, e).unwrap();
            }
            black_box(buf.len())
        });
    });
    group.bench_function("parse_1000_entries", |b| {
        b.iter(|| {
            let (parsed, tail) = parse_log(black_box(&image));
            black_box((parsed.len(), tail))
        });
    });
    group.finish();

    let mut group = c.benchmark_group("md5_digest");
    for size in [4096usize, 65536] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("md5_{size}"), |b| {
            b.iter(|| black_box(md5(black_box(&data))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_log);
criterion_main!(benches);
