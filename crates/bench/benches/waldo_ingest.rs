//! Waldo ingest throughput: log entries per second into the indexed
//! database.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dpapi::{Attribute, ObjectRef, Pnode, ProvenanceRecord, Value, Version, VolumeId};
use lasagna::LogEntry;
use std::hint::black_box;
use waldo::ProvDb;

fn entries(n: u64) -> Vec<LogEntry> {
    let r = |i: u64| ObjectRef::new(Pnode::new(VolumeId(1), i), Version(0));
    (0..n)
        .flat_map(|i| {
            vec![
                LogEntry::Prov {
                    subject: r(i),
                    record: ProvenanceRecord::new(
                        Attribute::Name,
                        Value::str(format!("/files/f{i}")),
                    ),
                },
                LogEntry::Prov {
                    subject: r(i),
                    record: ProvenanceRecord::new(Attribute::Type, Value::str("FILE")),
                },
                LogEntry::Prov {
                    subject: r(i),
                    record: ProvenanceRecord::input(r(i / 2)),
                },
                LogEntry::DataWrite {
                    subject: r(i),
                    offset: 0,
                    len: 4096,
                    digest: [0; 16],
                },
            ]
        })
        .collect()
}

fn bench_ingest(c: &mut Criterion) {
    let batch = entries(2000);
    let mut group = c.benchmark_group("waldo");
    group.throughput(Throughput::Elements(batch.len() as u64));
    group.bench_function("ingest_8000_entries", |b| {
        b.iter(|| {
            let mut db = ProvDb::new();
            black_box(db.ingest(black_box(&batch)));
            db.object_count()
        });
    });
    // Transactional ingest (buffered then committed).
    let mut txn_batch = vec![LogEntry::TxnBegin { id: 1 }];
    txn_batch.extend(entries(1000));
    txn_batch.push(LogEntry::TxnEnd { id: 1 });
    group.bench_function("ingest_txn_4000_entries", |b| {
        b.iter(|| {
            let mut db = ProvDb::new();
            black_box(db.ingest(black_box(&txn_batch)));
            db.object_count()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
