//! Waldo ingest throughput: log entries per second into the indexed
//! database.
//!
//! The `strategy/*` benchmarks compare the two daemon ingestion
//! strategies end to end over the same 8000-entry stream:
//! `record_at_a_time` commits after every entry (the original
//! engine), `batch_64` group-commits every 64 entries through the
//! sharded store. EXPERIMENTS.md records the measured ratio.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dpapi::{Attribute, ObjectRef, Pnode, ProvenanceRecord, Value, Version, VolumeId};
use lasagna::LogEntry;
use std::hint::black_box;
use waldo::{ProvDb, WaldoConfig};

fn entries(n: u64) -> Vec<LogEntry> {
    let r = |i: u64| ObjectRef::new(Pnode::new(VolumeId(1), i), Version(0));
    (0..n)
        .flat_map(|i| {
            vec![
                LogEntry::Prov {
                    subject: r(i),
                    record: ProvenanceRecord::new(
                        Attribute::Name,
                        Value::str(format!("/files/f{i}")),
                    ),
                },
                LogEntry::Prov {
                    subject: r(i),
                    record: ProvenanceRecord::new(Attribute::Type, Value::str("FILE")),
                },
                LogEntry::Prov {
                    subject: r(i),
                    record: ProvenanceRecord::input(r(i / 2)),
                },
                LogEntry::DataWrite {
                    subject: r(i),
                    offset: 0,
                    len: 4096,
                    digest: [0; 16],
                },
            ]
        })
        .collect()
}

/// End-to-end batch smoke, run before any timing (in quick mode too,
/// so CI enforces it): a multi-op disclosure transaction committed at
/// user level must surface in Waldo as a committed transaction — the
/// batch boundary flowing intact from `pass_commit` through the
/// Lasagna group frame into the store's group commit. Non-zero
/// batch-path op counters at every layer gate the whole pipeline.
fn batch_pipeline_invariants() {
    use dpapi::{Attribute, Bundle, ProvenanceRecord, Value};
    use passv2::System;

    let mut sys = System::single_volume();
    let pid = sys.spawn("app");
    let app = sys.kernel.pass_mkobj(pid, None).unwrap();
    let mut txn = dpapi::Txn::new();
    for i in 0..8 {
        txn.disclose(
            app,
            Bundle::single(
                app,
                ProvenanceRecord::new(Attribute::Other(format!("STEP{i}")), Value::str("batched")),
            ),
        );
    }
    txn.sync(app);
    sys.kernel.pass_commit(pid, txn).unwrap();
    let kstats = sys.kernel.stats();
    assert!(
        kstats.dpapi_txns >= 1 && kstats.dpapi_txn_ops >= 9,
        "kernel batch counters must be non-zero: {kstats:?}"
    );
    let pstats = sys.pass.stats();
    assert!(
        pstats.txn_commits >= 1 && pstats.txn_ops >= 9,
        "module batch counters must be non-zero: {pstats:?}"
    );
    let mut waldo = sys.spawn_waldo();
    let mut total = waldo::IngestStats::default();
    for (_, logs) in sys.rotate_all_logs() {
        for log in logs {
            total += waldo.ingest_log_file(&mut sys.kernel, &log);
        }
    }
    assert!(
        total.txns_committed >= 1,
        "the batch boundary must reach Waldo's group commit as a \
         transaction: {total:?}"
    );
    println!(
        "waldo_ingest/batch_pipeline: kernel txns={} ops={}, waldo applied={} txns_committed={}",
        kstats.dpapi_txns, kstats.dpapi_txn_ops, total.applied, total.txns_committed
    );
}

fn bench_ingest(c: &mut Criterion) {
    batch_pipeline_invariants();

    let batch = entries(2000);
    let mut group = c.benchmark_group("waldo");
    group.throughput(Throughput::Elements(batch.len() as u64));
    group.bench_function("ingest_8000_entries", |b| {
        b.iter(|| {
            let db = ProvDb::new();
            black_box(db.ingest(black_box(&batch)));
            db.object_count()
        });
    });
    // Transactional ingest (buffered then committed).
    let mut txn_batch = vec![LogEntry::TxnBegin { id: 1 }];
    txn_batch.extend(entries(1000));
    txn_batch.push(LogEntry::TxnEnd { id: 1 });
    group.bench_function("ingest_txn_4000_entries", |b| {
        b.iter(|| {
            let db = ProvDb::new();
            black_box(db.ingest(black_box(&txn_batch)));
            db.object_count()
        });
    });
    group.finish();

    // The daemon's ingestion strategies over the same stream: entries
    // arrive owned (as from `parse_log`), are staged, and commit
    // either after every record or per group. Cloning the stream is
    // setup, excluded from the measurement.
    let mut group = c.benchmark_group("strategy");
    group.throughput(Throughput::Elements(batch.len() as u64));
    group.bench_function("record_at_a_time", |b| {
        b.iter_batched(
            || batch.clone(),
            |owned| {
                let db = ProvDb::with_config(WaldoConfig::record_at_a_time());
                let mut stats = waldo::IngestStats::default();
                db.begin_stream();
                for e in owned {
                    db.stage(e, None);
                    db.commit_staged(&mut stats);
                }
                black_box(stats.applied)
            },
            criterion::BatchSize::SmallInput,
        );
    });
    for batch_size in [16usize, 64, 256] {
        group.bench_function(format!("batch_{batch_size}"), |b| {
            b.iter_batched(
                || batch.clone(),
                |owned| {
                    let db = ProvDb::with_config(WaldoConfig {
                        shards: 8,
                        ingest_batch: batch_size,
                        ancestry_cache: 0,
                        ..WaldoConfig::default()
                    });
                    let mut stats = waldo::IngestStats::default();
                    db.begin_stream();
                    for e in owned {
                        db.stage(e, None);
                        if db.staged_len() >= batch_size {
                            db.commit_staged(&mut stats);
                        }
                    }
                    db.commit_staged(&mut stats);
                    black_box(stats.applied)
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// The full daemon loop with durability: entries come from a log file
/// on the simulated disk, and every group commit appends its frame to
/// the database WAL and fsyncs through the kernel. This is where
/// group commit earns its keep: record-at-a-time pays one
/// write+fsync per record.
fn bench_daemon(c: &mut Criterion) {
    use passv2::System;

    let stream = entries(500);
    let mut encoded = bytes::BytesMut::new();
    for e in &stream {
        lasagna::encode_entry(&mut encoded, e).unwrap();
    }
    let log_bytes = encoded.to_vec();

    let mut group = c.benchmark_group("daemon");
    group.throughput(Throughput::Elements(stream.len() as u64));
    for (label, cfg) in [
        ("record_at_a_time", WaldoConfig::record_at_a_time()),
        (
            "batch_64",
            WaldoConfig {
                shards: 8,
                ingest_batch: 64,
                ancestry_cache: 0,
                ..WaldoConfig::default()
            },
        ),
    ] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || {
                    // A plain machine holding the pre-encoded log.
                    let mut sys = System::baseline();
                    let pid = sys.spawn("logger");
                    sys.kernel
                        .write_file(pid, "/waldo-input.log", &log_bytes)
                        .unwrap();
                    sys
                },
                |mut sys| {
                    let waldo_pid = sys.kernel.spawn_init("waldo");
                    let mut w = waldo::Waldo::with_config(waldo_pid, cfg);
                    w.attach_db_device(&mut sys.kernel, "/waldo.db").unwrap();
                    let stats = w.ingest_log_file(&mut sys.kernel, "/waldo-input.log");
                    black_box((stats.applied, w.db.object_count()))
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ingest, bench_daemon);
criterion_main!(benches);
