//! Cold-restart latency: checkpointed restart versus full-log replay.
//!
//! Two daemons ingest the same multi-round filesystem history
//! durably. The *checkpointed* one publishes a checkpoint after every
//! round but the last, so its WAL is truncated and covered logs are
//! unlinked; the *replay-only* one never checkpoints, so every log is
//! retained. Both then suffer a machine crash, and the benchmark
//! times `Waldo::restart`: segment rehydration plus a short tail
//! replay against a from-scratch replay of the full log history.
//! EXPERIMENTS.md records the measured ratio and the on-disk
//! checkpoint footprint this buys it with.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use passv2::{System, SystemBuilder};
use sim_os::cost::CostModel;
use std::hint::black_box;
use waldo::WaldoConfig;

const ROUNDS: usize = 40;
const FILES_PER_ROUND: usize = 60;

/// Builds one crashed machine: `checkpointed` controls whether the
/// daemon published per-round checkpoints before dying.
fn crashed_machine(checkpointed: bool) -> System {
    let cfg = WaldoConfig {
        shards: 8,
        ingest_batch: 32,
        ancestry_cache: 0,
        checkpoint_commits: 0, // checkpoints are driven manually below
        checkpoint_wal_bytes: 0,
        ..WaldoConfig::default()
    };
    let mut sys = SystemBuilder::new(CostModel::default())
        .pass_volume("/", dpapi::VolumeId(1))
        .waldo_config(cfg)
        .build();
    let worker = sys.spawn("worker");
    let mut waldo = sys.spawn_waldo_durable("/waldo-db");
    let (_, m, _) = sys.volumes[0];
    for round in 0..ROUNDS {
        // A realistic mix: most files are hot and rewritten every
        // round (history outgrows the live store — where checkpoints
        // pay off), a few are new each round.
        for i in 0..FILES_PER_ROUND {
            let path = if i < FILES_PER_ROUND * 3 / 4 {
                format!("/hot-f{i}")
            } else {
                format!("/r{round}-f{i}")
            };
            sys.kernel
                .write_file(worker, &path, b"round payload bytes")
                .unwrap();
        }
        sys.kernel.dpapi_at(m).unwrap().force_log_rotation();
        waldo.poll_volume(&mut sys.kernel, m, "/");
        if checkpointed && round + 1 < ROUNDS {
            waldo.checkpoint(&mut sys.kernel).unwrap();
        }
    }
    // The machine crashes: the daemon's memory is gone, disks remain.
    drop(waldo);
    sys
}

fn bench_restart(c: &mut Criterion) {
    let mut group = c.benchmark_group("restart");
    group.bench_function("checkpointed", |b| {
        b.iter_batched(
            || crashed_machine(true),
            |mut sys| {
                let w = sys.restart_waldo("/waldo-db");
                black_box(w.db.object_count())
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("full_log_replay", |b| {
        b.iter_batched(
            || crashed_machine(false),
            |mut sys| {
                let w = sys.restart_waldo("/waldo-db");
                black_box(w.db.object_count())
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();

    // The table behind the timings: what each restart read and did,
    // and the on-disk checkpoint footprint the fast path pays for.
    println!();
    println!(
        "{:<18} {:>9} {:>10} {:>10} {:>12} {:>10}",
        "restart path", "ckpt seq", "skipped", "frames", "replayed", "ckpt KB"
    );
    for (label, checkpointed) in [("checkpointed", true), ("full_log_replay", false)] {
        let mut sys = crashed_machine(checkpointed);
        let probe = sys.kernel.spawn_init("probe");
        sys.pass.exempt(probe);
        let ckpt_bytes: u64 = sys
            .kernel
            .readdir(probe, "/waldo-db/checkpoints")
            .map(|entries| {
                entries
                    .iter()
                    .filter_map(|e| {
                        sys.kernel
                            .stat(probe, &format!("/waldo-db/checkpoints/{}", e.name))
                            .ok()
                    })
                    .map(|a| a.size)
                    .sum()
            })
            .unwrap_or(0);
        let w = sys.restart_waldo("/waldo-db");
        let r = w.restart_report().expect("cold start").clone();
        println!(
            "{:<18} {:>9} {:>10} {:>10} {:>12} {:>10.1}",
            label,
            r.loaded_seq.map(|s| s.to_string()).unwrap_or("-".into()),
            r.checkpoints_skipped,
            r.wal_frames,
            r.replayed_entries,
            ckpt_bytes as f64 / 1024.0,
        );
        // Both paths must converge on the same database.
        assert!(w.db.object_count() > 0);
    }
}

criterion_group!(benches, bench_restart);
criterion_main!(benches);
