//! Cluster fan-in ingest scaling: N Waldo daemons consuming distinct
//! volumes concurrently versus one daemon consuming them all.
//!
//! Members are fully independent (own store, own replay marks, own
//! batch-id space), so a fleet's ingest time is its *slowest
//! member's* — the simulation runs members sequentially and models
//! the fleet as `max(per-member time)`, in both the deterministic
//! virtual clock (the cost model charging each member's log reads
//! and ingest I/O) and host wall-clock. The invariants function (run
//! before any timing, in quick mode too, so CI enforces it) asserts
//! the 4-member fleet clears ≥1.5x the single daemon's ingest
//! throughput on a 4-volume workload — gated on the *virtual* ratio,
//! so CI runner load can neither fail it spuriously nor mask a real
//! regression — plus the differential check (merged cluster store ≡
//! single-daemon store). EXPERIMENTS.md records the fan-in scaling
//! table.

use criterion::{criterion_group, BatchSize, Criterion};
use passv2::{System, SystemBuilder};
use sim_os::cost::CostModel;
use std::hint::black_box;
use std::time::Instant;
use waldo::{route_volume, WaldoConfig};
use workloads::{MultiVolume, Postmark, Workload};

/// Volume ids chosen so the routing hash spreads them evenly at both
/// fleet sizes: one volume per member at 4 members, two per member at
/// 2 (`route_volume` is a fixed splitmix, so this is stable). The
/// `volumes_spread_across_members` check below pins it.
const VOLS: [u32; 4] = [1, 2, 6, 7];

fn cfg() -> WaldoConfig {
    WaldoConfig {
        shards: 8,
        ingest_batch: 64,
        ancestry_cache: 0,
        ..WaldoConfig::default()
    }
}

/// A 4-volume machine with one Postmark run's provenance pending on
/// every volume (rotated, ready to poll). Deterministic per call.
fn built_system() -> System {
    built_system_sized(60, 90)
}

fn built_system_sized(files: usize, transactions: usize) -> System {
    let mut b = SystemBuilder::new(CostModel::default()).waldo_config(cfg());
    for v in VOLS {
        b = b.pass_volume(&format!("/v{v}"), dpapi::VolumeId(v));
    }
    let mut sys = b.build();
    let driver = sys.spawn("driver");
    let wl = MultiVolume {
        base: Postmark {
            files,
            transactions,
            subdirs: 3,
            min_size: 512,
            max_size: 2048,
            seed: 7,
        },
        mounts: VOLS.iter().map(|v| format!("/v{v}")).collect(),
    };
    wl.run(&mut sys.kernel, driver, "/").expect("workload run");
    for (_, m, _) in &sys.volumes {
        sys.kernel.dpapi_at(*m).unwrap().force_log_rotation();
    }
    sys
}

/// One fleet's ingest of the whole machine: entries applied, and the
/// modeled fleet time — the slowest member's summed poll time, since
/// members run concurrently in a real deployment — in both clocks.
struct FleetRun {
    applied: usize,
    /// Slowest member's *virtual* time (the simulation's cost model
    /// charging its log reads and ingest I/O): deterministic, so the
    /// CI gate uses it.
    virtual_ns: u64,
    /// Slowest member's wall-clock time (includes host-side daemon
    /// compute the cost model does not charge): informational.
    wall_s: f64,
}

fn cluster_ingest_time(sys: &mut System, members: usize) -> FleetRun {
    let mut cluster = sys.spawn_cluster(members);
    let volumes = sys.volumes.clone();
    let clock = sys.clock();
    let mut wall = vec![0.0f64; members];
    let mut virt = vec![0u64; members];
    let mut applied = 0usize;
    for (path, m, v) in &volumes {
        let idx = cluster.route(*v);
        let t = Instant::now();
        let v0 = clock.now();
        applied += cluster.poll_volume(&mut sys.kernel, *m, path, *v).applied;
        virt[idx] += clock.now() - v0;
        wall[idx] += t.elapsed().as_secs_f64();
    }
    FleetRun {
        applied,
        virtual_ns: virt.iter().copied().max().unwrap_or(0),
        wall_s: wall.iter().cloned().fold(0.0, f64::max),
    }
}

/// The CI gate: routing spreads the bench volumes, the 4-member fleet
/// ingests ≥1.5x faster than the single daemon, and the fleet's
/// merged store is byte-identical to the single daemon's.
fn cluster_scaling_invariants() {
    // Routing spread (see VOLS): 4 members — one volume each; 2
    // members — two volumes each.
    let routes4: Vec<usize> = VOLS
        .iter()
        .map(|v| route_volume(dpapi::VolumeId(*v), 4))
        .collect();
    let mut sorted4 = routes4.clone();
    sorted4.sort_unstable();
    assert_eq!(
        sorted4,
        vec![0, 1, 2, 3],
        "bench volumes must spread one-per-member at 4 members: {routes4:?}"
    );
    for m in 0..2 {
        assert_eq!(
            VOLS.iter()
                .filter(|v| route_volume(dpapi::VolumeId(**v), 2) == m)
                .count(),
            2,
            "bench volumes must split 2/2 at 2 members"
        );
    }

    // Differential: the merged 4-member store equals the single
    // daemon's, so the speedup below is not bought with lost records.
    let mut ref_sys = built_system();
    let mut single = ref_sys.spawn_waldo();
    let volumes = ref_sys.volumes.clone();
    for (path, m, _) in &volumes {
        single.poll_volume(&mut ref_sys.kernel, *m, path);
    }
    let mut sys = built_system();
    let mut cluster = sys.spawn_cluster(4);
    let volumes = sys.volumes.clone();
    cluster.poll_volumes(&mut sys.kernel, &volumes);
    assert_eq!(
        cluster.merged_store().segment_images(),
        single.db.segment_images(),
        "the fleet's merged store must equal the single-daemon store"
    );

    // Throughput. The gate compares *virtual* fleet times — the cost
    // model charging each member's log reads and ingest I/O — which
    // are deterministic, so a loaded CI runner can neither fail this
    // spuriously nor mask a real regression. Wall-clock (best of 3,
    // to shed scheduler noise) is printed alongside for the
    // host-compute picture.
    // Best-of-3 matters only for the informational wall-clock column;
    // the virtual gate is identical across runs, so the quick (CI)
    // window builds each fleet once.
    let runs = if std::env::var_os("BENCH_QUICK").is_some() {
        1
    } else {
        3
    };
    let measure = |members: usize| -> FleetRun {
        (0..runs)
            .map(|_| {
                let mut sys = built_system();
                cluster_ingest_time(&mut sys, members)
            })
            .min_by(|a, b| a.wall_s.total_cmp(&b.wall_s))
            .expect("at least one run")
    };
    let r1 = measure(1);
    let r2 = measure(2);
    let r4 = measure(4);
    assert_eq!(
        r1.applied, r4.applied,
        "all fleet sizes ingest the same stream"
    );
    assert_eq!(r1.applied, r2.applied);
    let vratio2 = r1.virtual_ns as f64 / r2.virtual_ns as f64;
    let vratio4 = r1.virtual_ns as f64 / r4.virtual_ns as f64;
    println!(
        "cluster_ingest/fan_in: {} entries; virtual fleet time 1 member \
         {:.2} ms, 2 members {:.2} ms ({vratio2:.2}x), 4 members {:.2} ms \
         ({vratio4:.2}x); wall-clock {:.2} / {:.2} / {:.2} ms",
        r1.applied,
        r1.virtual_ns as f64 / 1e6,
        r2.virtual_ns as f64 / 1e6,
        r4.virtual_ns as f64 / 1e6,
        r1.wall_s * 1e3,
        r2.wall_s * 1e3,
        r4.wall_s * 1e3,
    );
    assert!(
        vratio4 >= 1.5,
        "4-member fan-in must clear 1.5x single-daemon ingest throughput \
         (virtual time), got {vratio4:.2}x ({:.2} ms vs {:.2} ms)",
        r1.virtual_ns as f64 / 1e6,
        r4.virtual_ns as f64 / 1e6,
    );
}

fn bench_cluster(c: &mut Criterion) {
    cluster_scaling_invariants();

    let mut group = c.benchmark_group("cluster_ingest");
    for members in [1usize, 2, 4] {
        group.bench_function(format!("members_{members}"), |b| {
            b.iter_batched(
                built_system,
                |mut sys| {
                    let run = cluster_ingest_time(&mut sys, members);
                    black_box((run.applied, run.virtual_ns, run.wall_s))
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

// ---- wall-clock mode ------------------------------------------------------

/// One measured fleet sweep on a chosen runtime: total coordinator
/// wall time plus the per-member thread breakdown the threaded
/// runtime reports.
struct WallRun {
    applied: usize,
    wall_s: f64,
    timings: Vec<waldo::MemberTiming>,
    images: Vec<Vec<u8>>,
}

fn wall_fleet(members: usize, threaded: bool, size: (usize, usize)) -> WallRun {
    let mut sys = built_system_sized(size.0, size.1);
    let mut cluster = if threaded {
        sys.spawn_cluster_threaded(members)
    } else {
        sys.spawn_cluster(members)
    };
    let volumes = sys.volumes.clone();
    let t = Instant::now();
    let report = cluster.poll_volumes_report(&mut sys.kernel, &volumes);
    let wall_s = t.elapsed().as_secs_f64();
    WallRun {
        applied: report.total.applied,
        wall_s,
        timings: report.member_timings,
        images: cluster.merged_store().segment_images(),
    }
}

/// Best-of-N to shed scheduler noise; the store images (identical
/// across repeats by the determinism contract) ride along from the
/// fastest run.
fn wall_best(members: usize, threaded: bool, runs: usize, size: (usize, usize)) -> WallRun {
    (0..runs)
        .map(|_| wall_fleet(members, threaded, size))
        .min_by(|a, b| a.wall_s.total_cmp(&b.wall_s))
        .expect("at least one run")
}

fn json_timings(timings: &[waldo::MemberTiming]) -> String {
    let rows: Vec<String> = timings
        .iter()
        .map(|t| {
            format!(
                "{{\"member\": {}, \"volumes\": {}, \"images\": {}, \"wall_ns\": {}}}",
                t.member, t.volumes, t.images, t.wall_ns
            )
        })
        .collect();
    format!("[{}]", rows.join(", "))
}

/// First-class wall-clock measurement: the threaded runtime at 1, 2
/// and 4 members against the sequential single daemon, with the
/// per-member thread breakdown, written machine-readably to
/// `BENCH_cluster_ingest.json` at the repository root.
///
/// Two gates, both backed by the byte-equality differential (a fleet
/// that diverges from the sequential store fails before any ratio is
/// looked at):
///
/// * `smoke_members` (the `BENCH_WALL=n` CI smoke) — that fleet size
///   must clear ≥1.2x sequential wall time (enforced only when the
///   host has ≥n cores);
/// * on hosts with ≥4 cores, the 4-member fleet must clear ≥1.4x —
///   the paper-scale claim. Skipped (and recorded as unenforced in
///   the JSON) on smaller hosts, where the threads time-share.
fn wall_mode(smoke_members: Option<usize>) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let quick = std::env::var_os("BENCH_QUICK").is_some();
    // The quick (CI) window keeps the criterion workload; a full run
    // measures a 4x stream so per-member thread time dwarfs spawn
    // and coordinator overhead — the scaling number, not the noise.
    let (runs, size) = if quick {
        (2, (60, 90))
    } else {
        (3, (120, 180))
    };
    let base = wall_best(1, false, runs, size);
    let fleet_sizes = [1usize, 2, 4];
    let fleets: Vec<(usize, WallRun)> = fleet_sizes
        .iter()
        .map(|&m| (m, wall_best(m, true, runs, size)))
        .collect();

    println!(
        "cluster_ingest/wall: {} entries; sequential 1 member {:.2} ms ({cores} cores)",
        base.applied,
        base.wall_s * 1e3
    );
    let mut fleet_json = Vec::new();
    for (m, run) in &fleets {
        assert_eq!(
            run.applied, base.applied,
            "threaded fleet of {m} must ingest the same stream"
        );
        assert_eq!(
            run.images, base.images,
            "threaded fleet of {m}: merged store must be byte-equal to sequential"
        );
        let speedup = base.wall_s / run.wall_s;
        println!(
            "  threaded {m} member(s): {:.2} ms ({speedup:.2}x)",
            run.wall_s * 1e3
        );
        for t in &run.timings {
            println!(
                "    member {}: {} volume(s), {} image(s), {:.2} ms on-thread",
                t.member,
                t.volumes,
                t.images,
                t.wall_ns as f64 / 1e6
            );
        }
        fleet_json.push(format!(
            "{{\"members\": {m}, \"runtime\": \"threaded\", \"wall_s\": {:.6}, \
             \"speedup\": {speedup:.4}, \"member_timings\": {}}}",
            run.wall_s,
            json_timings(&run.timings)
        ));
    }

    let speedup_of = |m: usize| {
        fleets
            .iter()
            .find(|(n, _)| *n == m)
            .map(|(_, r)| base.wall_s / r.wall_s)
            .expect("fleet size measured")
    };
    // The paper-scale gate needs both the cores to actually run 4
    // members and the full-size stream; the quick window records the
    // number without enforcing (CI gates 2 members via BENCH_WALL).
    let enforce4 = cores >= 4 && !quick;
    let json = format!(
        "{{\n  \"bench\": \"cluster_ingest\",\n  \"entries\": {},\n  \
         \"host_parallelism\": {cores},\n  \"runs_per_point\": {runs},\n  \
         \"baseline\": {{\"members\": 1, \"runtime\": \"sequential\", \"wall_s\": {:.6}}},\n  \
         \"fleets\": [{}],\n  \
         \"gates\": {{\"wall_4_members\": {{\"required\": 1.4, \"measured\": {:.4}, \
         \"enforced\": {enforce4}}}, \"byte_equality\": true}}\n}}\n",
        base.applied,
        base.wall_s,
        fleet_json.join(", "),
        speedup_of(4),
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_cluster_ingest.json"
    );
    std::fs::write(path, &json).expect("write BENCH_cluster_ingest.json");
    println!("  wrote {path}");

    if let Some(m) = smoke_members {
        let s = speedup_of(m);
        if cores >= m {
            assert!(
                s >= 1.2,
                "wall-clock smoke: threaded {m}-member fleet must clear 1.2x \
                 sequential ingest, got {s:.2}x"
            );
        } else {
            println!(
                "  smoke gate skipped: {m} members on a {cores}-core host \
                 time-share (measured {s:.2}x)"
            );
        }
    }
    if enforce4 {
        let s = speedup_of(4);
        assert!(
            s >= 1.4,
            "threaded 4-member fleet must clear 1.4x sequential wall-clock \
             ingest on a {cores}-core host, got {s:.2}x"
        );
    }
}

/// `PROVSCOPE_TRACE=1` mode: one traced 4-member ingest sweep instead
/// of the criterion timing loops — prints the per-layer latency
/// attribution, the per-volume poll report, and the fleet's unified
/// metrics registry (the same renderer the table binaries use).
fn trace_mode() {
    let mut sys = built_system();
    let scope = sys.enable_tracing();
    let mut cluster = sys.spawn_cluster(4);
    cluster.set_scope(scope.clone());
    let volumes = sys.volumes.clone();
    let report = cluster.poll_volumes_report(&mut sys.kernel, &volumes);
    println!(
        "cluster_ingest trace: {} entries across {} volumes, {} issue(s)",
        report.total.applied,
        report.per_volume.len(),
        report.issues().len(),
    );
    for p in &report.per_volume {
        println!(
            "  volume {:>3} -> member {}: applied {:>5}, wal_errors {}",
            p.volume.0, p.member, p.stats.applied, p.wal_errors
        );
    }
    println!();
    println!("{}", scope.snapshot().render_latency_table());
    let mut reg = provscope::Registry::new();
    reg.absorb("kernel.", &sys.kernel.stats());
    cluster.record_metrics(&mut reg);
    println!("{}", reg.render_table());
}

criterion_group!(benches, bench_cluster);

fn main() {
    if std::env::var_os("PROVSCOPE_TRACE").is_some() {
        trace_mode();
        return;
    }
    // `BENCH_WALL=n` is the CI wall-clock smoke: measure, emit the
    // JSON, gate the n-member fleet at 1.2x, and skip the criterion
    // loops. A full run measures wall-clock first (gating 4 members
    // at 1.4x on capable hosts), then runs the timing loops.
    if let Some(v) = std::env::var_os("BENCH_WALL") {
        let m: usize = v
            .to_str()
            .and_then(|s| s.parse().ok())
            .expect("BENCH_WALL must be a member count (e.g. 2)");
        wall_mode(Some(m));
        return;
    }
    wall_mode(None);
    benches();
}
