//! PQL query latency versus provenance graph size — and the planner's
//! effect on it: indexed pushdown vs class scan vs the naive
//! evaluator, at growing graph sizes. The gap between `indexed` and
//! `scan`/`naive` must grow with the graph (indexed work is
//! proportional to the result, scans to the volume); CI runs this in
//! quick mode so the query path can't silently regress to scans.

use criterion::{criterion_group, BenchmarkId, Criterion};
use dpapi::{Attribute, ObjectRef, Pnode, ProvenanceRecord, Value, Version, VolumeId};
use lasagna::LogEntry;
use pql::{EdgeLabel, GraphSource};
use std::hint::black_box;
use waldo::{ProvDb, WaldoConfig};

fn r(n: u64) -> ObjectRef {
    ObjectRef::new(Pnode::new(VolumeId(1), n), Version(0))
}

fn prov(subject: ObjectRef, attr: Attribute, value: Value) -> LogEntry {
    LogEntry::Prov {
        subject,
        record: ProvenanceRecord::new(attr, value),
    }
}

/// A layered build graph: `files` source files feeding processes
/// feeding outputs, chained in generations.
fn build_entries(files: u64) -> Vec<LogEntry> {
    let mut entries = Vec::new();
    for i in 0..files {
        entries.push(prov(r(i), Attribute::Type, Value::str("FILE")));
        entries.push(prov(
            r(i),
            Attribute::Name,
            Value::str(format!("/src/f{i}.c")),
        ));
    }
    for p in 0..files {
        let proc_id = files + p;
        entries.push(prov(r(proc_id), Attribute::Type, Value::str("PROC")));
        entries.push(prov(r(proc_id), Attribute::Input, Value::Xref(r(p))));
        entries.push(prov(
            r(proc_id),
            Attribute::Input,
            Value::Xref(r((p + 1) % files)),
        ));
        let out = 2 * files + p;
        entries.push(prov(r(out), Attribute::Type, Value::str("FILE")));
        entries.push(prov(
            r(out),
            Attribute::Name,
            Value::str(format!("/obj/f{p}.o")),
        ));
        entries.push(prov(r(out), Attribute::Input, Value::Xref(r(proc_id))));
    }
    // A final link step depending on every object file.
    let ld = 3 * files;
    entries.push(prov(r(ld), Attribute::Type, Value::str("PROC")));
    for p in 0..files {
        entries.push(prov(r(ld), Attribute::Input, Value::Xref(r(2 * files + p))));
    }
    let image = 3 * files + 1;
    entries.push(prov(r(image), Attribute::Type, Value::str("FILE")));
    entries.push(prov(r(image), Attribute::Name, Value::str("/vmlinux")));
    entries.push(prov(r(image), Attribute::Input, Value::Xref(r(ld))));
    entries
}

/// Cache disabled: the `pql/*` benchmarks measure raw traversal cost.
fn build_db(files: u64) -> ProvDb {
    let db = ProvDb::with_config(WaldoConfig {
        shards: 8,
        ingest_batch: 64,
        ancestry_cache: 0,
        ..WaldoConfig::default()
    });
    db.ingest(&build_entries(files));
    db
}

/// The store with its `lookup_attr` / `class_size` overrides hidden:
/// the planner still plans (pushdown, reorder, streaming) but every
/// pushed predicate resolves through the trait's scan-based default —
/// isolating what the *index* buys over the *plan*.
struct ScanOnly<'a>(&'a ProvDb);

impl GraphSource for ScanOnly<'_> {
    fn class_members(&self, class: &str) -> Vec<ObjectRef> {
        self.0.class_members(class)
    }
    fn attr(&self, node: ObjectRef, name: &str) -> Option<Value> {
        GraphSource::attr(self.0, node, name)
    }
    fn out_edges(&self, node: ObjectRef, label: &EdgeLabel) -> Vec<ObjectRef> {
        self.0.out_edges(node, label)
    }
    fn in_edges(&self, node: ObjectRef, label: &EdgeLabel) -> Vec<ObjectRef> {
        self.0.in_edges(node, label)
    }
    fn closure(&self, node: ObjectRef, label: &EdgeLabel, inverse: bool) -> Vec<ObjectRef> {
        self.0.closure(node, label, inverse)
    }
    // lookup_attr / class_size deliberately not forwarded: the
    // defaults scan.
}

/// Indexed pushdown vs planner-without-index vs the naive evaluator,
/// on the paper's §5.7 query shape, at growing graph sizes.
fn bench_planner(c: &mut Criterion) {
    let mut group = c.benchmark_group("pql_planner");
    for files in [100u64, 400, 1600] {
        let db = build_db(files);
        // A selective target (one object file, shallow ancestry): the
        // root lookup dominates, so the indexed-vs-scan gap tracks
        // graph size. `/vmlinux` (whole-graph ancestry) is measured
        // separately in the `pql/*` group.
        let query = "select A from Provenance.file as F F.input* as A \
                     where F.name = '/obj/f17.o'";
        let parsed = pql::parse(query).unwrap();
        group.bench_with_input(BenchmarkId::new("indexed", files), &db, |b, db| {
            b.iter(|| {
                let out = pql::plan::execute(&parsed, db).unwrap();
                assert!(out.stats.index_hits >= 1);
                black_box(out.result.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("scan", files), &db, |b, db| {
            let scan = ScanOnly(db);
            b.iter(|| {
                let out = pql::plan::execute(&parsed, &scan).unwrap();
                assert_eq!(out.stats.index_hits, 0);
                black_box(out.result.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("naive", files), &db, |b, db| {
            b.iter(|| {
                let rs = pql::execute_naive(&parsed, db).unwrap();
                black_box(rs.len())
            });
        });
    }
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("pql");
    for files in [100u64, 400] {
        let db = build_db(files);
        group.bench_with_input(
            BenchmarkId::new("full_ancestry_closure", files),
            &db,
            |b, db| {
                b.iter(|| {
                    let rs = pql::query(
                        "select A from Provenance.file as F F.input* as A \
                         where F.name = '/vmlinux'",
                        db,
                    )
                    .unwrap();
                    black_box(rs.len())
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("name_filter_only", files), &db, |b, db| {
            b.iter(|| {
                let rs = pql::query(
                    "select F.name from Provenance.file as F \
                         where F.name like '/obj/*'",
                    db,
                )
                .unwrap();
                black_box(rs.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("count_aggregate", files), &db, |b, db| {
            b.iter(|| {
                let rs = pql::query(
                    "select count(A) from Provenance.file as F F.input+ as A \
                         where F.name = '/vmlinux'",
                    db,
                )
                .unwrap();
                black_box(rs.rows[0][0].clone())
            });
        });
    }
    group.finish();

    // The same ancestry closure with the store's query caches on:
    // after the first run, edge expansions are answered from the
    // generation-validated LRU, so repeats measure the cached path.
    let mut group = c.benchmark_group("pql_cached");
    for files in [100u64, 400] {
        let cached = ProvDb::new();
        cached.ingest(&build_entries(files));
        group.bench_with_input(
            BenchmarkId::new("full_ancestry_closure", files),
            &cached,
            |b, db| {
                b.iter(|| {
                    let rs = pql::query(
                        "select A from Provenance.file as F F.input* as A \
                         where F.name = '/vmlinux'",
                        db,
                    )
                    .unwrap();
                    black_box(rs.len())
                });
            },
        );
        println!(
            "pql_cached/closure_cache_stats/{files}: {:?}",
            cached.closure_cache_stats()
        );
    }
    group.finish();
}

/// `PROVSCOPE_TRACE=1` mode: one traced planner run instead of the
/// criterion timing loops. Query evaluation never advances the
/// virtual clock (the cost model charges I/O, not graph traversal),
/// so spans are shown on a deterministic tick counter: the output is
/// the plan/bind/filter/project *span structure*, not wall time.
fn trace_mode() {
    let db = build_db(400);
    let tick = std::sync::atomic::AtomicU64::new(0);
    let scope =
        provscope::Scope::enabled(move || tick.fetch_add(1, std::sync::atomic::Ordering::Relaxed));
    let query = "select A from Provenance.file as F F.input* as A \
                 where F.name = '/obj/f17.o'";
    let out = pql::query_traced(query, &db, &scope).expect("traced query");
    println!(
        "pql_queries trace: {} rows, {} index hits, {} rows pruned",
        out.result.len(),
        out.stats.index_hits,
        out.stats.rows_pruned,
    );
    let trace = scope.snapshot();
    for s in &trace.spans {
        println!(
            "  #{:<3} {:>10}/{:<8} parent={:?} ticks {}..{}",
            s.id.0,
            s.layer,
            s.name,
            s.parent.map(|p| p.0),
            s.start_ns,
            s.end_ns.unwrap_or(s.start_ns),
        );
    }
}

criterion_group!(benches, bench_queries, bench_planner);

fn main() {
    if std::env::var_os("PROVSCOPE_TRACE").is_some() {
        trace_mode();
        return;
    }
    benches();
}
