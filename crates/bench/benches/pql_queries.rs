//! PQL query latency versus provenance graph size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpapi::{Attribute, ObjectRef, Pnode, ProvenanceRecord, Value, Version, VolumeId};
use lasagna::LogEntry;
use std::hint::black_box;
use waldo::{ProvDb, WaldoConfig};

fn r(n: u64) -> ObjectRef {
    ObjectRef::new(Pnode::new(VolumeId(1), n), Version(0))
}

fn prov(subject: ObjectRef, attr: Attribute, value: Value) -> LogEntry {
    LogEntry::Prov {
        subject,
        record: ProvenanceRecord::new(attr, value),
    }
}

/// A layered build graph: `files` source files feeding processes
/// feeding outputs, chained in generations.
fn build_entries(files: u64) -> Vec<LogEntry> {
    let mut entries = Vec::new();
    for i in 0..files {
        entries.push(prov(r(i), Attribute::Type, Value::str("FILE")));
        entries.push(prov(
            r(i),
            Attribute::Name,
            Value::str(format!("/src/f{i}.c")),
        ));
    }
    for p in 0..files {
        let proc_id = files + p;
        entries.push(prov(r(proc_id), Attribute::Type, Value::str("PROC")));
        entries.push(prov(r(proc_id), Attribute::Input, Value::Xref(r(p))));
        entries.push(prov(
            r(proc_id),
            Attribute::Input,
            Value::Xref(r((p + 1) % files)),
        ));
        let out = 2 * files + p;
        entries.push(prov(r(out), Attribute::Type, Value::str("FILE")));
        entries.push(prov(
            r(out),
            Attribute::Name,
            Value::str(format!("/obj/f{p}.o")),
        ));
        entries.push(prov(r(out), Attribute::Input, Value::Xref(r(proc_id))));
    }
    // A final link step depending on every object file.
    let ld = 3 * files;
    entries.push(prov(r(ld), Attribute::Type, Value::str("PROC")));
    for p in 0..files {
        entries.push(prov(r(ld), Attribute::Input, Value::Xref(r(2 * files + p))));
    }
    let image = 3 * files + 1;
    entries.push(prov(r(image), Attribute::Type, Value::str("FILE")));
    entries.push(prov(r(image), Attribute::Name, Value::str("/vmlinux")));
    entries.push(prov(r(image), Attribute::Input, Value::Xref(r(ld))));
    entries
}

/// Cache disabled: the `pql/*` benchmarks measure raw traversal cost.
fn build_db(files: u64) -> ProvDb {
    let mut db = ProvDb::with_config(WaldoConfig {
        shards: 8,
        ingest_batch: 64,
        ancestry_cache: 0,
        ..WaldoConfig::default()
    });
    db.ingest(&build_entries(files));
    db
}

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("pql");
    for files in [100u64, 400] {
        let db = build_db(files);
        group.bench_with_input(
            BenchmarkId::new("full_ancestry_closure", files),
            &db,
            |b, db| {
                b.iter(|| {
                    let rs = pql::query(
                        "select A from Provenance.file as F F.input* as A \
                         where F.name = '/vmlinux'",
                        db,
                    )
                    .unwrap();
                    black_box(rs.len())
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("name_filter_only", files), &db, |b, db| {
            b.iter(|| {
                let rs = pql::query(
                    "select F.name from Provenance.file as F \
                         where F.name like '/obj/*'",
                    db,
                )
                .unwrap();
                black_box(rs.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("count_aggregate", files), &db, |b, db| {
            b.iter(|| {
                let rs = pql::query(
                    "select count(A) from Provenance.file as F F.input+ as A \
                         where F.name = '/vmlinux'",
                    db,
                )
                .unwrap();
                black_box(rs.rows[0][0].clone())
            });
        });
    }
    group.finish();

    // The same ancestry closure with the store's query caches on:
    // after the first run, edge expansions are answered from the
    // generation-validated LRU, so repeats measure the cached path.
    let mut group = c.benchmark_group("pql_cached");
    for files in [100u64, 400] {
        let mut cached = ProvDb::new();
        cached.ingest(&build_entries(files));
        group.bench_with_input(
            BenchmarkId::new("full_ancestry_closure", files),
            &cached,
            |b, db| {
                b.iter(|| {
                    let rs = pql::query(
                        "select A from Provenance.file as F F.input* as A \
                         where F.name = '/vmlinux'",
                        db,
                    )
                    .unwrap();
                    black_box(rs.len())
                });
            },
        );
        println!(
            "pql_cached/closure_cache_stats/{files}: {:?}",
            cached.closure_cache_stats()
        );
    }
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
