//! The sluice front door over the PA-NFS wire: a stream of per-event
//! disclosure transactions submitted through the pipelined path
//! (bounded queue + coalescing drainer) versus committing each
//! transaction synchronously.
//!
//! `pipeline_invariants` runs before any timing (in `BENCH_QUICK` CI
//! mode too): at submit depth >= 8 the pipelined path must beat the
//! synchronous path by >= 1.5x on both RPC count and wire bytes, the
//! resulting provenance store must be **byte-equal** to the
//! synchronous one (`Store::segment_images` after ingesting the
//! drained logs), and the queue's peak occupancy must respect the
//! configured budget — coalescing must not mean unbounded memory.
//!
//! The measured sweep writes `BENCH_pipeline_ingest.json` at the
//! repository root: throughput and per-transaction virtual latency
//! versus coalescing depth at batch 1 / 8 / 32.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpapi::{Attribute, Bundle, Dpapi, ProvenanceRecord, Value, VolumeId};
use provscope::Registry;
use sim_os::clock::Clock;
use sim_os::cost::CostModel;
use sim_os::fs::{DpapiVolume, FileSystem};
use sluice::{BackpressurePolicy, ClientId, Sluice, SluiceConfig};
use std::hint::black_box;
use std::time::Instant;
use waldo::WaldoConfig;

struct Rig {
    server: std::rc::Rc<std::cell::RefCell<pa_nfs::NfsServer>>,
    client: pa_nfs::NfsClient,
    ino: sim_os::fs::Ino,
    clock: Clock,
}

fn setup() -> Rig {
    let clock = Clock::new();
    let model = CostModel::default();
    let server = pa_nfs::pa_server(clock.clone(), model, VolumeId(5));
    let mut client = pa_nfs::client(&server, clock.clone(), model);
    let root = client.root();
    let ino = client.create(root, "target").unwrap();
    Rig {
        server,
        client,
        ino,
        clock,
    }
}

/// One per-event disclosure transaction — the single-record shape the
/// pipeline amortizes across the wire.
fn event_txn(client: &mut pa_nfs::NfsClient, ino: sim_os::fs::Ino, i: usize) -> dpapi::Txn {
    let h = client.handle_for_ino(ino).unwrap();
    let mut txn = dpapi::Txn::new();
    txn.disclose(
        h,
        Bundle::single(
            h,
            ProvenanceRecord::new(
                Attribute::Other(format!("EVENT{}", i % 7)),
                Value::str(format!("event payload number {i} with some length to it")),
            ),
        ),
    );
    txn
}

/// Drains the server's logs and ingests them into a fresh store; the
/// returned segment images are the byte-equality oracle. One group
/// commit per log (huge `ingest_batch`), so shard generations depend
/// only on content — not on how the front door framed the stream.
fn store_images(rig: &Rig) -> Vec<Vec<u8>> {
    let db = waldo::ProvDb::with_config(WaldoConfig {
        ingest_batch: 1 << 20,
        ..WaldoConfig::default()
    });
    for image in rig.server.borrow_mut().drain_provenance_logs() {
        let (entries, _) = lasagna::parse_log(&image);
        db.ingest(&entries);
    }
    db.segment_images()
}

struct RunCost {
    rpcs: u64,
    wire_bytes: u64,
    wall_s: f64,
    /// Virtual nanoseconds elapsed during the run (cost-model time).
    virtual_ns: u64,
    /// Mean submit-to-completion virtual latency, pipelined runs only.
    mean_latency_ns: f64,
}

fn sync_run(n: usize) -> (RunCost, Vec<Vec<u8>>) {
    let mut rig = setup();
    let base = rig.client.stats();
    let t0 = rig.clock.now();
    let w0 = Instant::now();
    for i in 0..n {
        let txn = event_txn(&mut rig.client, rig.ino, i);
        rig.client.pass_commit(txn).unwrap();
    }
    let wall_s = w0.elapsed().as_secs_f64();
    let s = rig.client.stats();
    let cost = RunCost {
        rpcs: s.rpcs - base.rpcs,
        wire_bytes: (s.bytes_sent + s.bytes_received) - (base.bytes_sent + base.bytes_received),
        wall_s,
        virtual_ns: rig.clock.now() - t0,
        mean_latency_ns: 0.0,
    };
    let images = store_images(&rig);
    (cost, images)
}

fn pipelined_run(n: usize, coalesce: usize, queue_budget: usize) -> (RunCost, Vec<Vec<u8>>, u64) {
    let mut rig = setup();
    let mut pipe = Sluice::new(SluiceConfig {
        max_queued_ops: queue_budget,
        coalesce_ops: coalesce,
        policy: BackpressurePolicy::Block,
        ..SluiceConfig::default()
    });
    let clock = rig.clock.clone();
    pipe.set_now(move || clock.now());
    let base = rig.client.stats();
    let t0 = rig.clock.now();
    let w0 = Instant::now();
    let mut tickets = Vec::with_capacity(n);
    for i in 0..n {
        let txn = event_txn(&mut rig.client, rig.ino, i);
        tickets.push(pipe.submit(&mut rig.client, ClientId(1), txn).unwrap());
    }
    pipe.drain(&mut rig.client);
    let wall_s = w0.elapsed().as_secs_f64();
    for t in tickets {
        pipe.take(t).expect("resolved").expect("committed");
    }
    let s = rig.client.stats();
    let cost = RunCost {
        rpcs: s.rpcs - base.rpcs,
        wire_bytes: (s.bytes_sent + s.bytes_received) - (base.bytes_sent + base.bytes_received),
        wall_s,
        virtual_ns: rig.clock.now() - t0,
        mean_latency_ns: pipe.latency().mean(),
    };
    let mut reg = Registry::new();
    pipe.export_metrics("sluice.", &mut reg);
    let peak_ops = reg.gauge("sluice.queue.peak_ops");
    let images = store_images(&rig);
    (cost, images, peak_ops)
}

/// Hard acceptance gates, enforced before any timing loop runs.
fn pipeline_invariants() {
    const N: usize = 32;
    const DEPTH: usize = 8;
    const BUDGET: usize = 16;
    let (sync, sync_images) = sync_run(N);
    let (pipe, pipe_images, peak_ops) = pipelined_run(N, DEPTH, BUDGET);

    assert_eq!(
        sync_images, pipe_images,
        "pipelined store must be byte-equal to the synchronous store"
    );
    assert!(
        peak_ops <= BUDGET as u64,
        "queue memory must stay within the configured budget: \
         peak {peak_ops} ops vs budget {BUDGET}"
    );
    assert!(
        sync.rpcs as f64 >= 1.5 * pipe.rpcs as f64,
        "pipelining at depth {DEPTH} must amortize >= 1.5x on RPC count: \
         {} vs {}",
        sync.rpcs,
        pipe.rpcs
    );
    assert!(
        sync.wire_bytes as f64 >= 1.5 * pipe.wire_bytes as f64,
        "pipelining at depth {DEPTH} must amortize >= 1.5x on wire bytes: \
         {} vs {}",
        sync.wire_bytes,
        pipe.wire_bytes
    );
    println!(
        "pipeline_ingest/invariants: N={N} depth={DEPTH} rpcs {}->{} \
         ({:.1}x), wire bytes {}->{} ({:.2}x), queue peak {peak_ops}/{BUDGET} ops",
        sync.rpcs,
        pipe.rpcs,
        sync.rpcs as f64 / pipe.rpcs as f64,
        sync.wire_bytes,
        pipe.wire_bytes,
        sync.wire_bytes as f64 / pipe.wire_bytes as f64,
    );
}

/// The measured sweep: throughput and latency versus coalescing depth,
/// written to `BENCH_pipeline_ingest.json` at the repository root.
fn sweep_and_write_json() {
    let quick = std::env::var_os("BENCH_QUICK").is_some();
    let (n, runs) = if quick { (96, 1) } else { (384, 3) };
    let (sync, _) = sync_run(n);
    let mut rows = Vec::new();
    for depth in [1usize, 8, 32] {
        // Best-of-N wall clock to shed scheduler noise; virtual time
        // and RPC counts are deterministic across repeats.
        let (cost, _, peak_ops) = (0..runs)
            .map(|_| pipelined_run(n, depth, depth.max(8) * 2))
            .min_by(|a, b| a.0.wall_s.total_cmp(&b.0.wall_s))
            .expect("at least one run");
        let vthroughput = n as f64 / (cost.virtual_ns as f64 / 1e9);
        println!(
            "pipeline_ingest/sweep: depth {depth}: {} rpcs, {:.0} txns/s \
             (virtual), mean latency {:.0} ns (virtual), peak queue {peak_ops} ops",
            cost.rpcs, vthroughput, cost.mean_latency_ns
        );
        rows.push(format!(
            "{{\"batch\": {depth}, \"txns\": {n}, \"rpcs\": {}, \
             \"wire_bytes\": {}, \"virtual_ns\": {}, \
             \"virtual_txns_per_s\": {vthroughput:.1}, \
             \"mean_latency_ns\": {:.1}, \"wall_s\": {:.6}, \
             \"queue_peak_ops\": {peak_ops}}}",
            cost.rpcs, cost.wire_bytes, cost.virtual_ns, cost.mean_latency_ns, cost.wall_s
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"pipeline_ingest\",\n  \"txns\": {n},\n  \
         \"baseline\": {{\"mode\": \"synchronous\", \"rpcs\": {}, \
         \"wire_bytes\": {}, \"virtual_ns\": {}, \"wall_s\": {:.6}}},\n  \
         \"pipelined\": [{}],\n  \
         \"gates\": {{\"rpc_amortization\": 1.5, \"wire_amortization\": 1.5, \
         \"byte_equality\": true, \"bounded_queue\": true}}\n}}\n",
        sync.rpcs,
        sync.wire_bytes,
        sync.virtual_ns,
        sync.wall_s,
        rows.join(", "),
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_pipeline_ingest.json"
    );
    std::fs::write(path, &json).expect("write BENCH_pipeline_ingest.json");
    println!("  wrote {path}");
}

fn bench_pipeline(c: &mut Criterion) {
    pipeline_invariants();
    sweep_and_write_json();

    let mut group = c.benchmark_group("pipeline_ingest");
    for depth in [1usize, 8, 32] {
        group.bench_with_input(BenchmarkId::new("submit_drain", depth), &depth, |b, &d| {
            b.iter_batched(
                setup,
                |mut rig| {
                    let mut pipe = Sluice::new(SluiceConfig {
                        coalesce_ops: d,
                        ..SluiceConfig::default()
                    });
                    for i in 0..32 {
                        let txn = event_txn(&mut rig.client, rig.ino, i);
                        pipe.submit(&mut rig.client, ClientId(1), txn).unwrap();
                    }
                    pipe.drain(&mut rig.client);
                    black_box(rig.client.stats().rpcs)
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
