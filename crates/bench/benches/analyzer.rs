//! Analyzer ablation: cycle avoidance (PASSv2) vs the global-graph
//! cycle-detection-and-merge algorithm (PASSv1).
//!
//! The paper's §5.4 motivates the switch: the global algorithm
//! "proved challenging" and scales poorly because every insertion may
//! trigger a reachability search over the whole graph. This bench
//! quantifies the difference on a synthetic stream with the I/O
//! pattern of a build: many processes each reading shared inputs and
//! writing private outputs, plus read-modify-write cycles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use passv2::analyzer::{CycleAvoidance, GlobalGraph};
use std::hint::black_box;

/// A synthetic dependency stream: `procs` processes, each reading
/// `reads` shared files, writing one output, then re-reading and
/// re-writing it (a freeze-inducing pattern).
fn stream(procs: u64, reads: u64) -> Vec<(u64, u64)> {
    let mut edges = Vec::new();
    for p in 0..procs {
        let proc_id = 1_000_000 + p;
        for r in 0..reads {
            // proc depends on shared file r (dedup fodder: 3 times).
            for _ in 0..3 {
                edges.push((proc_id, r));
            }
        }
        let out = 2_000_000 + p;
        edges.push((out, proc_id)); // write
        edges.push((proc_id, out)); // read back
        edges.push((out, proc_id)); // write again (cycle risk)
    }
    edges
}

fn bench_analyzers(c: &mut Criterion) {
    let mut group = c.benchmark_group("analyzer");
    for procs in [50u64, 200] {
        let edges = stream(procs, 20);
        group.bench_with_input(
            BenchmarkId::new("cycle_avoidance_v2", procs),
            &edges,
            |b, edges| {
                b.iter(|| {
                    let mut an = CycleAvoidance::new();
                    for &(t, s) in edges {
                        black_box(an.add_dependency(t, s));
                    }
                    an.stats()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("global_graph_v1", procs),
            &edges,
            |b, edges| {
                b.iter(|| {
                    let mut g = GlobalGraph::new();
                    for &(t, s) in edges {
                        black_box(g.add_dependency(t, s));
                    }
                    g.merges()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_analyzers);
criterion_main!(benches);
