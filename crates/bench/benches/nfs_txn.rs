//! PA-NFS provenance shipping: inline OP_PASSWRITE versus chunked
//! BEGINTXN/PASSPROV transactions, and the cost of freeze-as-record.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpapi::{Attribute, Bundle, Dpapi, ProvenanceRecord, Value, VolumeId};
use sim_os::clock::Clock;
use sim_os::cost::CostModel;
use sim_os::fs::{DpapiVolume, FileSystem};
use std::hint::black_box;

fn setup() -> (pa_nfs::NfsClient, sim_os::fs::Ino) {
    let clock = Clock::new();
    let model = CostModel::default();
    let server = pa_nfs::pa_server(clock.clone(), model, VolumeId(5));
    let mut client = pa_nfs::client(&server, clock.clone(), model);
    let root = client.root();
    let ino = client.create(root, "target").unwrap();
    (client, ino)
}

fn records_bundle(client: &mut pa_nfs::NfsClient, ino: sim_os::fs::Ino, n: usize) -> Bundle {
    let h = client.handle_for_ino(ino).unwrap();
    let mut b = Bundle::new();
    for i in 0..n {
        b.push(
            h,
            ProvenanceRecord::new(
                Attribute::Other(format!("ATTR{}", i % 7)),
                Value::str(format!("value payload number {i} with some length to it")),
            ),
        );
    }
    b
}

fn bench_nfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("pa_nfs");
    // Small bundles ride OP_PASSWRITE inline; large ones must chunk
    // through a provenance transaction (64 KB wire block).
    for n in [10usize, 2000] {
        group.bench_with_input(BenchmarkId::new("pass_write_records", n), &n, |b, &n| {
            b.iter_batched(
                setup,
                |(mut client, ino)| {
                    let bundle = records_bundle(&mut client, ino, n);
                    let h = client.handle_for_ino(ino).unwrap();
                    black_box(client.pass_write(h, 0, b"data", bundle).unwrap());
                    client.stats().txns
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.bench_function("pass_freeze_record", |b| {
        b.iter_batched(
            setup,
            |(mut client, ino)| {
                let h = client.handle_for_ino(ino).unwrap();
                black_box(client.pass_freeze(h).unwrap())
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_nfs);
criterion_main!(benches);
