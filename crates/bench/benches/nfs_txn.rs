//! PA-NFS provenance shipping: inline OP_PASSWRITE versus chunked
//! BEGINTXN/PASSPROV transactions, the cost of freeze-as-record, and
//! — since DPAPI v2 — batched `OP_PASSCOMMIT` disclosure transactions
//! versus per-op RPCs.
//!
//! The `batch_invariants` check runs before the timing loops (in
//! quick mode too, so CI executes it): a 32-op disclosure transaction
//! must beat 32 single-shot calls by >=1.5x on both wire bytes and
//! RPC count, and the batch-path op counters must be non-zero —
//! otherwise the stack has silently regressed to per-record
//! disclosure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpapi::{Attribute, Bundle, Dpapi, ProvenanceRecord, Value, VolumeId};
use sim_os::clock::Clock;
use sim_os::cost::CostModel;
use sim_os::fs::{DpapiVolume, FileSystem};
use std::hint::black_box;

fn setup() -> (pa_nfs::NfsClient, sim_os::fs::Ino) {
    let clock = Clock::new();
    let model = CostModel::default();
    let server = pa_nfs::pa_server(clock.clone(), model, VolumeId(5));
    let mut client = pa_nfs::client(&server, clock.clone(), model);
    let root = client.root();
    let ino = client.create(root, "target").unwrap();
    (client, ino)
}

fn records_bundle(client: &mut pa_nfs::NfsClient, ino: sim_os::fs::Ino, n: usize) -> Bundle {
    let h = client.handle_for_ino(ino).unwrap();
    let mut b = Bundle::new();
    for i in 0..n {
        b.push(
            h,
            ProvenanceRecord::new(
                Attribute::Other(format!("ATTR{}", i % 7)),
                Value::str(format!("value payload number {i} with some length to it")),
            ),
        );
    }
    b
}

/// Builds an N-op disclosure transaction (one single-record write per
/// op — the per-event shape the batch API amortizes).
fn batch_txn(client: &mut pa_nfs::NfsClient, ino: sim_os::fs::Ino, n: usize) -> dpapi::Txn {
    let h = client.handle_for_ino(ino).unwrap();
    let mut txn = dpapi::Txn::new();
    for i in 0..n {
        let b = Bundle::single(
            h,
            ProvenanceRecord::new(
                Attribute::Other(format!("ATTR{}", i % 7)),
                Value::str(format!("value payload number {i} with some length to it")),
            ),
        );
        txn.disclose(h, b);
    }
    txn
}

/// Hard acceptance gates for the batched disclosure path, run before
/// any timing (so BENCH_QUICK CI jobs enforce them).
fn batch_invariants() {
    const N: usize = 32;
    // Per-op: N single-record OP_PASSWRITE RPCs.
    let (mut single, ino) = setup();
    let h = single.handle_for_ino(ino).unwrap();
    let base = single.stats();
    for i in 0..N {
        let b = Bundle::single(
            h,
            ProvenanceRecord::new(
                Attribute::Other(format!("ATTR{}", i % 7)),
                Value::str(format!("value payload number {i} with some length to it")),
            ),
        );
        single.pass_write(h, 0, &[], b).unwrap();
    }
    let s = single.stats();
    let single_rpcs = s.rpcs - base.rpcs;
    let single_bytes = (s.bytes_sent + s.bytes_received) - (base.bytes_sent + base.bytes_received);

    // Batched: the same disclosures as one OP_PASSCOMMIT.
    let (mut batched, ino) = setup();
    let txn = batch_txn(&mut batched, ino, N);
    let base = batched.stats();
    batched.pass_commit(txn).unwrap();
    let b = batched.stats();
    let batch_rpcs = b.rpcs - base.rpcs;
    let batch_bytes = (b.bytes_sent + b.bytes_received) - (base.bytes_sent + base.bytes_received);

    assert!(
        b.batch_rpcs > 0 && b.batched_ops >= N as u64,
        "batch-path op counters must be non-zero: {b:?}"
    );
    assert!(
        single_rpcs as f64 >= 1.5 * batch_rpcs as f64,
        "batched disclosure must beat per-op on RPC count at N={N}: \
         {single_rpcs} vs {batch_rpcs}"
    );
    assert!(
        single_bytes as f64 >= 1.5 * batch_bytes as f64,
        "batched disclosure must beat per-op on wire bytes at N={N}: \
         {single_bytes} vs {batch_bytes}"
    );
    println!(
        "nfs_txn/batch_invariants: N={N} rpcs {single_rpcs}->{batch_rpcs} \
         ({:.1}x), wire bytes {single_bytes}->{batch_bytes} ({:.2}x)",
        single_rpcs as f64 / batch_rpcs as f64,
        single_bytes as f64 / batch_bytes as f64,
    );
}

fn bench_nfs(c: &mut Criterion) {
    batch_invariants();

    let mut group = c.benchmark_group("pa_nfs");
    // Small bundles ride OP_PASSWRITE inline; large ones must chunk
    // through a provenance transaction (64 KB wire block).
    for n in [10usize, 2000] {
        group.bench_with_input(BenchmarkId::new("pass_write_records", n), &n, |b, &n| {
            b.iter_batched(
                setup,
                |(mut client, ino)| {
                    let bundle = records_bundle(&mut client, ino, n);
                    let h = client.handle_for_ino(ino).unwrap();
                    black_box(client.pass_write(h, 0, b"data", bundle).unwrap());
                    client.stats().txns
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.bench_function("pass_freeze_record", |b| {
        b.iter_batched(
            setup,
            |(mut client, ino)| {
                let h = client.handle_for_ino(ino).unwrap();
                black_box(client.pass_freeze(h).unwrap())
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();

    // Per-op single-shot RPCs versus one OP_PASSCOMMIT COMPOUND for
    // the same N disclosures.
    let mut group = c.benchmark_group("nfs_batch");
    for n in [8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::new("per_op", n), &n, |b, &n| {
            b.iter_batched(
                setup,
                |(mut client, ino)| {
                    let h = client.handle_for_ino(ino).unwrap();
                    for i in 0..n {
                        let bundle = Bundle::single(
                            h,
                            ProvenanceRecord::new(
                                Attribute::Other(format!("ATTR{}", i % 7)),
                                Value::str(format!(
                                    "value payload number {i} with some length to it"
                                )),
                            ),
                        );
                        client.pass_write(h, 0, &[], bundle).unwrap();
                    }
                    black_box(client.stats().rpcs)
                },
                criterion::BatchSize::SmallInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("batched", n), &n, |b, &n| {
            b.iter_batched(
                setup,
                |(mut client, ino)| {
                    let txn = batch_txn(&mut client, ino, n);
                    black_box(client.pass_commit(txn).unwrap());
                    let stats = client.stats();
                    assert!(stats.batched_ops >= n as u64);
                    black_box(stats.rpcs)
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nfs);
criterion_main!(benches);
