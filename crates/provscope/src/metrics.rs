//! The unified metrics registry: named counters, log-bucketed latency
//! histograms, and the [`MetricSource`] trait that absorbs the
//! per-layer stats structs.
//!
//! Every layer already keeps a typed stats struct (`KernelStats`,
//! `PassStats`, `LasagnaStats`, `IngestStats`, `QueryOps`,
//! `PlanStats`, …) with `AddAssign`/`Sum` roll-ups. Those stay — they
//! are the typed views code asserts against. What was missing is one
//! place to *collect* them: a [`Registry`] absorbs any
//! [`MetricSource`] under a prefix (`"member0."` for cluster
//! members), merges registries, and renders an aligned text table so
//! the bench binaries stop hand-rolling their printing.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Anything that can pour its metrics into a registry as named
/// `(key, value)` pairs. Implemented by the per-layer stats structs;
/// keys are stable dotted names (`"dpapi_txns"`, `"records"`, …).
pub trait MetricSource {
    /// Emits every metric as a `(name, value)` pair. Implementations
    /// must emit in a deterministic order.
    fn record(&self, out: &mut dyn FnMut(&str, u64));
}

/// A log₂-bucketed latency histogram.
///
/// Bucket `i` counts observations whose value needs `i` bits
/// (`bucket 0` = value 0, bucket `i` = values in `[2^(i-1), 2^i)`),
/// which gives fixed-size storage (65 buckets covers all of `u64`)
/// and is exactly reproducible — no floating-point bucket boundaries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        self.observe_n(v, 1);
    }

    /// Records `n` identical observations of `v` — the bulk path for
    /// mirroring pre-aggregated data (e.g. an atomic histogram
    /// snapshot) without `n` separate calls.
    pub fn observe_n(&mut self, v: u64, n: u64) {
        self.buckets[Self::bucket_of(v)] += n;
        self.count += n;
        self.sum += v.wrapping_mul(n);
    }

    /// Reconstructs a histogram from raw parts — the import path for
    /// snapshots of externally-maintained bucket arrays (atomic
    /// mirrors, parsed exports). `count`/`sum` are trusted as given.
    pub fn from_parts(buckets: [u64; 65], count: u64, sum: u64) -> Histogram {
        Histogram {
            buckets,
            count,
            sum,
        }
    }

    /// The raw log₂ bucket counts (bucket `i` as documented on the
    /// type).
    pub fn bucket_counts(&self) -> &[u64; 65] {
        &self.buckets
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket holding quantile `q` in `[0,1]` —
    /// e.g. `quantile(0.99)` returns a power-of-two ceiling on the
    /// p99.
    ///
    /// # Error contract
    ///
    /// Buckets are log₂-sized, so the returned value is the
    /// *exclusive* power-of-two ceiling `2^i` of the bucket holding
    /// the ranked observation: the true quantile `t` satisfies
    /// `t < quantile(q) <= 2 * t` for `t >= 1` (an overestimate by a
    /// factor of strictly less than 2), and `quantile(q) == 0`
    /// exactly when the ranked observation is 0. `q` is clamped to
    /// `[0, 1]`.
    ///
    /// # Empty histograms
    ///
    /// An empty histogram has no ranked observation; `quantile`
    /// returns **0** for every `q`. Callers that must distinguish "no
    /// data" from "all observations were 0" check [`Histogram::count`]
    /// first.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i.min(63) };
            }
        }
        u64::MAX
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// A registry of named counters, gauges and histograms.
///
/// Keys are dotted strings; all maps are `BTreeMap` so iteration —
/// and therefore every rendered table and export — is
/// deterministically ordered.
///
/// Counters only ever add; gauges are *level* metrics (queue depth,
/// in-flight ops) that can move both ways, so [`Registry::set_gauge`]
/// overwrites and merging keeps the **maximum** — the deterministic
/// "high-water mark" interpretation that makes a merged cluster
/// registry report peak pressure rather than a meaningless sum.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    hists: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `v` to counter `name` (creating it at 0).
    pub fn add(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += v;
    }

    /// Records one observation in histogram `name`.
    pub fn observe(&mut self, name: &str, v: u64) {
        self.hists.entry(name.to_string()).or_default().observe(v);
    }

    /// Sets gauge `name` to its current level `v` (overwrites).
    pub fn set_gauge(&mut self, name: &str, v: u64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Raises gauge `name` to `v` if `v` is higher — records a
    /// high-water mark without clobbering an earlier peak.
    pub fn gauge_max(&mut self, name: &str, v: u64) {
        let g = self.gauges.entry(name.to_string()).or_insert(0);
        *g = (*g).max(v);
    }

    /// Merges a pre-built histogram into histogram `name` — the export
    /// path for sources that already aggregate latencies locally.
    pub fn absorb_histogram(&mut self, name: &str, h: &Histogram) {
        self.hists.entry(name.to_string()).or_default().merge(h);
    }

    /// Pours a [`MetricSource`] in, prefixing every key — e.g.
    /// `absorb("member0.kernel.", &stats)`.
    pub fn absorb(&mut self, prefix: &str, source: &dyn MetricSource) {
        let counters = &mut self.counters;
        source.record(&mut |name, v| {
            *counters.entry(format!("{prefix}{name}")).or_insert(0) += v;
        });
    }

    /// Merges another registry into this one (counters add, gauges
    /// keep the maximum, histograms merge).
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let g = self.gauges.entry(k.clone()).or_insert(0);
            *g = (*g).max(*v);
        }
        for (k, h) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Counter value (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge level (0 if absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, u64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.hists.iter().map(|(k, h)| (k.as_str(), h))
    }

    /// Counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Renders everything as an aligned text table: counters first
    /// (key order), then gauges, then histograms with
    /// count/mean/p50/p99. This is the one stats printer the bench
    /// binaries share.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            let w = self.counters.keys().map(|k| k.len()).max().unwrap_or(0);
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<w$}  {v:>12}");
            }
        }
        if !self.gauges.is_empty() {
            let w = self
                .gauges
                .keys()
                .map(|k| k.len() + "(gauge)".len() + 1)
                .max()
                .unwrap_or(0);
            for (k, v) in &self.gauges {
                let key = format!("{k} (gauge)");
                let _ = writeln!(out, "  {key:<w$}  {v:>12}");
            }
        }
        if !self.hists.is_empty() {
            let w = self.hists.keys().map(|k| k.len()).max().unwrap_or(0).max(4);
            let _ = writeln!(
                out,
                "  {:<w$}  {:>10} {:>14} {:>12} {:>12}",
                "hist", "count", "mean", "p50<=", "p99<="
            );
            for (k, h) in &self.hists {
                let _ = writeln!(
                    out,
                    "  {k:<w$}  {:>10} {:>14.1} {:>12} {:>12}",
                    h.count(),
                    h.mean(),
                    h.quantile(0.5),
                    h.quantile(0.99)
                );
            }
        }
        out
    }

    /// Renders everything in the Prometheus text exposition format:
    /// counters and gauges as single samples, histograms as
    /// cumulative `_bucket{le="…"}` series plus `_sum`/`_count`.
    ///
    /// Names are sanitized (every character outside `[A-Za-z0-9_]`
    /// becomes `_`, so `waldo.wal_errors` → `waldo_wal_errors`).
    /// Bucket `le` bounds are the *inclusive* integer upper bounds of
    /// the log₂ buckets — `le="0"` for bucket 0, `le="2^i - 1"` for
    /// bucket `i`, and a final `le="+Inf"` — and only non-empty
    /// buckets are emitted (cumulative counts stay correct). Output
    /// is deterministic: keys render in sorted order.
    pub fn render_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        c
                    } else {
                        '_'
                    }
                })
                .collect()
        }
        let mut out = String::new();
        for (k, v) in &self.counters {
            let n = sanitize(k);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {v}");
        }
        for (k, v) in &self.gauges {
            let n = sanitize(k);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {v}");
        }
        for (k, h) in &self.hists {
            let n = sanitize(k);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cum = 0u64;
            for (i, b) in h.buckets.iter().enumerate() {
                if *b == 0 {
                    continue;
                }
                cum += b;
                // Inclusive integer upper bound of log₂ bucket i:
                // bucket 0 holds only 0; bucket i holds [2^(i-1),
                // 2^i), whose largest integer is 2^i - 1 (saturating
                // for bucket 64, which holds up to u64::MAX).
                let le = if i == 0 {
                    0
                } else if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cum}");
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count());
            let _ = writeln!(out, "{n}_sum {}", h.sum());
            let _ = writeln!(out, "{n}_count {}", h.count());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake;
    impl MetricSource for Fake {
        fn record(&self, out: &mut dyn FnMut(&str, u64)) {
            out("txns", 3);
            out("ops", 12);
        }
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::default();
        h.observe(0);
        h.observe(1);
        h.observe(2);
        h.observe(3);
        h.observe(1024);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1030);
        assert_eq!(h.quantile(0.0), 0);
        // 1024 is the largest: its bucket's ceiling is 2^11.
        assert_eq!(h.quantile(1.0), 2048);
    }

    #[test]
    fn quantile_of_an_empty_histogram_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0);
        }
        // Distinguishable from "all observations were 0" via count().
        let mut z = Histogram::default();
        z.observe(0);
        assert_eq!(z.quantile(0.5), 0);
        assert_eq!(z.count(), 1);
    }

    #[test]
    fn quantile_overestimates_by_less_than_two() {
        let mut h = Histogram::default();
        for v in [1u64, 3, 5, 700, 1025] {
            h.observe(v);
            let q = h.quantile(1.0);
            assert!(v < q && q <= 2 * v, "v={v} q={q}");
        }
    }

    #[test]
    fn observe_n_and_from_parts_round_trip() {
        let mut a = Histogram::default();
        for _ in 0..4 {
            a.observe(100);
        }
        let mut b = Histogram::default();
        b.observe_n(100, 4);
        assert_eq!(a, b);
        let c = Histogram::from_parts(*a.bucket_counts(), a.count(), a.sum());
        assert_eq!(a, c);
    }

    #[test]
    fn histogram_merge_adds() {
        let mut a = Histogram::default();
        a.observe(5);
        let mut b = Histogram::default();
        b.observe(7);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.sum(), 12);
    }

    #[test]
    fn registry_absorbs_with_prefix() {
        let mut r = Registry::new();
        r.absorb("member0.", &Fake);
        r.absorb("member1.", &Fake);
        r.absorb("member1.", &Fake); // second absorb accumulates
        assert_eq!(r.counter("member0.txns"), 3);
        assert_eq!(r.counter("member1.ops"), 24);
        assert_eq!(r.counter("missing"), 0);
    }

    #[test]
    fn gauges_overwrite_and_merge_as_peak() {
        let mut a = Registry::new();
        a.set_gauge("queue.depth", 9);
        a.set_gauge("queue.depth", 4); // level metric: overwrites
        assert_eq!(a.gauge("queue.depth"), 4);
        a.gauge_max("queue.peak", 4);
        a.gauge_max("queue.peak", 2); // high-water mark: keeps 4
        assert_eq!(a.gauge("queue.peak"), 4);
        let mut b = Registry::new();
        b.set_gauge("queue.depth", 7);
        a.merge(&b);
        // Merge keeps the maximum, not the sum.
        assert_eq!(a.gauge("queue.depth"), 7);
        assert_eq!(a.gauge("missing"), 0);
        assert!(!a.is_empty());
        let table = a.render_table();
        assert!(table.contains("queue.depth (gauge)"));
        let keys: Vec<&str> = a.gauges().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["queue.depth", "queue.peak"]);
    }

    #[test]
    fn absorb_histogram_merges_prebuilt() {
        let mut h = Histogram::default();
        h.observe(10);
        h.observe(20);
        let mut r = Registry::new();
        r.observe("lat", 5);
        r.absorb_histogram("lat", &h);
        assert_eq!(r.histogram("lat").unwrap().count(), 3);
        assert_eq!(r.histogram("lat").unwrap().sum(), 35);
    }

    /// Parses the Prometheus text format back into a Registry — test
    /// scaffolding proving the export is lossless for our metric
    /// kinds.
    fn parse_prometheus(text: &str) -> Registry {
        let mut kinds: BTreeMap<String, String> = BTreeMap::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                let name = it.next().unwrap().to_string();
                kinds.insert(name, it.next().unwrap().to_string());
            }
        }
        let mut out = Registry::new();
        let mut hbuckets: BTreeMap<String, [u64; 65]> = BTreeMap::new();
        let mut hprev: BTreeMap<String, u64> = BTreeMap::new();
        let mut hsum: BTreeMap<String, u64> = BTreeMap::new();
        let mut hcount: BTreeMap<String, u64> = BTreeMap::new();
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').unwrap();
            let value: u64 = value.parse().unwrap();
            if let Some((name, rest)) = series.split_once('{') {
                let base = name.strip_suffix("_bucket").unwrap().to_string();
                let le = rest
                    .strip_prefix("le=\"")
                    .and_then(|r| r.strip_suffix("\"}"))
                    .unwrap();
                if le == "+Inf" {
                    continue; // cumulative total — equals _count
                }
                let le: u64 = le.parse().unwrap();
                // Invert the exporter's bound: le = 2^i - 1, so
                // le + 1 is a power of two whose trailing zero count
                // is the bucket index (le = 0 → bucket 0; the
                // saturated u64::MAX bound is bucket 64).
                let i = if le == u64::MAX {
                    64
                } else {
                    (le + 1).trailing_zeros() as usize
                };
                let prev = hprev.get(&base).copied().unwrap_or(0);
                hbuckets.entry(base.clone()).or_insert([0; 65])[i] = value - prev;
                hprev.insert(base, value);
            } else if let Some(base) = series
                .strip_suffix("_sum")
                .filter(|b| kinds.get(*b).map(String::as_str) == Some("histogram"))
            {
                hsum.insert(base.to_string(), value);
            } else if let Some(base) = series
                .strip_suffix("_count")
                .filter(|b| kinds.get(*b).map(String::as_str) == Some("histogram"))
            {
                hcount.insert(base.to_string(), value);
            } else {
                match kinds.get(series).map(String::as_str) {
                    Some("counter") => out.add(series, value),
                    Some("gauge") => out.set_gauge(series, value),
                    other => panic!("unrecognized series {series} ({other:?})"),
                }
            }
        }
        for (base, count) in hcount {
            let buckets = hbuckets.remove(&base).unwrap_or([0; 65]);
            let h = Histogram::from_parts(buckets, count, hsum[&base]);
            out.absorb_histogram(&base, &h);
        }
        out
    }

    #[test]
    fn prometheus_export_round_trips() {
        let mut r = Registry::new();
        r.add("waldo.wal_errors", 0);
        r.add("member0.kernel.dpapi_txns", 7);
        r.set_gauge("sluice.queue.peak_ops", 42);
        r.observe("waldo.latency_ns", 0);
        r.observe("waldo.latency_ns", 1);
        r.observe("waldo.latency_ns", 900);
        r.observe("waldo.latency_ns", 1u64 << 63); // top bucket
        r.observe("pql.plan-ns", 17); // '-' sanitizes to '_'
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE waldo_wal_errors counter"));
        assert!(text.contains("# TYPE sluice_queue_peak_ops gauge"));
        assert!(text.contains("# TYPE waldo_latency_ns histogram"));
        assert!(text.contains("waldo_latency_ns_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("pql_plan_ns_bucket"));
        let parsed = parse_prometheus(&text);
        // Re-rendering the parse is byte-identical (sanitization is
        // idempotent), and the reconstructed histogram answers
        // quantiles exactly as the original.
        assert_eq!(parsed.render_prometheus(), text);
        let h = parsed.histogram("waldo_latency_ns").unwrap();
        let orig = r.histogram("waldo.latency_ns").unwrap();
        assert_eq!(h.count(), orig.count());
        assert_eq!(h.sum(), orig.sum());
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), orig.quantile(q));
        }
    }

    #[test]
    fn registry_merge_and_render_are_deterministic() {
        let mut a = Registry::new();
        a.add("z.last", 1);
        a.add("a.first", 2);
        a.observe("lat", 100);
        let mut b = Registry::new();
        b.add("a.first", 3);
        b.observe("lat", 200);
        a.merge(&b);
        assert_eq!(a.counter("a.first"), 5);
        let t1 = a.render_table();
        let t2 = a.clone().render_table();
        assert_eq!(t1, t2);
        // Counters render in key order.
        let first = t1.find("a.first").unwrap();
        let last = t1.find("z.last").unwrap();
        assert!(first < last);
        assert!(t1.contains("lat"));
    }
}
