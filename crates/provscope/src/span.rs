//! The span model: scopes, windows, trace binding and latency
//! attribution.
//!
//! # Span model
//!
//! A [`Scope`] is a shared handle threaded through every layer of one
//! machine. Layers call [`Scope::open`]/[`Scope::close`] around their
//! work; because the whole commit path is synchronous, the open-span
//! *stack* gives each new span its parent for free.
//!
//! The complication is the trace id. A disclosure transaction's
//! natural identity is its volume-salted batch id — but Lasagna
//! allocates that id *deep inside* the call chain, after the kernel
//! and DPAPI spans have already opened. Spans are therefore born
//! **trace-pending**: they belong to the current *window* (the period
//! from the stack becoming non-empty to it emptying again) and wait
//! for [`Scope::bind_trace`], which Lasagna calls the moment it
//! frames a group. Binding retroactively stamps every pending span of
//! the window and registers the window's root so later, asynchronous
//! work (Waldo ingesting the group frame during a poll) can re-join
//! the tree via [`Scope::open_linked`] with nothing but the batch id
//! it finds in the log.
//!
//! Windows that never bind (single-op commits log plainly and
//! allocate no batch id; plain syscalls too) are stamped with a
//! *synthetic* trace id when the window closes — bit 62, disjoint
//! from the bit-63 batch-id space — so every span always ends up in
//! exactly one trace.
//!
//! # Threads
//!
//! A scope is `Send + Sync` and may be shared across worker threads
//! (the threaded cluster runtime ingests on one OS thread per
//! member). Span storage, ids and trace roots are global to the
//! scope, but the *window* — the open-span stack and its pending
//! trace binding — is per thread: each thread's synchronous call
//! chain parents only its own spans, so concurrent windows cannot
//! corrupt each other's parentage. Linked spans
//! ([`Scope::open_linked`]) never touch any stack and join the
//! registered root of their trace regardless of which thread opens
//! them. Under concurrency, span *ids* interleave
//! nondeterministically; single-threaded runs remain byte-identical
//! across same-seed executions.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;

/// Virtual nanoseconds, as read from the injected now-function.
pub type Nanos = u64;

/// Identity of one trace (one causally-connected span tree).
///
/// For batched disclosure transactions this is the volume-salted
/// batch id (`lasagna::batch_txn_id`: tag bit 63 | volume << 28 |
/// 28-bit sequence). Windows that never produce a batch get a
/// synthetic id with [`TraceId::SYNTHETIC_BIT`] set instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Tag bit of synthetic (non-batch) trace ids. Disjoint from the
    /// batch-id space, whose tag is bit 63.
    pub const SYNTHETIC_BIT: u64 = 1 << 62;

    /// True for trace ids that are volume-salted batch ids (bit 63).
    pub fn is_batch(self) -> bool {
        self.0 & (1 << 63) != 0
    }

    /// True for synthetic ids assigned to windows without a batch.
    pub fn is_synthetic(self) -> bool {
        !self.is_batch() && self.0 & Self::SYNTHETIC_BIT != 0
    }
}

/// Identity of one span within a [`Scope`] (sequential from 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

/// The trace context at a point of execution: which trace the current
/// window belongs to (if already bound), the innermost open span, and
/// its parent. This is what a disclosure transaction "carries" —
/// implicitly, via the synchronous stack, rather than as extra bytes
/// on the wire or in the log (which would break byte-equality of
/// traced and untraced runs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceCtx {
    /// The window's trace, once bound ([`Scope::bind_trace`]).
    pub trace: Option<TraceId>,
    /// The innermost open span.
    pub span: SpanId,
    /// Its parent span, if any.
    pub parent: Option<SpanId>,
}

/// One enter/exit record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Sequential span id (1-based).
    pub id: SpanId,
    /// Parent span within the same scope, if any.
    pub parent: Option<SpanId>,
    /// The trace this span belongs to. `None` only while the span's
    /// window is still open and unbound; every snapshot taken after
    /// the window closed has `Some`.
    pub trace: Option<TraceId>,
    /// The layer that recorded the span (`"kernel"`, `"dpapi"`,
    /// `"lasagna"`, `"pa-nfs"`, `"waldo"`, `"pql"`).
    pub layer: &'static str,
    /// Operation name within the layer (`"pass_commit"`, …).
    pub name: String,
    /// Virtual time at [`Scope::open`].
    pub start_ns: Nanos,
    /// Virtual time at [`Scope::close`]; `None` while open.
    pub end_ns: Option<Nanos>,
}

impl Span {
    /// Duration in virtual nanoseconds (0 while still open).
    pub fn duration_ns(&self) -> Nanos {
        self.end_ns.unwrap_or(self.start_ns) - self.start_ns
    }
}

/// Handle returned by [`Scope::open`]; pass it back to
/// [`Scope::close`]. A disabled scope hands out inert handles, so
/// instrumented code needs no `if enabled` branches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanHandle(Option<SpanId>);

impl SpanHandle {
    /// The inert handle (what a disabled scope returns).
    pub const NONE: SpanHandle = SpanHandle(None);

    /// The span id, when the scope was enabled.
    pub fn id(self) -> Option<SpanId> {
        self.0
    }
}

/// One thread's synchronous window: the open-span stack and the spans
/// waiting for a trace binding.
#[derive(Default)]
struct Window {
    /// Open spans of the current synchronous window, outermost first.
    stack: Vec<SpanId>,
    /// Window spans not yet assigned a trace.
    pending: Vec<SpanId>,
    /// The current window's trace, once bound.
    trace: Option<TraceId>,
}

struct Inner {
    now: Box<dyn Fn() -> Nanos + Send + Sync>,
    spans: Vec<Span>,
    /// Per-thread windows; an entry exists only while its thread has
    /// an open (or pending-stamp) window.
    windows: HashMap<ThreadId, Window>,
    /// Trace id → the root span detached work should link under.
    roots: BTreeMap<u64, SpanId>,
    next_synthetic: u64,
}

impl Inner {
    fn span_mut(&mut self, id: SpanId) -> &mut Span {
        &mut self.spans[(id.0 - 1) as usize]
    }

    fn window(&mut self, t: ThreadId) -> &mut Window {
        self.windows.entry(t).or_default()
    }

    /// Stamps an unbound window's spans with a synthetic trace when
    /// its stack empties, and retires the window.
    fn finish_window(&mut self, t: ThreadId) {
        let Some(w) = self.windows.remove(&t) else {
            return;
        };
        if !w.pending.is_empty() {
            self.next_synthetic += 1;
            let trace = TraceId(TraceId::SYNTHETIC_BIT | self.next_synthetic);
            self.roots.insert(trace.0, w.pending[0]);
            for id in w.pending {
                self.span_mut(id).trace = Some(trace);
            }
        }
    }
}

/// A shared tracing scope — cheap to clone, `Default`-disabled.
///
/// Every layer of one machine holds a clone of the same scope; see
/// the module docs for the window/binding model. A disabled scope
/// (the default) makes every operation a no-op on an immediate
/// `None`, so threading it through hot paths costs one branch.
#[derive(Clone, Default)]
pub struct Scope(Option<Arc<Mutex<Inner>>>);

impl Scope {
    /// A disabled scope: records nothing, costs (almost) nothing.
    pub fn disabled() -> Scope {
        Scope(None)
    }

    /// An enabled scope reading time from `now` — inject the virtual
    /// clock (`move || clock.now()`), never a wall clock, or traces
    /// stop being deterministic.
    pub fn enabled(now: impl Fn() -> Nanos + Send + Sync + 'static) -> Scope {
        Scope(Some(Arc::new(Mutex::new(Inner {
            now: Box::new(now),
            spans: Vec::new(),
            windows: HashMap::new(),
            roots: BTreeMap::new(),
            next_synthetic: 0,
        }))))
    }

    /// True when spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Opens a span as a child of the calling thread's innermost open
    /// span (or as a window root). Must be paired with
    /// [`Scope::close`] on the same thread.
    pub fn open(&self, layer: &'static str, name: &str) -> SpanHandle {
        let Some(inner) = &self.0 else {
            return SpanHandle::NONE;
        };
        let mut g = inner.lock().unwrap();
        let now = (g.now)();
        let id = SpanId(g.spans.len() as u64 + 1);
        let w = g.window(std::thread::current().id());
        let parent = w.stack.last().copied();
        let trace = w.trace;
        if trace.is_none() {
            w.pending.push(id);
        }
        w.stack.push(id);
        g.spans.push(Span {
            id,
            parent,
            trace,
            layer,
            name: name.to_string(),
            start_ns: now,
            end_ns: None,
        });
        SpanHandle(Some(id))
    }

    /// Opens a *detached* span linked to `trace`'s registered root —
    /// how asynchronous work (Waldo ingesting a group frame found in
    /// a log) re-joins the tree of the synchronous commit that
    /// produced it. Detached spans never join any stack — which also
    /// makes them safe to open from worker threads; if no root is
    /// registered for `trace` yet (e.g. the commit predates this
    /// scope), the span becomes that trace's root itself.
    pub fn open_linked(&self, layer: &'static str, name: &str, trace: TraceId) -> SpanHandle {
        let Some(inner) = &self.0 else {
            return SpanHandle::NONE;
        };
        let mut g = inner.lock().unwrap();
        let now = (g.now)();
        let id = SpanId(g.spans.len() as u64 + 1);
        let (parent, t) = match g.roots.get(&trace.0).copied() {
            // Adopt the root's canonical trace: a multi-volume
            // transaction registers several batch ids onto one root,
            // and the tree must stay single-trace.
            Some(root) => (Some(root), g.span_mut(root).trace.unwrap_or(trace)),
            None => (None, trace),
        };
        g.spans.push(Span {
            id,
            parent,
            trace: Some(t),
            layer,
            name: name.to_string(),
            start_ns: now,
            end_ns: None,
        });
        if parent.is_none() {
            g.roots.entry(trace.0).or_insert(id);
        }
        SpanHandle(Some(id))
    }

    /// Closes a span (stack or linked). Closing the outermost span of
    /// the calling thread's stack ends that thread's window, stamping
    /// unbound spans synthetically.
    pub fn close(&self, h: SpanHandle) {
        let Some(inner) = &self.0 else { return };
        let Some(id) = h.0 else { return };
        let mut g = inner.lock().unwrap();
        let now = (g.now)();
        g.span_mut(id).end_ns = Some(now);
        let tid = std::thread::current().id();
        let w = g.window(tid);
        if let Some(pos) = w.stack.iter().rposition(|s| *s == id) {
            w.stack.remove(pos);
        }
        if w.stack.is_empty() {
            g.finish_window(tid);
        }
    }

    /// Binds the calling thread's current window to `trace` — called
    /// by the layer that *allocates* the transaction's identity
    /// (Lasagna, when it frames a group record). All pending spans of
    /// the window are stamped retroactively; spans opened later in
    /// the window inherit the binding at birth. A second bind in one
    /// window (a transaction spanning volumes allocates one batch id
    /// per volume) keeps the first trace for the tree but registers
    /// the extra id onto the same root, so each batch's asynchronous
    /// ingest still links into the one tree.
    pub fn bind_trace(&self, trace: TraceId) {
        let Some(inner) = &self.0 else { return };
        let mut g = inner.lock().unwrap();
        let tid = std::thread::current().id();
        let w = g.window(tid);
        let Some(&root) = w.stack.first() else {
            // No open window on this thread: nothing to bind. Drop
            // the freshly created empty window again.
            g.windows.remove(&tid);
            return;
        };
        if w.trace.is_none() {
            w.trace = Some(trace);
            let pending = std::mem::take(&mut w.pending);
            for id in pending {
                g.span_mut(id).trace = Some(trace);
            }
        }
        g.roots.entry(trace.0).or_insert(root);
    }

    /// The trace context at the current point of execution on the
    /// calling thread, if any span is open there.
    pub fn current_ctx(&self) -> Option<TraceCtx> {
        let inner = self.0.as_ref()?;
        let g = inner.lock().unwrap();
        let w = g.windows.get(&std::thread::current().id())?;
        let &id = w.stack.last()?;
        let s = &g.spans[(id.0 - 1) as usize];
        Some(TraceCtx {
            trace: s.trace.or(w.trace),
            span: id,
            parent: s.parent,
        })
    }

    /// A snapshot of every span recorded so far.
    pub fn snapshot(&self) -> Trace {
        match &self.0 {
            Some(inner) => Trace {
                spans: inner.lock().unwrap().spans.clone(),
            },
            None => Trace { spans: Vec::new() },
        }
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.0.as_ref().map_or(0, |i| i.lock().unwrap().spans.len())
    }

    /// True when nothing has been recorded (or the scope is disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all recorded spans and trace-root registrations (the
    /// next span starts a fresh trace universe). Call only between
    /// windows; clearing mid-commit severs the links pending
    /// asynchronous work would need.
    pub fn clear(&self) {
        if let Some(inner) = &self.0 {
            let mut g = inner.lock().unwrap();
            g.spans.clear();
            g.windows.clear();
            g.roots.clear();
            g.next_synthetic = 0;
        }
    }
}

/// Per-layer latency attribution over one [`Trace`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LayerLatency {
    /// The layer.
    pub layer: &'static str,
    /// Spans recorded by the layer.
    pub spans: u64,
    /// Sum of span durations (inclusive of child layers).
    pub total_ns: Nanos,
    /// Sum of *self* times: each span's duration minus the durations
    /// of its direct children — where the layer itself spent virtual
    /// time, the number the attribution table is about.
    pub self_ns: Nanos,
}

/// An immutable snapshot of a scope's spans, with analysis helpers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// All spans, in open order (span id order).
    pub spans: Vec<Span>,
}

impl Trace {
    fn get(&self, id: SpanId) -> Option<&Span> {
        self.spans.get((id.0 - 1) as usize).filter(|s| s.id == id)
    }

    /// Structural well-formedness: span ids sequential, every span
    /// closed with `end >= start`, every span traced, every parent an
    /// earlier span that started no later, and parent and child in
    /// the same trace. Returns the first violation.
    pub fn validate(&self) -> Result<(), String> {
        for (i, s) in self.spans.iter().enumerate() {
            if s.id.0 != i as u64 + 1 {
                return Err(format!("span #{i} has id {} (want {})", s.id.0, i + 1));
            }
            let Some(end) = s.end_ns else {
                return Err(format!(
                    "span {} ({}/{}) never closed",
                    s.id.0, s.layer, s.name
                ));
            };
            if end < s.start_ns {
                return Err(format!("span {} ends before it starts", s.id.0));
            }
            let Some(trace) = s.trace else {
                return Err(format!("span {} has no trace", s.id.0));
            };
            if let Some(p) = s.parent {
                let Some(parent) = self.get(p) else {
                    return Err(format!("span {} parent {} does not exist", s.id.0, p.0));
                };
                if p >= s.id {
                    return Err(format!("span {} parent {} is not earlier", s.id.0, p.0));
                }
                if parent.start_ns > s.start_ns {
                    return Err(format!("span {} starts before its parent {}", s.id.0, p.0));
                }
                if parent.trace != Some(trace) {
                    return Err(format!(
                        "span {} (trace {:#x}) and parent {} disagree on trace",
                        s.id.0, trace.0, p.0
                    ));
                }
            }
        }
        Ok(())
    }

    /// The distinct trace ids, ascending (synthetic ids sort below
    /// batch ids, whose tag bit is higher).
    pub fn traces(&self) -> Vec<TraceId> {
        let mut out: Vec<TraceId> = self.spans.iter().filter_map(|s| s.trace).collect();
        out.sort();
        out.dedup();
        out
    }

    /// The batch traces only — one per multi-op disclosure
    /// transaction that reached a volume.
    pub fn batch_traces(&self) -> Vec<TraceId> {
        self.traces().into_iter().filter(|t| t.is_batch()).collect()
    }

    /// Spans of one trace, in span-id order.
    pub fn spans_of(&self, trace: TraceId) -> Vec<&Span> {
        self.spans
            .iter()
            .filter(|s| s.trace == Some(trace))
            .collect()
    }

    /// The distinct layers that recorded spans in `trace`.
    pub fn layers_of(&self, trace: TraceId) -> Vec<&'static str> {
        let mut out: Vec<&'static str> = self.spans_of(trace).iter().map(|s| s.layer).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// True when `trace`'s spans form exactly one connected tree:
    /// precisely one root, every other span reachable from it through
    /// parent links within the trace.
    pub fn is_connected_tree(&self, trace: TraceId) -> bool {
        let spans = self.spans_of(trace);
        if spans.is_empty() {
            return false;
        }
        let roots = spans.iter().filter(|s| s.parent.is_none()).count();
        if roots != 1 {
            return false;
        }
        // Parent ids are strictly smaller, so one pass in id order
        // proves reachability: a span is connected iff its parent is
        // the root or already proven connected.
        let root = spans.iter().find(|s| s.parent.is_none()).unwrap().id;
        let mut connected = std::collections::BTreeSet::new();
        connected.insert(root);
        for s in &spans {
            if let Some(p) = s.parent {
                if connected.contains(&p) {
                    connected.insert(s.id);
                }
            }
        }
        connected.len() == spans.len()
    }

    /// Per-layer latency attribution: total and *self* (exclusive)
    /// virtual time per layer, ordered by descending self time. This
    /// is the "where did this batch spend its time" table.
    pub fn layer_latency(&self) -> Vec<LayerLatency> {
        let mut child_ns: Vec<Nanos> = vec![0; self.spans.len()];
        for s in &self.spans {
            if let Some(p) = s.parent {
                child_ns[(p.0 - 1) as usize] += s.duration_ns();
            }
        }
        let mut by_layer: BTreeMap<&'static str, LayerLatency> = BTreeMap::new();
        for (i, s) in self.spans.iter().enumerate() {
            let e = by_layer.entry(s.layer).or_insert(LayerLatency {
                layer: s.layer,
                spans: 0,
                total_ns: 0,
                self_ns: 0,
            });
            e.spans += 1;
            let d = s.duration_ns();
            e.total_ns += d;
            // Linked children (Waldo ingest) may outlive the parent
            // window; saturate rather than attribute negative time.
            e.self_ns += d.saturating_sub(child_ns[i]);
        }
        let mut out: Vec<LayerLatency> = by_layer.into_values().collect();
        out.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.layer.cmp(b.layer)));
        out
    }

    /// Renders [`Trace::layer_latency`] as an aligned text table.
    pub fn render_latency_table(&self) -> String {
        let rows = self.layer_latency();
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:>7} {:>14} {:>14} {:>8}\n",
            "layer", "spans", "total_us", "self_us", "self%"
        ));
        let grand_self: Nanos = rows.iter().map(|r| r.self_ns).sum();
        for r in &rows {
            let pct = if grand_self == 0 {
                0.0
            } else {
                r.self_ns as f64 / grand_self as f64 * 100.0
            };
            out.push_str(&format!(
                "{:<10} {:>7} {:>14.3} {:>14.3} {:>7.1}%\n",
                r.layer,
                r.spans,
                r.total_ns as f64 / 1_000.0,
                r.self_ns as f64 / 1_000.0,
                pct
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn ticking() -> (Arc<AtomicU64>, Scope) {
        let t = Arc::new(AtomicU64::new(0));
        let t2 = t.clone();
        let scope = Scope::enabled(move || t2.fetch_add(10, Ordering::Relaxed));
        (t, scope)
    }

    #[test]
    fn disabled_scope_is_inert() {
        let s = Scope::disabled();
        let h = s.open("kernel", "x");
        assert_eq!(h, SpanHandle::NONE);
        s.bind_trace(TraceId(1 << 63));
        s.close(h);
        assert!(s.snapshot().spans.is_empty());
        assert!(!s.is_enabled());
    }

    #[test]
    fn nesting_gives_parents_and_binding_stamps_the_window() {
        let (_, s) = ticking();
        let a = s.open("kernel", "pass_commit");
        let b = s.open("dpapi", "dp_commit");
        let batch = TraceId((1 << 63) | 42);
        s.bind_trace(batch);
        let c = s.open("lasagna", "pass_commit");
        s.close(c);
        s.close(b);
        s.close(a);
        let t = s.snapshot();
        t.validate().unwrap();
        assert_eq!(t.traces(), vec![batch]);
        assert!(t.is_connected_tree(batch));
        assert_eq!(t.spans[1].parent, Some(SpanId(1)));
        assert_eq!(t.spans[2].parent, Some(SpanId(2)));
        assert_eq!(t.layers_of(batch), vec!["dpapi", "kernel", "lasagna"]);
    }

    #[test]
    fn unbound_window_gets_a_synthetic_trace() {
        let (_, s) = ticking();
        let a = s.open("kernel", "read");
        s.close(a);
        let t = s.snapshot();
        t.validate().unwrap();
        let traces = t.traces();
        assert_eq!(traces.len(), 1);
        assert!(traces[0].is_synthetic());
        assert!(!traces[0].is_batch());
    }

    #[test]
    fn linked_spans_join_the_batch_tree() {
        let (_, s) = ticking();
        let batch = TraceId((1 << 63) | 7);
        let a = s.open("kernel", "pass_commit");
        s.bind_trace(batch);
        s.close(a);
        // Later, asynchronously: Waldo ingests the group frame.
        let w = s.open_linked("waldo", "ingest_batch", batch);
        s.close(w);
        let t = s.snapshot();
        t.validate().unwrap();
        assert!(t.is_connected_tree(batch));
        assert_eq!(t.spans_of(batch).len(), 2);
        assert_eq!(t.spans[1].parent, Some(SpanId(1)));
    }

    #[test]
    fn linked_span_without_a_root_becomes_one() {
        let (_, s) = ticking();
        let batch = TraceId((1 << 63) | 9);
        let w = s.open_linked("waldo", "ingest_batch", batch);
        s.close(w);
        let t = s.snapshot();
        t.validate().unwrap();
        assert!(t.is_connected_tree(batch));
    }

    #[test]
    fn second_bind_in_one_window_aliases_onto_the_first_root() {
        let (_, s) = ticking();
        let b1 = TraceId((1 << 63) | 1);
        let b2 = TraceId((1 << 63) | 2);
        let a = s.open("kernel", "pass_commit");
        s.bind_trace(b1);
        s.bind_trace(b2); // second volume of the same transaction
        s.close(a);
        let w = s.open_linked("waldo", "ingest_batch", b2);
        s.close(w);
        let t = s.snapshot();
        t.validate().unwrap();
        // One tree under b1; the b2 ingest adopted the canonical trace.
        assert_eq!(t.traces(), vec![b1]);
        assert!(t.is_connected_tree(b1));
    }

    #[test]
    fn current_ctx_reports_the_open_stack() {
        let (_, s) = ticking();
        assert!(s.current_ctx().is_none());
        let a = s.open("kernel", "pass_commit");
        let ctx = s.current_ctx().unwrap();
        assert_eq!(ctx.span, SpanId(1));
        assert_eq!(ctx.parent, None);
        assert_eq!(ctx.trace, None);
        let batch = TraceId((1 << 63) | 3);
        s.bind_trace(batch);
        let b = s.open("dpapi", "dp_commit");
        let ctx = s.current_ctx().unwrap();
        assert_eq!(ctx.span, SpanId(2));
        assert_eq!(ctx.parent, Some(SpanId(1)));
        assert_eq!(ctx.trace, Some(batch));
        s.close(b);
        s.close(a);
        assert!(s.current_ctx().is_none());
    }

    #[test]
    fn layer_latency_attributes_self_time() {
        // kernel [0,100); dpapi [10,90) nested → kernel self 20,
        // dpapi self 80.
        let t = Arc::new(AtomicU64::new(0));
        let t2 = t.clone();
        let s = Scope::enabled(move || t2.load(Ordering::Relaxed));
        let a = s.open("kernel", "pass_commit");
        t.store(10, Ordering::Relaxed);
        let b = s.open("dpapi", "dp_commit");
        t.store(90, Ordering::Relaxed);
        s.close(b);
        t.store(100, Ordering::Relaxed);
        s.close(a);
        let lat = s.snapshot().layer_latency();
        let kernel = lat.iter().find(|l| l.layer == "kernel").unwrap();
        let dpapi = lat.iter().find(|l| l.layer == "dpapi").unwrap();
        assert_eq!(kernel.total_ns, 100);
        assert_eq!(kernel.self_ns, 20);
        assert_eq!(dpapi.self_ns, 80);
        // The table renders and mentions both layers.
        let table = s.snapshot().render_latency_table();
        assert!(table.contains("kernel") && table.contains("dpapi"));
    }

    #[test]
    fn validate_rejects_malformed_trees() {
        let (_, s) = ticking();
        let a = s.open("kernel", "x");
        s.close(a);
        let mut t = s.snapshot();
        t.spans[0].parent = Some(SpanId(5));
        assert!(t.validate().is_err());
        let mut t2 = s.snapshot();
        t2.spans[0].end_ns = None;
        assert!(t2.validate().is_err());
    }

    #[test]
    fn clear_resets_the_universe() {
        let (_, s) = ticking();
        let a = s.open("kernel", "x");
        s.close(a);
        s.clear();
        assert!(s.is_empty());
        let b = s.open("kernel", "y");
        s.close(b);
        assert_eq!(s.snapshot().spans[0].id, SpanId(1));
    }

    /// Concurrent windows on separate threads never cross-parent:
    /// each thread's nested spans parent within that thread, every
    /// window stamps its own trace, and the combined snapshot still
    /// validates.
    #[test]
    fn threads_keep_independent_windows() {
        let (_, s) = ticking();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = s.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        let a = s.open("waldo", "drain_logs");
                        let b = s.open("waldo", "group_commit");
                        s.close(b);
                        s.close(a);
                    }
                });
            }
        });
        let t = s.snapshot();
        t.validate().unwrap();
        assert_eq!(t.spans.len(), 4 * 50 * 2);
        // Every window became its own 2-span synthetic tree.
        let traces = t.traces();
        assert_eq!(traces.len(), 4 * 50);
        for trace in traces {
            assert!(trace.is_synthetic());
            assert!(t.is_connected_tree(trace));
            assert_eq!(t.spans_of(trace).len(), 2);
        }
    }

    /// Linked spans opened concurrently from worker threads all join
    /// the one registered root of their batch trace.
    #[test]
    fn threaded_linked_spans_join_one_tree() {
        let (_, s) = ticking();
        let batch = TraceId((1 << 63) | 11);
        let a = s.open("kernel", "pass_commit");
        s.bind_trace(batch);
        s.close(a);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = s.clone();
                scope.spawn(move || {
                    for _ in 0..25 {
                        let w = s.open_linked("waldo", "ingest_batch", batch);
                        s.close(w);
                    }
                });
            }
        });
        let t = s.snapshot();
        t.validate().unwrap();
        assert!(t.is_connected_tree(batch));
        assert_eq!(t.spans_of(batch).len(), 1 + 4 * 25);
    }
}
