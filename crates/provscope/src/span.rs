//! The span model: scopes, windows, trace binding, latency
//! attribution, and the bounded flight recorder.
//!
//! # Span model
//!
//! A [`Scope`] is a shared handle threaded through every layer of one
//! machine. Layers call [`Scope::open`]/[`Scope::close`] around their
//! work; because the whole commit path is synchronous, the open-span
//! *stack* gives each new span its parent for free.
//!
//! The complication is the trace id. A disclosure transaction's
//! natural identity is its volume-salted batch id — but Lasagna
//! allocates that id *deep inside* the call chain, after the kernel
//! and DPAPI spans have already opened. Spans are therefore born
//! **trace-pending**: they belong to the current *window* (the period
//! from the stack becoming non-empty to it emptying again) and wait
//! for [`Scope::bind_trace`], which Lasagna calls the moment it
//! frames a group. Binding retroactively stamps every pending span of
//! the window and registers the window's root so later, asynchronous
//! work (Waldo ingesting the group frame during a poll) can re-join
//! the tree via [`Scope::open_linked`] with nothing but the batch id
//! it finds in the log.
//!
//! Windows that never bind (single-op commits log plainly and
//! allocate no batch id; plain syscalls too) are stamped with a
//! *synthetic* trace id when the window closes — bit 62, disjoint
//! from the bit-63 batch-id space — so every span always ends up in
//! exactly one trace.
//!
//! # Flight recorder
//!
//! [`Scope::enabled`] retains every span forever — right for tests,
//! wrong for an always-on service. [`Scope::recording`] bounds span
//! memory with a [`RecorderConfig`]:
//!
//! * **Ring retention.** Completed trace trees (no open spans, no
//!   live window still bound to the trace) move into a ring. When a
//!   new span would push the live span count past `capacity`, whole
//!   completed trees are evicted oldest-first — a tree is dropped in
//!   its entirety or kept in its entirety, never torn. Spans of
//!   still-incomplete trees are never evicted; if *nothing* is
//!   evictable at capacity, the new span is **shed** (the caller gets
//!   [`SpanHandle::NONE`], its children parent to the grandparent, and
//!   `spans_shed` counts the loss). `spans_high_water ≤ capacity`
//!   therefore holds unconditionally.
//! * **Deterministic head sampling.** On completion a tree is kept
//!   iff `splitmix64(seed ^ trace_id) % 1_000_000 <
//!   sample_per_million`. The key is the volume-salted trace id and a
//!   configured seed — zero ambient entropy, so two same-seed runs
//!   retain byte-identical sampled trace sets.
//! * **Tail-based slow-trace retention.** A completed tree whose
//!   *root* span duration (on the injected virtual clock) reaches
//!   `slow_threshold_ns` is pinned into a separate slow ring
//!   regardless of the sampling verdict — a slow-batch log for free.
//!   The slow ring is bounded by `slow_capacity` spans (oldest slow
//!   trees evicted first, always keeping the newest).
//!
//! A completed tree that later gains linked spans (a Waldo poll
//! ingesting a group frame long after the commit window closed) is
//! *revived* out of its ring back into the live set, extended, and
//! re-completed — the sampling verdict is recomputed from the same
//! key, so determinism is unaffected. Eviction drops the trace's root
//! registration too: late joiners of a dropped trace start a fresh
//! (deterministically re-sampled) fragment tree.
//!
//! The recorder never advances the clock, never allocates ids in the
//! observed system, and never writes to any store — the provtorture
//! byte-equality oracle holds with the recorder on.
//!
//! # Threads
//!
//! A scope is `Send + Sync` and may be shared across worker threads
//! (the threaded cluster runtime ingests on one OS thread per
//! member). Span storage, ids and trace roots are global to the
//! scope, but the *window* — the open-span stack and its pending
//! trace binding — is per thread: each thread's synchronous call
//! chain parents only its own spans, so concurrent windows cannot
//! corrupt each other's parentage. Linked spans
//! ([`Scope::open_linked`]) never touch any stack and join the
//! registered root of their trace regardless of which thread opens
//! them. Under concurrency, span *ids* interleave
//! nondeterministically; single-threaded runs remain byte-identical
//! across same-seed executions. The *set* of sampled trace ids is
//! deterministic even under threading (the verdict is a pure function
//! of the trace id), though ring ordering may interleave.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;

/// Virtual nanoseconds, as read from the injected now-function.
pub type Nanos = u64;

/// Identity of one trace (one causally-connected span tree).
///
/// For batched disclosure transactions this is the volume-salted
/// batch id (`lasagna::batch_txn_id`: tag bit 63 | volume << 28 |
/// 28-bit sequence). Windows that never produce a batch get a
/// synthetic id with [`TraceId::SYNTHETIC_BIT`] set instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Tag bit of synthetic (non-batch) trace ids. Disjoint from the
    /// batch-id space, whose tag is bit 63.
    pub const SYNTHETIC_BIT: u64 = 1 << 62;

    /// True for trace ids that are volume-salted batch ids (bit 63).
    pub fn is_batch(self) -> bool {
        self.0 & (1 << 63) != 0
    }

    /// True for synthetic ids assigned to windows without a batch.
    pub fn is_synthetic(self) -> bool {
        !self.is_batch() && self.0 & Self::SYNTHETIC_BIT != 0
    }
}

/// Identity of one span within a [`Scope`] (allocated sequentially
/// from 1; after flight-recorder eviction the *live* id set may be
/// sparse, but ids remain strictly increasing in open order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

/// The trace context at a point of execution: which trace the current
/// window belongs to (if already bound), the innermost open span, and
/// its parent. This is what a disclosure transaction "carries" —
/// implicitly, via the synchronous stack, rather than as extra bytes
/// on the wire or in the log (which would break byte-equality of
/// traced and untraced runs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceCtx {
    /// The window's trace, once bound ([`Scope::bind_trace`]).
    pub trace: Option<TraceId>,
    /// The innermost open span.
    pub span: SpanId,
    /// Its parent span, if any.
    pub parent: Option<SpanId>,
}

/// One enter/exit record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Span id (strictly increasing in open order).
    pub id: SpanId,
    /// Parent span within the same scope, if any.
    pub parent: Option<SpanId>,
    /// The trace this span belongs to. `None` only while the span's
    /// window is still open and unbound; every snapshot taken after
    /// the window closed has `Some`.
    pub trace: Option<TraceId>,
    /// The layer that recorded the span (`"kernel"`, `"dpapi"`,
    /// `"lasagna"`, `"pa-nfs"`, `"waldo"`, `"pql"`).
    pub layer: &'static str,
    /// Operation name within the layer (`"pass_commit"`, …).
    pub name: String,
    /// Virtual time at [`Scope::open`].
    pub start_ns: Nanos,
    /// Virtual time at [`Scope::close`]; `None` while open.
    pub end_ns: Option<Nanos>,
}

impl Span {
    /// Duration in virtual nanoseconds (0 while still open).
    pub fn duration_ns(&self) -> Nanos {
        self.end_ns.unwrap_or(self.start_ns) - self.start_ns
    }
}

/// Handle returned by [`Scope::open`]; pass it back to
/// [`Scope::close`]. A disabled scope hands out inert handles, so
/// instrumented code needs no `if enabled` branches. A recording
/// scope at capacity with nothing evictable also hands out inert
/// handles (span shedding) rather than growing without bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanHandle(Option<SpanId>);

impl SpanHandle {
    /// The inert handle (what a disabled scope returns).
    pub const NONE: SpanHandle = SpanHandle(None);

    /// The span id, when the scope was enabled.
    pub fn id(self) -> Option<SpanId> {
        self.0
    }
}

/// splitmix64 finalizer — the flight recorder's sampling hash. Kept
/// private and local (waldo depends on provscope, not vice versa).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Configuration of the bounded flight recorder
/// ([`Scope::recording`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecorderConfig {
    /// Hard bound on live spans. Whole completed trees are evicted
    /// oldest-first to stay under it; incoming spans are shed when
    /// nothing is evictable. `provscope.spans_high_water ≤ capacity`
    /// always holds.
    pub capacity: usize,
    /// Head-sampling rate in parts per million: a completed tree is
    /// retained iff `splitmix64(seed ^ trace_id) % 1_000_000 <
    /// sample_per_million`. `1_000_000` (the default) keeps every
    /// tree; `0` keeps none (slow trees are still pinned).
    pub sample_per_million: u32,
    /// Salt for the sampling hash. Same seed ⇒ byte-identical sampled
    /// trace set across runs.
    pub seed: u64,
    /// Root-span duration (virtual ns) at or above which a completed
    /// tree is pinned into the slow ring regardless of sampling.
    /// `u64::MAX` (the default) disables tail retention.
    pub slow_threshold_ns: Nanos,
    /// Bound on total spans held by the slow ring; oldest slow trees
    /// are evicted first (the newest slow tree is always kept).
    pub slow_capacity: usize,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            capacity: 65_536,
            sample_per_million: 1_000_000,
            seed: 0,
            slow_threshold_ns: u64::MAX,
            slow_capacity: 16_384,
        }
    }
}

impl RecorderConfig {
    /// The deterministic head-sampling verdict for `trace`: a pure
    /// function of the trace id and the configured seed — no ambient
    /// entropy, no state.
    pub fn samples(&self, trace: TraceId) -> bool {
        if self.sample_per_million >= 1_000_000 {
            return true;
        }
        splitmix64(self.seed ^ trace.0) % 1_000_000 < u64::from(self.sample_per_million)
    }
}

/// Counters exposing the flight recorder's behavior (all zero on a
/// disabled scope; only the span-memory fields are live on an
/// unbounded [`Scope::enabled`] scope).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecorderStats {
    /// Spans currently held (live + retained rings).
    pub spans_live: u64,
    /// Maximum of `spans_live` ever observed.
    pub spans_high_water: u64,
    /// Completed trees evicted from a ring to make room.
    pub trees_evicted: u64,
    /// Completed trees dropped by the head-sampling verdict.
    pub trees_sampled_out: u64,
    /// Completed sampled trees currently in the main ring.
    pub trees_retained: u64,
    /// Slow trees currently pinned in the slow ring.
    pub slow_trees: u64,
    /// Spans refused at capacity because nothing was evictable
    /// (evictions-before-completion pressure).
    pub spans_shed: u64,
}

/// Digest of one tree pinned by tail-based slow-trace retention.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlowTraceInfo {
    /// The tree's trace id.
    pub trace: TraceId,
    /// Layer of the root span (`"?"` if the root was shed).
    pub root_layer: &'static str,
    /// Name of the root span.
    pub root_name: String,
    /// Root-span duration in virtual nanoseconds.
    pub duration_ns: Nanos,
    /// Spans in the tree.
    pub spans: u64,
}

/// One thread's synchronous window: the open-span stack and the spans
/// waiting for a trace binding.
#[derive(Default)]
struct Window {
    /// Open spans of the current synchronous window, outermost first.
    stack: Vec<SpanId>,
    /// Window spans not yet assigned a trace.
    pending: Vec<SpanId>,
    /// The current window's trace, once bound.
    trace: Option<TraceId>,
}

/// Bookkeeping for one not-yet-completed trace tree.
#[derive(Default)]
struct TreeState {
    /// Span ids of the tree, in add order.
    spans: Vec<u64>,
    /// Spans of the tree still open.
    open: usize,
    /// Live windows currently bound to the trace.
    windows: usize,
}

/// A slow tree pinned in the tail-retention ring.
struct SlowTree {
    trace: u64,
    root_layer: &'static str,
    root_name: String,
    duration_ns: Nanos,
    span_ids: Vec<u64>,
}

/// The bounded-retention state of a recording scope.
struct Recorder {
    cfg: RecorderConfig,
    /// Live (incomplete) trees, keyed by canonical trace id.
    trees: BTreeMap<u64, TreeState>,
    /// Completed sampled trees, oldest first.
    ring: VecDeque<(u64, Vec<u64>)>,
    /// Completed slow trees, oldest first.
    slow: VecDeque<SlowTree>,
    /// Total spans held by `slow`.
    slow_spans: usize,
    trees_evicted: u64,
    trees_sampled_out: u64,
    spans_shed: u64,
}

impl Recorder {
    fn new(cfg: RecorderConfig) -> Recorder {
        Recorder {
            cfg,
            trees: BTreeMap::new(),
            ring: VecDeque::new(),
            slow: VecDeque::new(),
            slow_spans: 0,
            trees_evicted: 0,
            trees_sampled_out: 0,
            spans_shed: 0,
        }
    }

    /// Moves a retained (completed) tree back into the live set so
    /// late linked spans can extend it instead of tearing it.
    fn revive(&mut self, t: u64) {
        if self.trees.contains_key(&t) {
            return;
        }
        if let Some(pos) = self.ring.iter().position(|e| e.0 == t) {
            let (_, ids) = self.ring.remove(pos).unwrap();
            self.trees.insert(
                t,
                TreeState {
                    spans: ids,
                    open: 0,
                    windows: 0,
                },
            );
        } else if let Some(pos) = self.slow.iter().position(|e| e.trace == t) {
            let st = self.slow.remove(pos).unwrap();
            self.slow_spans -= st.span_ids.len();
            self.trees.insert(
                t,
                TreeState {
                    spans: st.span_ids,
                    open: 0,
                    windows: 0,
                },
            );
        }
    }

    /// Evicts the oldest retained tree (main ring first, then the
    /// slow ring), returning its span ids, or `None` if nothing is
    /// evictable.
    fn evict_oldest_retained(&mut self) -> Option<Vec<u64>> {
        if let Some((_, ids)) = self.ring.pop_front() {
            self.trees_evicted += 1;
            return Some(ids);
        }
        if let Some(st) = self.slow.pop_front() {
            self.slow_spans -= st.span_ids.len();
            self.trees_evicted += 1;
            return Some(st.span_ids);
        }
        None
    }

    /// Places a completed tree (slow ring, sampled ring, or dropped)
    /// and returns the span ids the caller must drop from storage.
    fn complete(
        &mut self,
        t: u64,
        dur: Nanos,
        span_ids: Vec<u64>,
        root_layer: &'static str,
        root_name: String,
    ) -> Vec<u64> {
        let mut drops = Vec::new();
        if dur >= self.cfg.slow_threshold_ns {
            self.slow_spans += span_ids.len();
            self.slow.push_back(SlowTree {
                trace: t,
                root_layer,
                root_name,
                duration_ns: dur,
                span_ids,
            });
            while self.slow_spans > self.cfg.slow_capacity.max(1) && self.slow.len() > 1 {
                let old = self.slow.pop_front().unwrap();
                self.slow_spans -= old.span_ids.len();
                self.trees_evicted += 1;
                drops.extend(old.span_ids);
            }
        } else if self.cfg.samples(TraceId(t)) {
            self.ring.push_back((t, span_ids));
        } else {
            self.trees_sampled_out += 1;
            drops = span_ids;
        }
        drops
    }
}

struct Inner {
    now: Box<dyn Fn() -> Nanos + Send + Sync>,
    /// Span storage keyed by id — sparse once the recorder evicts.
    spans: BTreeMap<u64, Span>,
    /// Next span id to allocate (ids are never reused).
    next_id: u64,
    /// High-water mark of `spans.len()`.
    high_water: u64,
    /// Per-thread windows; an entry exists only while its thread has
    /// an open (or pending-stamp) window.
    windows: HashMap<ThreadId, Window>,
    /// Trace id → the root span detached work should link under.
    roots: BTreeMap<u64, SpanId>,
    next_synthetic: u64,
    /// Bounded-retention state; `None` on unbounded scopes.
    recorder: Option<Recorder>,
}

impl Inner {
    fn span_mut(&mut self, id: SpanId) -> &mut Span {
        self.spans.get_mut(&id.0).expect("live span")
    }

    fn window(&mut self, t: ThreadId) -> &mut Window {
        self.windows.entry(t).or_default()
    }

    fn alloc_id(&mut self) -> SpanId {
        self.next_id += 1;
        SpanId(self.next_id)
    }

    fn insert_span(&mut self, s: Span) {
        self.spans.insert(s.id.0, s);
        self.high_water = self.high_water.max(self.spans.len() as u64);
    }

    /// Removes evicted/dropped spans and every root registration
    /// (including multi-bind aliases) that points at them.
    fn drop_spans(&mut self, ids: &[u64]) {
        if ids.is_empty() {
            return;
        }
        let set: BTreeSet<u64> = ids.iter().copied().collect();
        for id in ids {
            self.spans.remove(id);
        }
        self.roots.retain(|_, sid| !set.contains(&sid.0));
    }

    /// Makes room for one new span. Returns `false` (shed) when the
    /// recorder is at capacity with nothing evictable.
    fn reserve_slot(&mut self) -> bool {
        loop {
            let cap = match &self.recorder {
                Some(r) => r.cfg.capacity.max(1),
                None => return true,
            };
            if self.spans.len() < cap {
                return true;
            }
            match self.recorder.as_mut().unwrap().evict_oldest_retained() {
                Some(ids) => self.drop_spans(&ids),
                None => {
                    self.recorder.as_mut().unwrap().spans_shed += 1;
                    return false;
                }
            }
        }
    }

    /// Registers `id` with trace `t`'s live tree (reviving a retained
    /// tree if a late joiner arrives).
    fn tree_add(&mut self, t: u64, id: u64, open: bool) {
        let Some(rec) = self.recorder.as_mut() else {
            return;
        };
        rec.revive(t);
        let ts = rec.trees.entry(t).or_default();
        ts.spans.push(id);
        if open {
            ts.open += 1;
        }
    }

    fn tree_close(&mut self, t: u64) {
        if let Some(rec) = self.recorder.as_mut() {
            if let Some(ts) = rec.trees.get_mut(&t) {
                ts.open = ts.open.saturating_sub(1);
            }
        }
        self.maybe_complete(t);
    }

    fn tree_bind_window(&mut self, t: u64) {
        if let Some(rec) = self.recorder.as_mut() {
            rec.revive(t);
            rec.trees.entry(t).or_default().windows += 1;
        }
    }

    fn tree_unbind_window(&mut self, t: u64) {
        if let Some(rec) = self.recorder.as_mut() {
            if let Some(ts) = rec.trees.get_mut(&t) {
                ts.windows = ts.windows.saturating_sub(1);
            }
        }
        self.maybe_complete(t);
    }

    /// Completes trace `t`'s tree (moves it into a ring or drops it)
    /// once no span of it is open and no window is bound to it.
    fn maybe_complete(&mut self, t: u64) {
        let done = matches!(
            self.recorder.as_ref().and_then(|r| r.trees.get(&t)),
            Some(ts) if ts.open == 0 && ts.windows == 0
        );
        if !done {
            return;
        }
        let root = self.roots.get(&t).copied();
        let (dur, layer, name) = match root.and_then(|sid| self.spans.get(&sid.0)) {
            Some(s) => (s.duration_ns(), s.layer, s.name.clone()),
            None => (0, "?", String::new()),
        };
        let rec = self.recorder.as_mut().unwrap();
        let tree = rec.trees.remove(&t).unwrap();
        let drops = rec.complete(t, dur, tree.spans, layer, name);
        self.drop_spans(&drops);
    }

    /// Stamps an unbound window's spans with a synthetic trace when
    /// its stack empties, and retires the window.
    fn finish_window(&mut self, t: ThreadId) {
        let Some(w) = self.windows.remove(&t) else {
            return;
        };
        if let Some(trace) = w.trace {
            self.tree_unbind_window(trace.0);
        } else if !w.pending.is_empty() {
            self.next_synthetic += 1;
            let trace = TraceId(TraceId::SYNTHETIC_BIT | self.next_synthetic);
            self.roots.insert(trace.0, w.pending[0]);
            for &id in &w.pending {
                self.span_mut(id).trace = Some(trace);
            }
            for id in w.pending {
                let open = self.spans.get(&id.0).is_some_and(|s| s.end_ns.is_none());
                self.tree_add(trace.0, id.0, open);
            }
            self.maybe_complete(trace.0);
        }
    }
}

/// A shared tracing scope — cheap to clone, `Default`-disabled.
///
/// Every layer of one machine holds a clone of the same scope; see
/// the module docs for the window/binding model and the flight
/// recorder. A disabled scope (the default) makes every operation a
/// no-op on an immediate `None`, so threading it through hot paths
/// costs one branch.
#[derive(Clone, Default)]
pub struct Scope(Option<Arc<Mutex<Inner>>>);

impl Scope {
    /// A disabled scope: records nothing, costs (almost) nothing.
    pub fn disabled() -> Scope {
        Scope(None)
    }

    /// An enabled scope reading time from `now` — inject the virtual
    /// clock (`move || clock.now()`), never a wall clock, or traces
    /// stop being deterministic. Retention is unbounded; production
    /// paths should prefer [`Scope::recording`].
    pub fn enabled(now: impl Fn() -> Nanos + Send + Sync + 'static) -> Scope {
        Scope::build(now, None)
    }

    /// An enabled scope with the bounded flight recorder: whole-tree
    /// ring retention under `cfg.capacity`, deterministic head
    /// sampling, and tail-based slow-trace pinning. See the module
    /// docs for semantics.
    pub fn recording(
        now: impl Fn() -> Nanos + Send + Sync + 'static,
        cfg: RecorderConfig,
    ) -> Scope {
        Scope::build(now, Some(Recorder::new(cfg)))
    }

    fn build(now: impl Fn() -> Nanos + Send + Sync + 'static, recorder: Option<Recorder>) -> Scope {
        Scope(Some(Arc::new(Mutex::new(Inner {
            now: Box::new(now),
            spans: BTreeMap::new(),
            next_id: 0,
            high_water: 0,
            windows: HashMap::new(),
            roots: BTreeMap::new(),
            next_synthetic: 0,
            recorder,
        }))))
    }

    /// True when spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The flight-recorder configuration, when this scope was built
    /// with [`Scope::recording`].
    pub fn recorder_config(&self) -> Option<RecorderConfig> {
        let inner = self.0.as_ref()?;
        let g = inner.lock().unwrap();
        g.recorder.as_ref().map(|r| r.cfg)
    }

    /// Flight-recorder counters (all zero when the scope is disabled;
    /// span-memory fields are live even without a recorder).
    pub fn recorder_stats(&self) -> RecorderStats {
        let Some(inner) = &self.0 else {
            return RecorderStats::default();
        };
        let g = inner.lock().unwrap();
        let mut st = RecorderStats {
            spans_live: g.spans.len() as u64,
            spans_high_water: g.high_water,
            ..RecorderStats::default()
        };
        if let Some(r) = &g.recorder {
            st.trees_evicted = r.trees_evicted;
            st.trees_sampled_out = r.trees_sampled_out;
            st.trees_retained = r.ring.len() as u64;
            st.slow_trees = r.slow.len() as u64;
            st.spans_shed = r.spans_shed;
        }
        st
    }

    /// Digests of the trees currently pinned by tail-based slow-trace
    /// retention, oldest first.
    pub fn slow_traces(&self) -> Vec<SlowTraceInfo> {
        let Some(inner) = &self.0 else {
            return Vec::new();
        };
        let g = inner.lock().unwrap();
        let Some(r) = &g.recorder else {
            return Vec::new();
        };
        r.slow
            .iter()
            .map(|s| SlowTraceInfo {
                trace: TraceId(s.trace),
                root_layer: s.root_layer,
                root_name: s.root_name.clone(),
                duration_ns: s.duration_ns,
                spans: s.span_ids.len() as u64,
            })
            .collect()
    }

    /// Publishes the scope's memory telemetry into `reg` as gauges
    /// (`provscope.spans_live`, `provscope.spans_high_water`,
    /// `provscope.trees_evicted`, …). No-op on a disabled scope.
    pub fn export_metrics(&self, reg: &mut crate::metrics::Registry) {
        if !self.is_enabled() {
            return;
        }
        let st = self.recorder_stats();
        reg.set_gauge("provscope.spans_live", st.spans_live);
        reg.gauge_max("provscope.spans_high_water", st.spans_high_water);
        reg.set_gauge("provscope.trees_evicted", st.trees_evicted);
        reg.set_gauge("provscope.trees_sampled_out", st.trees_sampled_out);
        reg.set_gauge("provscope.trees_retained", st.trees_retained);
        reg.set_gauge("provscope.slow_trees", st.slow_trees);
        reg.set_gauge("provscope.spans_shed", st.spans_shed);
    }

    /// Opens a span as a child of the calling thread's innermost open
    /// span (or as a window root). Must be paired with
    /// [`Scope::close`] on the same thread. Returns
    /// [`SpanHandle::NONE`] when the span was shed at capacity.
    pub fn open(&self, layer: &'static str, name: &str) -> SpanHandle {
        let Some(inner) = &self.0 else {
            return SpanHandle::NONE;
        };
        let mut g = inner.lock().unwrap();
        if !g.reserve_slot() {
            return SpanHandle::NONE;
        }
        let now = (g.now)();
        let id = g.alloc_id();
        let w = g.window(std::thread::current().id());
        let parent = w.stack.last().copied();
        let trace = w.trace;
        if trace.is_none() {
            w.pending.push(id);
        }
        w.stack.push(id);
        g.insert_span(Span {
            id,
            parent,
            trace,
            layer,
            name: name.to_string(),
            start_ns: now,
            end_ns: None,
        });
        if let Some(t) = trace {
            g.tree_add(t.0, id.0, true);
        }
        SpanHandle(Some(id))
    }

    /// Opens a *detached* span linked to `trace`'s registered root —
    /// how asynchronous work (Waldo ingesting a group frame found in
    /// a log) re-joins the tree of the synchronous commit that
    /// produced it. Detached spans never join any stack — which also
    /// makes them safe to open from worker threads; if no root is
    /// registered for `trace` (e.g. the commit predates this scope,
    /// or the recorder already evicted the tree), the span becomes
    /// the root of a fresh (fragment) tree itself.
    pub fn open_linked(&self, layer: &'static str, name: &str, trace: TraceId) -> SpanHandle {
        let Some(inner) = &self.0 else {
            return SpanHandle::NONE;
        };
        let mut g = inner.lock().unwrap();
        let (parent, t) = match g.roots.get(&trace.0).copied() {
            // Adopt the root's canonical trace: a multi-volume
            // transaction registers several batch ids onto one root,
            // and the tree must stay single-trace.
            Some(root) => (
                Some(root),
                g.spans.get(&root.0).and_then(|s| s.trace).unwrap_or(trace),
            ),
            None => (None, trace),
        };
        // Revive the target tree before making room, so the eviction
        // scan can't tear the tree this span is about to join.
        if let Some(rec) = g.recorder.as_mut() {
            rec.revive(t.0);
        }
        if !g.reserve_slot() {
            return SpanHandle::NONE;
        }
        let now = (g.now)();
        let id = g.alloc_id();
        g.insert_span(Span {
            id,
            parent,
            trace: Some(t),
            layer,
            name: name.to_string(),
            start_ns: now,
            end_ns: None,
        });
        if parent.is_none() {
            g.roots.entry(trace.0).or_insert(id);
        }
        g.tree_add(t.0, id.0, true);
        SpanHandle(Some(id))
    }

    /// Closes a span (stack or linked). Closing the outermost span of
    /// the calling thread's stack ends that thread's window, stamping
    /// unbound spans synthetically. Completed trees move into the
    /// flight-recorder rings on a recording scope.
    pub fn close(&self, h: SpanHandle) {
        let Some(inner) = &self.0 else { return };
        let Some(id) = h.0 else { return };
        let mut g = inner.lock().unwrap();
        let now = (g.now)();
        g.span_mut(id).end_ns = Some(now);
        let trace = g.spans.get(&id.0).and_then(|s| s.trace);
        let tid = std::thread::current().id();
        let w = g.window(tid);
        if let Some(pos) = w.stack.iter().rposition(|s| *s == id) {
            w.stack.remove(pos);
        }
        if w.stack.is_empty() {
            g.finish_window(tid);
        }
        if let Some(t) = trace {
            g.tree_close(t.0);
        }
    }

    /// Binds the calling thread's current window to `trace` — called
    /// by the layer that *allocates* the transaction's identity
    /// (Lasagna, when it frames a group record). All pending spans of
    /// the window are stamped retroactively; spans opened later in
    /// the window inherit the binding at birth. A second bind in one
    /// window (a transaction spanning volumes allocates one batch id
    /// per volume) keeps the first trace for the tree but registers
    /// the extra id onto the same root, so each batch's asynchronous
    /// ingest still links into the one tree.
    pub fn bind_trace(&self, trace: TraceId) {
        let Some(inner) = &self.0 else { return };
        let mut g = inner.lock().unwrap();
        let tid = std::thread::current().id();
        let w = g.window(tid);
        let Some(&root) = w.stack.first() else {
            // No open window on this thread: nothing to bind. Drop
            // the freshly created empty window again.
            g.windows.remove(&tid);
            return;
        };
        if w.trace.is_none() {
            w.trace = Some(trace);
            let pending = std::mem::take(&mut w.pending);
            for &id in &pending {
                g.span_mut(id).trace = Some(trace);
            }
            g.tree_bind_window(trace.0);
            for id in pending {
                let open = g.spans.get(&id.0).is_some_and(|s| s.end_ns.is_none());
                g.tree_add(trace.0, id.0, open);
            }
        }
        g.roots.entry(trace.0).or_insert(root);
    }

    /// The trace context at the current point of execution on the
    /// calling thread, if any span is open there.
    pub fn current_ctx(&self) -> Option<TraceCtx> {
        let inner = self.0.as_ref()?;
        let g = inner.lock().unwrap();
        let w = g.windows.get(&std::thread::current().id())?;
        let &id = w.stack.last()?;
        let s = g.spans.get(&id.0)?;
        Some(TraceCtx {
            trace: s.trace.or(w.trace),
            span: id,
            parent: s.parent,
        })
    }

    /// A snapshot of every span currently held, in id order. On a
    /// recording scope this is the live spans plus the retained
    /// rings; evicted and sampled-out trees are absent (the id
    /// sequence may be sparse, but remains strictly increasing).
    pub fn snapshot(&self) -> Trace {
        match &self.0 {
            Some(inner) => Trace {
                spans: inner.lock().unwrap().spans.values().cloned().collect(),
            },
            None => Trace { spans: Vec::new() },
        }
    }

    /// Number of spans currently held.
    pub fn len(&self) -> usize {
        self.0.as_ref().map_or(0, |i| i.lock().unwrap().spans.len())
    }

    /// True when nothing is held (or the scope is disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all recorded spans, trace-root registrations, and
    /// flight-recorder state (the next span starts a fresh trace
    /// universe from id 1). Call only between windows; clearing
    /// mid-commit severs the links pending asynchronous work would
    /// need.
    pub fn clear(&self) {
        if let Some(inner) = &self.0 {
            let mut g = inner.lock().unwrap();
            g.spans.clear();
            g.next_id = 0;
            g.high_water = 0;
            g.windows.clear();
            g.roots.clear();
            g.next_synthetic = 0;
            if let Some(r) = g.recorder.as_mut() {
                let cfg = r.cfg;
                *r = Recorder::new(cfg);
            }
        }
    }
}

/// Per-layer latency attribution over one [`Trace`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LayerLatency {
    /// The layer.
    pub layer: &'static str,
    /// Spans recorded by the layer.
    pub spans: u64,
    /// Sum of span durations (inclusive of child layers).
    pub total_ns: Nanos,
    /// Sum of *self* times: each span's duration minus the durations
    /// of its direct children — where the layer itself spent virtual
    /// time, the number the attribution table is about.
    pub self_ns: Nanos,
}

/// An immutable snapshot of a scope's spans, with analysis helpers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// All spans, in open order (span id order; possibly sparse after
    /// flight-recorder eviction).
    pub spans: Vec<Span>,
}

impl Trace {
    fn get(&self, id: SpanId) -> Option<&Span> {
        self.spans
            .binary_search_by_key(&id.0, |s| s.id.0)
            .ok()
            .map(|i| &self.spans[i])
    }

    /// Structural well-formedness: span ids strictly increasing,
    /// every span closed with `end >= start`, every span traced,
    /// every parent a held earlier span that started no later, and
    /// parent and child in the same trace. Returns the first
    /// violation. (Ids need not be dense: the flight recorder evicts
    /// whole trees, leaving gaps but never dangling parents.)
    pub fn validate(&self) -> Result<(), String> {
        let mut prev = 0u64;
        for (i, s) in self.spans.iter().enumerate() {
            if s.id.0 <= prev {
                return Err(format!(
                    "span #{i} id {} not increasing (prev {prev})",
                    s.id.0
                ));
            }
            prev = s.id.0;
            let Some(end) = s.end_ns else {
                return Err(format!(
                    "span {} ({}/{}) never closed",
                    s.id.0, s.layer, s.name
                ));
            };
            if end < s.start_ns {
                return Err(format!("span {} ends before it starts", s.id.0));
            }
            let Some(trace) = s.trace else {
                return Err(format!("span {} has no trace", s.id.0));
            };
            if let Some(p) = s.parent {
                let Some(parent) = self.get(p) else {
                    return Err(format!("span {} parent {} does not exist", s.id.0, p.0));
                };
                if p >= s.id {
                    return Err(format!("span {} parent {} is not earlier", s.id.0, p.0));
                }
                if parent.start_ns > s.start_ns {
                    return Err(format!("span {} starts before its parent {}", s.id.0, p.0));
                }
                if parent.trace != Some(trace) {
                    return Err(format!(
                        "span {} (trace {:#x}) and parent {} disagree on trace",
                        s.id.0, trace.0, p.0
                    ));
                }
            }
        }
        Ok(())
    }

    /// The distinct trace ids, ascending (synthetic ids sort below
    /// batch ids, whose tag bit is higher).
    pub fn traces(&self) -> Vec<TraceId> {
        let mut out: Vec<TraceId> = self.spans.iter().filter_map(|s| s.trace).collect();
        out.sort();
        out.dedup();
        out
    }

    /// The batch traces only — one per multi-op disclosure
    /// transaction that reached a volume.
    pub fn batch_traces(&self) -> Vec<TraceId> {
        self.traces().into_iter().filter(|t| t.is_batch()).collect()
    }

    /// Spans of one trace, in span-id order.
    pub fn spans_of(&self, trace: TraceId) -> Vec<&Span> {
        self.spans
            .iter()
            .filter(|s| s.trace == Some(trace))
            .collect()
    }

    /// The distinct layers that recorded spans in `trace`.
    pub fn layers_of(&self, trace: TraceId) -> Vec<&'static str> {
        let mut out: Vec<&'static str> = self.spans_of(trace).iter().map(|s| s.layer).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// True when `trace`'s spans form exactly one connected tree:
    /// precisely one root, every other span reachable from it through
    /// parent links within the trace.
    pub fn is_connected_tree(&self, trace: TraceId) -> bool {
        let spans = self.spans_of(trace);
        if spans.is_empty() {
            return false;
        }
        let roots = spans.iter().filter(|s| s.parent.is_none()).count();
        if roots != 1 {
            return false;
        }
        // Parent ids are strictly smaller, so one pass in id order
        // proves reachability: a span is connected iff its parent is
        // the root or already proven connected.
        let root = spans.iter().find(|s| s.parent.is_none()).unwrap().id;
        let mut connected = std::collections::BTreeSet::new();
        connected.insert(root);
        for s in &spans {
            if let Some(p) = s.parent {
                if connected.contains(&p) {
                    connected.insert(s.id);
                }
            }
        }
        connected.len() == spans.len()
    }

    /// Per-layer latency attribution: total and *self* (exclusive)
    /// virtual time per layer, ordered by descending self time. This
    /// is the "where did this batch spend its time" table.
    pub fn layer_latency(&self) -> Vec<LayerLatency> {
        // Positional child-duration accumulation; parents are found
        // by binary search because ids may be sparse.
        let mut child_ns: Vec<Nanos> = vec![0; self.spans.len()];
        for s in &self.spans {
            if let Some(p) = s.parent {
                if let Ok(i) = self.spans.binary_search_by_key(&p.0, |x| x.id.0) {
                    child_ns[i] += s.duration_ns();
                }
            }
        }
        let mut by_layer: BTreeMap<&'static str, LayerLatency> = BTreeMap::new();
        for (i, s) in self.spans.iter().enumerate() {
            let e = by_layer.entry(s.layer).or_insert(LayerLatency {
                layer: s.layer,
                spans: 0,
                total_ns: 0,
                self_ns: 0,
            });
            e.spans += 1;
            let d = s.duration_ns();
            e.total_ns += d;
            // Linked children (Waldo ingest) may outlive the parent
            // window; saturate rather than attribute negative time.
            e.self_ns += d.saturating_sub(child_ns[i]);
        }
        let mut out: Vec<LayerLatency> = by_layer.into_values().collect();
        out.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.layer.cmp(b.layer)));
        out
    }

    /// Renders [`Trace::layer_latency`] as an aligned text table.
    pub fn render_latency_table(&self) -> String {
        let rows = self.layer_latency();
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:>7} {:>14} {:>14} {:>8}\n",
            "layer", "spans", "total_us", "self_us", "self%"
        ));
        let grand_self: Nanos = rows.iter().map(|r| r.self_ns).sum();
        for r in &rows {
            let pct = if grand_self == 0 {
                0.0
            } else {
                r.self_ns as f64 / grand_self as f64 * 100.0
            };
            out.push_str(&format!(
                "{:<10} {:>7} {:>14.3} {:>14.3} {:>7.1}%\n",
                r.layer,
                r.spans,
                r.total_ns as f64 / 1_000.0,
                r.self_ns as f64 / 1_000.0,
                pct
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn ticking() -> (Arc<AtomicU64>, Scope) {
        let t = Arc::new(AtomicU64::new(0));
        let t2 = t.clone();
        let scope = Scope::enabled(move || t2.fetch_add(10, Ordering::Relaxed));
        (t, scope)
    }

    fn ticking_recorder(cfg: RecorderConfig) -> Scope {
        let t = Arc::new(AtomicU64::new(0));
        Scope::recording(move || t.fetch_add(10, Ordering::Relaxed), cfg)
    }

    #[test]
    fn disabled_scope_is_inert() {
        let s = Scope::disabled();
        let h = s.open("kernel", "x");
        assert_eq!(h, SpanHandle::NONE);
        s.bind_trace(TraceId(1 << 63));
        s.close(h);
        assert!(s.snapshot().spans.is_empty());
        assert!(!s.is_enabled());
        assert_eq!(s.recorder_stats(), RecorderStats::default());
        assert!(s.slow_traces().is_empty());
        assert!(s.recorder_config().is_none());
    }

    #[test]
    fn nesting_gives_parents_and_binding_stamps_the_window() {
        let (_, s) = ticking();
        let a = s.open("kernel", "pass_commit");
        let b = s.open("dpapi", "dp_commit");
        let batch = TraceId((1 << 63) | 42);
        s.bind_trace(batch);
        let c = s.open("lasagna", "pass_commit");
        s.close(c);
        s.close(b);
        s.close(a);
        let t = s.snapshot();
        t.validate().unwrap();
        assert_eq!(t.traces(), vec![batch]);
        assert!(t.is_connected_tree(batch));
        assert_eq!(t.spans[1].parent, Some(SpanId(1)));
        assert_eq!(t.spans[2].parent, Some(SpanId(2)));
        assert_eq!(t.layers_of(batch), vec!["dpapi", "kernel", "lasagna"]);
    }

    #[test]
    fn unbound_window_gets_a_synthetic_trace() {
        let (_, s) = ticking();
        let a = s.open("kernel", "read");
        s.close(a);
        let t = s.snapshot();
        t.validate().unwrap();
        let traces = t.traces();
        assert_eq!(traces.len(), 1);
        assert!(traces[0].is_synthetic());
        assert!(!traces[0].is_batch());
    }

    #[test]
    fn linked_spans_join_the_batch_tree() {
        let (_, s) = ticking();
        let batch = TraceId((1 << 63) | 7);
        let a = s.open("kernel", "pass_commit");
        s.bind_trace(batch);
        s.close(a);
        // Later, asynchronously: Waldo ingests the group frame.
        let w = s.open_linked("waldo", "ingest_batch", batch);
        s.close(w);
        let t = s.snapshot();
        t.validate().unwrap();
        assert!(t.is_connected_tree(batch));
        assert_eq!(t.spans_of(batch).len(), 2);
        assert_eq!(t.spans[1].parent, Some(SpanId(1)));
    }

    #[test]
    fn linked_span_without_a_root_becomes_one() {
        let (_, s) = ticking();
        let batch = TraceId((1 << 63) | 9);
        let w = s.open_linked("waldo", "ingest_batch", batch);
        s.close(w);
        let t = s.snapshot();
        t.validate().unwrap();
        assert!(t.is_connected_tree(batch));
    }

    #[test]
    fn second_bind_in_one_window_aliases_onto_the_first_root() {
        let (_, s) = ticking();
        let b1 = TraceId((1 << 63) | 1);
        let b2 = TraceId((1 << 63) | 2);
        let a = s.open("kernel", "pass_commit");
        s.bind_trace(b1);
        s.bind_trace(b2); // second volume of the same transaction
        s.close(a);
        let w = s.open_linked("waldo", "ingest_batch", b2);
        s.close(w);
        let t = s.snapshot();
        t.validate().unwrap();
        // One tree under b1; the b2 ingest adopted the canonical trace.
        assert_eq!(t.traces(), vec![b1]);
        assert!(t.is_connected_tree(b1));
    }

    #[test]
    fn current_ctx_reports_the_open_stack() {
        let (_, s) = ticking();
        assert!(s.current_ctx().is_none());
        let a = s.open("kernel", "pass_commit");
        let ctx = s.current_ctx().unwrap();
        assert_eq!(ctx.span, SpanId(1));
        assert_eq!(ctx.parent, None);
        assert_eq!(ctx.trace, None);
        let batch = TraceId((1 << 63) | 3);
        s.bind_trace(batch);
        let b = s.open("dpapi", "dp_commit");
        let ctx = s.current_ctx().unwrap();
        assert_eq!(ctx.span, SpanId(2));
        assert_eq!(ctx.parent, Some(SpanId(1)));
        assert_eq!(ctx.trace, Some(batch));
        s.close(b);
        s.close(a);
        assert!(s.current_ctx().is_none());
    }

    #[test]
    fn layer_latency_attributes_self_time() {
        // kernel [0,100); dpapi [10,90) nested → kernel self 20,
        // dpapi self 80.
        let t = Arc::new(AtomicU64::new(0));
        let t2 = t.clone();
        let s = Scope::enabled(move || t2.load(Ordering::Relaxed));
        let a = s.open("kernel", "pass_commit");
        t.store(10, Ordering::Relaxed);
        let b = s.open("dpapi", "dp_commit");
        t.store(90, Ordering::Relaxed);
        s.close(b);
        t.store(100, Ordering::Relaxed);
        s.close(a);
        let lat = s.snapshot().layer_latency();
        let kernel = lat.iter().find(|l| l.layer == "kernel").unwrap();
        let dpapi = lat.iter().find(|l| l.layer == "dpapi").unwrap();
        assert_eq!(kernel.total_ns, 100);
        assert_eq!(kernel.self_ns, 20);
        assert_eq!(dpapi.self_ns, 80);
        // The table renders and mentions both layers.
        let table = s.snapshot().render_latency_table();
        assert!(table.contains("kernel") && table.contains("dpapi"));
    }

    #[test]
    fn validate_rejects_malformed_trees() {
        let (_, s) = ticking();
        let a = s.open("kernel", "x");
        s.close(a);
        let mut t = s.snapshot();
        t.spans[0].parent = Some(SpanId(5));
        assert!(t.validate().is_err());
        let mut t2 = s.snapshot();
        t2.spans[0].end_ns = None;
        assert!(t2.validate().is_err());
    }

    #[test]
    fn clear_resets_the_universe() {
        let (_, s) = ticking();
        let a = s.open("kernel", "x");
        s.close(a);
        s.clear();
        assert!(s.is_empty());
        let b = s.open("kernel", "y");
        s.close(b);
        assert_eq!(s.snapshot().spans[0].id, SpanId(1));
    }

    /// Concurrent windows on separate threads never cross-parent:
    /// each thread's nested spans parent within that thread, every
    /// window stamps its own trace, and the combined snapshot still
    /// validates.
    #[test]
    fn threads_keep_independent_windows() {
        let (_, s) = ticking();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = s.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        let a = s.open("waldo", "drain_logs");
                        let b = s.open("waldo", "group_commit");
                        s.close(b);
                        s.close(a);
                    }
                });
            }
        });
        let t = s.snapshot();
        t.validate().unwrap();
        assert_eq!(t.spans.len(), 4 * 50 * 2);
        // Every window became its own 2-span synthetic tree.
        let traces = t.traces();
        assert_eq!(traces.len(), 4 * 50);
        for trace in traces {
            assert!(trace.is_synthetic());
            assert!(t.is_connected_tree(trace));
            assert_eq!(t.spans_of(trace).len(), 2);
        }
    }

    /// Linked spans opened concurrently from worker threads all join
    /// the one registered root of their batch trace.
    #[test]
    fn threaded_linked_spans_join_one_tree() {
        let (_, s) = ticking();
        let batch = TraceId((1 << 63) | 11);
        let a = s.open("kernel", "pass_commit");
        s.bind_trace(batch);
        s.close(a);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = s.clone();
                scope.spawn(move || {
                    for _ in 0..25 {
                        let w = s.open_linked("waldo", "ingest_batch", batch);
                        s.close(w);
                    }
                });
            }
        });
        let t = s.snapshot();
        t.validate().unwrap();
        assert!(t.is_connected_tree(batch));
        assert_eq!(t.spans_of(batch).len(), 1 + 4 * 25);
    }

    // ------------------------------------------------------------
    // Flight recorder
    // ------------------------------------------------------------

    #[test]
    fn ring_evicts_whole_completed_trees_oldest_first() {
        let s = ticking_recorder(RecorderConfig {
            capacity: 6,
            ..RecorderConfig::default()
        });
        // Five 2-span synthetic trees; capacity holds three.
        for _ in 0..5 {
            let a = s.open("kernel", "outer");
            let b = s.open("dpapi", "inner");
            s.close(b);
            s.close(a);
        }
        let st = s.recorder_stats();
        assert_eq!(st.trees_evicted, 2);
        assert_eq!(st.trees_retained, 3);
        assert_eq!(st.spans_live, 6);
        assert!(st.spans_high_water <= 6);
        assert_eq!(st.spans_shed, 0);
        let t = s.snapshot();
        t.validate().unwrap();
        // The three *newest* trees survive (synthetic ids 3, 4, 5);
        // evicted traces have no spans left at all.
        let traces = t.traces();
        assert_eq!(traces.len(), 3);
        for (i, tr) in traces.iter().enumerate() {
            assert_eq!(tr.0, TraceId::SYNTHETIC_BIT | (3 + i as u64));
            assert!(t.is_connected_tree(*tr));
            assert_eq!(t.spans_of(*tr).len(), 2);
        }
        assert!(t.spans_of(TraceId(TraceId::SYNTHETIC_BIT | 1)).is_empty());
        // Sparse ids still attribute latency and render.
        assert!(!t.layer_latency().is_empty());
        assert!(!t.render_latency_table().is_empty());
    }

    #[test]
    fn live_spans_never_torn_but_shed_at_capacity() {
        let s = ticking_recorder(RecorderConfig {
            capacity: 2,
            ..RecorderConfig::default()
        });
        let a = s.open("kernel", "outer");
        let b = s.open("dpapi", "mid");
        // Both live spans belong to an incomplete tree: nothing is
        // evictable, so the third open sheds instead of tearing.
        let c = s.open("lasagna", "inner");
        assert_eq!(c, SpanHandle::NONE);
        assert_eq!(s.recorder_stats().spans_shed, 1);
        s.close(c);
        s.close(b);
        s.close(a);
        let st = s.recorder_stats();
        assert_eq!(st.spans_live, 2);
        assert!(st.spans_high_water <= 2);
        let t = s.snapshot();
        t.validate().unwrap();
        let traces = t.traces();
        assert_eq!(traces.len(), 1);
        assert!(t.is_connected_tree(traces[0]));
    }

    #[test]
    fn head_sampling_is_deterministic_on_the_trace_id() {
        let cfg = RecorderConfig {
            sample_per_million: 500_000,
            seed: 7,
            ..RecorderConfig::default()
        };
        let run = || {
            let s = ticking_recorder(cfg);
            for i in 0..32u64 {
                let a = s.open("kernel", "pass_commit");
                s.bind_trace(TraceId((1 << 63) | i));
                s.close(a);
            }
            s.snapshot().traces()
        };
        let kept1 = run();
        let kept2 = run();
        assert_eq!(kept1, kept2, "same seed must keep the same trace set");
        assert!(!kept1.is_empty() && kept1.len() < 32, "sampling must bite");
        for i in 0..32u64 {
            let t = TraceId((1 << 63) | i);
            assert_eq!(kept1.contains(&t), cfg.samples(t));
        }
        // A different seed keeps a different (still deterministic) set.
        let other = RecorderConfig { seed: 8, ..cfg };
        assert!((0..32u64).any(|i| {
            let t = TraceId((1 << 63) | i);
            cfg.samples(t) != other.samples(t)
        }));
    }

    #[test]
    fn slow_trees_are_pinned_regardless_of_sampling() {
        let s = ticking_recorder(RecorderConfig {
            sample_per_million: 0,
            slow_threshold_ns: 25,
            ..RecorderConfig::default()
        });
        // Tree 1: root spans ticks 0..30 → duration 30 ≥ 25 → slow.
        let a = s.open("kernel", "pass_commit");
        let b = s.open("dpapi", "dp_commit");
        s.close(b);
        s.close(a);
        // Tree 2: single span, duration 10 → sampled out (rate 0).
        let c = s.open("kernel", "read");
        s.close(c);
        let st = s.recorder_stats();
        assert_eq!(st.slow_trees, 1);
        assert_eq!(st.trees_retained, 0);
        assert_eq!(st.trees_sampled_out, 1);
        assert_eq!(st.spans_live, 2);
        let slow = s.slow_traces();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].root_layer, "kernel");
        assert_eq!(slow[0].root_name, "pass_commit");
        assert_eq!(slow[0].duration_ns, 30);
        assert_eq!(slow[0].spans, 2);
        let t = s.snapshot();
        t.validate().unwrap();
        assert_eq!(t.spans.len(), 2);
    }

    #[test]
    fn completed_tree_revives_on_linked_rejoin() {
        let s = ticking_recorder(RecorderConfig {
            capacity: 16,
            ..RecorderConfig::default()
        });
        let batch = TraceId((1 << 63) | 5);
        let a = s.open("kernel", "pass_commit");
        s.bind_trace(batch);
        s.close(a);
        assert_eq!(s.recorder_stats().trees_retained, 1);
        // The asynchronous ingest revives the completed tree…
        let w = s.open_linked("waldo", "ingest_batch", batch);
        let st = s.recorder_stats();
        assert_eq!(st.trees_retained, 0);
        assert_eq!(st.spans_live, 2);
        // …and completion re-retains it, one tree, still connected.
        s.close(w);
        assert_eq!(s.recorder_stats().trees_retained, 1);
        let t = s.snapshot();
        t.validate().unwrap();
        assert!(t.is_connected_tree(batch));
        assert_eq!(t.spans_of(batch).len(), 2);
    }

    #[test]
    fn recorder_metrics_export_and_clear_reset() {
        let s = ticking_recorder(RecorderConfig {
            capacity: 2,
            ..RecorderConfig::default()
        });
        for _ in 0..3 {
            let a = s.open("kernel", "x");
            s.close(a);
        }
        let mut reg = crate::metrics::Registry::new();
        s.export_metrics(&mut reg);
        assert_eq!(reg.gauge("provscope.spans_live"), 2);
        let hw = reg.gauge("provscope.spans_high_water");
        assert!(hw > 0 && hw <= 2);
        assert_eq!(reg.gauge("provscope.trees_evicted"), 1);
        s.clear();
        let st = s.recorder_stats();
        assert_eq!(st, RecorderStats::default());
        // The id universe restarts from 1 with the recorder intact.
        let b = s.open("kernel", "y");
        s.close(b);
        assert_eq!(s.snapshot().spans[0].id, SpanId(1));
        assert_eq!(s.recorder_config().unwrap().capacity, 2);
    }
}
