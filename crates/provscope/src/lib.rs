//! provscope — cross-layer span tracing and unified metrics for the
//! PASSv2 stack.
//!
//! The paper's central claim is that provenance must survive
//! *layering*: each layer (application, DPAPI, kernel, Lasagna,
//! PA-NFS, Waldo) transforms and forwards disclosure without losing
//! causality. This crate applies the same idea to the system's **own
//! execution**: every layer crossing of a disclosure transaction is
//! recorded as a span in a causally-linked trace — the observability
//! layer is itself a provenance graph of the provenance system.
//!
//! Three pieces:
//!
//! * **Spans** ([`Scope`], [`Span`], [`Trace`]) — enter/exit records
//!   on the *shared virtual clock*, stitched into per-transaction
//!   trees. The trace id of a batched disclosure **is** its
//!   volume-salted batch id ([`TraceId`]), which is what lets the
//!   asynchronous Waldo ingest of a group frame re-join the tree of
//!   the synchronous commit that produced it — no side channel, no
//!   extra log bytes.
//! * **Metrics** ([`Registry`], [`MetricSource`], [`Histogram`]) —
//!   named counters and log-bucketed latency histograms that absorb
//!   the per-layer stats structs (`KernelStats`, `PassStats`,
//!   `LasagnaStats`, `IngestStats`, `QueryOps`, `PlanStats`, …)
//!   behind one trait, with prefix labels for cluster members.
//! * **Exports** ([`chrome_trace_json`], [`Trace::layer_latency`],
//!   [`Registry::render_table`]) — a Chrome `trace_event` JSON
//!   exporter (loadable in `chrome://tracing` / Perfetto), a plain
//!   text per-layer latency attribution table, and a minimal JSON
//!   parser ([`parse_chrome_trace`]) so CI can validate an exported
//!   trace without external dependencies.
//!
//! A fourth piece makes the plane production-grade: the **flight
//! recorder** ([`Scope::recording`], [`RecorderConfig`]) bounds span
//! memory with whole-tree ring retention, deterministic head
//! sampling keyed on the volume-salted trace id, and tail-based
//! slow-trace pinning; the [`health`] module evaluates typed rules
//! over a [`Registry`] snapshot into a [`HealthReport`]; and
//! [`Registry::render_prometheus`] exports everything in the
//! Prometheus text format.
//!
//! # Determinism contract
//!
//! provscope has **zero ambient entropy**: no wall clock, no
//! randomness, no hash-ordered iteration in any output. Span
//! timestamps come from an injected now-function (the simulation's
//! virtual clock), span ids are allocated sequentially, and a
//! [`Scope`] never advances the clock or perturbs any id allocation
//! in the system it observes. Two same-seed runs therefore export
//! byte-identical traces, and a run with tracing disabled is
//! byte-identical (down to the stored provenance) to one with
//! tracing enabled.
//!
//! The flight recorder preserves the contract: the head-sampling
//! verdict is a pure splitmix64 function of `(seed, trace_id)`, slow
//! pinning compares root durations on the injected clock, and
//! eviction order follows completion order — so two same-seed runs
//! retain byte-identical sampled trace sets and slow rings, and
//! turning the recorder on never changes a byte of the stored
//! provenance (the provtorture oracle gates this).

mod export;
pub mod health;
mod json;
mod metrics;
mod span;

pub use export::{chrome_trace_json, parse_chrome_trace, ChromeEvent};
pub use health::{HealthReport, HealthRule, HealthViolation};
pub use json::{parse_json, JsonValue};
pub use metrics::{Histogram, MetricSource, Registry};
pub use span::{
    LayerLatency, Nanos, RecorderConfig, RecorderStats, Scope, SlowTraceInfo, Span, SpanHandle,
    SpanId, Trace, TraceCtx, TraceId,
};
