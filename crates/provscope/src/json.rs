//! A minimal JSON parser — just enough to validate an exported
//! Chrome trace without external dependencies.
//!
//! Supports the full JSON value grammar (objects, arrays, strings
//! with escapes, numbers, booleans, null). Object members are kept as
//! an ordered `Vec` of pairs, preserving document order (duplicate
//! keys are preserved too; [`JsonValue::get`] returns the first).

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, members in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// First member named `key`, for objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json: {msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => {
                self.eat_lit("true")?;
                Ok(JsonValue::Bool(true))
            }
            Some(b'f') => {
                self.eat_lit("false")?;
                Ok(JsonValue::Bool(false))
            }
            Some(b'n') => {
                self.eat_lit("null")?;
                Ok(JsonValue::Null)
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let s =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(s, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not paired up — the
                            // exporter never emits them.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control byte in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("bad number"))
    }
}

/// Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_json("null").unwrap(), JsonValue::Null);
        assert_eq!(parse_json(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse_json("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse_json("-12.5e2").unwrap(), JsonValue::Num(-1250.0));
        assert_eq!(
            parse_json(r#""a\n\"bA""#).unwrap(),
            JsonValue::Str("a\n\"bA".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse_json(r#"{"a":[1,2,{"b":"c"}],"d":{}}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("c"));
        assert_eq!(v.get("d").unwrap(), &JsonValue::Obj(vec![]));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_json("").is_err());
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{\"a\" 1}").is_err());
        assert!(parse_json("1 2").is_err());
        assert!(parse_json("\"unterminated").is_err());
        assert!(parse_json("tru").is_err());
    }

    #[test]
    fn preserves_member_order() {
        let v = parse_json(r#"{"z":1,"a":2}"#).unwrap();
        match v {
            JsonValue::Obj(m) => {
                assert_eq!(m[0].0, "z");
                assert_eq!(m[1].0, "a");
            }
            _ => panic!("not an object"),
        }
    }
}
