//! The health-rule engine: typed rules evaluated over a [`Registry`]
//! snapshot, producing typed verdicts with the offending values.
//!
//! A long-running provenance service must monitor *itself* — WAL
//! write errors, a sluice queue about to reject, ingest latency
//! drifting from its baseline, the flight recorder shedding spans.
//! Rather than scattering ad-hoc `if` checks through the cluster
//! poller, rules are data: a [`HealthRule`] names a metric (by
//! *suffix*, so one rule covers `member0.waldo.wal_errors` and
//! `member3.waldo.wal_errors` alike) and a bound, [`evaluate`] runs
//! every rule against a registry snapshot, and the resulting
//! [`HealthReport`] carries one [`HealthViolation`] per offending
//! key — with the rule, the key, the observed value and the limit, so
//! operators (and tests) see *why*, not just *that*.
//!
//! Evaluation is pure and deterministic: registries iterate in key
//! order and rules run in slice order, so the same snapshot always
//! yields the same report.

use crate::metrics::Registry;

/// One typed health rule. Metric names match registry keys by
/// equality or by `.`-separated suffix (`"wal_errors"` matches
/// `"member0.waldo.wal_errors"` but not `"other_wal_errors"`).
#[derive(Clone, Debug, PartialEq)]
pub enum HealthRule {
    /// A counter (or monotone gauge) must not exceed `max`. Checked
    /// against both counter and gauge keys.
    CounterAtMost {
        /// Metric name or suffix.
        metric: String,
        /// Inclusive upper bound.
        max: u64,
    },
    /// A gauge must stay below `percent`% of a companion *budget*
    /// gauge that shares its prefix (e.g. `queue.peak_ops` vs
    /// `queue.budget_ops`). Fires when `value * 100 >= budget *
    /// percent`; keys whose budget gauge is absent or zero are
    /// skipped.
    GaugeBelowPercentOf {
        /// Gauge name or suffix to test.
        metric: String,
        /// Budget gauge name or suffix (resolved on the same prefix).
        budget: String,
        /// Threshold percentage.
        percent: u64,
    },
    /// A histogram's quantile `q` must not exceed `max_ns` (in the
    /// histogram's unit — ours are virtual nanoseconds). Skipped for
    /// empty histograms (no data is not slow data).
    QuantileAtMost {
        /// Histogram name or suffix.
        hist: String,
        /// Quantile in `[0, 1]` (e.g. 0.99).
        q: f64,
        /// Inclusive upper bound on the quantile estimate.
        max_ns: u64,
    },
}

/// True when registry key `key` is the rule metric `metric`, exactly
/// or as a `.`-separated suffix.
fn matches(key: &str, metric: &str) -> bool {
    key == metric
        || (key.len() > metric.len()
            && key.ends_with(metric)
            && key.as_bytes()[key.len() - metric.len() - 1] == b'.')
}

/// One rule firing on one registry key.
#[derive(Clone, Debug, PartialEq)]
pub struct HealthViolation {
    /// The rule that fired.
    pub rule: HealthRule,
    /// The offending registry key.
    pub metric: String,
    /// The observed value (for `QuantileAtMost`, the quantile
    /// estimate).
    pub value: u64,
    /// The effective limit the value broke (for `GaugeBelowPercentOf`,
    /// `budget * percent / 100`).
    pub limit: u64,
    /// Human-readable one-liner.
    pub message: String,
}

/// The outcome of evaluating a rule set against one snapshot.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HealthReport {
    /// Every rule firing, in (rule order, key order).
    pub violations: Vec<HealthViolation>,
    /// Rules evaluated (the whole slice, always).
    pub rules_evaluated: usize,
}

impl HealthReport {
    /// True when no rule fired.
    pub fn healthy(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Evaluates `rules` against a registry snapshot.
pub fn evaluate(rules: &[HealthRule], reg: &Registry) -> HealthReport {
    let mut violations = Vec::new();
    for rule in rules {
        match rule {
            HealthRule::CounterAtMost { metric, max } => {
                let keys = reg
                    .counters()
                    .chain(reg.gauges())
                    .filter(|(k, _)| matches(k, metric));
                for (k, v) in keys {
                    if v > *max {
                        violations.push(HealthViolation {
                            rule: rule.clone(),
                            metric: k.to_string(),
                            value: v,
                            limit: *max,
                            message: format!("{k} = {v} exceeds max {max}"),
                        });
                    }
                }
            }
            HealthRule::GaugeBelowPercentOf {
                metric,
                budget,
                percent,
            } => {
                let hits: Vec<(String, u64)> = reg
                    .gauges()
                    .filter(|(k, _)| matches(k, metric))
                    .map(|(k, v)| (k.to_string(), v))
                    .collect();
                for (k, v) in hits {
                    // Resolve the budget gauge on the same prefix.
                    let prefix = &k[..k.len() - metric.len()];
                    let bkey = format!("{prefix}{budget}");
                    let b = reg.gauge(&bkey);
                    if b == 0 {
                        continue;
                    }
                    if v * 100 >= b * percent {
                        violations.push(HealthViolation {
                            rule: rule.clone(),
                            metric: k.clone(),
                            value: v,
                            limit: b * percent / 100,
                            message: format!("{k} = {v} is at or above {percent}% of {bkey} = {b}"),
                        });
                    }
                }
            }
            HealthRule::QuantileAtMost { hist, q, max_ns } => {
                for (k, h) in reg.histograms().filter(|(k, _)| matches(k, hist)) {
                    if h.count() == 0 {
                        continue;
                    }
                    let v = h.quantile(*q);
                    if v > *max_ns {
                        violations.push(HealthViolation {
                            rule: rule.clone(),
                            metric: k.to_string(),
                            value: v,
                            limit: *max_ns,
                            message: format!(
                                "{k} p{:.0} <= {v}ns exceeds baseline {max_ns}ns",
                                q * 100.0
                            ),
                        });
                    }
                }
            }
        }
    }
    HealthReport {
        violations,
        rules_evaluated: rules.len(),
    }
}

/// The default rule set for a polling cluster: no WAL write errors,
/// sluice queue peaks below 90% of their configured budgets, and no
/// flight-recorder span shedding (spans refused at capacity because
/// no completed tree was evictable).
pub fn standard_rules() -> Vec<HealthRule> {
    vec![
        HealthRule::CounterAtMost {
            metric: "wal_errors".to_string(),
            max: 0,
        },
        HealthRule::GaugeBelowPercentOf {
            metric: "queue.peak_ops".to_string(),
            budget: "queue.budget_ops".to_string(),
            percent: 90,
        },
        HealthRule::GaugeBelowPercentOf {
            metric: "queue.peak_bytes".to_string(),
            budget: "queue.budget_bytes".to_string(),
            percent: 90,
        },
        HealthRule::CounterAtMost {
            metric: "provscope.spans_shed".to_string(),
            max: 0,
        },
    ]
}

/// [`standard_rules`] plus a p99 ingest-latency bound of
/// `baseline_ns` on every `latency_ns` histogram.
pub fn with_latency_baseline(baseline_ns: u64) -> Vec<HealthRule> {
    let mut rules = standard_rules();
    rules.push(HealthRule::QuantileAtMost {
        hist: "latency_ns".to_string(),
        q: 0.99,
        max_ns: baseline_ns,
    });
    rules
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_rule_matches_by_suffix_and_reports_the_value() {
        let mut r = Registry::new();
        r.add("member0.waldo.wal_errors", 0);
        r.add("member1.waldo.wal_errors", 2);
        r.add("other_wal_errors", 9); // not a dotted suffix match
        let rules = vec![HealthRule::CounterAtMost {
            metric: "wal_errors".to_string(),
            max: 0,
        }];
        let rep = evaluate(&rules, &r);
        assert!(!rep.healthy());
        assert_eq!(rep.rules_evaluated, 1);
        assert_eq!(rep.violations.len(), 1);
        assert_eq!(rep.violations[0].metric, "member1.waldo.wal_errors");
        assert_eq!(rep.violations[0].value, 2);
        assert_eq!(rep.violations[0].limit, 0);
        assert!(rep.violations[0].message.contains("wal_errors = 2"));
    }

    #[test]
    fn counter_rule_also_checks_gauges() {
        let mut r = Registry::new();
        r.set_gauge("provscope.spans_shed", 5);
        let rep = evaluate(&standard_rules(), &r);
        assert_eq!(rep.violations.len(), 1);
        assert_eq!(rep.violations[0].metric, "provscope.spans_shed");
    }

    #[test]
    fn gauge_percent_rule_fires_at_the_threshold() {
        let mut r = Registry::new();
        r.set_gauge("sluice.queue.peak_ops", 89);
        r.set_gauge("sluice.queue.budget_ops", 100);
        let rules = vec![HealthRule::GaugeBelowPercentOf {
            metric: "queue.peak_ops".to_string(),
            budget: "queue.budget_ops".to_string(),
            percent: 90,
        }];
        assert!(evaluate(&rules, &r).healthy());
        r.set_gauge("sluice.queue.peak_ops", 90);
        let rep = evaluate(&rules, &r);
        assert_eq!(rep.violations.len(), 1);
        assert_eq!(rep.violations[0].value, 90);
        assert_eq!(rep.violations[0].limit, 90);
        // A peak with no budget gauge on its prefix is skipped.
        r.set_gauge("lone.queue.peak_ops", 1_000_000);
        assert_eq!(evaluate(&rules, &r).violations.len(), 1);
    }

    #[test]
    fn quantile_rule_skips_empty_histograms() {
        let mut r = Registry::new();
        r.absorb_histogram("waldo.latency_ns", &crate::metrics::Histogram::default());
        let rules = with_latency_baseline(1_000);
        assert!(evaluate(&rules, &r).healthy());
        r.observe("waldo.latency_ns", 5_000);
        let rep = evaluate(&rules, &r);
        assert_eq!(rep.violations.len(), 1);
        assert!(rep.violations[0].value > 1_000);
        assert!(rep.violations[0].message.contains("p99"));
    }

    #[test]
    fn standard_rules_pass_on_a_clean_snapshot() {
        let mut r = Registry::new();
        r.add("member0.waldo.wal_errors", 0);
        r.set_gauge("sluice.queue.peak_ops", 10);
        r.set_gauge("sluice.queue.budget_ops", 1024);
        r.set_gauge("provscope.spans_shed", 0);
        let rep = evaluate(&standard_rules(), &r);
        assert!(rep.healthy());
        assert_eq!(rep.rules_evaluated, 4);
    }
}
