//! Chrome `trace_event` export (and re-import, for validation).
//!
//! The exporter emits the JSON Object Format understood by
//! `chrome://tracing` and Perfetto: one complete (`"ph":"X"`) event
//! per span, `ts`/`dur` in microseconds, `pid` fixed at 1, `tid` = the
//! span's layer (as a stable index, so each layer gets its own track),
//! and span/parent/trace identities in `args`. Everything is
//! deterministically ordered (span-id order; layer index from the
//! sorted layer set), so two same-seed runs export byte-identical
//! documents.

use crate::json::{parse_json, JsonValue};
use crate::span::Trace;
use std::fmt::Write as _;

/// Formats virtual nanoseconds as microseconds with 3 decimals — the
/// unit Chrome's `ts`/`dur` fields expect — without going through
/// floating point (exact for all of `u64`).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders a [`Trace`] as a Chrome `trace_event` JSON document.
///
/// Load the output in `chrome://tracing` or Perfetto; each layer is a
/// thread track, each span a complete event carrying its span id,
/// parent span id and trace id (hex) in `args`.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut layers: Vec<&str> = trace.spans.iter().map(|s| s.layer).collect();
    layers.sort_unstable();
    layers.dedup();
    let tid_of = |layer: &str| layers.iter().position(|l| *l == layer).unwrap() + 1;

    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    // Name each layer track.
    for (i, layer) in layers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"",
            i + 1
        );
        escape(layer, &mut out);
        out.push_str("\"}}");
    }
    for s in &trace.spans {
        if !out.ends_with('[') {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        escape(&s.name, &mut out);
        out.push_str("\",\"cat\":\"");
        escape(s.layer, &mut out);
        let _ = write!(
            out,
            "\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"span\":{}",
            us(s.start_ns),
            us(s.duration_ns()),
            tid_of(s.layer),
            s.id.0
        );
        if let Some(p) = s.parent {
            let _ = write!(out, ",\"parent\":{}", p.0);
        }
        if let Some(t) = s.trace {
            let _ = write!(out, ",\"trace\":\"{:#x}\"", t.0);
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// One event read back from an exported Chrome trace (metadata events
/// are skipped).
#[derive(Clone, Debug, PartialEq)]
pub struct ChromeEvent {
    /// Event name (span name).
    pub name: String,
    /// Category (the layer).
    pub cat: String,
    /// Start, microseconds.
    pub ts: f64,
    /// Duration, microseconds.
    pub dur: f64,
    /// Thread id (layer track).
    pub tid: u64,
    /// Span id from `args.span`.
    pub span: u64,
    /// Parent span id from `args.parent`, if present.
    pub parent: Option<u64>,
    /// Trace id from `args.trace` (hex string decoded), if present.
    pub trace: Option<u64>,
}

/// Parses a Chrome `trace_event` JSON document back into its complete
/// events — the validation path CI uses to prove an exported trace is
/// well-formed without external tooling.
pub fn parse_chrome_trace(text: &str) -> Result<Vec<ChromeEvent>, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .ok_or("chrome trace: missing traceEvents array")?;
    let mut out = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("chrome trace: event {i} missing ph"))?;
        if ph != "X" {
            continue; // metadata
        }
        let field = |k: &str| {
            ev.get(k)
                .ok_or_else(|| format!("chrome trace: event {i} missing {k}"))
        };
        let num = |k: &str| {
            field(k)?
                .as_f64()
                .ok_or_else(|| format!("chrome trace: event {i} field {k} not a number"))
        };
        let args = field("args")?;
        let span = args
            .get("span")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("chrome trace: event {i} missing args.span"))?
            as u64;
        let parent = args
            .get("parent")
            .and_then(JsonValue::as_f64)
            .map(|v| v as u64);
        let trace = match args.get("trace").and_then(JsonValue::as_str) {
            Some(hex) => Some(
                u64::from_str_radix(hex.trim_start_matches("0x"), 16)
                    .map_err(|_| format!("chrome trace: event {i} bad args.trace"))?,
            ),
            None => None,
        };
        out.push(ChromeEvent {
            name: field("name")?
                .as_str()
                .ok_or_else(|| format!("chrome trace: event {i} name not a string"))?
                .to_string(),
            cat: field("cat")?
                .as_str()
                .ok_or_else(|| format!("chrome trace: event {i} cat not a string"))?
                .to_string(),
            ts: num("ts")?,
            dur: num("dur")?,
            tid: num("tid")? as u64,
            span,
            parent,
            trace,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Scope, TraceId};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn sample() -> Trace {
        let t = Arc::new(AtomicU64::new(0));
        let t2 = t.clone();
        let s = Scope::enabled(move || t2.load(Ordering::Relaxed));
        let a = s.open("kernel", "pass_commit");
        t.store(1_500, Ordering::Relaxed);
        let b = s.open("dpapi", "dp_commit");
        s.bind_trace(TraceId((1 << 63) | 5));
        t.store(2_000, Ordering::Relaxed);
        s.close(b);
        t.store(4_321, Ordering::Relaxed);
        s.close(a);
        s.snapshot()
    }

    #[test]
    fn export_roundtrips_through_the_parser() {
        let trace = sample();
        let json = chrome_trace_json(&trace);
        let events = parse_chrome_trace(&json).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "pass_commit");
        assert_eq!(events[0].cat, "kernel");
        assert_eq!(events[0].span, 1);
        assert_eq!(events[0].parent, None);
        assert_eq!(events[1].cat, "dpapi");
        assert_eq!(events[1].parent, Some(1));
        assert_eq!(events[1].trace, Some((1 << 63) | 5));
        // µs formatting: 1500ns → 1.500µs, dur 4321ns → 4.321µs.
        assert_eq!(events[1].ts, 1.5);
        assert_eq!(events[0].dur, 4.321);
    }

    #[test]
    fn export_is_deterministic() {
        let trace = sample();
        assert_eq!(chrome_trace_json(&trace), chrome_trace_json(&trace));
    }

    #[test]
    fn layers_get_distinct_named_tracks() {
        let json = chrome_trace_json(&sample());
        let events = parse_chrome_trace(&json).unwrap();
        assert_ne!(events[0].tid, events[1].tid);
        // Track names present as metadata.
        assert!(json.contains("thread_name"));
        assert!(json.contains("\"kernel\""));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse_chrome_trace("{}").is_err());
        assert!(parse_chrome_trace("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err());
        assert!(parse_chrome_trace("not json").is_err());
    }

    #[test]
    fn empty_trace_exports_an_empty_event_list() {
        let json = chrome_trace_json(&Trace::default());
        let events = parse_chrome_trace(&json).unwrap();
        assert!(events.is_empty());
    }
}
