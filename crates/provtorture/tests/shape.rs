//! The expressiveness half of the oracle: every workload's
//! provenance graph has the same PQL-observed shape on every
//! topology, and the shapes are non-trivial (the census actually
//! counted something). Includes the self-ingestion workload, whose
//! defining property — the built binary's ancestry reaches every
//! source — is asserted explicitly on all three topologies.

use provtorture::{reaches, run_clean, GraphShape, Topology, ALL_TOPOLOGIES};
use workloads::{Blast, LinuxCompile, MercurialActivity, PaKepler, Postmark, SelfIngest, Workload};

const SEED: u64 = 0x0053_4841_5045; // "SHAPE"

fn assert_shapes_match(w: &dyn Workload) {
    let mut reference = run_clean(w, Topology::SingleDaemon, SEED);
    let shape = GraphShape::observe(&mut reference);
    assert!(
        shape.count("obj") > 0 && shape.count("stage") > 0 && shape.edges > 0,
        "{}: degenerate reference shape ({shape})",
        w.name()
    );
    for topo in [Topology::DurableRestart, Topology::Cluster2] {
        let mut run = run_clean(w, topo, SEED);
        let other = GraphShape::observe(&mut run);
        assert_eq!(
            other,
            shape,
            "{}: shape under {} diverged from single-daemon reference",
            w.name(),
            topo.name()
        );
    }
}

#[test]
fn postmark_shape_is_topology_invariant() {
    assert_shapes_match(&Postmark {
        files: 4,
        transactions: 6,
        ..Default::default()
    });
}

#[test]
fn linux_compile_shape_is_topology_invariant() {
    assert_shapes_match(&LinuxCompile {
        units: 3,
        ..Default::default()
    });
}

#[test]
fn mercurial_shape_is_topology_invariant() {
    assert_shapes_match(&MercurialActivity {
        patches: 3,
        ..Default::default()
    });
}

#[test]
fn blast_shape_is_topology_invariant() {
    assert_shapes_match(&Blast {
        input_bytes: 2048,
        perl_stages: 2,
        ..Default::default()
    });
}

#[test]
fn pa_kepler_shape_is_topology_invariant() {
    assert_shapes_match(&PaKepler {
        rows: 8,
        ..Default::default()
    });
}

#[test]
fn self_ingest_shape_is_topology_invariant() {
    assert_shapes_match(&SelfIngest {
        sources: 3,
        src_bytes: 512,
        cpu_per_unit: 500,
    });
}

/// Self-ingestion's raison d'être: on every topology, the daemon
/// binary's recorded ancestry reaches every one of its sources —
/// the system can vouch for its own build wherever it runs.
#[test]
fn self_ingest_binary_ancestry_reaches_every_source_on_all_topologies() {
    let wl = SelfIngest {
        sources: 3,
        src_bytes: 512,
        cpu_per_unit: 500,
    };
    for topo in ALL_TOPOLOGIES {
        let mut run = run_clean(&wl, topo, SEED);
        for round in 0..2 {
            for i in 0..wl.sources {
                assert!(
                    reaches(
                        &mut run,
                        &format!("/v1/r{round}/target/waldo"),
                        &format!("/v1/r{round}/src/c{i}.rs")
                    ),
                    "{}: /v1/r{round}/target/waldo lost ancestry of src/c{i}.rs",
                    topo.name()
                );
            }
        }
    }
}
