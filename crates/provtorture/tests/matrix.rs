//! The acceptance matrix: every fault kind × every topology, with
//! the self-ingestion workload, judged by the two-sided oracle. The
//! one unconditional invariant — enforced on every cell — is **zero
//! silent divergence**: a tamper either raises a typed signal or
//! leaves the store byte-equal to the fault-free twin.

use provtorture::{torture, Fault, Topology, Verdict, ALL_FAULTS, ALL_TOPOLOGIES};
use workloads::{Postmark, SelfIngest};

const SEED: u64 = 0x7061_7373_7632; // "passv2"

fn tiny_build() -> SelfIngest {
    SelfIngest {
        sources: 3,
        src_bytes: 512,
        cpu_per_unit: 500,
    }
}

/// The verdicts a cell is allowed to produce. `SilentDivergence` is
/// never in any set; beyond that, the expectations encode *where*
/// each fault must be visible:
///
/// * log tampers hit the ingest path, so they must signal on every
///   topology;
/// * forged/replayed batches must be both detected (skip counters)
///   and harmless (byte-equal) everywhere;
/// * a torn checkpoint publish must always be harmless — that is the
///   crash-consistency contract;
/// * durable-state tampers (manifest, segment, WAL) are invisible to
///   a daemon that never restarts, so `SingleDaemon` expects
///   `Harmless` and the restart topologies demand detection.
fn allowed(topo: Topology, fault: Fault) -> &'static [Verdict] {
    use Verdict::*;
    match fault {
        Fault::TruncateLog | Fault::FlipLogBit => &[Detected, DetectedHarmless],
        Fault::ForgeBatchId | Fault::ReplayGroup => &[DetectedHarmless],
        Fault::TearManifestPublish => &[Harmless],
        Fault::FlipManifestBit
        | Fault::TruncateManifest
        | Fault::DropSegment
        | Fault::TruncateWal
        | Fault::FlipWalBit => {
            if topo == Topology::SingleDaemon {
                &[Harmless]
            } else {
                &[Detected, DetectedHarmless]
            }
        }
    }
}

#[test]
fn full_matrix_detects_or_proves_harmless() {
    let wl = tiny_build();
    for topo in ALL_TOPOLOGIES {
        for fault in ALL_FAULTS {
            let report = torture(&wl, topo, &fault, SEED);
            assert!(
                report.applied.is_some(),
                "fault {} found no target under {} — harness bug",
                fault.name(),
                topo.name()
            );
            let verdict = report.verdict();
            assert_ne!(
                verdict,
                Verdict::SilentDivergence,
                "silent divergence: {report:?}"
            );
            assert!(
                allowed(topo, fault).contains(&verdict),
                "unexpected verdict {verdict} for {} under {}: {report:?}",
                fault.name(),
                topo.name()
            );
        }
    }
}

/// The matrix is a function of its seed: the same cell replayed gives
/// the same injection, the same signals, the same bytes. The cluster
/// topology's faulted twin ingests on the threaded runtime, whose
/// span *ids* depend on thread interleaving — so the trace is
/// compared structurally (same spans per layer, same trace
/// membership) while everything else, store bytes included, must be
/// bit-identical.
#[test]
fn identical_seed_gives_identical_reports() {
    let wl = tiny_build();
    for fault in [
        Fault::TruncateLog,
        Fault::DropSegment,
        Fault::TearManifestPublish,
    ] {
        let mut a = torture(&wl, Topology::Cluster2, &fault, SEED);
        let mut b = torture(&wl, Topology::Cluster2, &fault, SEED);
        assert_eq!(
            trace_shape(&a.trace_json),
            trace_shape(&b.trace_json),
            "trace structure not reproducible for {}",
            fault.name()
        );
        a.trace_json.clear();
        b.trace_json.clear();
        assert_eq!(a, b, "verdict not reproducible for {}", fault.name());
    }
}

/// The interleaving-independent shape of a Chrome trace: how many
/// spans each (layer, name) pair produced, and how many of them are
/// roots vs children. Span ids and parent ids vary across threaded
/// runs; these counts may not.
fn trace_shape(json: &str) -> std::collections::BTreeMap<(String, String, bool), usize> {
    let mut shape = std::collections::BTreeMap::new();
    for ev in provscope::parse_chrome_trace(json).expect("harness traces parse") {
        *shape
            .entry((ev.cat, ev.name, ev.parent.is_some()))
            .or_insert(0) += 1;
    }
    shape
}

/// Different seeds move the injection point but never open a hole.
#[test]
fn seed_sweep_never_diverges_silently() {
    let wl = tiny_build();
    for seed in 0..4u64 {
        for fault in [
            Fault::TruncateLog,
            Fault::FlipManifestBit,
            Fault::TruncateWal,
        ] {
            let report = torture(&wl, Topology::DurableRestart, &fault, seed);
            assert_ne!(
                report.verdict(),
                Verdict::SilentDivergence,
                "seed {seed}: {report:?}"
            );
        }
    }
}

/// The harness is workload-generic: the same contract holds when the
/// ingest stream comes from a different operation mix.
#[test]
fn postmark_subset_holds_the_contract() {
    let wl = Postmark {
        files: 4,
        transactions: 6,
        ..Default::default()
    };
    for topo in ALL_TOPOLOGIES {
        for fault in [
            Fault::FlipLogBit,
            Fault::ForgeBatchId,
            Fault::TruncateManifest,
        ] {
            let report = torture(&wl, topo, &fault, SEED);
            assert!(report.applied.is_some(), "{report:?}");
            let verdict = report.verdict();
            assert!(
                allowed(topo, fault).contains(&verdict),
                "unexpected verdict {verdict}: {report:?}"
            );
        }
    }
}
