//! The torture harness: twin runs, three topologies, one verdict.
//!
//! [`torture`] runs the same workload schedule twice — once with the
//! fault injected (the *faulted twin*) and once without (the
//! *reference twin*) — under an identical topology, volume layout,
//! checkpoint schedule and seed. The two-sided oracle then reads off
//! the verdict:
//!
//! * signals (typed errors, corruption counters) from the faulted
//!   twin ⇒ the tamper was **detected**;
//! * `Store::segment_images` byte-equality between the twins ⇒ the
//!   tamper was **provably harmless**;
//! * neither ⇒ [`Verdict::SilentDivergence`], which every consumer
//!   of this crate treats as a failure.
//!
//! The reference twin must itself be silent — a signal there means
//! the harness, not the system, is broken, so it panics.

use dpapi::{Attribute, Bundle, ProvenanceRecord, Value, VolumeId};
use passv2::SystemBuilder;
use sim_os::cost::CostModel;
use waldo::{route_volume, Cluster, IngestStats, Waldo, WaldoConfig};
use workloads::Workload;

use crate::fault::Fault;
use crate::TortureRng;

/// Where a case's daemons live and how they die.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Topology {
    /// One durable daemon serving both volumes; never crashed.
    SingleDaemon,
    /// One durable daemon, machine-crashed and cold-restarted.
    DurableRestart,
    /// A two-member durable cluster, machine-crashed and
    /// cold-restarted member by member.
    Cluster2,
}

/// Every topology, in matrix order.
pub const ALL_TOPOLOGIES: [Topology; 3] = [
    Topology::SingleDaemon,
    Topology::DurableRestart,
    Topology::Cluster2,
];

impl Topology {
    /// Stable display name (also the RNG salt for the cell).
    pub fn name(&self) -> &'static str {
        match self {
            Topology::SingleDaemon => "single-daemon",
            Topology::DurableRestart => "durable-restart",
            Topology::Cluster2 => "cluster-2",
        }
    }

    fn members(&self) -> usize {
        match self {
            Topology::SingleDaemon | Topology::DurableRestart => 1,
            Topology::Cluster2 => 2,
        }
    }
}

/// The verdict of one matrix cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// No signal, byte-equal: the fault never mattered.
    Harmless,
    /// Signaled *and* byte-equal: detected, then fully repaired.
    DetectedHarmless,
    /// Signaled, not byte-equal: detected; recovery refused or lossy,
    /// but loudly.
    Detected,
    /// No signal, not byte-equal: the store silently changed. This is
    /// the one outcome the system promises can never happen.
    SilentDivergence,
}

impl Verdict {
    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            Verdict::Harmless => "harmless",
            Verdict::DetectedHarmless => "detected+harmless",
            Verdict::Detected => "detected",
            Verdict::SilentDivergence => "SILENT DIVERGENCE",
        }
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The full record of one `(workload, topology, fault, seed)` cell.
#[derive(Clone, Debug, PartialEq)]
pub struct CaseReport {
    /// Workload display name.
    pub workload: String,
    /// Topology the case ran under.
    pub topology: Topology,
    /// Fault kind name.
    pub fault: &'static str,
    /// What the injection actually did (`None` = it found no target,
    /// which the matrix tests treat as a harness bug).
    pub applied: Option<String>,
    /// Detection signals raised by the faulted twin: typed recovery
    /// errors and nonzero corruption counters.
    pub signals: Vec<String>,
    /// Whether the faulted twin's final store was byte-equal to the
    /// reference twin's.
    pub byte_equal: bool,
    /// Chrome-trace JSON of the faulted twin's span forest — the
    /// cross-layer story of the cell that produced this verdict, for
    /// loading into `chrome://tracing` when a cell goes wrong. The
    /// reference twin runs untraced, so the byte-equality oracle
    /// doubles as a continuous check that tracing never participates
    /// in behavior. Deterministic (virtual clock), so the smoke
    /// binary's reproducibility assertion covers it too.
    pub trace_json: String,
    /// The volume-salted **batch** trace ids the faulted twin's scope
    /// retained, sorted. Batch ids are content-derived, so under a
    /// [`torture_with_recorder`] run with head sampling this set is
    /// reproducible even on the threaded cluster runtime (where
    /// synthetic trace ids depend on interleaving) — the smoke binary
    /// asserts same-seed recorder runs retain identical sets.
    pub sampled_traces: Vec<u64>,
}

impl CaseReport {
    /// The two-sided oracle's verdict for this cell.
    pub fn verdict(&self) -> Verdict {
        match (!self.signals.is_empty(), self.byte_equal) {
            (false, true) => Verdict::Harmless,
            (true, true) => Verdict::DetectedHarmless,
            (true, false) => Verdict::Detected,
            (false, false) => Verdict::SilentDivergence,
        }
    }
}

impl std::fmt::Display for CaseReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<12} {:<16} {:<22} {}",
            self.workload,
            self.topology.name(),
            self.fault,
            self.verdict()
        )
    }
}

/// The surviving query endpoint of a fault-free run, for the
/// expressiveness (graph-shape) oracle.
pub enum CleanRun {
    /// A single daemon (fresh or cold-restarted).
    Single(Box<Waldo>),
    /// A cold-restarted cluster (scatter-gather queries).
    Cluster(Box<Cluster>),
}

impl CleanRun {
    /// Rows a PQL query returns against this run's store(s).
    pub fn rows(&mut self, text: &str) -> usize {
        let out = match self {
            CleanRun::Single(w) => w.query(text),
            CleanRun::Cluster(c) => c.query(text),
        };
        out.expect("shape-oracle queries are well-formed")
            .result
            .rows
            .len()
    }
}

/// The schedule knobs shared by both twins of a case, derived from
/// the fault *kind* (never from the injection draw), so faulted and
/// reference runs stay comparable.
#[derive(Clone, Copy)]
struct Schedule {
    /// Skip the final per-member checkpoint, leaving the WAL
    /// populated (WAL-targeted faults need bytes to tamper with).
    skip_last_checkpoint: bool,
}

struct RunOutput {
    /// Canonical store bytes, `None` if recovery refused to start
    /// (itself a detection).
    images: Option<Vec<Vec<u8>>>,
    signals: Vec<String>,
    applied: Option<String>,
    survivors: Option<CleanRun>,
    /// Span forest of the run (empty when untraced — the reference
    /// and clean twins).
    trace: provscope::Trace,
}

/// Ingest rounds per run: round 0 establishes committed history
/// (checkpointed, retained, replay-markable); round 1 is the round
/// the faults land on.
const ROUNDS: usize = 2;

/// Volumes per run — two on every topology, so the single-daemon
/// reference shape is comparable with the cluster's.
const VOLUMES: u32 = 2;

const DB_SINGLE: &str = "/db/waldo";
const DB_CLUSTER: &str = "/db/cluster";

fn db_dir(topo: Topology, member: usize) -> String {
    match topo {
        Topology::SingleDaemon | Topology::DurableRestart => DB_SINGLE.to_string(),
        Topology::Cluster2 => format!("{DB_CLUSTER}/member{member}"),
    }
}

fn torture_config() -> WaldoConfig {
    WaldoConfig {
        shards: 4,
        ingest_batch: 8,
        checkpoint_commits: 0,
        checkpoint_wal_bytes: 0,
        keep_checkpoints: 2,
        ..WaldoConfig::default()
    }
}

/// Runs one matrix cell: the faulted twin, then the reference twin on
/// an identical schedule, then the two-sided oracle.
pub fn torture(w: &dyn Workload, topo: Topology, fault: &Fault, seed: u64) -> CaseReport {
    torture_with_recorder(w, topo, fault, seed, None)
}

/// [`torture`] with the faulted twin's scope running the bounded
/// flight recorder instead of unbounded tracing. The oracle is
/// unchanged — the recorder only decides which completed trace trees
/// are *retained*, so verdicts must match the unbounded run's
/// verbatim (the smoke binary asserts this).
pub fn torture_with_recorder(
    w: &dyn Workload,
    topo: Topology,
    fault: &Fault,
    seed: u64,
    recorder: Option<provscope::RecorderConfig>,
) -> CaseReport {
    let schedule = Schedule {
        skip_last_checkpoint: fault.skips_final_checkpoint(),
    };
    let mut fault_rng = TortureRng::for_case(seed, w.name(), topo.name(), fault.name());
    let faulted = execute(w, topo, Some(fault), schedule, &mut fault_rng, recorder);
    let mut ref_rng = TortureRng::for_case(seed, w.name(), topo.name(), "reference");
    let reference = execute(w, topo, None, schedule, &mut ref_rng, None);
    assert!(
        reference.signals.is_empty(),
        "the fault-free twin raised detection signals — a harness bug: {:?}",
        reference.signals
    );
    let ref_images = reference
        .images
        .expect("the fault-free twin's recovery never aborts");
    let byte_equal = faulted.images.as_ref() == Some(&ref_images);
    CaseReport {
        workload: w.name().to_string(),
        topology: topo,
        fault: fault.name(),
        applied: faulted.applied,
        signals: faulted.signals,
        byte_equal,
        sampled_traces: faulted.trace.batch_traces().iter().map(|t| t.0).collect(),
        trace_json: provscope::chrome_trace_json(&faulted.trace),
    }
}

/// Runs a fault-free case and hands back its query endpoint for the
/// graph-shape oracle.
pub fn run_clean(w: &dyn Workload, topo: Topology, seed: u64) -> CleanRun {
    let mut rng = TortureRng::for_case(seed, w.name(), topo.name(), "clean");
    let schedule = Schedule {
        skip_last_checkpoint: false,
    };
    let out = execute(w, topo, None, schedule, &mut rng, None);
    assert!(
        out.signals.is_empty(),
        "a fault-free run raised detection signals: {:?}",
        out.signals
    );
    out.survivors.expect("a fault-free run always survives")
}

fn execute(
    w: &dyn Workload,
    topo: Topology,
    fault: Option<&Fault>,
    schedule: Schedule,
    rng: &mut TortureRng,
    recorder: Option<provscope::RecorderConfig>,
) -> RunOutput {
    let cfg = torture_config();
    let mut builder = SystemBuilder::new(CostModel::default())
        .waldo_config(cfg)
        .plain_volume("/db");
    if let Some(rc) = recorder {
        builder = builder.flight_recorder(rc);
    }
    for v in 1..=VOLUMES {
        builder = builder.pass_volume(&format!("/v{v}"), VolumeId(v));
    }
    let mut sys = builder.build();
    // Trace the faulted twin only: the reference twin stays untraced,
    // so the byte-equality oracle between the twins also re-proves,
    // on every cell, that tracing observes without participating.
    let scope = if fault.is_some() {
        sys.enable_tracing()
    } else {
        provscope::Scope::disabled()
    };
    let nmembers = topo.members();
    let mut members: Vec<Waldo> = (0..nmembers)
        .map(|i| {
            let mut m = sys.spawn_waldo_durable(&db_dir(topo, i));
            m.set_scope(scope.clone());
            m
        })
        .collect();
    // Db-dir faults land on the member that owns volume 1 — the one
    // guaranteed to have checkpoints.
    let target = route_volume(VolumeId(1), nmembers);
    let tamper = sys.kernel.spawn_init("tamper");
    sys.pass.exempt(tamper);
    let driver = sys.spawn("torture-driver");

    let mut signals = Vec::new();
    let mut applied = None;
    let mut stats = IngestStats::default();
    let volumes = sys.volumes.clone();

    for round in 0..ROUNDS {
        let last = round == ROUNDS - 1;
        for (mount, _, vol) in &volumes {
            let base = format!("{mount}/r{round}");
            sys.kernel
                .mkdir_p(driver, &base)
                .expect("workload base dir");
            w.run(&mut sys.kernel, driver, &base)
                .expect("workload run under the torture harness");
            // One disclosure transaction per volume per round: a
            // guaranteed KIND_GROUP batch, so every round has a
            // committed volume-salted batch id for the replay and
            // forgery faults to aim at.
            let h = sys
                .kernel
                .pass_mkobj(driver, Some(*vol))
                .expect("stage object on a PASS volume");
            let mut bundle = Bundle::new();
            bundle.push(
                h,
                ProvenanceRecord::new(Attribute::Type, Value::str("STAGE")),
            );
            bundle.push(
                h,
                ProvenanceRecord::new(Attribute::Name, Value::str(format!("stage-r{round}"))),
            );
            let mut txn = dpapi::Txn::new();
            txn.disclose(h, bundle).sync(h);
            sys.kernel
                .pass_commit(driver, txn)
                .expect("stage disclosure commit");
            let _ = sys.kernel.pass_close(driver, h);
        }
        let rotated = sys.rotate_all_logs();
        if last {
            if let Some(f) = fault {
                if f.targets_logs() {
                    let logs: Vec<String> = rotated
                        .iter()
                        .flat_map(|(_, logs)| logs.iter().cloned())
                        .collect();
                    applied = f.apply_to_logs(&mut sys.kernel, tamper, &logs, rng);
                }
            }
        }
        // The faulted cluster twin ingests on the real multi-core
        // runtime; its reference twin (and the single-daemon cells)
        // stay sequential. The two-sided byte-equality oracle then
        // re-proves, on every cluster cell, that threaded ingest is
        // store-byte-equal to sequential ingest — any threading
        // divergence surfaces as SilentDivergence.
        let threaded = topo == Topology::Cluster2 && fault.is_some();
        let mut work: Vec<Vec<waldo::LogImage>> = (0..nmembers).map(|_| Vec::new()).collect();
        for (mount_id, logs) in &rotated {
            let vol = volumes
                .iter()
                .find(|(_, m, _)| m == mount_id)
                .map(|(_, _, v)| *v)
                .expect("rotated log from a known mount");
            let member = route_volume(vol, nmembers);
            if threaded {
                for log in logs {
                    if let Ok(bytes) = sys.kernel.read_file(members[member].pid(), log) {
                        work[member].push(waldo::LogImage {
                            path: log.clone(),
                            bytes,
                        });
                    }
                }
            } else {
                for log in logs {
                    stats += members[member].ingest_log_file(&mut sys.kernel, log);
                }
            }
        }
        if threaded {
            for s in waldo::cluster::ingest_images_threaded(&mut members, work) {
                stats += s;
            }
            for m in members.iter_mut() {
                stats += m.flush_durable(&mut sys.kernel);
            }
        }
        if !(last && schedule.skip_last_checkpoint) {
            for (i, m) in members.iter_mut().enumerate() {
                let crash = match fault {
                    Some(f) if last && i == target && f.is_torn_publish() => {
                        Some(f.crash_point(rng))
                    }
                    _ => None,
                };
                match crash {
                    Some(point) => {
                        m.checkpoint_crashing_at(&mut sys.kernel, point)
                            .expect("torn checkpoint publish");
                        applied = Some(format!("crashed member {i} final checkpoint at {point:?}"));
                    }
                    None => {
                        m.checkpoint(&mut sys.kernel).expect("checkpoint");
                    }
                }
            }
        }
    }

    // Ingest-side detection counters.
    if stats.tails_truncated > 0 {
        signals.push(format!("log_tails_truncated={}", stats.tails_truncated));
    }
    if stats.tails_corrupt > 0 {
        signals.push(format!("log_tails_corrupt={}", stats.tails_corrupt));
    }
    if stats.replayed_batches > 0 {
        signals.push(format!("replayed_batches={}", stats.replayed_batches));
    }
    for (i, m) in members.iter().enumerate() {
        if m.wal_errors() > 0 {
            signals.push(format!("member{i}_wal_errors={}", m.wal_errors()));
        }
    }

    // Durable-state faults land after the run's checkpoints, before
    // the crash/restart.
    if let Some(f) = fault {
        if f.targets_db_dir() {
            applied = f.apply_to_db_dir(&mut sys.kernel, tamper, &db_dir(topo, target), rng);
        }
    }

    let trace = scope.snapshot();
    match topo {
        Topology::SingleDaemon => {
            let images = members.iter().flat_map(|m| m.db.segment_images()).collect();
            let daemon = members.pop().expect("single-daemon topology has a member");
            RunOutput {
                images: Some(images),
                signals,
                applied,
                survivors: Some(CleanRun::Single(Box::new(daemon))),
                trace,
            }
        }
        Topology::DurableRestart => {
            drop(members);
            let pid = sys.kernel.spawn_init("waldo");
            sys.pass.exempt(pid);
            let mounts: Vec<String> = sys.volumes.iter().map(|(p, _, _)| p.clone()).collect();
            let refs: Vec<&str> = mounts.iter().map(String::as_str).collect();
            match Waldo::restart(pid, &mut sys.kernel, cfg, DB_SINGLE, &refs) {
                Err(e) => {
                    signals.push(format!("restart_error: {e}"));
                    RunOutput {
                        images: None,
                        signals,
                        applied,
                        survivors: None,
                        trace,
                    }
                }
                Ok(daemon) => {
                    collect_restart_signals(&daemon, None, &mut signals);
                    RunOutput {
                        images: Some(daemon.db.segment_images()),
                        signals,
                        applied,
                        survivors: Some(CleanRun::Single(Box::new(daemon))),
                        trace,
                    }
                }
            }
        }
        Topology::Cluster2 => {
            drop(members);
            match sys.try_restart_cluster(nmembers, DB_CLUSTER) {
                Err(e) => {
                    signals.push(format!("cluster_restart_error: {e}"));
                    RunOutput {
                        images: None,
                        signals,
                        applied,
                        survivors: None,
                        trace,
                    }
                }
                Ok(cluster) => {
                    for (i, m) in cluster.members().iter().enumerate() {
                        collect_restart_signals(m, Some(i), &mut signals);
                    }
                    if let Err(e) = cluster.try_merged_store() {
                        signals.push(format!("merge_error: {e}"));
                    }
                    let images = cluster
                        .members()
                        .iter()
                        .flat_map(|m| m.db.segment_images())
                        .collect();
                    RunOutput {
                        images: Some(images),
                        signals,
                        applied,
                        survivors: Some(CleanRun::Cluster(Box::new(cluster))),
                        trace,
                    }
                }
            }
        }
    }
}

/// Detection counters a cold restart surfaces: damaged checkpoints
/// skipped, a torn WAL tail, batches skipped as replays during log
/// recovery.
fn collect_restart_signals(daemon: &Waldo, member: Option<usize>, signals: &mut Vec<String>) {
    let prefix = member.map(|i| format!("member{i}_")).unwrap_or_default();
    let report = daemon
        .restart_report()
        .expect("cold-restarted daemons carry a restart report");
    if report.checkpoints_skipped > 0 {
        signals.push(format!(
            "{prefix}checkpoints_skipped={}",
            report.checkpoints_skipped
        ));
    }
    if report.wal_tail_torn {
        signals.push(format!("{prefix}wal_tail_torn"));
    }
    if daemon.db.replayed_batches() > 0 {
        signals.push(format!(
            "{prefix}recovery_replayed_batches={}",
            daemon.db.replayed_batches()
        ));
    }
}
