//! The ProvMark-style expressiveness oracle.
//!
//! Detection is only half the contract; the other half is that every
//! topology *records the same graph*. [`GraphShape`] is a workload
//! run's node-and-edge census taken through PQL — the public query
//! surface, not store internals — so comparing shapes across
//! topologies also exercises the planner, the scatter-gather tier
//! and the class indexes. A restarted daemon or a two-member cluster
//! that answers with a different census than the single-daemon
//! reference has lost or invented provenance, whatever its bytes
//! say.

use std::collections::BTreeMap;

use crate::harness::CleanRun;

/// The classes the census counts: the observed kinds, the disclosed
/// stage objects, and `obj` (everything) as the checksum row.
const CLASSES: [&str; 5] = ["file", "proc", "pipe", "stage", "obj"];

/// A node/edge census of one run's provenance graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphShape {
    /// Distinct objects per class.
    pub nodes: BTreeMap<String, usize>,
    /// Distinct `(object, input)` ancestry edges (one hop).
    pub edges: usize,
}

impl GraphShape {
    /// Takes the census of `run` through PQL.
    pub fn observe(run: &mut CleanRun) -> GraphShape {
        let mut nodes = BTreeMap::new();
        for class in CLASSES {
            let n = run.rows(&format!("select N from Provenance.{class} as N"));
            nodes.insert(class.to_string(), n);
        }
        let edges = run.rows("select F, A from Provenance.obj as F F.input as A");
        GraphShape { nodes, edges }
    }

    /// Count for one class.
    pub fn count(&self, class: &str) -> usize {
        self.nodes.get(class).copied().unwrap_or(0)
    }
}

impl std::fmt::Display for GraphShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (class, n) in &self.nodes {
            write!(f, "{class}={n} ")?;
        }
        write!(f, "edges={}", self.edges)
    }
}

/// Does `descendant`'s transitive ancestry reach `ancestor` (both by
/// name) in this run's graph?
pub fn reaches(run: &mut CleanRun, descendant: &str, ancestor: &str) -> bool {
    let q = format!(
        "select A from Provenance.file as F F.input* as A \
         where F.name = '{descendant}' and A.name = '{ancestor}'"
    );
    run.rows(&q) > 0
}
