//! The typed fault algebra.
//!
//! Each [`Fault`] is one *kind* of tamper or crash, aimed at one
//! durable artifact of the stack: a rotated Lasagna log, a published
//! checkpoint manifest, a checkpoint segment, the database WAL, or
//! the checkpoint publication protocol itself. Where exactly the
//! fault lands (which log, which byte, which bit, which crash point)
//! is drawn from the case's [`TortureRng`], so a fault kind names a
//! *family* of injections and the seed picks the member — same seed,
//! same injection, same verdict.
//!
//! Faults that would be *boundary* truncations (cutting a log or WAL
//! exactly between frames) are deliberately steered mid-frame: a
//! frame-boundary cut is indistinguishable from "the writer stopped
//! earlier", which no log format can detect, and the harness is in
//! the business of proving detection, not of testing the
//! undetectable.

use bytes::BytesMut;
use dpapi::{Attribute, ObjectRef, Pnode, ProvenanceRecord, Value, Version};
use lasagna::{batch_txn_parts, encode_group, parse_log, LogEntry, LogTail};
use sim_os::proc::Pid;
use sim_os::syscall::Kernel;
use waldo::CheckpointCrash;

use crate::TortureRng;

/// One kind of injectable fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Fault {
    /// Cut a rotated log mid-frame at a seeded byte offset.
    TruncateLog,
    /// Flip one seeded bit of a rotated log.
    FlipLogBit,
    /// Append a forged `KIND_GROUP` batch reusing an already-committed
    /// volume-salted batch id, carrying a poison record. Replay
    /// detection must skip it wholesale.
    ForgeBatchId,
    /// Re-append the bytes of the last committed `KIND_GROUP` frame —
    /// a literal replay of a real batch.
    ReplayGroup,
    /// Crash the final checkpoint at a seeded point of the publish
    /// protocol (torn manifest publish).
    TearManifestPublish,
    /// Flip one seeded bit of the newest published manifest.
    FlipManifestBit,
    /// Truncate the newest published manifest at a seeded offset.
    TruncateManifest,
    /// Unlink the newest generation of a seeded checkpoint segment.
    DropSegment,
    /// Cut the database WAL mid-frame at a seeded offset.
    TruncateWal,
    /// Flip one seeded bit of the database WAL.
    FlipWalBit,
}

/// Every fault kind, in matrix order.
pub const ALL_FAULTS: [Fault; 10] = [
    Fault::TruncateLog,
    Fault::FlipLogBit,
    Fault::ForgeBatchId,
    Fault::ReplayGroup,
    Fault::TearManifestPublish,
    Fault::FlipManifestBit,
    Fault::TruncateManifest,
    Fault::DropSegment,
    Fault::TruncateWal,
    Fault::FlipWalBit,
];

impl Fault {
    /// Stable display name (also the RNG salt for the cell).
    pub fn name(&self) -> &'static str {
        match self {
            Fault::TruncateLog => "truncate-log",
            Fault::FlipLogBit => "flip-log-bit",
            Fault::ForgeBatchId => "forge-batch-id",
            Fault::ReplayGroup => "replay-group",
            Fault::TearManifestPublish => "tear-manifest-publish",
            Fault::FlipManifestBit => "flip-manifest-bit",
            Fault::TruncateManifest => "truncate-manifest",
            Fault::DropSegment => "drop-segment",
            Fault::TruncateWal => "truncate-wal",
            Fault::FlipWalBit => "flip-wal-bit",
        }
    }

    /// Does this fault tamper with rotated logs (before ingest)?
    pub fn targets_logs(&self) -> bool {
        matches!(
            self,
            Fault::TruncateLog | Fault::FlipLogBit | Fault::ForgeBatchId | Fault::ReplayGroup
        )
    }

    /// Does this fault tamper with the durable database directory
    /// (after the run's checkpoints)?
    pub fn targets_db_dir(&self) -> bool {
        matches!(
            self,
            Fault::FlipManifestBit
                | Fault::TruncateManifest
                | Fault::DropSegment
                | Fault::TruncateWal
                | Fault::FlipWalBit
        )
    }

    /// Is this fault a crash of the checkpoint publish protocol?
    pub fn is_torn_publish(&self) -> bool {
        matches!(self, Fault::TearManifestPublish)
    }

    /// Should the run's *schedule* skip the final checkpoint? True
    /// only for WAL faults: a final checkpoint truncates the WAL, and
    /// an empty WAL leaves nothing to tamper with. The schedule is
    /// shared by the faulted run and its fault-free twin, so the
    /// byte-equality oracle compares like with like.
    pub fn skips_final_checkpoint(&self) -> bool {
        matches!(self, Fault::TruncateWal | Fault::FlipWalBit)
    }

    /// The crash point for [`Fault::TearManifestPublish`], drawn from
    /// the case RNG.
    pub fn crash_point(&self, rng: &mut TortureRng) -> CheckpointCrash {
        const POINTS: [CheckpointCrash; 5] = [
            CheckpointCrash::AfterSegments,
            CheckpointCrash::AfterTempManifest,
            CheckpointCrash::AfterPublish,
            CheckpointCrash::MidWalTruncate,
            CheckpointCrash::AfterWalTruncate,
        ];
        POINTS[rng.below(POINTS.len())]
    }

    /// Applies a log-targeted fault to one of `logs` (rotated log
    /// paths), chosen and parameterized by `rng`. Returns a
    /// description of what landed, or `None` if no candidate log
    /// offered a target (which the matrix treats as a harness bug).
    pub fn apply_to_logs(
        &self,
        kernel: &mut Kernel,
        pid: Pid,
        logs: &[String],
        rng: &mut TortureRng,
    ) -> Option<String> {
        let candidates: Vec<&String> = logs
            .iter()
            .filter(|p| {
                kernel
                    .read_file(pid, p)
                    .map(|d| !d.is_empty())
                    .unwrap_or(false)
            })
            .collect();
        if candidates.is_empty() {
            return None;
        }
        match self {
            Fault::TruncateLog => {
                let path = candidates[rng.below(candidates.len())];
                let data = kernel.read_file(pid, path).ok()?;
                let cut =
                    mid_frame_cut(&data, rng, |prefix| parse_log(prefix).1 != LogTail::Clean)?;
                kernel.write_file(pid, path, &data[..cut]).ok()?;
                Some(format!("truncated {path} at byte {cut} of {}", data.len()))
            }
            Fault::FlipLogBit => {
                let path = candidates[rng.below(candidates.len())];
                let mut data = kernel.read_file(pid, path).ok()?;
                let (pos, bit) = flip_random_bit(&mut data, rng);
                kernel.write_file(pid, path, &data).ok()?;
                Some(format!("flipped bit {bit} of byte {pos} in {path}"))
            }
            Fault::ForgeBatchId => {
                let (path, id) = find_committed_batch(kernel, pid, &candidates)?;
                let (vol, seq) = batch_txn_parts(id)?;
                let poison = LogEntry::Prov {
                    subject: ObjectRef::new(Pnode::new(vol, 0x6666_6999), Version(0)),
                    record: ProvenanceRecord::new(Attribute::Name, Value::str("/forged-by-tamper")),
                };
                let group = [LogEntry::TxnBegin { id }, poison, LogEntry::TxnEnd { id }];
                let mut buf = BytesMut::new();
                encode_group(&mut buf, &group).ok()?;
                let mut data = kernel.read_file(pid, &path).ok()?;
                data.extend_from_slice(&buf);
                kernel.write_file(pid, &path, &data).ok()?;
                Some(format!(
                    "appended forged batch id {id:#x} (vol {}, seq {seq}) to {path}",
                    vol.0
                ))
            }
            Fault::ReplayGroup => {
                let (path, id) = find_committed_batch(kernel, pid, &candidates)?;
                let data = kernel.read_file(pid, &path).ok()?;
                let (entries, _) = parse_log(&data);
                let (begin, end) = batch_span(&entries, id)?;
                let mut buf = BytesMut::new();
                encode_group(&mut buf, &entries[begin..=end]).ok()?;
                let mut data = data;
                data.extend_from_slice(&buf);
                kernel.write_file(pid, &path, &data).ok()?;
                Some(format!(
                    "replayed committed batch {id:#x} ({} entries) onto {path}",
                    end - begin + 1
                ))
            }
            _ => panic!("{} is not a log-targeted fault", self.name()),
        }
    }

    /// Applies a db-dir-targeted fault under `db_dir` (the durable
    /// home of one daemon), parameterized by `rng`. Returns a
    /// description of what landed, or `None` if the expected artifact
    /// was absent.
    pub fn apply_to_db_dir(
        &self,
        kernel: &mut Kernel,
        pid: Pid,
        db_dir: &str,
        rng: &mut TortureRng,
    ) -> Option<String> {
        let ckpt_dir = format!("{db_dir}/checkpoints");
        match self {
            Fault::FlipManifestBit => {
                let path = newest_manifest(kernel, pid, &ckpt_dir)?;
                let mut data = kernel.read_file(pid, &path).ok()?;
                let (pos, bit) = flip_random_bit(&mut data, rng);
                kernel.write_file(pid, &path, &data).ok()?;
                Some(format!("flipped bit {bit} of byte {pos} in {path}"))
            }
            Fault::TruncateManifest => {
                let path = newest_manifest(kernel, pid, &ckpt_dir)?;
                let data = kernel.read_file(pid, &path).ok()?;
                if data.is_empty() {
                    return None;
                }
                let cut = rng.below(data.len());
                kernel.write_file(pid, &path, &data[..cut]).ok()?;
                Some(format!("truncated {path} at byte {cut} of {}", data.len()))
            }
            Fault::DropSegment => {
                let segs = segment_files(kernel, pid, &ckpt_dir);
                if segs.is_empty() {
                    return None;
                }
                // Newest generation of a seeded shard: the one the
                // newest manifest references.
                let shard_ids: Vec<u64> = {
                    let mut ids: Vec<u64> = segs.iter().map(|(s, _, _)| *s).collect();
                    ids.sort_unstable();
                    ids.dedup();
                    ids
                };
                let shard = shard_ids[rng.below(shard_ids.len())];
                let (_, _, victim) = segs
                    .iter()
                    .filter(|(s, _, _)| *s == shard)
                    .max_by_key(|(_, g, _)| *g)?;
                kernel.unlink(pid, victim).ok()?;
                Some(format!("unlinked {victim}"))
            }
            Fault::TruncateWal => {
                let path = format!("{db_dir}/wal");
                let data = kernel.read_file(pid, &path).ok()?;
                if data.is_empty() {
                    return None;
                }
                let cut = mid_frame_cut(&data, rng, |prefix| {
                    waldo::wal::parse_wal(prefix).1 != waldo::wal::WalTail::Clean
                })?;
                kernel.write_file(pid, &path, &data[..cut]).ok()?;
                Some(format!("truncated {path} at byte {cut} of {}", data.len()))
            }
            Fault::FlipWalBit => {
                let path = format!("{db_dir}/wal");
                let mut data = kernel.read_file(pid, &path).ok()?;
                if data.is_empty() {
                    return None;
                }
                let (pos, bit) = flip_random_bit(&mut data, rng);
                kernel.write_file(pid, &path, &data).ok()?;
                Some(format!("flipped bit {bit} of byte {pos} in {path}"))
            }
            _ => panic!("{} is not a db-dir-targeted fault", self.name()),
        }
    }
}

/// Flips a seeded bit of `data` in place, returning `(byte, bit)`.
fn flip_random_bit(data: &mut [u8], rng: &mut TortureRng) -> (usize, u32) {
    let pos = rng.below(data.len());
    let bit = rng.below(8) as u32;
    data[pos] ^= 1 << bit;
    (pos, bit)
}

/// Picks a cut point in `1..len` whose prefix `torn` reports as torn
/// (not a clean frame boundary), preferring a seeded draw and
/// falling back to `len - 1` (always mid-frame for CRC-closed
/// formats with a trailing checksum).
fn mid_frame_cut(data: &[u8], rng: &mut TortureRng, torn: impl Fn(&[u8]) -> bool) -> Option<usize> {
    if data.len() < 2 {
        return None;
    }
    let drawn = 1 + rng.below(data.len() - 1);
    for cut in [drawn, data.len() - 1] {
        if torn(&data[..cut]) {
            return Some(cut);
        }
    }
    None
}

/// Finds the last fully committed volume-salted batch across the
/// candidate logs: returns `(log path, batch id)` for the newest
/// `TxnEnd` whose id decodes as a batch id and whose `TxnBegin` is
/// present in the same log.
fn find_committed_batch(
    kernel: &mut Kernel,
    pid: Pid,
    candidates: &[&String],
) -> Option<(String, u64)> {
    for path in candidates.iter().rev() {
        let data = kernel.read_file(pid, path).ok()?;
        let (entries, _) = parse_log(&data);
        let mut found = None;
        for e in &entries {
            if let LogEntry::TxnEnd { id } = e {
                if batch_txn_parts(*id).is_some() && batch_span(&entries, *id).is_some() {
                    found = Some(*id);
                }
            }
        }
        if let Some(id) = found {
            return Some(((*path).clone(), id));
        }
    }
    None
}

/// The `[TxnBegin..TxnEnd]` index span of batch `id` in `entries`.
fn batch_span(entries: &[LogEntry], id: u64) -> Option<(usize, usize)> {
    let end = entries
        .iter()
        .rposition(|e| matches!(e, LogEntry::TxnEnd { id: i } if *i == id))?;
    let begin = entries[..end]
        .iter()
        .rposition(|e| matches!(e, LogEntry::TxnBegin { id: i } if *i == id))?;
    Some((begin, end))
}

/// The newest `manifest.{seq}` path in `dir`, if any.
fn newest_manifest(kernel: &mut Kernel, pid: Pid, dir: &str) -> Option<String> {
    let entries = kernel.readdir(pid, dir).ok()?;
    entries
        .iter()
        .filter_map(|e| {
            e.name
                .strip_prefix("manifest.")
                .and_then(|s| s.parse::<u64>().ok())
        })
        .max()
        .map(|seq| format!("{dir}/manifest.{seq}"))
}

/// Every `shard{i}.g{gen}.seg` in `dir` as `(shard, gen, path)`.
fn segment_files(kernel: &mut Kernel, pid: Pid, dir: &str) -> Vec<(u64, u64, String)> {
    let Ok(entries) = kernel.readdir(pid, dir) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for e in entries {
        let Some(rest) = e.name.strip_prefix("shard") else {
            continue;
        };
        let Some(rest) = rest.strip_suffix(".seg") else {
            continue;
        };
        let Some((shard, gen)) = rest.split_once(".g") else {
            continue;
        };
        if let (Ok(s), Ok(g)) = (shard.parse(), gen.parse()) {
            out.push((s, g, format!("{dir}/{}", e.name)));
        }
    }
    out.sort();
    out
}
