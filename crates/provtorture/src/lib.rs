//! provtorture: the deterministic fault-injection and expressiveness
//! harness.
//!
//! A provenance system's value proposition collapses if its record of
//! the past can be silently altered — so this crate proves, run by
//! run, that it cannot. Every fault in the typed algebra
//! ([`fault::Fault`]) is injected into a full-stack run (syscalls →
//! observer → Lasagna log → Waldo → checkpoints → PQL) of a real
//! workload from `workloads`, and the outcome is judged by a
//! **two-sided oracle** ([`harness`]):
//!
//! * **detected** — a typed recovery error ([`waldo::RestartError`],
//!   [`waldo::MergeError`], [`passv2::ClusterRestartError`]) or a
//!   corruption counter (log-tail tears, replayed batch skips,
//!   skipped checkpoints, a torn WAL tail) names the tamper; or
//! * **provably harmless** — the run's final store is byte-equal
//!   (under [`waldo::Store::segment_images`]'s canonical encoding) to
//!   an identically scheduled run without the fault.
//!
//! A fault that is neither — *silent divergence* — is a test failure,
//! full stop. Each case runs under one of three topologies
//! ([`harness::Topology`]): a single durable daemon, a durable daemon
//! crashed and cold-restarted, and a two-member cluster crashed and
//! cold-restarted. Everything is driven by a seed: the same
//! `(workload, topology, fault, seed)` tuple always produces the
//! same verdict, byte for byte — asserted by the CI smoke binary,
//! which runs the matrix twice and diffs the reports.
//!
//! The second half of the oracle is ProvMark-style expressiveness
//! ([`shape`]): the graph each topology records must have the same
//! node and edge multiset (observed through PQL, not store
//! internals) as the single-daemon reference, for every workload —
//! including [`workloads::SelfIngest`], the system building itself,
//! where a wrong answer would mean the system cannot even vouch for
//! its own binary.

pub mod fault;
pub mod harness;
pub mod shape;

pub use fault::{Fault, ALL_FAULTS};
pub use harness::{
    run_clean, torture, torture_with_recorder, CaseReport, CleanRun, Topology, Verdict,
    ALL_TOPOLOGIES,
};
pub use shape::{reaches, GraphShape};

/// The harness's deterministic generator: a splitmix64 chain, seeded
/// from the case coordinates so each `(seed, workload, topology,
/// fault)` cell draws an independent, reproducible stream. Not
/// `rand`: the whole point is that nothing in a verdict depends on
/// ambient entropy.
pub struct TortureRng(u64);

impl TortureRng {
    /// A generator for one matrix cell.
    pub fn for_case(seed: u64, workload: &str, topology: &str, fault: &str) -> TortureRng {
        let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
        for part in [workload, topology, fault] {
            for b in part.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
            }
            h = h.rotate_left(17);
        }
        TortureRng(h)
    }

    /// The next raw 64-bit draw (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A draw in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) has no value to draw");
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_case_and_distinct_across_cases() {
        let draw = |w: &str, t: &str, f: &str| {
            let mut r = TortureRng::for_case(42, w, t, f);
            [r.next_u64(), r.next_u64(), r.next_u64()]
        };
        assert_eq!(draw("a", "b", "c"), draw("a", "b", "c"));
        assert_ne!(draw("a", "b", "c"), draw("a", "b", "d"));
        assert_ne!(draw("a", "b", "c"), draw("x", "b", "c"));
        let mut r = TortureRng::for_case(7, "w", "t", "f");
        for _ in 0..100 {
            assert!(r.below(13) < 13);
        }
    }
}
