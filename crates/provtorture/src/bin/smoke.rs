//! CI smoke: the full fault × topology matrix at a fixed seed, run
//! **twice**, asserting (a) zero silent divergence and (b) that the
//! second pass reproduces the first report-for-report — the
//! determinism contract the whole harness rests on. Exits nonzero on
//! any violation. Override the seed with `PROVTORTURE_SEED=<u64>`.

use provtorture::{torture, CaseReport, Verdict, ALL_FAULTS, ALL_TOPOLOGIES};
use workloads::SelfIngest;

fn run_matrix(seed: u64) -> Vec<CaseReport> {
    let wl = SelfIngest {
        sources: 3,
        src_bytes: 512,
        cpu_per_unit: 500,
    };
    let mut reports = Vec::new();
    for topo in ALL_TOPOLOGIES {
        for fault in &ALL_FAULTS {
            reports.push(torture(&wl, topo, fault, seed));
        }
    }
    reports
}

fn main() {
    let seed = std::env::var("PROVTORTURE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x7061_7373_7632);
    let first = run_matrix(seed);
    let second = run_matrix(seed);
    assert_eq!(
        first, second,
        "determinism violation: identical seed produced different reports"
    );

    println!("provtorture tamper matrix (seed {seed:#x}, verified reproducible)");
    println!("{:-<72}", "");
    let mut divergences = 0;
    for report in &first {
        println!("{report}");
        if report.verdict() == Verdict::SilentDivergence {
            divergences += 1;
            eprintln!("  !! {report:?}");
        }
        assert!(
            report.applied.is_some(),
            "fault {} found no target under {} — harness bug",
            report.fault,
            report.topology.name()
        );
    }
    println!("{:-<72}", "");
    println!(
        "{} cases, {} silent divergences, verdicts reproduced across two passes",
        first.len(),
        divergences
    );
    if divergences > 0 {
        std::process::exit(1);
    }
}
