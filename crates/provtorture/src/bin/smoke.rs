//! CI smoke: the full fault × topology matrix at a fixed seed, run
//! **twice**, asserting (a) zero silent divergence and (b) that the
//! second pass reproduces the first report-for-report — the
//! determinism contract the whole harness rests on. The cluster
//! topology's faulted twin ingests on the threaded runtime, whose
//! span-id allocation order depends on thread interleaving, so
//! traces are held to *structural* equality (same (layer, op,
//! parentage) census) and everything else — verdicts, signals, store
//! bytes — to bit equality. Exits nonzero on any violation. Override
//! the seed with `PROVTORTURE_SEED=<u64>`.

use std::collections::BTreeMap;

use provscope::RecorderConfig;
use provtorture::{
    torture, torture_with_recorder, CaseReport, Verdict, ALL_FAULTS, ALL_TOPOLOGIES,
};
use workloads::SelfIngest;

/// Interleaving-independent shape of a Chrome trace: span counts per
/// (layer, op, root-or-child).
fn trace_shape(json: &str) -> BTreeMap<(String, String, bool), usize> {
    let mut shape = BTreeMap::new();
    for ev in provscope::parse_chrome_trace(json).expect("harness traces parse") {
        *shape
            .entry((ev.cat, ev.name, ev.parent.is_some()))
            .or_insert(0) += 1;
    }
    shape
}

fn run_matrix(seed: u64) -> Vec<CaseReport> {
    let wl = SelfIngest {
        sources: 3,
        src_bytes: 512,
        cpu_per_unit: 500,
    };
    let mut reports = Vec::new();
    for topo in ALL_TOPOLOGIES {
        for fault in &ALL_FAULTS {
            reports.push(torture(&wl, topo, fault, seed));
        }
    }
    reports
}

/// The flight-recorder config for the recorder determinism pass:
/// bounded ring, half head-sampling at a fixed seed, tail pinning
/// off (`u64::MAX`) so retention is decided solely by the pure
/// trace-id predicate — the one part that must reproduce exactly
/// even on the threaded cluster runtime, where virtual timestamps
/// (and so any duration-based pinning) depend on interleaving.
fn recorder_config() -> RecorderConfig {
    RecorderConfig {
        capacity: 4096,
        sample_per_million: 500_000,
        seed: 0x7061_7373,
        slow_threshold_ns: u64::MAX,
        slow_capacity: 4096,
    }
}

fn run_matrix_recorded(seed: u64) -> Vec<CaseReport> {
    let wl = SelfIngest {
        sources: 3,
        src_bytes: 512,
        cpu_per_unit: 500,
    };
    let mut reports = Vec::new();
    for topo in ALL_TOPOLOGIES {
        for fault in &ALL_FAULTS {
            reports.push(torture_with_recorder(
                &wl,
                topo,
                fault,
                seed,
                Some(recorder_config()),
            ));
        }
    }
    reports
}

fn main() {
    let seed = std::env::var("PROVTORTURE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x7061_7373_7632);
    let mut first = run_matrix(seed);
    let mut second = run_matrix(seed);
    for (a, b) in first.iter_mut().zip(second.iter_mut()) {
        assert_eq!(
            trace_shape(&a.trace_json),
            trace_shape(&b.trace_json),
            "determinism violation: trace structure differs for {} under {}",
            a.fault,
            a.topology.name()
        );
        a.trace_json.clear();
        b.trace_json.clear();
    }
    assert_eq!(
        first, second,
        "determinism violation: identical seed produced different reports"
    );

    println!("provtorture tamper matrix (seed {seed:#x}, verified reproducible)");
    println!("{:-<72}", "");
    let mut divergences = 0;
    for report in &first {
        println!("{report}");
        if report.verdict() == Verdict::SilentDivergence {
            divergences += 1;
            eprintln!("  !! {report:?}");
        }
        assert!(
            report.applied.is_some(),
            "fault {} found no target under {} — harness bug",
            report.fault,
            report.topology.name()
        );
    }
    println!("{:-<72}", "");
    println!(
        "{} cases, {} silent divergences, verdicts reproduced across two passes",
        first.len(),
        divergences
    );
    if divergences > 0 {
        std::process::exit(1);
    }

    // Flight-recorder pass: the same matrix with the faulted twin's
    // scope bounded and head-sampling half the trace trees. The
    // recorder only decides retention, so every verdict and signal
    // must match the unbounded pass verbatim; and because sampling is
    // a pure function of the volume-salted trace id, two same-seed
    // recorder runs must retain *identical* batch trace-id sets —
    // exactly the sampled subset of the unbounded run's.
    let cfg = recorder_config();
    let rec_a = run_matrix_recorded(seed);
    let rec_b = run_matrix_recorded(seed);
    for ((a, b), full) in rec_a.iter().zip(&rec_b).zip(&first) {
        let cell = format!("{} under {}", a.fault, a.topology.name());
        assert_eq!(
            a.verdict(),
            full.verdict(),
            "recorder changed the verdict for {cell}"
        );
        assert_eq!(
            a.signals, full.signals,
            "recorder changed detection signals for {cell}"
        );
        assert_eq!(
            a.sampled_traces, b.sampled_traces,
            "same-seed recorder runs retained different trace-id sets for {cell}"
        );
        let expected: Vec<u64> = full
            .sampled_traces
            .iter()
            .copied()
            .filter(|&t| cfg.samples(provscope::TraceId(t)))
            .collect();
        assert_eq!(
            a.sampled_traces, expected,
            "recorder retention is not the pure sampled subset for {cell}"
        );
    }
    let (kept, total): (usize, usize) = (
        rec_a.iter().map(|r| r.sampled_traces.len()).sum(),
        first.iter().map(|r| r.sampled_traces.len()).sum(),
    );
    println!(
        "recorder pass: verdicts and signals match the unbounded run; \
         {kept}/{total} batch traces retained, sets reproduced across two passes"
    );
}
