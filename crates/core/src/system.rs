//! Whole-system assembly: kernel + Lasagna volumes + the PASS module.
//!
//! This module wires together the seven components of Figure 2:
//! libpass (user level), the interceptor and observer (the installed
//! [`Pass`] module), the analyzer and distributor (inside the
//! module), Lasagna (mounted volumes) and Waldo (driven externally by
//! the `waldo` crate via log-rotation polling; the storage engine's
//! tuning — shard count, ingest batch, ancestry cache — threads
//! through [`SystemBuilder::waldo_config`]).

use std::rc::Rc;

use dpapi::VolumeId;
use lasagna::{Lasagna, LasagnaConfig};
use sim_os::clock::Clock;
use sim_os::cost::CostModel;
use sim_os::fs::basefs::{BaseFs, BaseFsConfig};
use sim_os::proc::{MountId, Pid};
use sim_os::syscall::Kernel;
use waldo::cluster::route_volume;
use waldo::{Cluster, RestartError, Waldo, WaldoConfig};

use crate::module::{ObserverBatchConfig, Pass};

/// Why [`System::try_restart_cluster`] could not bring the fleet
/// back: the member that failed (so an operator can repair exactly
/// that durable home) and the underlying [`RestartError`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterRestartError {
    /// Index of the member whose restart failed; members before it
    /// restarted cleanly (and were discarded — a partial cluster
    /// would silently drop the failed member's volumes).
    pub member: usize,
    /// What went wrong on that member's durable home.
    pub source: RestartError,
}

impl std::fmt::Display for ClusterRestartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cluster member {} failed to restart: {}",
            self.member, self.source
        )
    }
}

impl std::error::Error for ClusterRestartError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// A fully assembled PASSv2 machine.
pub struct System {
    /// The simulated kernel, with the module installed.
    pub kernel: Kernel,
    /// The provenance module (shared with the kernel).
    pub pass: Rc<Pass>,
    /// Mounted PASS volumes: (mount point, mount id, volume id).
    pub volumes: Vec<(String, MountId, VolumeId)>,
    /// Storage-engine tuning for Waldo daemons this system spawns.
    pub waldo_cfg: WaldoConfig,
    /// Flight-recorder retention for [`System::enable_tracing`];
    /// `None` keeps every span (the unbounded debug mode).
    recorder: Option<provscope::RecorderConfig>,
}

/// Builder for [`System`].
pub struct SystemBuilder {
    model: CostModel,
    clock: Clock,
    base_cfg: BaseFsConfig,
    mounts: Vec<(String, Option<VolumeId>)>,
    provenance_enabled: bool,
    waldo_cfg: WaldoConfig,
    observer_batch: Option<ObserverBatchConfig>,
    recorder: Option<provscope::RecorderConfig>,
}

impl SystemBuilder {
    /// Starts a builder with the given cost model.
    pub fn new(model: CostModel) -> Self {
        SystemBuilder {
            model,
            clock: Clock::new(),
            base_cfg: BaseFsConfig::default(),
            mounts: Vec::new(),
            provenance_enabled: true,
            waldo_cfg: WaldoConfig::default(),
            observer_batch: None,
            recorder: None,
        }
    }

    /// Bounds the tracing scope [`System::enable_tracing`] creates
    /// with a flight recorder: ring retention of completed trace
    /// trees, deterministic head sampling on the volume-salted trace
    /// id, and tail-based slow-trace pinning (see
    /// [`provscope::RecorderConfig`]). Without this, tracing keeps
    /// every span for the life of the scope.
    pub fn flight_recorder(mut self, cfg: provscope::RecorderConfig) -> Self {
        self.recorder = Some(cfg);
        self
    }

    /// Enables observer-side write batching: the module aggregates a
    /// process's pure write bursts into one volume transaction instead
    /// of a `pass_write` per intercepted write. The batched store is
    /// byte-equal to the unbatched one (see
    /// [`ObserverBatchConfig`]); only the RPC count changes.
    pub fn observer_batch(mut self, cfg: ObserverBatchConfig) -> Self {
        self.observer_batch = Some(cfg);
        self
    }

    /// Overrides the base file-system configuration.
    pub fn base_config(mut self, cfg: BaseFsConfig) -> Self {
        self.base_cfg = cfg;
        self
    }

    /// Overrides the Waldo storage-engine tuning (shards, ingest
    /// batch, ancestry cache) used by [`System::spawn_waldo`].
    pub fn waldo_config(mut self, cfg: WaldoConfig) -> Self {
        self.waldo_cfg = cfg;
        self
    }

    /// Disables provenance collection entirely: volumes become plain
    /// base file systems and no module is installed. This is the
    /// "vanilla ext3" baseline of Table 2.
    pub fn without_provenance(mut self) -> Self {
        self.provenance_enabled = false;
        self
    }

    /// Adds a PASS (Lasagna-over-base) volume at `path`.
    pub fn pass_volume(mut self, path: &str, volume: VolumeId) -> Self {
        self.mounts.push((path.to_string(), Some(volume)));
        self
    }

    /// Adds a plain (non-provenance-aware) volume at `path`.
    pub fn plain_volume(mut self, path: &str) -> Self {
        self.mounts.push((path.to_string(), None));
        self
    }

    /// Builds the machine and boots an init process.
    pub fn build(self) -> System {
        let mut kernel = Kernel::new(self.clock.clone(), self.model);
        let mut volumes = Vec::new();
        for (path, vol) in self.mounts {
            match vol {
                Some(v) if self.provenance_enabled => {
                    let base = BaseFs::with_config(self.clock.clone(), self.model, self.base_cfg);
                    let fs = Lasagna::new(
                        Box::new(base),
                        self.clock.clone(),
                        self.model,
                        LasagnaConfig::new(v),
                    )
                    .expect("lasagna volume creation cannot fail on a fresh base fs");
                    let m = kernel.mount(&path, Box::new(fs));
                    volumes.push((path, m, v));
                }
                _ => {
                    let base = BaseFs::with_config(self.clock.clone(), self.model, self.base_cfg);
                    kernel.mount(&path, Box::new(base));
                }
            }
        }
        let pass = Pass::new_shared();
        pass.set_observer_batch(self.observer_batch);
        if self.provenance_enabled {
            kernel.install_module(pass.clone());
        }
        System {
            kernel,
            pass,
            volumes,
            waldo_cfg: self.waldo_cfg,
            recorder: self.recorder,
        }
    }
}

impl System {
    /// A one-volume PASS machine mounted at `/`, the common test
    /// configuration.
    pub fn single_volume() -> System {
        SystemBuilder::new(CostModel::default())
            .pass_volume("/", VolumeId(1))
            .build()
    }

    /// A plain machine (no provenance) mounted at `/` — the ext3
    /// baseline.
    pub fn baseline() -> System {
        SystemBuilder::new(CostModel::default())
            .plain_volume("/")
            .without_provenance()
            .build()
    }

    /// Spawns a process (fork from init or first process).
    pub fn spawn(&mut self, exe: &str) -> Pid {
        self.kernel.spawn_init(exe)
    }

    /// Turns on cross-layer span tracing for this machine: one
    /// [`provscope::Scope`] on the kernel's virtual clock, shared by
    /// the kernel, the PASS module, and every provenance-aware volume
    /// (current and future mounts). Daemons spawned separately
    /// ([`Waldo`]/cluster members) join via their own `set_scope`.
    ///
    /// Tracing only *reads* the clock — it never advances it, and it
    /// never perturbs batch-id allocation or log bytes, so a traced
    /// run is byte-identical to an untraced one. With
    /// [`SystemBuilder::flight_recorder`] set, the scope retains
    /// spans under that bounded, deterministically-sampled policy
    /// instead of keeping everything.
    pub fn enable_tracing(&mut self) -> provscope::Scope {
        let clock = self.kernel.clock();
        let scope = match self.recorder {
            Some(cfg) => provscope::Scope::recording(move || clock.now(), cfg),
            None => provscope::Scope::enabled(move || clock.now()),
        };
        self.kernel.set_scope(scope.clone());
        self.pass.set_scope(scope.clone());
        scope
    }

    /// Spawns the Waldo daemon: an observation-exempt process whose
    /// store is wired with this system's [`WaldoConfig`].
    pub fn spawn_waldo(&mut self) -> Waldo {
        let pid = self.kernel.spawn_init("waldo");
        self.pass.exempt(pid);
        Waldo::with_config(pid, self.waldo_cfg)
    }

    /// Spawns a Waldo daemon with its durable home attached at
    /// `db_dir` (the WAL plus the checkpoint directory): the
    /// checkpoint policy of this system's [`WaldoConfig`]
    /// (`checkpoint_commits` / `checkpoint_wal_bytes`) becomes active
    /// and fully committed logs are retained until a checkpoint
    /// covers them.
    pub fn spawn_waldo_durable(&mut self, db_dir: &str) -> Waldo {
        let mut w = self.spawn_waldo();
        w.attach_db_dir(&mut self.kernel, db_dir)
            .expect("attaching the Waldo database directory on a fresh volume");
        w
    }

    /// Cold-starts a Waldo daemon after a simulated **machine** crash
    /// (nothing in memory survives; the disks do): rebuilds the store
    /// from `db_dir`'s newest complete checkpoint, then replays
    /// retained logs across every PASS volume. See `Waldo::restart`.
    pub fn restart_waldo(&mut self, db_dir: &str) -> Waldo {
        let pid = self.kernel.spawn_init("waldo");
        self.pass.exempt(pid);
        let mounts: Vec<String> = self.volumes.iter().map(|(p, _, _)| p.clone()).collect();
        let refs: Vec<&str> = mounts.iter().map(String::as_str).collect();
        Waldo::restart(pid, &mut self.kernel, self.waldo_cfg, db_dir, &refs)
            .expect("reattaching the Waldo database directory on restart")
    }

    /// Spawns an `n`-member Waldo cluster — the multi-daemon fan-in
    /// tier (`waldo::cluster`): each member is an observation-exempt
    /// daemon wired with this system's [`WaldoConfig`], and every PASS
    /// volume is deterministically routed to one member. Drive ingest
    /// with `cluster.poll_volumes(&mut sys.kernel, &sys.volumes)`.
    pub fn spawn_cluster(&mut self, n: usize) -> Cluster {
        let members = (0..n).map(|_| self.spawn_waldo()).collect();
        Cluster::new(members)
    }

    /// [`System::spawn_cluster`] with the multi-core ingest runtime
    /// selected: members run their kernel-free ingest on OS threads
    /// (`waldo::ClusterRuntime::Threaded`) while the coordinator
    /// keeps the single-threaded kernel. The member stores are
    /// byte-identical to a sequential cluster's for the same sweep;
    /// only wall-clock time and durability *timing* differ.
    pub fn spawn_cluster_threaded(&mut self, n: usize) -> Cluster {
        let mut cluster = self.spawn_cluster(n);
        cluster.set_runtime(waldo::ClusterRuntime::Threaded);
        cluster
    }

    /// Spawns an `n`-member cluster with each member's durable home
    /// attached at `{base_dir}/member{i}` — per-member WAL, checkpoint
    /// policy and log retention, exactly the single-daemon PR 2
    /// machinery multiplied out. Pair with [`System::restart_cluster`]
    /// at the **same member count** after a machine crash.
    pub fn spawn_cluster_durable(&mut self, n: usize, base_dir: &str) -> Cluster {
        let members = (0..n)
            .map(|i| self.spawn_waldo_durable(&format!("{base_dir}/member{i}")))
            .collect();
        Cluster::new(members)
    }

    /// Cold-starts an `n`-member cluster after a simulated machine
    /// crash: member `i` restarts from `{base_dir}/member{i}` and
    /// replays retained logs from exactly the volumes that route to
    /// it — volume→member routing is deterministic, so a restarted
    /// member finds its own replay marks and never ingests (or
    /// unlinks) another member's logs. `n` must match the member
    /// count the cluster ran at; resizing re-routes volumes away from
    /// the members holding their state.
    pub fn restart_cluster(&mut self, n: usize, base_dir: &str) -> Cluster {
        self.try_restart_cluster(n, base_dir)
            .expect("reattaching every cluster member's database directory on restart")
    }

    /// [`System::restart_cluster`], surfacing a failed member as a
    /// member-indexed [`ClusterRestartError`] instead of panicking —
    /// so an operator (or the fault harness) learns *which* durable
    /// home is missing or damaged. All-or-nothing: the survivors'
    /// restarts are discarded on failure, because a partial cluster
    /// would silently drop the failed member's routed volumes from
    /// every answer.
    pub fn try_restart_cluster(
        &mut self,
        n: usize,
        base_dir: &str,
    ) -> Result<Cluster, ClusterRestartError> {
        let mut members = Vec::with_capacity(n);
        for i in 0..n {
            let pid = self.kernel.spawn_init("waldo");
            self.pass.exempt(pid);
            let mounts: Vec<String> = self
                .volumes
                .iter()
                .filter(|(_, _, v)| route_volume(*v, n) == i)
                .map(|(p, _, _)| p.clone())
                .collect();
            let refs: Vec<&str> = mounts.iter().map(String::as_str).collect();
            let member = Waldo::restart(
                pid,
                &mut self.kernel,
                self.waldo_cfg,
                &format!("{base_dir}/member{i}"),
                &refs,
            )
            .map_err(|source| ClusterRestartError { member: i, source })?;
            members.push(member);
        }
        Ok(Cluster::new(members))
    }

    /// Answers a PQL query from `waldo`'s database through the
    /// planned, index-backed pipeline, returning the rows together
    /// with the planner statistics (index hits, rows pruned, closure
    /// calls saved). The counters also accumulate on the daemon
    /// (`Waldo::query_ops`), so long-running systems can report them
    /// alongside the ingest-side op counters.
    ///
    /// This is the top of the paper's query stack: PQL → Waldo →
    /// sharded store, with `where` predicates pushed down into the
    /// store's secondary indexes instead of scanning the volume.
    pub fn query(&self, waldo: &mut Waldo, text: &str) -> Result<pql::QueryOutput, pql::PqlError> {
        waldo.query(text)
    }

    /// Forces every PASS volume to rotate its log so Waldo can ingest
    /// all pending provenance, then returns the rotated log paths per
    /// mount, absolute.
    pub fn rotate_all_logs(&mut self) -> Vec<(MountId, Vec<String>)> {
        // Visibility barrier: land any observer-side write burst in
        // the logs before sealing them.
        self.kernel.barrier();
        let mut out = Vec::new();
        for (path, m, _) in &self.volumes {
            if let Some(d) = self.kernel.dpapi_at(*m) {
                d.force_log_rotation();
                let logs = d
                    .take_log_rotations()
                    .into_iter()
                    .map(|rel| {
                        if path == "/" {
                            format!("/{rel}")
                        } else {
                            format!("{path}/{rel}")
                        }
                    })
                    .collect();
                out.push((*m, logs));
            }
        }
        out
    }

    /// The virtual clock.
    pub fn clock(&self) -> Clock {
        self.kernel.clock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_os::syscall::OpenFlags;

    #[test]
    fn single_volume_machine_boots_and_writes() {
        let mut sys = System::single_volume();
        let pid = sys.spawn("/bin/sh");
        sys.kernel.write_file(pid, "/greeting", b"hello").unwrap();
        assert_eq!(sys.kernel.read_file(pid, "/greeting").unwrap(), b"hello");
        // Provenance was generated: the module emitted records.
        assert!(sys.pass.stats().records_emitted > 0);
    }

    #[test]
    fn baseline_machine_generates_no_provenance() {
        let mut sys = System::baseline();
        let pid = sys.spawn("/bin/sh");
        sys.kernel.write_file(pid, "/f", b"data").unwrap();
        assert_eq!(sys.pass.stats().records_emitted, 0);
        assert_eq!(sys.pass.analyzer_stats().presented, 0);
    }

    #[test]
    fn rotate_all_logs_returns_absolute_paths() {
        let mut sys = System::single_volume();
        let pid = sys.spawn("/bin/sh");
        sys.kernel.write_file(pid, "/f", b"data").unwrap();
        let rotations = sys.rotate_all_logs();
        assert_eq!(rotations.len(), 1);
        let (_, logs) = &rotations[0];
        assert_eq!(logs.len(), 1);
        assert!(logs[0].starts_with("/.pass/log."), "got {}", logs[0]);
        // The log is readable through the kernel by an exempt process.
        let waldo = sys.kernel.spawn_init("waldo");
        sys.pass.exempt(waldo);
        let bytes = sys.kernel.read_file(waldo, &logs[0]).unwrap();
        assert!(!bytes.is_empty());
    }

    #[test]
    fn durable_waldo_survives_machine_crash() {
        let mut sys = System::single_volume();
        let pid = sys.spawn("/bin/sh");
        sys.kernel.write_file(pid, "/artifact", b"bytes").unwrap();
        let (_, m, _) = sys.volumes[0];
        sys.kernel.dpapi_at(m).unwrap().force_log_rotation();
        let mut w = sys.spawn_waldo_durable("/waldo-db");
        w.poll_volume(&mut sys.kernel, m, "/");
        w.checkpoint(&mut sys.kernel).unwrap();
        let images = w.db.segment_images();
        drop(w); // machine crash: memory gone, disks survive
        let restarted = sys.restart_waldo("/waldo-db");
        assert_eq!(restarted.db.segment_images(), images);
        assert_eq!(restarted.db.find_by_name("/artifact").len(), 1);
    }

    #[test]
    fn reads_and_writes_flow_through_dpapi() {
        let mut sys = System::single_volume();
        let pid = sys.spawn("/bin/sh");
        sys.kernel.write_file(pid, "/in", b"source data").unwrap();
        let fd_in = sys.kernel.open(pid, "/in", OpenFlags::RDONLY).unwrap();
        let data = sys.kernel.read(pid, fd_in, 6).unwrap();
        sys.kernel.close(pid, fd_in).unwrap();
        let out = sys
            .kernel
            .open(pid, "/out", OpenFlags::WRONLY_CREATE)
            .unwrap();
        sys.kernel.write(pid, out, &data).unwrap();
        sys.kernel.close(pid, out).unwrap();
        // The analyzer saw both the read and write dependencies.
        let s = sys.pass.analyzer_stats();
        assert!(s.presented >= 2);
    }
}
