//! The analyzer: duplicate elimination and cycle avoidance.
//!
//! Programs perform I/O in small blocks, so most provenance records
//! the observer emits are identical to one already recorded; the
//! analyzer drops those duplicates. Cycles can occur when multiple
//! processes concurrently read and write the same files; PASSv2 uses
//! the conservative *cycle-avoidance* algorithm (from the
//! Causality-Based Versioning work) that consults only an object's
//! local dependency information and prevents cycles by creating new
//! versions, rather than the PASSv1 approach of maintaining a global
//! dependency graph and merging the nodes of detected cycles. Both
//! algorithms are implemented here; the PASSv1 algorithm serves as
//! the ablation baseline in the benchmark suite.

use std::collections::{HashMap, HashSet};

/// An analyzer-level object id. The observer assigns one per tracked
/// object (file, process, pipe, or application object).
pub type NodeId = u64;

/// What the analyzer decided about one new dependency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DepOutcome {
    /// The record duplicates one already absorbed: suppress it.
    pub duplicate: bool,
    /// The *target* had to be frozen (new version) before the edge
    /// could be added; the caller must emit a FREEZE record. The
    /// value is the target's new version.
    pub frozen: Option<u32>,
    /// The target's version after the operation.
    pub target_version: u32,
    /// The source's version captured by the edge.
    pub source_version: u32,
}

#[derive(Debug, Default, Clone)]
struct NodeState {
    version: u32,
    /// Direct dependencies absorbed by the *current* version, for
    /// duplicate elimination within the version interval.
    deps: HashSet<(NodeId, u32)>,
    /// Whether the current version has been observed (used as an
    /// input by anyone) since it was created. A write to an observed
    /// object must open a new version: the old one is already inside
    /// other objects' ancestries and may not change.
    observed: bool,
}

/// Running totals for analyzer decisions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AnalyzerStats {
    /// Dependencies presented by the observer.
    pub presented: u64,
    /// Duplicates suppressed.
    pub duplicates: u64,
    /// Freezes (version bumps) forced to avoid cycles.
    pub freezes: u64,
}

/// The cycle-avoidance analyzer used by PASSv2.
#[derive(Debug, Default)]
pub struct CycleAvoidance {
    nodes: HashMap<NodeId, NodeState>,
    stats: AnalyzerStats,
}

impl CycleAvoidance {
    /// Creates an empty analyzer.
    pub fn new() -> Self {
        CycleAvoidance::default()
    }

    /// Statistics so far.
    pub fn stats(&self) -> AnalyzerStats {
        self.stats
    }

    /// Number of tracked nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no nodes are tracked.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Current version of `node` (0 if untracked).
    pub fn version(&self, node: NodeId) -> u32 {
        self.nodes.get(&node).map(|n| n.version).unwrap_or(0)
    }

    /// Forces `node`'s version (used to mirror a volume-assigned
    /// version when a file is first seen).
    pub fn set_version(&mut self, node: NodeId, version: u32) {
        self.nodes.entry(node).or_default().version = version;
    }

    /// Records that `target` now depends on `source` ("`source` is an
    /// input to `target`"), returning what to do about it.
    ///
    /// The discipline is the Causality-Based-Versioning interval
    /// rule, using only local per-object state:
    ///
    /// * **Cycle avoidance**: if `target`'s current version has been
    ///   *observed* — absorbed as an input by any object since the
    ///   version opened — the new input must open a fresh version
    ///   (freeze). An observed version therefore never gains
    ///   out-edges after its first in-edge, which makes cycles
    ///   impossible among `(object, version)` pairs.
    /// * **Duplicate elimination**: within one version interval, a
    ///   repeated `source@version` input is suppressed.
    pub fn add_dependency(&mut self, target: NodeId, source: NodeId) -> DepOutcome {
        self.stats.presented += 1;
        let source_version = self.version(source);
        // Freeze first: writing to an observed (or self) object opens
        // a new version with a fresh dedup interval.
        let must_freeze =
            target == source || self.nodes.get(&target).map(|t| t.observed).unwrap_or(false);
        let frozen = if must_freeze {
            let t = self.nodes.entry(target).or_default();
            t.version += 1;
            t.observed = false;
            t.deps.clear();
            self.stats.freezes += 1;
            Some(t.version)
        } else {
            None
        };
        // Duplicate check within the (possibly fresh) interval.
        if self
            .nodes
            .get(&target)
            .map(|t| t.deps.contains(&(source, source_version)))
            .unwrap_or(false)
        {
            self.stats.duplicates += 1;
            return DepOutcome {
                duplicate: true,
                frozen,
                target_version: self.version(target),
                source_version,
            };
        }
        let t = self.nodes.entry(target).or_default();
        t.deps.insert((source, source_version));
        let s = self.nodes.entry(source).or_default();
        s.observed = true;
        DepOutcome {
            duplicate: false,
            frozen,
            target_version: self.version(target),
            source_version,
        }
    }

    /// Explicitly freezes `node` (application-requested
    /// `pass_freeze`), returning the new version and opening a fresh
    /// dedup interval.
    pub fn freeze(&mut self, node: NodeId) -> u32 {
        let n = self.nodes.entry(node).or_default();
        n.version += 1;
        n.observed = false;
        n.deps.clear();
        self.stats.freezes += 1;
        n.version
    }

    /// Discards a node (process exit, inode dropped). Its id is never
    /// reused, so stale references in other sets stay harmless.
    pub fn forget(&mut self, node: NodeId) {
        self.nodes.remove(&node);
    }

    /// True if `target`'s current-version set contains
    /// `source@version` (test/inspection helper).
    pub fn depends_on(&self, target: NodeId, source: NodeId, version: u32) -> bool {
        self.nodes
            .get(&target)
            .map(|t| t.deps.contains(&(source, version)))
            .unwrap_or(false)
    }

    /// Size of a node's dependency set (inspection helper).
    pub fn dep_set_size(&self, node: NodeId) -> usize {
        self.nodes.get(&node).map(|n| n.deps.len()).unwrap_or(0)
    }
}

// ---------------------------------------------------------------------------
// PASSv1 baseline: global graph with explicit cycle detection + merge.
// ---------------------------------------------------------------------------

/// Outcome of one edge insertion in the PASSv1 baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct V1Outcome {
    /// A cycle was detected and its nodes were merged into one entity.
    pub merged: bool,
    /// The record duplicated an existing edge.
    pub duplicate: bool,
}

/// The PASSv1 global-graph analyzer: maintains every dependency edge,
/// detects cycles with a DFS on insertion, and merges all nodes of a
/// detected cycle into a single entity (union-find). This was the
/// approach PASSv2 abandoned ("this proved challenging, and there were
/// cases where we were not able to do this correctly") — it is kept
/// as a benchmark baseline.
#[derive(Debug, Default)]
pub struct GlobalGraph {
    parent: HashMap<NodeId, NodeId>,
    edges: HashMap<NodeId, HashSet<NodeId>>, // canonical target -> canonical sources
    merges: u64,
}

impl GlobalGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        GlobalGraph::default()
    }

    /// Number of merges performed.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Union-find root with path compression.
    pub fn find(&mut self, mut n: NodeId) -> NodeId {
        let mut path = Vec::new();
        while let Some(&p) = self.parent.get(&n) {
            if p == n {
                break;
            }
            path.push(n);
            n = p;
        }
        for q in path {
            self.parent.insert(q, n);
        }
        n
    }

    /// Every canonical node reachable from `from` (excluding itself
    /// unless on a loop).
    fn reachable_from(&mut self, from: NodeId) -> Vec<NodeId> {
        let from = self.find(from);
        let mut stack = vec![from];
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            if let Some(srcs) = self.edges.get(&n) {
                for &srcn in srcs.clone().iter() {
                    let c = self.find(srcn);
                    if !seen.contains(&c) {
                        out.push(c);
                        stack.push(c);
                    }
                }
            }
        }
        out
    }

    /// Does `from` reach `to` following dependency edges?
    fn reaches(&mut self, from: NodeId, to: NodeId) -> bool {
        let from = self.find(from);
        let to = self.find(to);
        if from == to {
            return true;
        }
        let mut stack = vec![from];
        let mut seen = HashSet::new();
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            if let Some(srcs) = self.edges.get(&n) {
                for &s in srcs.clone().iter() {
                    let s = self.find(s);
                    if s == to {
                        return true;
                    }
                    stack.push(s);
                }
            }
        }
        false
    }

    /// Adds "`target` depends on `source`", merging any cycle that
    /// this edge would close.
    pub fn add_dependency(&mut self, target: NodeId, source: NodeId) -> V1Outcome {
        let t = self.find(target);
        let s = self.find(source);
        if t == s {
            return V1Outcome {
                merged: false,
                duplicate: true,
            };
        }
        if self.edges.get(&t).map(|e| e.contains(&s)).unwrap_or(false) {
            return V1Outcome {
                merged: false,
                duplicate: true,
            };
        }
        // Would close a cycle iff source already reaches target.
        if self.reaches(s, t) {
            // Merge every node on the cycle: anything reachable from
            // `s` that also reaches `t` lies on an s→t path and
            // becomes part of the loop once the t→s edge is added.
            let from_s = self.reachable_from(s);
            let mut on_cycle: Vec<NodeId> = from_s
                .into_iter()
                .filter(|&n| n == s || n == t || self.reaches(n, t))
                .collect();
            on_cycle.push(s);
            on_cycle.push(t);
            on_cycle.sort_unstable();
            on_cycle.dedup();
            let root = on_cycle[0];
            for n in on_cycle {
                self.merge(root, n);
            }
            self.merges += 1;
            return V1Outcome {
                merged: true,
                duplicate: false,
            };
        }
        self.edges.entry(t).or_default().insert(s);
        V1Outcome {
            merged: false,
            duplicate: false,
        }
    }

    fn merge(&mut self, a: NodeId, b: NodeId) {
        let a = self.find(a);
        let b = self.find(b);
        if a == b {
            return;
        }
        self.parent.insert(b, a);
        // Fold b's edges into a, dropping self-loops.
        if let Some(srcs) = self.edges.remove(&b) {
            let entry = self.edges.entry(a).or_default();
            for s in srcs {
                entry.insert(s);
            }
        }
        let a_root = a;
        if let Some(e) = self.edges.get_mut(&a_root) {
            e.remove(&a_root);
            e.remove(&b);
        }
        // Rewrite edges that pointed at b.
        let targets: Vec<NodeId> = self.edges.keys().copied().collect();
        for t in targets {
            if let Some(srcs) = self.edges.get_mut(&t) {
                if srcs.remove(&b) {
                    srcs.insert(a_root);
                }
                if t == a_root {
                    srcs.remove(&a_root);
                }
            }
        }
    }

    /// True if the graph (over canonical nodes) is acyclic. O(V+E);
    /// used by tests and property checks.
    pub fn is_acyclic(&mut self) -> bool {
        // Kahn's algorithm over canonicalized edges.
        let mut indeg: HashMap<NodeId, usize> = HashMap::new();
        let mut adj: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        let edges: Vec<(NodeId, Vec<NodeId>)> = self
            .edges
            .iter()
            .map(|(t, s)| (*t, s.iter().copied().collect()))
            .collect();
        for (t, srcs) in edges {
            let t = self.find(t);
            indeg.entry(t).or_insert(0);
            for s in srcs {
                let s = self.find(s);
                if s == t {
                    // An internal edge of a merged entity, not a cycle.
                    continue;
                }
                // Edge t -> s in dependency direction; orientation is
                // irrelevant for acyclicity as long as it's consistent.
                adj.entry(t).or_default().push(s);
                *indeg.entry(s).or_insert(0) += 1;
                indeg.entry(t).or_insert(0);
            }
        }
        let mut queue: Vec<NodeId> = indeg
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(n, _)| *n)
            .collect();
        let mut visited = 0usize;
        while let Some(n) = queue.pop() {
            visited += 1;
            if let Some(next) = adj.get(&n) {
                for &m in next.clone().iter() {
                    let d = indeg.get_mut(&m).unwrap();
                    *d -= 1;
                    if *d == 0 {
                        queue.push(m);
                    }
                }
            }
        }
        visited == indeg.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: NodeId = 1;
    const B: NodeId = 2;
    const P: NodeId = 10;
    const Q: NodeId = 11;

    #[test]
    fn duplicates_are_suppressed() {
        let mut an = CycleAvoidance::new();
        let first = an.add_dependency(P, A);
        assert!(!first.duplicate);
        for _ in 0..100 {
            assert!(an.add_dependency(P, A).duplicate);
        }
        let s = an.stats();
        assert_eq!(s.presented, 101);
        assert_eq!(s.duplicates, 100);
        assert_eq!(s.freezes, 0);
    }

    #[test]
    fn read_then_write_freezes_the_file() {
        // P reads A, then P writes A: without a freeze, A ← P ← A is
        // a cycle. The analyzer bumps A instead.
        let mut an = CycleAvoidance::new();
        an.add_dependency(P, A); // P depends on A@0
        let w = an.add_dependency(A, P);
        assert_eq!(w.frozen, Some(1));
        assert_eq!(w.target_version, 1);
        assert!(!w.duplicate);
        // A@1 depends on P@0; P depends on A@0. No cycle.
        assert!(an.depends_on(A, P, 0));
    }

    #[test]
    fn write_without_prior_read_needs_no_freeze() {
        let mut an = CycleAvoidance::new();
        let w = an.add_dependency(A, P);
        assert_eq!(w.frozen, None);
        assert_eq!(w.target_version, 0);
    }

    #[test]
    fn two_process_two_file_cycle_is_avoided() {
        // P reads A, writes B; Q reads B, writes A. The final write
        // would close A→Q→B→P→A; the transitive dependency sets catch
        // it and freeze A.
        let mut an = CycleAvoidance::new();
        an.add_dependency(P, A); // P ← A
        an.add_dependency(B, P); // B ← P (B absorbs P's set {A@0})
        an.add_dependency(Q, B); // Q ← B (Q absorbs {B@0, P@0, A@0})
        let w = an.add_dependency(A, Q);
        assert_eq!(w.frozen, Some(1), "cycle must be broken by freezing A");
    }

    #[test]
    fn version_capture_in_edges() {
        let mut an = CycleAvoidance::new();
        an.add_dependency(P, A);
        an.freeze(A);
        let out = an.add_dependency(Q, A);
        assert_eq!(out.source_version, 1);
        // Q depends on A@1, not A@0.
        assert!(an.depends_on(Q, A, 1));
        assert!(!an.depends_on(Q, A, 0));
    }

    #[test]
    fn rereading_after_freeze_is_not_a_duplicate() {
        let mut an = CycleAvoidance::new();
        an.add_dependency(P, A); // A@0
        an.freeze(A); // A@1
        let out = an.add_dependency(P, A);
        assert!(!out.duplicate, "new version means a new dependency");
        assert_eq!(out.source_version, 1);
    }

    #[test]
    fn freeze_opens_a_fresh_interval() {
        // A freeze starts a new version with a fresh dedup interval:
        // the same input is recorded again for the new version.
        let mut an = CycleAvoidance::new();
        an.add_dependency(A, P);
        assert_eq!(an.dep_set_size(A), 1);
        an.freeze(A);
        assert_eq!(an.dep_set_size(A), 0);
        let out = an.add_dependency(A, P);
        assert!(!out.duplicate, "new interval, new record");
        assert_eq!(out.target_version, 1);
    }

    #[test]
    fn write_after_observation_freezes() {
        // The interval rule: once A's current version has been used
        // as an input (observed), a later write to A opens a new
        // version — the staleness case that broke the transitive-set
        // formulation (found by property testing).
        let mut an = CycleAvoidance::new();
        an.add_dependency(P, A); // A observed
        an.add_dependency(Q, B); // B observed
        let out = an.add_dependency(A, Q);
        assert_eq!(out.frozen, Some(1), "A was observed; write must version");
        let out = an.add_dependency(B, P);
        assert_eq!(out.frozen, Some(1), "B was observed; write must version");
        // Writes to never-observed objects stay version 0.
        let out = an.add_dependency(50, P);
        assert_eq!(out.frozen, None);
    }

    #[test]
    fn self_dependency_then_inverse_edge_stays_acyclic() {
        // The minimal counterexample that caught the set-clearing bug:
        // B←A, B←B (self, forces freeze), then A←B.
        let mut an = CycleAvoidance::new();
        an.add_dependency(B, A);
        let out = an.add_dependency(B, B);
        assert!(out.frozen.is_some());
        let out = an.add_dependency(A, B);
        assert_eq!(
            out.frozen,
            Some(1),
            "A must be frozen: B@1 still reaches A@0 through B@0"
        );
    }

    #[test]
    fn forget_drops_state() {
        let mut an = CycleAvoidance::new();
        an.add_dependency(P, A);
        // Both the target and the (observed) source are tracked.
        assert_eq!(an.len(), 2);
        an.forget(P);
        an.forget(A);
        assert!(an.is_empty());
        assert_eq!(an.version(P), 0);
    }

    #[test]
    fn set_version_mirrors_volume_state() {
        let mut an = CycleAvoidance::new();
        an.set_version(A, 7);
        let out = an.add_dependency(P, A);
        assert_eq!(out.source_version, 7);
    }

    #[test]
    fn shell_pipeline_chain_stays_acyclic() {
        // cat f | grep | sort > f  — the classic same-file pipeline.
        let mut an = CycleAvoidance::new();
        let (f, cat, pipe1, grep, pipe2, sort) = (1, 2, 3, 4, 5, 6);
        an.add_dependency(cat, f);
        an.add_dependency(pipe1, cat);
        an.add_dependency(grep, pipe1);
        an.add_dependency(pipe2, grep);
        an.add_dependency(sort, pipe2);
        let w = an.add_dependency(f, sort);
        assert_eq!(w.frozen, Some(1), "writing back to f must freeze it");
    }

    // ---- PASSv1 baseline ---------------------------------------------------

    #[test]
    fn v1_direct_cycle_merges() {
        let mut g = GlobalGraph::new();
        assert!(!g.add_dependency(P, A).merged);
        let out = g.add_dependency(A, P);
        assert!(out.merged);
        assert_eq!(g.merges(), 1);
        // After the merge the two nodes are one entity.
        assert_eq!(g.find(A), g.find(P));
        assert!(g.is_acyclic());
    }

    #[test]
    fn v1_long_cycle_merges_and_stays_acyclic() {
        let mut g = GlobalGraph::new();
        g.add_dependency(P, A);
        g.add_dependency(B, P);
        g.add_dependency(Q, B);
        let out = g.add_dependency(A, Q);
        assert!(out.merged);
        assert!(g.is_acyclic());
    }

    #[test]
    fn v1_duplicate_edges_detected() {
        let mut g = GlobalGraph::new();
        assert!(!g.add_dependency(P, A).duplicate);
        assert!(g.add_dependency(P, A).duplicate);
    }

    #[test]
    fn v1_dag_insertions_never_merge() {
        let mut g = GlobalGraph::new();
        for i in 0..100u64 {
            let out = g.add_dependency(i + 1, i);
            assert!(!out.merged);
        }
        assert!(g.is_acyclic());
        assert_eq!(g.merges(), 0);
    }
}
