//! PASSv2: the layered provenance architecture.
//!
//! This crate is the paper's primary contribution — a provenance
//! collection structure that integrates provenance across multiple
//! levels of abstraction. It provides:
//!
//! * the **interceptor/observer** ([`module::Pass`]): installed into
//!   the simulated kernel, it translates system-call events into
//!   provenance records and is the entry point for provenance-aware
//!   applications that disclose provenance via the DPAPI;
//! * the **analyzer** ([`analyzer`]): duplicate elimination plus the
//!   cycle-avoidance algorithm (with the PASSv1 global-graph
//!   cycle-merging algorithm as a comparison baseline);
//! * the **distributor** (inside [`module`]): caches provenance for
//!   objects that are not persistent — processes, pipes, non-PASS
//!   files, application objects — and materializes them onto a PASS
//!   volume when they join the ancestry of a persistent object or are
//!   explicitly `pass_sync`ed;
//! * **libpass** ([`libpass::LibPass`]): the user-level DPAPI;
//! * the **system assembly** ([`system::System`]): kernel + Lasagna
//!   volumes + module, i.e. Figure 2 as a runnable object.

pub mod analyzer;
pub mod libpass;
pub mod module;
pub mod system;

pub use analyzer::{AnalyzerStats, CycleAvoidance, DepOutcome, GlobalGraph, NodeId, V1Outcome};
pub use libpass::LibPass;
pub use module::{ObjKey, ObserverBatchConfig, Pass, PassStats};
pub use system::{ClusterRestartError, System, SystemBuilder};
