//! The PASSv2 kernel module: interceptor glue, observer and
//! distributor.
//!
//! The [`Pass`] struct is installed into the simulated kernel as its
//! provenance module. The kernel's hook calls are the *interceptor*;
//! the translation of those events into provenance records is the
//! *observer*; duplicate elimination and cycle avoidance are the
//! *analyzer* ([`crate::analyzer`]); and the caching of provenance for
//! objects that are not persistent PASS files — processes, pipes,
//! non-PASS files, application objects — until they join the ancestry
//! of a persistent object is the *distributor*.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use dpapi::{
    wire, Attribute, Bundle, DpapiError, DpapiOp, Handle, ObjectRef, OpResult, Pnode,
    ProvenanceRecord, ReadResult, Txn, Value, Version, VolumeId, WriteResult,
};
use sim_os::events::{ExecImage, HookCtx, PassModule, ProvenanceKernel};
use sim_os::fs::{FsError, FsResult};
use sim_os::proc::{FileLoc, Pid};

use crate::analyzer::{CycleAvoidance, NodeId};

/// The identity key of a tracked provenance object.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ObjKey {
    /// A file (on any volume, PASS or not).
    File(FileLoc),
    /// A process.
    Proc(Pid),
    /// A pipe.
    Pipe(u64),
    /// An application object created via `pass_mkobj`; the value is
    /// the node id itself (app objects are never looked up by key).
    App(NodeId),
}

/// A cached record value: either a plain DPAPI value or a reference to
/// another tracked node at a specific version, resolved to a pnode
/// cross-reference at flush time.
#[derive(Clone, Debug)]
enum CachedValue {
    Plain(Value),
    Ref(NodeId, u32),
}

#[derive(Clone, Debug)]
struct CachedRecord {
    attr: Attribute,
    value: CachedValue,
}

#[derive(Debug, Default)]
struct NodeInfo {
    pnode: Option<Pnode>,
    /// Volume where this node's provenance lives once materialized.
    home: Option<VolumeId>,
    /// Volume-level handle for disclosing against `home`.
    home_handle: Option<Handle>,
    /// Volume requested at `pass_mkobj` time.
    volume_hint: Option<VolumeId>,
    /// The distributor's record cache for this node.
    cached: Vec<CachedRecord>,
    /// Whether this node is a file on a PASS volume (identity owned by
    /// the volume rather than the distributor).
    pass_file: Option<FileLoc>,
}

/// Counters for the module's activity.
#[derive(Clone, Copy, Debug, Default)]
pub struct PassStats {
    /// Records disclosed to volumes (after analysis).
    pub records_emitted: u64,
    /// Records parked in the distributor cache.
    pub records_cached: u64,
    /// Nodes materialized onto a volume by the distributor.
    pub materializations: u64,
    /// User-level DPAPI calls served.
    pub dpapi_calls: u64,
    /// Disclosure transactions committed through `dp_commit`.
    pub txn_commits: u64,
    /// Operations carried by those transactions.
    pub txn_ops: u64,
    /// Intercepted writes deferred into an observer-side burst instead
    /// of issuing an immediate `pass_write`.
    pub observer_batched_ops: u64,
    /// Observer-side bursts flushed as a single volume transaction.
    pub observer_batches: u64,
    /// Burst flushes whose volume commit failed (data already
    /// acknowledged to the writer; counted, never silently dropped).
    pub observer_flush_failures: u64,
}

impl provscope::MetricSource for PassStats {
    fn record(&self, out: &mut dyn FnMut(&str, u64)) {
        out("records_emitted", self.records_emitted);
        out("records_cached", self.records_cached);
        out("materializations", self.materializations);
        out("dpapi_calls", self.dpapi_calls);
        out("txn_commits", self.txn_commits);
        out("txn_ops", self.txn_ops);
        out("observer_batched_ops", self.observer_batched_ops);
        out("observer_batches", self.observer_batches);
        out("observer_flush_failures", self.observer_flush_failures);
    }
}

/// Observer-side batching policy: aggregate a process's write burst —
/// consecutive intercepted writes by one process to one PASS file that
/// the analyzer classifies as freeze-free duplicates — into a single
/// volume transaction instead of one `pass_write` RPC per syscall.
///
/// Only *pure continuations* are deferred: the first write of a burst
/// (which carries the freeze record, the ancestry flush and the input
/// edge) always goes out synchronously, so deferral never reorders
/// provenance records, only coalesces data writes that would each have
/// carried an empty bundle. Any observation that could expose the
/// deferred state — a read, a stat, an fsync, a rename, a directory
/// listing, a user-level DPAPI call, a log rotation — flushes the
/// burst first (the kernel's visibility barrier calls
/// [`PassModule::on_barrier`]); within one `(pid, file)` burst the
/// volume log order is therefore identical to the synchronous path,
/// which is what makes the batched store byte-equal to the unbatched
/// one.
///
/// Note that `O_APPEND`-style writes cannot batch: the kernel must
/// resolve the append offset from the file size, which is itself a
/// visibility barrier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObserverBatchConfig {
    /// Flush the pending burst once it holds this many deferred writes.
    pub max_ops: usize,
    /// ... or this many deferred data bytes, whichever comes first.
    pub max_bytes: usize,
}

impl Default for ObserverBatchConfig {
    fn default() -> Self {
        ObserverBatchConfig {
            max_ops: 8,
            max_bytes: 256 * 1024,
        }
    }
}

/// A process's in-flight write burst: deferred `Write` ops for one
/// `(pid, file)` pair, flushed as one volume `pass_commit`.
struct PendingBurst {
    pid: Pid,
    loc: FileLoc,
    vol: VolumeId,
    txn: Txn,
    bytes: usize,
}

struct Inner {
    analyzer: CycleAvoidance,
    nodes: HashMap<ObjKey, NodeId>,
    info: HashMap<NodeId, NodeInfo>,
    pnode_to_node: HashMap<Pnode, NodeId>,
    next_node: NodeId,
    uhandles: HashMap<u64, NodeId>,
    next_uhandle: u64,
    exempt: HashSet<Pid>,
    stats: PassStats,
    scope: provscope::Scope,
    /// Observer-side batching policy; `None` means every intercepted
    /// write discloses synchronously (the historical behavior).
    observer_batch: Option<ObserverBatchConfig>,
    /// The single in-flight write burst (at most one: a write by any
    /// other `(pid, file)` pair flushes it first).
    burst: Option<PendingBurst>,
}

/// The PASSv2 provenance module.
pub struct Pass {
    inner: RefCell<Inner>,
}

impl Default for Pass {
    fn default() -> Self {
        Self::new()
    }
}

impl Pass {
    /// Creates a fresh module.
    pub fn new() -> Pass {
        Pass {
            inner: RefCell::new(Inner {
                analyzer: CycleAvoidance::new(),
                nodes: HashMap::new(),
                info: HashMap::new(),
                pnode_to_node: HashMap::new(),
                next_node: 1,
                uhandles: HashMap::new(),
                next_uhandle: 1,
                exempt: HashSet::new(),
                stats: PassStats::default(),
                scope: provscope::Scope::default(),
                observer_batch: None,
                burst: None,
            }),
        }
    }

    /// Attaches a tracing scope; the module records its `dp_commit`
    /// validate/analyze phases in it.
    pub fn set_scope(&self, scope: provscope::Scope) {
        self.inner.borrow_mut().scope = scope;
    }

    /// Creates a module already wrapped for kernel installation.
    pub fn new_shared() -> Rc<Pass> {
        Rc::new(Pass::new())
    }

    /// Exempts a pid from observation (the Waldo daemon, which must
    /// not generate provenance about the provenance log itself).
    pub fn exempt(&self, pid: Pid) {
        self.inner.borrow_mut().exempt.insert(pid);
    }

    /// Enables (`Some`) or disables (`None`) observer-side write
    /// batching. Disabling takes effect for subsequent writes; a burst
    /// already pending flushes at the next visibility barrier.
    pub fn set_observer_batch(&self, cfg: Option<ObserverBatchConfig>) {
        self.inner.borrow_mut().observer_batch = cfg;
    }

    /// Module statistics.
    pub fn stats(&self) -> PassStats {
        self.inner.borrow().stats
    }

    /// Analyzer statistics (dedup/freeze counters).
    pub fn analyzer_stats(&self) -> crate::analyzer::AnalyzerStats {
        self.inner.borrow().analyzer.stats()
    }

    /// The provenance identity of a tracked pnode's node, if any
    /// (test/inspection helper).
    pub fn node_of_pnode(&self, p: Pnode) -> Option<NodeId> {
        self.inner.borrow().pnode_to_node.get(&p).copied()
    }
}

impl Inner {
    fn new_node(&mut self) -> NodeId {
        let id = self.next_node;
        self.next_node += 1;
        self.info.insert(id, NodeInfo::default());
        id
    }

    fn node_for_key(&mut self, key: ObjKey) -> NodeId {
        if let Some(&n) = self.nodes.get(&key) {
            return n;
        }
        let n = self.new_node();
        self.nodes.insert(key, n);
        n
    }

    fn node_for_proc(&mut self, pid: Pid) -> NodeId {
        let fresh = !self.nodes.contains_key(&ObjKey::Proc(pid));
        let n = self.node_for_key(ObjKey::Proc(pid));
        if fresh {
            self.cache_record(n, Attribute::Type, CachedValue::Plain(Value::str("PROC")));
        }
        n
    }

    fn node_for_pipe(&mut self, id: u64) -> NodeId {
        let fresh = !self.nodes.contains_key(&ObjKey::Pipe(id));
        let n = self.node_for_key(ObjKey::Pipe(id));
        if fresh {
            self.cache_record(n, Attribute::Type, CachedValue::Plain(Value::str("PIPE")));
        }
        n
    }

    /// Creates or finds the node for a file, binding volume identity
    /// if the file lives on a PASS volume.
    fn node_for_file(&mut self, ctx: &mut HookCtx<'_>, loc: FileLoc) -> NodeId {
        let n = self.node_for_key(ObjKey::File(loc));
        let info = self.info.get_mut(&n).expect("node info");
        if info.pnode.is_some() {
            return n;
        }
        if let Some(vol) = ctx.dpapi(loc.mount) {
            if let Ok(id) = vol.identity_of_ino(loc.ino) {
                let volume = vol.volume();
                info.pnode = Some(id.pnode);
                info.home = Some(volume);
                info.pass_file = Some(loc);
                self.pnode_to_node.insert(id.pnode, n);
                self.analyzer.set_version(n, id.version.0);
            }
        }
        let fresh = self
            .info
            .get(&n)
            .map(|i| i.cached.is_empty())
            .unwrap_or(false);
        if fresh {
            self.cache_record(n, Attribute::Type, CachedValue::Plain(Value::str("FILE")));
        }
        n
    }

    fn cache_record(&mut self, node: NodeId, attr: Attribute, value: CachedValue) {
        self.stats.records_cached += 1;
        if let Some(info) = self.info.get_mut(&node) {
            info.cached.push(CachedRecord { attr, value });
        }
    }

    fn identity(&self, node: NodeId) -> Option<ObjectRef> {
        let info = self.info.get(&node)?;
        let p = info.pnode?;
        Some(ObjectRef::new(p, Version(self.analyzer.version(node))))
    }

    /// The distributor's flush: materialize `roots` (and every cached
    /// ancestor reachable through cached references) and emit their
    /// cached records. Records for nodes homed on `target` are
    /// returned in a bundle to ride the triggering `pass_write`;
    /// records homed elsewhere are disclosed to their own volume
    /// immediately.
    fn flush_nodes(&mut self, ctx: &mut HookCtx<'_>, roots: &[NodeId], target: VolumeId) -> Bundle {
        // Phase 0: closure over cached references.
        let mut closure: Vec<NodeId> = Vec::new();
        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut work: Vec<NodeId> = roots.to_vec();
        while let Some(n) = work.pop() {
            if !seen.insert(n) {
                continue;
            }
            closure.push(n);
            if let Some(info) = self.info.get(&n) {
                for rec in &info.cached {
                    match &rec.value {
                        CachedValue::Ref(m, _) => work.push(*m),
                        CachedValue::Plain(Value::Xref(r)) => {
                            if let Some(&m) = self.pnode_to_node.get(&r.pnode) {
                                work.push(m);
                            }
                        }
                        CachedValue::Plain(_) => {}
                    }
                }
            }
        }
        // Phase 1: assign pnodes to everything lacking one.
        for &n in &closure {
            let (needs, hint) = {
                let info = self.info.get(&n).expect("node info");
                (info.pnode.is_none(), info.volume_hint)
            };
            if !needs {
                continue;
            }
            let home = hint.unwrap_or(target);
            let vol = match ctx.find_volume(home).is_some() {
                true => home,
                false => target,
            };
            if let Some(v) = ctx.find_volume(vol) {
                if let Ok(h) = v.pass_mkobj(Some(vol)) {
                    if let Ok(r) = v.pass_read(h, 0, 0) {
                        let info = self.info.get_mut(&n).expect("node info");
                        info.pnode = Some(r.identity.pnode);
                        info.home = Some(vol);
                        info.home_handle = Some(h);
                        self.pnode_to_node.insert(r.identity.pnode, n);
                        self.stats.materializations += 1;
                    }
                }
            }
        }
        // Phase 2: resolve cached records and route them.
        let mut ride_along = Bundle::new();
        for &n in &closure {
            let (cached, home, home_handle, pass_file) = {
                let info = self.info.get_mut(&n).expect("node info");
                if info.cached.is_empty() || info.pnode.is_none() {
                    continue;
                }
                (
                    std::mem::take(&mut info.cached),
                    info.home,
                    info.home_handle,
                    info.pass_file,
                )
            };
            let resolved: Vec<ProvenanceRecord> = cached
                .into_iter()
                .filter_map(|r| {
                    let value = match r.value {
                        CachedValue::Plain(v) => v,
                        CachedValue::Ref(m, ver) => {
                            let p = self.info.get(&m).and_then(|i| i.pnode)?;
                            Value::Xref(ObjectRef::new(p, Version(ver)))
                        }
                    };
                    Some(ProvenanceRecord::new(r.attr, value))
                })
                .collect();
            self.stats.records_emitted += resolved.len() as u64;
            let home = home.unwrap_or(target);
            if home == target {
                // Handle on the target volume.
                let h = match (home_handle, pass_file) {
                    (Some(h), _) => Some(h),
                    (None, Some(loc)) => ctx
                        .dpapi(loc.mount)
                        .and_then(|v| v.handle_for_ino(loc.ino).ok()),
                    (None, None) => None,
                };
                if let Some(h) = h {
                    for rec in resolved {
                        ride_along.push(h, rec);
                    }
                }
            } else if let Some(v) = ctx.find_volume(home) {
                let h = match (home_handle, pass_file) {
                    (Some(h), _) => Some(h),
                    (None, Some(loc)) => v.handle_for_ino(loc.ino).ok(),
                    (None, None) => None,
                };
                if let Some(h) = h {
                    let mut b = Bundle::new();
                    for rec in resolved {
                        b.push(h, rec);
                    }
                    let _ = v.disclose(h, b);
                }
            }
        }
        ride_along
    }

    /// The write path shared by intercepted writes and user-level
    /// `pass_write` on files: runs the analyzer, materializes the
    /// ancestry and issues the volume `pass_write` with data and
    /// bundle together.
    fn provenanced_write(
        &mut self,
        ctx: &mut HookCtx<'_>,
        source: NodeId,
        loc: FileLoc,
        offset: u64,
        data: &[u8],
        extra: Bundle,
    ) -> FsResult<WriteResult> {
        let file_node = self.node_for_file(ctx, loc);
        let out = self.analyzer.add_dependency(file_node, source);
        self.apply_observed_write(ctx, source, file_node, out, loc, offset, data, extra)
    }

    /// The volume half of [`provenanced_write`], with the analyzer
    /// outcome already computed (so the batching path can inspect it
    /// before deciding whether to defer).
    #[allow(clippy::too_many_arguments)]
    fn apply_observed_write(
        &mut self,
        ctx: &mut HookCtx<'_>,
        source: NodeId,
        file_node: NodeId,
        out: crate::analyzer::DepOutcome,
        loc: FileLoc,
        offset: u64,
        data: &[u8],
        extra: Bundle,
    ) -> FsResult<WriteResult> {
        let volume = ctx.volume_of(loc.mount);
        match volume {
            Some(vol_id) => {
                let mut bundle = Bundle::new();
                let h = ctx
                    .dpapi(loc.mount)
                    .and_then(|v| v.handle_for_ino(loc.ino).ok())
                    .ok_or(FsError::Provenance(DpapiError::NotPassVolume))?;
                if let Some(newv) = out.frozen {
                    bundle.push(h, ProvenanceRecord::freeze(Version(newv)));
                    self.stats.records_emitted += 1;
                }
                if !out.duplicate {
                    // Flush the writer's ancestry and the target's own
                    // cached records (NAME, TYPE) in one closure.
                    let side = self.flush_nodes(ctx, &[source, file_node], vol_id);
                    bundle.merge(side);
                    if let Some(src_id) = self.identity(source) {
                        let edge = ObjectRef::new(src_id.pnode, Version(out.source_version));
                        bundle.push(h, ProvenanceRecord::input(edge));
                        self.stats.records_emitted += 1;
                    }
                }
                bundle.merge(extra);
                let vol = ctx
                    .dpapi(loc.mount)
                    .ok_or(FsError::Provenance(DpapiError::NotPassVolume))?;
                let res = vol.pass_write(h, offset, data, bundle)?;
                Ok(res)
            }
            None => {
                // Non-PASS volume: write plainly, cache the dependency.
                let n = ctx.fs(loc.mount).write(loc.ino, offset, data)?;
                if !out.duplicate {
                    self.cache_record(
                        file_node,
                        Attribute::Input,
                        CachedValue::Ref(source, out.source_version),
                    );
                }
                // Any disclosed extras are cached for later flushing.
                for (_, rec) in extra.iter() {
                    self.cache_record(file_node, rec.attribute.clone(), {
                        CachedValue::Plain(rec.value.clone())
                    });
                }
                Ok(WriteResult {
                    written: n,
                    identity: ObjectRef::new(
                        self.info
                            .get(&file_node)
                            .and_then(|i| i.pnode)
                            .unwrap_or(Pnode::NULL),
                        Version(self.analyzer.version(file_node)),
                    ),
                })
            }
        }
    }

    /// The intercepted-write path with observer-side batching: defers
    /// pure continuations (analyzer says duplicate, no freeze — so the
    /// synchronous path would issue `pass_write` with an empty bundle)
    /// into the pending burst; everything else flushes the burst and
    /// falls back to the synchronous path, preserving volume log
    /// order.
    fn observed_write(
        &mut self,
        ctx: &mut HookCtx<'_>,
        pid: Pid,
        loc: FileLoc,
        offset: u64,
        data: &[u8],
    ) -> FsResult<usize> {
        let source = self.node_for_proc(pid);
        let Some(cfg) = self.observer_batch else {
            return Ok(self
                .provenanced_write(ctx, source, loc, offset, data, Bundle::new())?
                .written);
        };
        // Callers flushed any burst for a different (pid, file) before
        // per-op work; here the burst, if any, is ours — node_for_file
        // cannot log a fresh INO identity out of order.
        let file_node = self.node_for_file(ctx, loc);
        let out = self.analyzer.add_dependency(file_node, source);
        let pure = out.duplicate && out.frozen.is_none();
        let handle = match (pure, ctx.volume_of(loc.mount)) {
            (true, Some(vol)) => ctx
                .dpapi(loc.mount)
                .and_then(|v| v.handle_for_ino(loc.ino).ok())
                .map(|h| (vol, h)),
            _ => None,
        };
        match handle {
            Some((vol, h)) => {
                let burst = self.burst.get_or_insert_with(|| PendingBurst {
                    pid,
                    loc,
                    vol,
                    txn: Txn::new(),
                    bytes: 0,
                });
                burst.txn.write(h, offset, data.to_vec(), Bundle::new());
                burst.bytes += data.len();
                self.stats.observer_batched_ops += 1;
                if burst.txn.len() >= cfg.max_ops || burst.bytes >= cfg.max_bytes {
                    self.flush_pending(ctx);
                }
                Ok(data.len())
            }
            None => {
                // A freeze or a fresh ancestry flush must not overtake
                // the data writes already queued for this file.
                self.flush_pending(ctx);
                Ok(self
                    .apply_observed_write(ctx, source, file_node, out, loc, offset, data, {
                        Bundle::new()
                    })?
                    .written)
            }
        }
    }

    /// Commits the pending burst (if any) as one volume transaction.
    /// Every observation point that could expose the deferred state
    /// calls this before doing its own work.
    fn flush_pending(&mut self, ctx: &mut HookCtx<'_>) {
        let Some(burst) = self.burst.take() else {
            return;
        };
        match ctx.find_volume(burst.vol) {
            Some(v) => match v.pass_commit(burst.txn) {
                Ok(_) => self.stats.observer_batches += 1,
                Err(_) => self.stats.observer_flush_failures += 1,
            },
            None => self.stats.observer_flush_failures += 1,
        }
    }

    /// Flushes the pending burst unless it belongs to exactly this
    /// `(pid, file)` pair — the intercepted-write preamble.
    fn flush_pending_if_other(&mut self, ctx: &mut HookCtx<'_>, pid: Pid, loc: FileLoc) {
        if let Some(b) = &self.burst {
            if b.pid != pid || b.loc != loc {
                self.flush_pending(ctx);
            }
        }
    }

    /// The read path shared by intercepted reads and user-level
    /// `pass_read` on files.
    fn provenanced_read(
        &mut self,
        ctx: &mut HookCtx<'_>,
        pid: Pid,
        loc: FileLoc,
        offset: u64,
        len: usize,
    ) -> FsResult<ReadResult> {
        let file_node = self.node_for_file(ctx, loc);
        let proc_node = self.node_for_proc(pid);
        let out = self.analyzer.add_dependency(proc_node, file_node);
        if !out.duplicate {
            self.cache_record(
                proc_node,
                Attribute::Input,
                CachedValue::Ref(file_node, out.source_version),
            );
        }
        if let Some(vol) = ctx.dpapi(loc.mount) {
            let h = vol.handle_for_ino(loc.ino)?;
            let res = vol.pass_read(h, offset, len)?;
            Ok(res)
        } else {
            let data = ctx.fs(loc.mount).read(loc.ino, offset, len)?;
            Ok(ReadResult {
                data,
                identity: ObjectRef::new(
                    self.info
                        .get(&file_node)
                        .and_then(|i| i.pnode)
                        .unwrap_or(Pnode::NULL),
                    Version(self.analyzer.version(file_node)),
                ),
            })
        }
    }

    fn resolve_uhandle(&self, h: Handle) -> dpapi::Result<NodeId> {
        self.uhandles
            .get(&h.raw())
            .copied()
            .ok_or(DpapiError::InvalidHandle)
    }

    fn new_uhandle(&mut self, node: NodeId) -> Handle {
        let h = Handle::from_raw(self.next_uhandle);
        self.next_uhandle += 1;
        self.uhandles.insert(h.raw(), node);
        h
    }

    fn default_volume(&self, ctx: &mut HookCtx<'_>) -> Option<VolumeId> {
        ctx.pass_volumes().first().map(|(_, v)| *v)
    }

    /// Creates a provenance-only object (the `dp_mkobj` body, shared
    /// with transaction commits). Allocates the pnode eagerly (cheap
    /// server state, no log entry); records remain cached until the
    /// object joins a persistent ancestry or `pass_sync` is called.
    fn mkobj_for(
        &mut self,
        ctx: &mut HookCtx<'_>,
        volume: Option<VolumeId>,
    ) -> dpapi::Result<Handle> {
        let node = self.new_node();
        self.nodes.insert(ObjKey::App(node), node);
        let home = volume
            .or_else(|| self.default_volume(ctx))
            .ok_or(DpapiError::NotPassVolume)?;
        let vol = ctx.find_volume(home).ok_or(DpapiError::NotPassVolume)?;
        let vh = vol.pass_mkobj(Some(home))?;
        let identity = vol.pass_read(vh, 0, 0)?.identity;
        {
            let info = self.info.get_mut(&node).expect("node info");
            info.pnode = Some(identity.pnode);
            info.home = Some(home);
            info.home_handle = Some(vh);
            info.volume_hint = volume;
        }
        self.pnode_to_node.insert(identity.pnode, node);
        Ok(self.new_uhandle(node))
    }

    /// Revives an object by identity (the `dp_reviveobj` body, shared
    /// with transaction commits).
    fn revive_for(
        &mut self,
        ctx: &mut HookCtx<'_>,
        pnode: Pnode,
        version: Version,
    ) -> dpapi::Result<Handle> {
        let vol = ctx
            .find_volume(pnode.volume)
            .ok_or(DpapiError::UnknownPnode(pnode))?;
        let vh = vol.pass_reviveobj(pnode, version)?;
        let node = match self.pnode_to_node.get(&pnode).copied() {
            Some(n) => n,
            None => {
                let n = self.new_node();
                self.nodes.insert(ObjKey::App(n), n);
                let info = self.info.get_mut(&n).expect("node info");
                info.pnode = Some(pnode);
                info.home = Some(pnode.volume);
                info.home_handle = Some(vh);
                self.pnode_to_node.insert(pnode, n);
                self.analyzer.set_version(n, version.0);
                n
            }
        };
        Ok(self.new_uhandle(node))
    }

    /// Re-keys a user bundle from user handles onto module nodes,
    /// running every ancestry record through the analyzer and caching
    /// the survivors (the first half of `dp_write`, shared with
    /// transaction commits). Returns the described nodes.
    fn rekey_user_bundle(
        &mut self,
        subject: NodeId,
        pid: Pid,
        bundle: &Bundle,
    ) -> dpapi::Result<Vec<NodeId>> {
        let proc_node = self.node_for_proc(pid);
        let mut described: Vec<NodeId> = vec![subject, proc_node];
        for (uh, rec) in bundle.iter() {
            let n = self.resolve_uhandle(uh)?;
            if !described.contains(&n) {
                described.push(n);
            }
            let keep = if let (true, Some(r)) = (rec.attribute.is_ancestry(), rec.value.as_xref()) {
                match self.pnode_to_node.get(&r.pnode).copied() {
                    Some(src) => {
                        let out = self.analyzer.add_dependency(n, src);
                        !out.duplicate
                    }
                    None => true, // unknown ancestor (revived elsewhere): keep as-is
                }
            } else {
                true
            };
            if keep {
                self.cache_record(
                    n,
                    rec.attribute.clone(),
                    CachedValue::Plain(rec.value.clone()),
                );
            }
        }
        Ok(described)
    }
}

impl Inner {
    /// Phase-1 check of one transaction op against pre-transaction
    /// state: handles must resolve, records must be representable on
    /// the wire, target volumes must exist. Nothing is mutated.
    ///
    /// Validation is deliberately against *pre-transaction* state:
    /// a handle minted by an earlier `Mkobj` of the same batch is not
    /// yet visible (see the handle-scope rule in [`dpapi::txn`]).
    fn validate_user_op(&self, ctx: &mut HookCtx<'_>, op: &DpapiOp) -> dpapi::Result<()> {
        match op {
            DpapiOp::Write { handle, bundle, .. } => {
                self.resolve_uhandle(*handle)?;
                for (uh, rec) in bundle.iter() {
                    self.resolve_uhandle(uh)?;
                    wire::validate_record(rec)?;
                }
                Ok(())
            }
            DpapiOp::Mkobj { volume_hint } => {
                let home = volume_hint
                    .or_else(|| self.default_volume(ctx))
                    .ok_or(DpapiError::NotPassVolume)?;
                if ctx.find_volume(home).is_none() {
                    return Err(DpapiError::NotPassVolume);
                }
                Ok(())
            }
            DpapiOp::Freeze { handle } => self.resolve_uhandle(*handle).map(|_| ()),
            DpapiOp::Revive { pnode, .. } => {
                if ctx.find_volume(pnode.volume).is_none() {
                    return Err(DpapiError::UnknownPnode(*pnode));
                }
                Ok(())
            }
            DpapiOp::Sync { handle } => {
                let node = self.resolve_uhandle(*handle)?;
                let info = self.info.get(&node).ok_or(DpapiError::InvalidHandle)?;
                if info.home.or_else(|| self.default_volume(ctx)).is_none() {
                    return Err(DpapiError::NotPassVolume);
                }
                if info.home_handle.is_none() {
                    return Err(DpapiError::InvalidHandle);
                }
                Ok(())
            }
        }
    }

    /// Phase-2 translation of one validated op: analyzer and
    /// distributor work happens now, in op order; every volume-bound
    /// disclosure is deferred into the op's target volume's [`VolTxn`].
    /// Returns `Some(result)` for ops resolved module-side, `None` for
    /// ops whose result is backfilled from the volume commit.
    fn translate_op(
        &mut self,
        ctx: &mut HookCtx<'_>,
        pid: Pid,
        user_op: usize,
        op: DpapiOp,
        vol_txns: &mut Vec<VolTxn>,
    ) -> dpapi::Result<Option<OpResult>> {
        match op {
            DpapiOp::Mkobj { volume_hint } => {
                Ok(Some(OpResult::Made(self.mkobj_for(ctx, volume_hint)?)))
            }
            DpapiOp::Revive { pnode, version } => Ok(Some(OpResult::Revived(
                self.revive_for(ctx, pnode, version)?,
            ))),
            DpapiOp::Freeze { handle } => {
                let node = self.resolve_uhandle(handle)?;
                let new_version = self.analyzer.freeze(node);
                // Mirror the freeze at the volume, deferred into the
                // batch (order relative to the batch's writes is
                // preserved inside the volume transaction).
                let info = self
                    .info
                    .get(&node)
                    .map(|i| (i.home, i.home_handle, i.pass_file));
                if let Some((home, home_handle, pass_file)) = info {
                    if let Some(loc) = pass_file {
                        if let Some(vol_id) = ctx.volume_of(loc.mount) {
                            let vh = ctx
                                .dpapi(loc.mount)
                                .ok_or(DpapiError::NotPassVolume)?
                                .handle_for_ino(loc.ino)?;
                            let vt = vol_txn_for(vol_txns, vol_id);
                            vt.txn.freeze(vh);
                            vt.slots.push((user_op, false));
                        }
                    } else if let (Some(home), Some(vh)) = (home, home_handle) {
                        if ctx.find_volume(home).is_some() {
                            let vt = vol_txn_for(vol_txns, home);
                            vt.txn.freeze(vh);
                            vt.slots.push((user_op, false));
                        }
                    }
                }
                Ok(Some(OpResult::Frozen(Version(new_version))))
            }
            DpapiOp::Sync { handle } => {
                let node = self.resolve_uhandle(handle)?;
                let home = self
                    .info
                    .get(&node)
                    .and_then(|i| i.home)
                    .or_else(|| self.default_volume(ctx))
                    .ok_or(DpapiError::NotPassVolume)?;
                let side = self.flush_nodes(ctx, &[node], home);
                let vh = self
                    .info
                    .get(&node)
                    .and_then(|i| i.home_handle)
                    .ok_or(DpapiError::InvalidHandle)?;
                let vt = vol_txn_for(vol_txns, home);
                if !side.is_empty() {
                    vt.txn.disclose(vh, side);
                    vt.slots.push((user_op, false));
                }
                vt.txn.sync(vh);
                vt.slots.push((user_op, false));
                Ok(Some(OpResult::Synced))
            }
            DpapiOp::Write {
                handle,
                offset,
                data,
                bundle,
            } => {
                let subject = self.resolve_uhandle(handle)?;
                let proc_node = self.node_for_proc(pid);
                let described = self.rekey_user_bundle(subject, pid, &bundle)?;
                if let Some(loc) = self.info.get(&subject).and_then(|i| i.pass_file) {
                    // Writing to a real file: the deferred twin of
                    // `provenanced_write` — same analyzer work and
                    // bundle construction, with the volume write
                    // queued into the batch instead of issued.
                    let file_node = self.node_for_file(ctx, loc);
                    let out = self.analyzer.add_dependency(file_node, proc_node);
                    let Some(vol_id) = ctx.volume_of(loc.mount) else {
                        // Non-PASS volume (mirrors `provenanced_write`'s
                        // fallback): write plainly now, cache the
                        // dependency for a later flush. No volume log
                        // exists, so there is nothing to defer.
                        let n = ctx
                            .fs(loc.mount)
                            .write(loc.ino, offset, &data)
                            .map_err(DpapiError::from)?;
                        if !out.duplicate {
                            self.cache_record(
                                file_node,
                                Attribute::Input,
                                CachedValue::Ref(proc_node, out.source_version),
                            );
                        }
                        return Ok(Some(OpResult::Written(WriteResult {
                            written: n,
                            identity: ObjectRef::new(
                                self.info
                                    .get(&file_node)
                                    .and_then(|i| i.pnode)
                                    .unwrap_or(Pnode::NULL),
                                Version(self.analyzer.version(file_node)),
                            ),
                        })));
                    };
                    let h = ctx
                        .dpapi(loc.mount)
                        .ok_or(DpapiError::NotPassVolume)?
                        .handle_for_ino(loc.ino)?;
                    let mut vbundle = Bundle::new();
                    if let Some(newv) = out.frozen {
                        vbundle.push(h, ProvenanceRecord::freeze(Version(newv)));
                        self.stats.records_emitted += 1;
                    }
                    if !out.duplicate {
                        let side = self.flush_nodes(ctx, &[proc_node, file_node], vol_id);
                        vbundle.merge(side);
                        if let Some(src_id) = self.identity(proc_node) {
                            let edge = ObjectRef::new(src_id.pnode, Version(out.source_version));
                            vbundle.push(h, ProvenanceRecord::input(edge));
                            self.stats.records_emitted += 1;
                        }
                    }
                    {
                        let vt = vol_txn_for(vol_txns, vol_id);
                        vt.txn.write(h, offset, data, vbundle);
                        vt.slots.push((user_op, true));
                    }
                    // Flush the described objects' caches (they are now
                    // part of a persistent object's ancestry), riding
                    // the same volume transaction.
                    let side2 = self.flush_nodes(ctx, &described, vol_id);
                    if !side2.is_empty() {
                        let vt = vol_txn_for(vol_txns, vol_id);
                        vt.txn.disclose(h, side2);
                        vt.slots.push((user_op, false));
                    }
                    Ok(None)
                } else {
                    // Provenance-only disclosure about app objects:
                    // implicit dependency on the disclosing process,
                    // records stay cached until a persistent
                    // descendant appears.
                    let out = self.analyzer.add_dependency(subject, proc_node);
                    if !out.duplicate {
                        self.cache_record(
                            subject,
                            Attribute::Input,
                            CachedValue::Ref(proc_node, out.source_version),
                        );
                    }
                    let identity = self.identity(subject).ok_or(DpapiError::InvalidHandle)?;
                    Ok(Some(OpResult::Written(WriteResult {
                        written: 0,
                        identity,
                    })))
                }
            }
        }
    }
}

/// A per-volume disclosure transaction a user-level commit is being
/// translated into, plus the mapping from volume-op index back to the
/// originating user op (and whether that op's result is backfilled
/// from the volume's).
struct VolTxn {
    vol: VolumeId,
    txn: Txn,
    /// `(user_op, backfill)` per volume op, in order.
    slots: Vec<(usize, bool)>,
}

fn vol_txn_for(vol_txns: &mut Vec<VolTxn>, vol: VolumeId) -> &mut VolTxn {
    if let Some(i) = vol_txns.iter().position(|t| t.vol == vol) {
        return &mut vol_txns[i];
    }
    vol_txns.push(VolTxn {
        vol,
        txn: Txn::new(),
        slots: Vec::new(),
    });
    vol_txns.last_mut().expect("just pushed")
}

impl PassModule for Pass {
    fn on_fork(&self, _ctx: &mut HookCtx<'_>, parent: Pid, child: Pid) {
        let mut inner = self.inner.borrow_mut();
        if inner.exempt.contains(&parent) {
            inner.exempt.insert(child);
            return;
        }
        let p = inner.node_for_proc(parent);
        let c = inner.node_for_proc(child);
        let out = inner.analyzer.add_dependency(c, p);
        if !out.duplicate {
            inner.cache_record(c, Attribute::Input, CachedValue::Ref(p, out.source_version));
        }
    }

    fn on_execve(&self, ctx: &mut HookCtx<'_>, pid: Pid, image: &ExecImage<'_>) {
        let mut inner = self.inner.borrow_mut();
        if inner.exempt.contains(&pid) {
            return;
        }
        inner.flush_pending(ctx);
        let p = inner.node_for_proc(pid);
        inner.cache_record(
            p,
            Attribute::Name,
            CachedValue::Plain(Value::str(image.path)),
        );
        inner.cache_record(
            p,
            Attribute::Argv,
            CachedValue::Plain(Value::StrList(image.argv.to_vec())),
        );
        if !image.env.is_empty() {
            inner.cache_record(
                p,
                Attribute::Env,
                CachedValue::Plain(Value::StrList(image.env.to_vec())),
            );
        }
        if let Some(loc) = image.loc {
            let bin = inner.node_for_file(ctx, loc);
            let out = inner.analyzer.add_dependency(p, bin);
            if !out.duplicate {
                inner.cache_record(
                    p,
                    Attribute::Input,
                    CachedValue::Ref(bin, out.source_version),
                );
            }
        }
    }

    fn on_exit(&self, ctx: &mut HookCtx<'_>, pid: Pid) {
        let mut inner = self.inner.borrow_mut();
        if inner.exempt.remove(&pid) {
            return;
        }
        inner.flush_pending(ctx);
        let Some(&node) = inner.nodes.get(&ObjKey::Proc(pid)) else {
            return;
        };
        // If the process was materialized (it has persistent
        // descendants), flush its remaining provenance; otherwise the
        // cache is dropped — transient objects with no descendants
        // leave no trace, per §5.5.
        let materialized = inner
            .info
            .get(&node)
            .map(|i| i.pnode.is_some())
            .unwrap_or(false);
        if materialized {
            if let Some(home) = inner.info.get(&node).and_then(|i| i.home) {
                let _ = inner.flush_nodes(ctx, &[node], home);
            }
        }
        inner.analyzer.forget(node);
        inner.nodes.remove(&ObjKey::Proc(pid));
    }

    fn on_open(&self, ctx: &mut HookCtx<'_>, pid: Pid, loc: FileLoc, path: &str, _created: bool) {
        let mut inner = self.inner.borrow_mut();
        if inner.exempt.contains(&pid) {
            return;
        }
        inner.flush_pending(ctx);
        let node = inner.node_for_file(ctx, loc);
        // Cache the name; it rides the next flush that reaches this
        // node (its own first write, or a reader's materialization).
        let already_named = inner
            .info
            .get(&node)
            .map(|i| i.cached.iter().any(|r| r.attr == Attribute::Name))
            .unwrap_or(false);
        if !already_named {
            inner.cache_record(node, Attribute::Name, CachedValue::Plain(Value::str(path)));
        }
    }

    fn handle_read(
        &self,
        ctx: &mut HookCtx<'_>,
        pid: Pid,
        loc: FileLoc,
        offset: u64,
        len: usize,
    ) -> FsResult<Vec<u8>> {
        // Exempt readers (the Waldo daemon tailing the log) observe
        // eventually-consistent state and deliberately do not force a
        // burst flush; everyone else is a visibility barrier.
        if self.inner.borrow().exempt.contains(&pid) {
            return ctx.fs(loc.mount).read(loc.ino, offset, len);
        }
        let mut inner = self.inner.borrow_mut();
        inner.flush_pending(ctx);
        Ok(inner.provenanced_read(ctx, pid, loc, offset, len)?.data)
    }

    fn handle_write(
        &self,
        ctx: &mut HookCtx<'_>,
        pid: Pid,
        loc: FileLoc,
        offset: u64,
        data: &[u8],
    ) -> FsResult<usize> {
        let mut inner = self.inner.borrow_mut();
        // Before ANY per-op work: a write by a different (pid, file)
        // ends the burst. This precedes the exempt check because
        // exempt writes still append log entries (Lasagna logs data
        // writes on PASS volumes regardless of who writes), and it
        // precedes node_for_file because binding a fresh file logs its
        // INO identity — both must stay ordered after the burst.
        inner.flush_pending_if_other(ctx, pid, loc);
        if inner.exempt.contains(&pid) {
            return ctx.fs(loc.mount).write(loc.ino, offset, data);
        }
        inner.observed_write(ctx, pid, loc, offset, data)
    }

    fn on_pipe_read(&self, _ctx: &mut HookCtx<'_>, pid: Pid, pipe: u64, _len: usize) {
        let mut inner = self.inner.borrow_mut();
        if inner.exempt.contains(&pid) {
            return;
        }
        let p = inner.node_for_proc(pid);
        let q = inner.node_for_pipe(pipe);
        let out = inner.analyzer.add_dependency(p, q);
        if !out.duplicate {
            inner.cache_record(p, Attribute::Input, CachedValue::Ref(q, out.source_version));
        }
    }

    fn on_pipe_write(&self, _ctx: &mut HookCtx<'_>, pid: Pid, pipe: u64, _len: usize) {
        let mut inner = self.inner.borrow_mut();
        if inner.exempt.contains(&pid) {
            return;
        }
        let p = inner.node_for_proc(pid);
        let q = inner.node_for_pipe(pipe);
        let out = inner.analyzer.add_dependency(q, p);
        if !out.duplicate {
            inner.cache_record(q, Attribute::Input, CachedValue::Ref(p, out.source_version));
        }
    }

    fn on_mmap(&self, ctx: &mut HookCtx<'_>, pid: Pid, loc: FileLoc, writable: bool) {
        let mut inner = self.inner.borrow_mut();
        if inner.exempt.contains(&pid) {
            return;
        }
        inner.flush_pending(ctx);
        let file_node = inner.node_for_file(ctx, loc);
        let proc_node = inner.node_for_proc(pid);
        let out = inner.analyzer.add_dependency(proc_node, file_node);
        if !out.duplicate {
            inner.cache_record(
                proc_node,
                Attribute::Input,
                CachedValue::Ref(file_node, out.source_version),
            );
        }
        if writable {
            // A writable shared mapping also makes the process an
            // input of the file.
            let _ = inner.provenanced_write(ctx, proc_node, loc, 0, &[], Bundle::new());
        }
    }

    fn on_rename(&self, ctx: &mut HookCtx<'_>, pid: Pid, loc: FileLoc, _from: &str, to: &str) {
        let mut inner = self.inner.borrow_mut();
        if inner.exempt.contains(&pid) {
            return;
        }
        inner.flush_pending(ctx);
        let node = inner.node_for_file(ctx, loc);
        // Record the new name; provenance already follows the pnode.
        inner.cache_record(node, Attribute::Name, CachedValue::Plain(Value::str(to)));
        // A renamed PASS file may never be written again; disclose
        // the new name now so queries by the new name resolve.
        let home = inner.info.get(&node).and_then(|i| i.home);
        if let Some(home) = home {
            let side = inner.flush_nodes(ctx, &[node], home);
            if !side.is_empty() {
                if let Some(v) = ctx.find_volume(home) {
                    if let Some(loc) = inner.info.get(&node).and_then(|i| i.pass_file) {
                        if let Ok(h) = v.handle_for_ino(loc.ino) {
                            let _ = v.disclose(h, side);
                        }
                    }
                }
            }
        }
    }

    fn on_drop_inode(&self, ctx: &mut HookCtx<'_>, loc: FileLoc) {
        let mut inner = self.inner.borrow_mut();
        // Deferred writes target the inode being dropped; land them
        // while its volume handle is still valid.
        inner.flush_pending(ctx);
        let Some(&node) = inner.nodes.get(&ObjKey::File(loc)) else {
            return;
        };
        // The file is gone; drop live tracking state. Its pnode (if
        // any) remains valid in the database — provenance outlives
        // objects.
        inner.analyzer.forget(node);
        inner.nodes.remove(&ObjKey::File(loc));
    }

    fn on_barrier(&self, ctx: &mut HookCtx<'_>) {
        // The kernel is about to expose state a deferred write would
        // falsify (size, data, log contents): make it true first.
        self.inner.borrow_mut().flush_pending(ctx);
    }
}

impl ProvenanceKernel for Pass {
    fn dp_mkobj(
        &self,
        ctx: &mut HookCtx<'_>,
        _pid: Pid,
        volume: Option<VolumeId>,
    ) -> dpapi::Result<Handle> {
        let mut inner = self.inner.borrow_mut();
        inner.stats.dpapi_calls += 1;
        inner.flush_pending(ctx);
        inner.mkobj_for(ctx, volume)
    }

    fn dp_reviveobj(
        &self,
        ctx: &mut HookCtx<'_>,
        _pid: Pid,
        pnode: Pnode,
        version: Version,
    ) -> dpapi::Result<Handle> {
        let mut inner = self.inner.borrow_mut();
        inner.stats.dpapi_calls += 1;
        inner.flush_pending(ctx);
        inner.revive_for(ctx, pnode, version)
    }

    fn dp_read(
        &self,
        ctx: &mut HookCtx<'_>,
        pid: Pid,
        h: Handle,
        offset: u64,
        len: usize,
    ) -> dpapi::Result<ReadResult> {
        let mut inner = self.inner.borrow_mut();
        inner.stats.dpapi_calls += 1;
        inner.flush_pending(ctx);
        let node = inner.resolve_uhandle(h)?;
        if let Some(loc) = inner.info.get(&node).and_then(|i| i.pass_file) {
            return inner
                .provenanced_read(ctx, pid, loc, offset, len)
                .map_err(|e| DpapiError::Io(e.to_string()));
        }
        // App object: no data, identity only.
        let identity = inner.identity(node).ok_or(DpapiError::InvalidHandle)?;
        Ok(ReadResult {
            data: Vec::new(),
            identity,
        })
    }

    fn dp_write(
        &self,
        ctx: &mut HookCtx<'_>,
        pid: Pid,
        h: Handle,
        offset: u64,
        data: &[u8],
        bundle: Bundle,
    ) -> dpapi::Result<WriteResult> {
        let mut inner = self.inner.borrow_mut();
        inner.stats.dpapi_calls += 1;
        inner.flush_pending(ctx);
        let subject = inner.resolve_uhandle(h)?;
        let proc_node = inner.node_for_proc(pid);

        // Re-key the user bundle from user handles onto nodes, running
        // every ancestry record through the analyzer.
        let described = inner.rekey_user_bundle(subject, pid, &bundle)?;

        if let Some(loc) = inner.info.get(&subject).and_then(|i| i.pass_file) {
            // Writing to a real file: everything flushes now, riding
            // the data write. The implicit app→file dependency is
            // added by provenanced_write.
            let res = inner
                .provenanced_write(ctx, proc_node, loc, offset, data, Bundle::new())
                .map_err(|e| DpapiError::Io(e.to_string()))?;
            // Flush the described objects' caches (they are now part
            // of a persistent object's ancestry).
            if let Some(vol_id) = ctx.volume_of(loc.mount) {
                let side = inner.flush_nodes(ctx, &described, vol_id);
                if !side.is_empty() {
                    if let Some(v) = ctx.dpapi(loc.mount) {
                        let hf = v.handle_for_ino(loc.ino)?;
                        v.disclose(hf, side)?;
                    }
                }
            }
            Ok(res)
        } else {
            // Provenance-only disclosure about app objects: implicit
            // dependency on the disclosing process, records stay
            // cached until a persistent descendant appears.
            let out = inner.analyzer.add_dependency(subject, proc_node);
            if !out.duplicate {
                inner.cache_record(
                    subject,
                    Attribute::Input,
                    CachedValue::Ref(proc_node, out.source_version),
                );
            }
            let identity = inner.identity(subject).ok_or(DpapiError::InvalidHandle)?;
            Ok(WriteResult {
                written: 0,
                identity,
            })
        }
    }

    fn dp_freeze(&self, ctx: &mut HookCtx<'_>, _pid: Pid, h: Handle) -> dpapi::Result<Version> {
        let mut inner = self.inner.borrow_mut();
        inner.stats.dpapi_calls += 1;
        inner.flush_pending(ctx);
        let node = inner.resolve_uhandle(h)?;
        let new_version = inner.analyzer.freeze(node);
        // Mirror the freeze at the volume if the object lives there.
        let info = inner
            .info
            .get(&node)
            .map(|i| (i.home, i.home_handle, i.pass_file));
        if let Some((home, home_handle, pass_file)) = info {
            if let Some(loc) = pass_file {
                if let Some(v) = ctx.dpapi(loc.mount) {
                    let vh = v.handle_for_ino(loc.ino)?;
                    v.pass_freeze(vh)?;
                }
            } else if let (Some(home), Some(vh)) = (home, home_handle) {
                if let Some(v) = ctx.find_volume(home) {
                    v.pass_freeze(vh)?;
                }
            }
        }
        Ok(Version(new_version))
    }

    fn dp_sync(&self, ctx: &mut HookCtx<'_>, _pid: Pid, h: Handle) -> dpapi::Result<()> {
        let mut inner = self.inner.borrow_mut();
        inner.stats.dpapi_calls += 1;
        inner.flush_pending(ctx);
        let node = inner.resolve_uhandle(h)?;
        let home = inner
            .info
            .get(&node)
            .and_then(|i| i.home)
            .or_else(|| inner.default_volume(ctx))
            .ok_or(DpapiError::NotPassVolume)?;
        let side = inner.flush_nodes(ctx, &[node], home);
        let vh = inner
            .info
            .get(&node)
            .and_then(|i| i.home_handle)
            .ok_or(DpapiError::InvalidHandle)?;
        let v = ctx.find_volume(home).ok_or(DpapiError::NotPassVolume)?;
        if !side.is_empty() {
            v.disclose(vh, side)?;
        }
        v.pass_sync(vh)
    }

    fn dp_close(&self, _ctx: &mut HookCtx<'_>, _pid: Pid, h: Handle) -> dpapi::Result<()> {
        let mut inner = self.inner.borrow_mut();
        inner.stats.dpapi_calls += 1;
        inner
            .uhandles
            .remove(&h.raw())
            .map(|_| ())
            .ok_or(DpapiError::InvalidHandle)
    }

    fn dp_handle_for_file(
        &self,
        ctx: &mut HookCtx<'_>,
        _pid: Pid,
        loc: FileLoc,
    ) -> dpapi::Result<Handle> {
        let mut inner = self.inner.borrow_mut();
        inner.stats.dpapi_calls += 1;
        inner.flush_pending(ctx);
        let node = inner.node_for_file(ctx, loc);
        Ok(inner.new_uhandle(node))
    }

    /// Commits a user-level disclosure transaction as a unit.
    ///
    /// Three phases:
    ///
    /// 1. **Validate** every op against pre-transaction state —
    ///    handles resolve, records are wire-representable, target
    ///    volumes exist. A failure aborts with the op's index and no
    ///    durable effect.
    /// 2. **Analyze and translate**: ops run through the analyzer and
    ///    distributor in order (so the batch's dependency edges,
    ///    freezes and dedup decisions are computed over the whole
    ///    batch *before* anything is disclosed), while every
    ///    volume-bound disclosure is deferred into a per-volume
    ///    [`Txn`].
    /// 3. **Commit** each per-volume transaction with a single
    ///    `pass_commit`, which the volume frames as one contiguous log
    ///    group. Volume-assigned results (write identities) are then
    ///    backfilled into the per-op result vector.
    ///
    /// Atomicity is per target volume (the common single-volume case
    /// is fully atomic): validation makes a phase-3 failure all but
    /// impossible, but on a transaction spanning volumes such a
    /// failure would leave volumes committed earlier in phase 3
    /// durable — callers needing cross-volume atomicity must use one
    /// volume per transaction until a prepare/seal protocol exists
    /// (see ROADMAP). Pnode allocation for `mkobj`/`revive` is eager
    /// because it is pure server state with no log footprint, exactly
    /// as in the single-shot calls.
    fn dp_commit(&self, ctx: &mut HookCtx<'_>, pid: Pid, txn: Txn) -> dpapi::Result<Vec<OpResult>> {
        let scope = self.inner.borrow().scope.clone();
        let span = scope.open("dpapi", "dp_commit");
        let r = self.dp_commit_inner(ctx, pid, txn, &scope);
        scope.close(span);
        r
    }
}

impl Pass {
    fn dp_commit_inner(
        &self,
        ctx: &mut HookCtx<'_>,
        pid: Pid,
        txn: Txn,
        scope: &provscope::Scope,
    ) -> dpapi::Result<Vec<OpResult>> {
        let ops = txn.into_ops();
        let n_ops = ops.len() as u64;
        let mut inner = self.inner.borrow_mut();
        inner.stats.dpapi_calls += 1;
        inner.flush_pending(ctx);
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        // ---- Phase 1: validate against pre-transaction state ------------
        let span = scope.open("dpapi", "validate");
        let mut failed = None;
        for (i, op) in ops.iter().enumerate() {
            if let Err(e) = inner.validate_user_op(ctx, op) {
                failed = Some(DpapiError::aborted_at(i, e));
                break;
            }
        }
        scope.close(span);
        if let Some(e) = failed {
            return Err(e);
        }
        // ---- Phase 2: analyze the batch; defer volume disclosure --------
        let span = scope.open("dpapi", "analyze");
        let mut vol_txns: Vec<VolTxn> = Vec::new();
        let mut results: Vec<Option<OpResult>> = Vec::with_capacity(ops.len());
        for _ in 0..ops.len() {
            results.push(None);
        }
        let mut failed = None;
        for (i, op) in ops.into_iter().enumerate() {
            match inner.translate_op(ctx, pid, i, op, &mut vol_txns) {
                Ok(r) => results[i] = r,
                Err(e) => {
                    failed = Some(DpapiError::aborted_at(i, e));
                    break;
                }
            }
        }
        scope.close(span);
        if let Some(e) = failed {
            return Err(e);
        }
        // ---- Phase 3: one group commit per touched volume ---------------
        for vt in vol_txns {
            let first_op = vt.slots.first().map(|s| s.0).unwrap_or(0);
            let Some(v) = ctx.find_volume(vt.vol) else {
                return Err(DpapiError::aborted_at(first_op, DpapiError::NotPassVolume));
            };
            match v.pass_commit(vt.txn) {
                Ok(rs) => {
                    for (j, r) in rs.into_iter().enumerate() {
                        if let Some(&(user_op, backfill)) = vt.slots.get(j) {
                            if backfill {
                                results[user_op] = Some(r);
                            }
                        }
                    }
                }
                Err(DpapiError::TxnAborted { failed_op, cause }) => {
                    let user_op = vt.slots.get(failed_op).map(|s| s.0).unwrap_or(first_op);
                    return Err(DpapiError::aborted_at(user_op, *cause));
                }
                Err(e) => return Err(DpapiError::aborted_at(first_op, e)),
            }
        }
        // Count the transaction only once it actually committed, so
        // the batch-path counters (which CI gates on being non-zero)
        // cannot be satisfied by aborted batches.
        inner.stats.txn_commits += 1;
        inner.stats.txn_ops += n_ops;
        results
            .into_iter()
            .map(|r| {
                r.ok_or_else(|| {
                    DpapiError::Inconsistent("transaction op produced no result".into())
                })
            })
            .collect()
    }
}
