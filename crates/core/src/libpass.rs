//! libpass: the user-level DPAPI library.
//!
//! Application developers make their applications provenance-aware by
//! linking against libpass and issuing DPAPI calls (paper §5.2). In
//! the simulation, a [`LibPass`] borrows the kernel on behalf of one
//! process and forwards each call to the observer's disclosed
//! provenance entry points.
//!
//! Since DPAPI v2 libpass is transaction-native: it implements
//! [`Dpapi::pass_commit`] as **one** `pass_commit` system call for the
//! whole batch, and the classic single-shot calls arrive through the
//! trait's one-op-transaction defaults — so an application that
//! batches its disclosures pays one syscall where it used to pay one
//! per call, with no change to applications that don't.

use dpapi::{Bundle, Dpapi, Handle, OpResult, ProvenanceRecord, ReadResult, Txn, WriteResult};
use sim_os::proc::{Fd, Pid};
use sim_os::syscall::Kernel;

/// The user-level DPAPI endpoint for one process.
pub struct LibPass<'k> {
    kernel: &'k mut Kernel,
    pid: Pid,
}

impl<'k> LibPass<'k> {
    /// Binds libpass to `pid` within `kernel`.
    pub fn new(kernel: &'k mut Kernel, pid: Pid) -> Self {
        LibPass { kernel, pid }
    }

    /// The process this instance discloses on behalf of.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Access to the kernel for interleaved ordinary syscalls.
    pub fn kernel(&mut self) -> &mut Kernel {
        self.kernel
    }

    /// Obtains a DPAPI handle for a file the process has open, so the
    /// application can `pass_write` data and provenance together to
    /// it (the "replace `write` with `pass_write`" guideline of
    /// §6.5).
    pub fn handle_for_fd(&mut self, fd: Fd) -> dpapi::Result<Handle> {
        self.kernel
            .pass_handle_for_fd(self.pid, fd)
            .map_err(dpapi::DpapiError::from)
    }

    /// Convenience: disclose records about one object.
    pub fn disclose(
        &mut self,
        h: Handle,
        records: impl IntoIterator<Item = ProvenanceRecord>,
    ) -> dpapi::Result<WriteResult> {
        let mut bundle = Bundle::new();
        for r in records {
            bundle.push(h, r);
        }
        self.pass_write(h, 0, &[], bundle)
    }
}

impl Dpapi for LibPass<'_> {
    fn pass_read(&mut self, h: Handle, offset: u64, len: usize) -> dpapi::Result<ReadResult> {
        self.kernel
            .pass_read(self.pid, h, offset, len)
            .map_err(dpapi::DpapiError::from)
    }

    /// Zero-copy override of the one-op default for the §6.5
    /// "replace `write` with `pass_write`" application path: forwards
    /// the borrowed data slice straight to the `pass_write` syscall
    /// instead of cloning it into a one-op transaction.
    fn pass_write(
        &mut self,
        h: Handle,
        offset: u64,
        data: &[u8],
        bundle: dpapi::Bundle,
    ) -> dpapi::Result<WriteResult> {
        self.kernel
            .pass_write(self.pid, h, offset, data, bundle)
            .map_err(dpapi::DpapiError::from)
    }

    /// One system call for the whole transaction; the kernel module
    /// validates, analyzes and logs the batch as a unit.
    fn pass_commit(&mut self, txn: Txn) -> dpapi::Result<Vec<OpResult>> {
        self.kernel
            .pass_commit(self.pid, txn)
            .map_err(dpapi::DpapiError::from)
    }

    fn pass_close(&mut self, h: Handle) -> dpapi::Result<()> {
        self.kernel
            .pass_close(self.pid, h)
            .map_err(dpapi::DpapiError::from)
    }
}
