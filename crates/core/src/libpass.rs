//! libpass: the user-level DPAPI library.
//!
//! Application developers make their applications provenance-aware by
//! linking against libpass and issuing DPAPI calls (paper §5.2). In
//! the simulation, a [`LibPass`] borrows the kernel on behalf of one
//! process and forwards each call to the observer's disclosed
//! provenance entry points.

use dpapi::{
    Bundle, Dpapi, Handle, Pnode, ProvenanceRecord, ReadResult, Version, VolumeId, WriteResult,
};
use sim_os::proc::{Fd, Pid};
use sim_os::syscall::Kernel;

/// The user-level DPAPI endpoint for one process.
pub struct LibPass<'k> {
    kernel: &'k mut Kernel,
    pid: Pid,
}

impl<'k> LibPass<'k> {
    /// Binds libpass to `pid` within `kernel`.
    pub fn new(kernel: &'k mut Kernel, pid: Pid) -> Self {
        LibPass { kernel, pid }
    }

    /// The process this instance discloses on behalf of.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Access to the kernel for interleaved ordinary syscalls.
    pub fn kernel(&mut self) -> &mut Kernel {
        self.kernel
    }

    /// Obtains a DPAPI handle for a file the process has open, so the
    /// application can `pass_write` data and provenance together to
    /// it (the "replace `write` with `pass_write`" guideline of
    /// §6.5).
    pub fn handle_for_fd(&mut self, fd: Fd) -> dpapi::Result<Handle> {
        self.kernel.pass_handle_for_fd(self.pid, fd).map_err(fs_err)
    }

    /// Convenience: disclose records about one object.
    pub fn disclose(
        &mut self,
        h: Handle,
        records: impl IntoIterator<Item = ProvenanceRecord>,
    ) -> dpapi::Result<WriteResult> {
        let mut bundle = Bundle::new();
        for r in records {
            bundle.push(h, r);
        }
        self.pass_write(h, 0, &[], bundle)
    }
}

fn fs_err(e: sim_os::fs::FsError) -> dpapi::DpapiError {
    match e {
        sim_os::fs::FsError::Provenance(d) => d,
        other => dpapi::DpapiError::Io(other.to_string()),
    }
}

impl Dpapi for LibPass<'_> {
    fn pass_read(&mut self, h: Handle, offset: u64, len: usize) -> dpapi::Result<ReadResult> {
        self.kernel
            .pass_read(self.pid, h, offset, len)
            .map_err(fs_err)
    }

    fn pass_write(
        &mut self,
        h: Handle,
        offset: u64,
        data: &[u8],
        bundle: Bundle,
    ) -> dpapi::Result<WriteResult> {
        self.kernel
            .pass_write(self.pid, h, offset, data, bundle)
            .map_err(fs_err)
    }

    fn pass_freeze(&mut self, h: Handle) -> dpapi::Result<Version> {
        self.kernel.pass_freeze(self.pid, h).map_err(fs_err)
    }

    fn pass_mkobj(&mut self, volume_hint: Option<VolumeId>) -> dpapi::Result<Handle> {
        self.kernel
            .pass_mkobj(self.pid, volume_hint)
            .map_err(fs_err)
    }

    fn pass_reviveobj(&mut self, pnode: Pnode, version: Version) -> dpapi::Result<Handle> {
        self.kernel
            .pass_reviveobj(self.pid, pnode, version)
            .map_err(fs_err)
    }

    fn pass_sync(&mut self, h: Handle) -> dpapi::Result<()> {
        self.kernel.pass_sync(self.pid, h).map_err(fs_err)
    }

    fn pass_close(&mut self, h: Handle) -> dpapi::Result<()> {
        self.kernel.pass_close(self.pid, h).map_err(fs_err)
    }
}
