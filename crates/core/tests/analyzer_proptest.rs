//! Property-based tests for the analyzer's central invariant: no
//! dependency stream — however adversarial — produces a cycle among
//! `(object, version)` pairs under cycle avoidance, and the PASSv1
//! baseline keeps its merged graph acyclic.

use std::collections::{HashMap, HashSet};

use passv2::analyzer::{CycleAvoidance, GlobalGraph, NodeId};
use proptest::prelude::*;

/// Replays a dependency stream, building the versioned edge set the
/// storage layer would persist, then checks it for cycles.
fn versioned_graph_is_acyclic(stream: &[(NodeId, NodeId)]) -> bool {
    let mut an = CycleAvoidance::new();
    // Edges between (node, version) pairs, in dependency direction
    // target@tv -> source@sv, plus implicit version edges
    // n@v -> n@v-1.
    let mut edges: HashSet<((NodeId, u32), (NodeId, u32))> = HashSet::new();
    let mut max_version: HashMap<NodeId, u32> = HashMap::new();
    for &(target, source) in stream {
        let out = an.add_dependency(target, source);
        if out.duplicate {
            continue;
        }
        let tv = out.target_version;
        let sv = out.source_version;
        edges.insert(((target, tv), (source, sv)));
        max_version.insert(target, tv.max(*max_version.get(&target).unwrap_or(&0)));
        max_version.insert(source, sv.max(*max_version.get(&source).unwrap_or(&0)));
    }
    for (&n, &maxv) in &max_version {
        for v in 1..=maxv {
            edges.insert(((n, v), (n, v - 1)));
        }
    }
    // Kahn's algorithm over the versioned nodes.
    let mut nodes: HashSet<(NodeId, u32)> = HashSet::new();
    for &(a, b) in &edges {
        nodes.insert(a);
        nodes.insert(b);
    }
    let mut indeg: HashMap<(NodeId, u32), usize> = nodes.iter().map(|&n| (n, 0)).collect();
    let mut adj: HashMap<(NodeId, u32), Vec<(NodeId, u32)>> = HashMap::new();
    for &(a, b) in &edges {
        adj.entry(a).or_default().push(b);
        *indeg.get_mut(&b).unwrap() += 1;
    }
    let mut queue: Vec<(NodeId, u32)> = indeg
        .iter()
        .filter(|(_, d)| **d == 0)
        .map(|(n, _)| *n)
        .collect();
    let mut visited = 0;
    while let Some(n) = queue.pop() {
        visited += 1;
        if let Some(next) = adj.get(&n) {
            for &m in next {
                let d = indeg.get_mut(&m).unwrap();
                *d -= 1;
                if *d == 0 {
                    queue.push(m);
                }
            }
        }
    }
    visited == nodes.len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cycle avoidance: the versioned provenance graph is a DAG for
    /// every stream over a small id space (small spaces maximize
    /// collision/cycle pressure).
    #[test]
    fn cycle_avoidance_keeps_versioned_graph_acyclic(
        stream in proptest::collection::vec((0u64..8, 0u64..8), 1..300)
    ) {
        let stream: Vec<(NodeId, NodeId)> = stream;
        prop_assert!(versioned_graph_is_acyclic(&stream));
    }

    /// Duplicate elimination is idempotent: replaying the same edge
    /// immediately is always suppressed.
    #[test]
    fn immediate_replay_is_duplicate(
        stream in proptest::collection::vec((0u64..6, 0u64..6), 1..100)
    ) {
        let mut an = CycleAvoidance::new();
        for (t, s) in stream {
            if t == s {
                continue;
            }
            let first = an.add_dependency(t, s);
            let again = an.add_dependency(t, s);
            // Replay can never freeze and is always a duplicate —
            // unless the first call froze the target (new version,
            // fresh set), in which case the second absorbs it.
            if first.frozen.is_none() {
                prop_assert!(again.duplicate);
            } else {
                prop_assert!(again.duplicate || again.frozen.is_none());
            }
        }
    }

    /// The PASSv1 global graph never reports a cycle among its
    /// canonical nodes after merges.
    #[test]
    fn global_graph_stays_acyclic(
        stream in proptest::collection::vec((0u64..10, 0u64..10), 1..200)
    ) {
        let mut g = GlobalGraph::new();
        for (t, s) in stream {
            g.add_dependency(t, s);
        }
        prop_assert!(g.is_acyclic());
    }

    /// Versions only move forward.
    #[test]
    fn versions_are_monotonic(
        stream in proptest::collection::vec((0u64..6, 0u64..6), 1..200)
    ) {
        let mut an = CycleAvoidance::new();
        let mut last: HashMap<NodeId, u32> = HashMap::new();
        for (t, s) in stream {
            an.add_dependency(t, s);
            for n in [t, s] {
                let v = an.version(n);
                let prev = last.insert(n, v).unwrap_or(0);
                prop_assert!(v >= prev, "version of {n} went backwards");
            }
        }
    }
}
