//! The DPAPI v2 equivalence property: any interleaving of single
//! DPAPI calls produces a **byte-identical** provenance store to the
//! same ops committed as one disclosure transaction.
//!
//! Each case builds two identical machines, applies a random op
//! sequence once call-at-a-time and once as a single `pass_commit`,
//! drains both Lasagna logs into Waldo (one group commit each, so
//! shard generations match), and compares `Store::segment_images` —
//! the canonical byte-equivalence oracle introduced with the
//! checkpoint subsystem.

use dpapi::{Attribute, Bundle, DpapiOp, Handle, ProvenanceRecord, Value, VolumeId};
use passv2::{System, SystemBuilder};
use proptest::prelude::*;
use sim_os::cost::CostModel;
use sim_os::proc::Pid;
use sim_os::syscall::OpenFlags;
use waldo::WaldoConfig;

const FILES: usize = 3;

/// One abstract disclosure op over the fixture's objects.
#[derive(Clone, Debug)]
enum OpSpec {
    /// `pass_write` to file `file`: `data_len` bytes plus `nrecs`
    /// application records about the file.
    FileWrite {
        file: usize,
        data_len: usize,
        nrecs: usize,
        tag: u8,
    },
    /// Provenance-only disclosure about the app object.
    AppDisclose { tag: u8 },
    /// `pass_freeze` of file `file`.
    FreezeFile { file: usize },
    /// `pass_freeze` of the app object.
    FreezeApp,
    /// `pass_sync` of the app object.
    SyncApp,
}

fn arb_op() -> impl Strategy<Value = OpSpec> {
    prop_oneof![
        (0..FILES, 0usize..64, 0usize..4, any::<u8>()).prop_map(|(file, data_len, nrecs, tag)| {
            OpSpec::FileWrite {
                file,
                data_len,
                nrecs,
                tag,
            }
        }),
        any::<u8>().prop_map(|tag| OpSpec::AppDisclose { tag }),
        (0..FILES).prop_map(|file| OpSpec::FreezeFile { file }),
        Just(OpSpec::FreezeApp),
        Just(OpSpec::SyncApp),
    ]
}

struct Fixture {
    sys: System,
    pid: Pid,
    files: Vec<Handle>,
    app: Handle,
}

/// Two calls build byte-identical machines: same mounts, same seed
/// files, same handle acquisition order.
fn fixture() -> Fixture {
    let mut sys = SystemBuilder::new(CostModel::default())
        .pass_volume("/", VolumeId(1))
        // One group commit per drained log, so the shard-generation
        // counters inside the segment images depend only on content.
        .waldo_config(WaldoConfig {
            ingest_batch: 1 << 20,
            ..WaldoConfig::default()
        })
        .build();
    let pid = sys.spawn("app");
    let mut files = Vec::new();
    for i in 0..FILES {
        let path = format!("/f{i}");
        sys.kernel.write_file(pid, &path, b"seed").unwrap();
        let fd = sys.kernel.open(pid, &path, OpenFlags::RDWR_CREATE).unwrap();
        files.push(sys.kernel.pass_handle_for_fd(pid, fd).unwrap());
    }
    let app = sys.kernel.pass_mkobj(pid, None).unwrap();
    Fixture {
        sys,
        pid,
        files,
        app,
    }
}

fn write_parts(fx: &Fixture, spec: &OpSpec) -> (Handle, Vec<u8>, Bundle) {
    match spec {
        OpSpec::FileWrite {
            file,
            data_len,
            nrecs,
            tag,
        } => {
            let h = fx.files[*file];
            let data = vec![b'a' + (*tag % 26); *data_len];
            let mut bundle = Bundle::new();
            for j in 0..*nrecs {
                bundle.push(
                    h,
                    ProvenanceRecord::new(
                        Attribute::Other(format!("K{j}")),
                        Value::str(format!("v{tag}")),
                    ),
                );
            }
            (h, data, bundle)
        }
        OpSpec::AppDisclose { tag } => {
            let bundle = Bundle::single(
                fx.app,
                ProvenanceRecord::new(
                    Attribute::Other("PHASE".into()),
                    Value::str(format!("p{tag}")),
                ),
            );
            (fx.app, Vec::new(), bundle)
        }
        _ => unreachable!("write_parts only serves write-shaped ops"),
    }
}

/// Drains the volume into a fresh Waldo and returns the canonical
/// per-shard segment images.
fn images(fx: &mut Fixture) -> Vec<Vec<u8>> {
    let mut waldo = fx.sys.spawn_waldo();
    for (_, logs) in fx.sys.rotate_all_logs() {
        for log in logs {
            waldo.ingest_log_file(&mut fx.sys.kernel, &log);
        }
    }
    waldo.db.segment_images()
}

fn run_single(ops: &[OpSpec]) -> Vec<Vec<u8>> {
    let mut fx = fixture();
    for spec in ops {
        match spec {
            OpSpec::FileWrite { .. } | OpSpec::AppDisclose { .. } => {
                let (h, data, bundle) = write_parts(&fx, spec);
                fx.sys
                    .kernel
                    .pass_write(fx.pid, h, 0, &data, bundle)
                    .unwrap();
            }
            OpSpec::FreezeFile { file } => {
                fx.sys.kernel.pass_freeze(fx.pid, fx.files[*file]).unwrap();
            }
            OpSpec::FreezeApp => {
                fx.sys.kernel.pass_freeze(fx.pid, fx.app).unwrap();
            }
            OpSpec::SyncApp => {
                fx.sys.kernel.pass_sync(fx.pid, fx.app).unwrap();
            }
        }
    }
    images(&mut fx)
}

fn run_batched(ops: &[OpSpec]) -> Vec<Vec<u8>> {
    let mut fx = fixture();
    let mut txn = dpapi::Txn::new();
    for spec in ops {
        match spec {
            OpSpec::FileWrite { .. } | OpSpec::AppDisclose { .. } => {
                let (h, data, bundle) = write_parts(&fx, spec);
                txn.add(DpapiOp::Write {
                    handle: h,
                    offset: 0,
                    data,
                    bundle,
                });
            }
            OpSpec::FreezeFile { file } => {
                txn.freeze(fx.files[*file]);
            }
            OpSpec::FreezeApp => {
                txn.freeze(fx.app);
            }
            OpSpec::SyncApp => {
                txn.sync(fx.app);
            }
        }
    }
    let n = txn.len();
    let results = fx.sys.kernel.pass_commit(fx.pid, txn).unwrap();
    assert_eq!(results.len(), n);
    images(&mut fx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Single-shot calls and one batched commit are indistinguishable
    /// in the resulting provenance database, byte for byte.
    #[test]
    fn single_equals_batched(ops in proptest::collection::vec(arb_op(), 1..12)) {
        let single = run_single(&ops);
        let batched = run_batched(&ops);
        prop_assert_eq!(single, batched);
    }
}

/// The fixed sequence every layer exercises, kept as a plain test so
/// a regression names itself without proptest shrinking.
#[test]
fn canonical_sequence_single_equals_batched() {
    let ops = vec![
        OpSpec::FileWrite {
            file: 0,
            data_len: 16,
            nrecs: 2,
            tag: 3,
        },
        OpSpec::AppDisclose { tag: 7 },
        OpSpec::FreezeFile { file: 0 },
        OpSpec::FileWrite {
            file: 1,
            data_len: 0,
            nrecs: 1,
            tag: 9,
        },
        OpSpec::SyncApp,
        OpSpec::FreezeApp,
        OpSpec::FileWrite {
            file: 0,
            data_len: 8,
            nrecs: 0,
            tag: 1,
        },
    ];
    assert_eq!(run_single(&ops), run_batched(&ops));
}
