//! Observer-side batching equivalence: a machine that aggregates pure
//! write bursts into one volume transaction produces a
//! **byte-identical** provenance store to a machine disclosing every
//! intercepted write synchronously.
//!
//! Each case replays a random syscall script (writes, reads, stats,
//! fsyncs, renames, across two processes and two files) on both
//! machines, drains both logs into Waldo, and compares
//! `Store::segment_images` — the canonical oracle. Deterministic
//! companions check that batching actually coalesces (the stats move)
//! and that every visibility barrier exposes the deferred state.

use dpapi::VolumeId;
use passv2::{ObserverBatchConfig, System, SystemBuilder};
use proptest::prelude::*;
use sim_os::cost::CostModel;
use sim_os::proc::{Fd, Pid};
use sim_os::syscall::OpenFlags;
use waldo::WaldoConfig;

const PROCS: usize = 2;
const FILES: usize = 2;

#[derive(Clone, Debug)]
enum Action {
    /// Cursor write by process `who` to file `file` (append barriers
    /// would flush every burst; cursor writes are the batchable path).
    Write {
        who: usize,
        file: usize,
        len: usize,
        tag: u8,
    },
    /// Cursor read — a visibility barrier through the module.
    Read { who: usize, file: usize, len: usize },
    /// `stat(2)` — a kernel-side visibility barrier.
    Stat { file: usize },
    /// `fsync(2)` — durability barrier.
    Fsync { who: usize, file: usize },
    /// Rename file `file` — discloses the new name immediately.
    Rename { file: usize, tag: u8 },
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        // Writes three ways so bursts actually form between barriers.
        (0..PROCS, 0..FILES, 1usize..48, any::<u8>()).prop_map(|(who, file, len, tag)| {
            Action::Write {
                who,
                file,
                len,
                tag,
            }
        }),
        (0..PROCS, 0..FILES, 1usize..48, any::<u8>()).prop_map(|(who, file, len, tag)| {
            Action::Write {
                who,
                file,
                len,
                tag,
            }
        }),
        (0..PROCS, 0..FILES, 1usize..48, any::<u8>()).prop_map(|(who, file, len, tag)| {
            Action::Write {
                who,
                file,
                len,
                tag,
            }
        }),
        (0..PROCS, 0..FILES, 0usize..16).prop_map(|(who, file, len)| Action::Read {
            who,
            file,
            len
        }),
        (0..FILES).prop_map(|file| Action::Stat { file }),
        (0..PROCS, 0..FILES).prop_map(|(who, file)| Action::Fsync { who, file }),
        (0..FILES, any::<u8>()).prop_map(|(file, tag)| Action::Rename { file, tag }),
    ]
}

struct Fixture {
    sys: System,
    pids: Vec<Pid>,
    /// `fds[who][file]`, every process holding every file open RDWR.
    fds: Vec<Vec<Fd>>,
    renames: usize,
}

fn fixture(batch: Option<ObserverBatchConfig>) -> Fixture {
    let mut b = SystemBuilder::new(CostModel::default())
        .pass_volume("/", VolumeId(1))
        // One group commit per drained log, so shard generations
        // depend only on content.
        .waldo_config(WaldoConfig {
            ingest_batch: 1 << 20,
            ..WaldoConfig::default()
        });
    if let Some(cfg) = batch {
        b = b.observer_batch(cfg);
    }
    let mut sys = b.build();
    let mut pids = Vec::new();
    for i in 0..PROCS {
        pids.push(sys.spawn(&format!("proc{i}")));
    }
    for f in 0..FILES {
        sys.kernel
            .write_file(pids[0], &format!("/f{f}"), b"seed")
            .unwrap();
    }
    let fds = pids
        .iter()
        .map(|&pid| {
            (0..FILES)
                .map(|f| {
                    sys.kernel
                        .open(pid, &format!("/f{f}"), OpenFlags::RDWR_CREATE)
                        .unwrap()
                })
                .collect()
        })
        .collect();
    Fixture {
        sys,
        pids,
        fds,
        renames: 0,
    }
}

fn file_path(_fx: &Fixture, file: usize) -> String {
    format!("/f{file}")
}

fn run(actions: &[Action], batch: Option<ObserverBatchConfig>) -> Vec<Vec<u8>> {
    let mut fx = fixture(batch);
    for a in actions {
        match *a {
            Action::Write {
                who,
                file,
                len,
                tag,
            } => {
                let data = vec![b'a' + (tag % 26); len];
                fx.sys
                    .kernel
                    .write(fx.pids[who], fx.fds[who][file], &data)
                    .unwrap();
            }
            Action::Read { who, file, len } => {
                let _ = fx
                    .sys
                    .kernel
                    .read(fx.pids[who], fx.fds[who][file], len)
                    .unwrap();
            }
            Action::Stat { file } => {
                let _ = fx
                    .sys
                    .kernel
                    .stat(fx.pids[0], &file_path(&fx, file))
                    .unwrap();
            }
            Action::Fsync { who, file } => {
                fx.sys
                    .kernel
                    .fsync(fx.pids[who], fx.fds[who][file])
                    .unwrap();
            }
            Action::Rename { file, tag } => {
                let from = file_path(&fx, file);
                let to = format!("/r{}-{}", fx.renames, tag);
                fx.sys.kernel.rename(fx.pids[0], &from, &to).unwrap();
                fx.renames += 1;
                // Rename it straight back so paths stay stable.
                fx.sys.kernel.rename(fx.pids[0], &to, &from).unwrap();
            }
        }
    }
    // Drain into a fresh Waldo; rotate_all_logs barriers first, so a
    // trailing burst lands in the sealed log.
    let mut waldo = fx.sys.spawn_waldo();
    for (_, logs) in fx.sys.rotate_all_logs() {
        for log in logs {
            waldo.ingest_log_file(&mut fx.sys.kernel, &log);
        }
    }
    waldo.db.segment_images()
}

fn small_batch() -> ObserverBatchConfig {
    ObserverBatchConfig {
        max_ops: 4,
        max_bytes: 1 << 16,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The standing oracle: batched and synchronous machines are
    /// indistinguishable in the provenance database, byte for byte.
    #[test]
    fn batched_store_is_byte_equal_to_synchronous(
        actions in proptest::collection::vec(arb_action(), 1..24)
    ) {
        let sync = run(&actions, None);
        let batched = run(&actions, Some(small_batch()));
        prop_assert_eq!(sync, batched);
    }
}

/// Batching actually batches: a pure write burst defers everything
/// after the first (ancestry-carrying) write and flushes once.
#[test]
fn burst_coalesces_writes_and_flushes_once() {
    let mut fx = fixture(Some(ObserverBatchConfig {
        max_ops: 64,
        max_bytes: 1 << 20,
    }));
    let (pid, fd) = (fx.pids[0], fx.fds[0][0]);
    for i in 0..6 {
        fx.sys
            .kernel
            .write(pid, fd, &[b'x' + (i % 3) as u8; 32])
            .unwrap();
    }
    let mid = fx.sys.pass.stats();
    // The seed write already created the proc->file edge, so every fd
    // write is a pure continuation and defers.
    assert_eq!(mid.observer_batched_ops, 6);
    assert_eq!(mid.observer_batches, 0, "burst still pending");
    fx.sys.kernel.barrier();
    let end = fx.sys.pass.stats();
    assert_eq!(end.observer_batches, 1, "one commit for the whole burst");
    assert_eq!(end.observer_flush_failures, 0);
    // The data all landed, in order.
    let got = fx.sys.kernel.read_file(pid, "/f0").unwrap();
    assert_eq!(got.len(), 6 * 32);
}

/// The ops ceiling bounds burst memory: the burst flushes itself once
/// it holds `max_ops` writes, without any barrier.
#[test]
fn burst_flushes_at_the_ops_ceiling() {
    let mut fx = fixture(Some(ObserverBatchConfig {
        max_ops: 3,
        max_bytes: 1 << 20,
    }));
    let (pid, fd) = (fx.pids[0], fx.fds[0][0]);
    for _ in 0..8 {
        fx.sys.kernel.write(pid, fd, b"yyyyyyyy").unwrap();
    }
    let s = fx.sys.pass.stats();
    assert_eq!(s.observer_batched_ops, 8);
    assert!(
        s.observer_batches >= 2,
        "8 deferred writes over a 3-op ceiling flush at least twice, got {}",
        s.observer_batches
    );
}

/// Every observation of deferred state flushes first: size via stat,
/// bytes via read, and the append offset all see the burst.
#[test]
fn visibility_barriers_expose_deferred_state() {
    let mut fx = fixture(Some(ObserverBatchConfig {
        max_ops: 64,
        max_bytes: 1 << 20,
    }));
    let (pid, fd) = (fx.pids[0], fx.fds[0][0]);
    fx.sys.kernel.write(pid, fd, b"0123456789").unwrap();
    fx.sys.kernel.write(pid, fd, b"abcdefghij").unwrap();
    assert_eq!(
        fx.sys.pass.stats().observer_batched_ops,
        2,
        "both writes deferred (the seed write created the edge)"
    );
    // stat(2) barriers: the size includes the deferred write.
    let size = fx.sys.kernel.stat(pid, "/f0").unwrap().size;
    assert_eq!(size, 20);
    assert_eq!(fx.sys.pass.stats().observer_batches, 1);
    // A fresh burst, then an O_APPEND writer: the append offset must
    // account for the pending bytes.
    fx.sys.kernel.write(pid, fd, b"KLMNO").unwrap();
    fx.sys.kernel.write(pid, fd, b"PQRST").unwrap();
    let afd = fx
        .sys
        .kernel
        .open(pid, "/f0", OpenFlags::APPEND_CREATE)
        .unwrap();
    fx.sys.kernel.write(pid, afd, b"!").unwrap();
    let got = fx.sys.kernel.read_file(pid, "/f0").unwrap();
    assert_eq!(&got[20..31], b"KLMNOPQRST!");
}
