//! Property tests for the provscope cross-layer span contract, on
//! generated disclosure schedules rather than one hand-picked run:
//!
//! * every span's parent exists (and the whole forest passes
//!   [`provscope::Trace::validate`]: closed, ordered, same-trace);
//! * every multi-op disclosure transaction yields **exactly one**
//!   batch trace, and that trace is one connected span tree crossing
//!   every layer the machine has (dpapi → kernel → lasagna → waldo);
//! * single-op disclosures (a bare sync) allocate no batch id at all
//!   — their windows ride synthetic traces;
//!
//! on both the single-daemon machine and a 2-member cluster (where
//! the per-volume schedules interleave across members).

use dpapi::VolumeId;
use passv2::{System, SystemBuilder};
use proptest::prelude::*;
use sim_os::cost::CostModel;

/// Every provenance-bearing layer of a local PASS machine (the
/// PA-NFS layers are exercised by `bench --bin provscope_trace`).
const LOCAL_LAYERS: [&str; 4] = ["dpapi", "kernel", "lasagna", "waldo"];

/// Drives `rounds` disclosure transactions of `batch_ops` DPAPI ops
/// each against one object on `volume`. The trailing `sync` flushes
/// the module-cached disclosure records into the volume transaction;
/// `batch_ops = 1` is a bare sync — an unbatched volume commit.
fn disclose_rounds(sys: &mut System, volume: VolumeId, rounds: usize, batch_ops: usize) {
    let pid = sys.spawn("discloser");
    let h = sys
        .kernel
        .pass_mkobj(pid, Some(volume))
        .expect("mkobj on a PASS volume");
    for round in 0..rounds {
        let mut txn = dpapi::pass_begin();
        for i in 0..batch_ops - 1 {
            let mut bundle = dpapi::Bundle::new();
            bundle.push(
                h,
                dpapi::ProvenanceRecord::new(
                    dpapi::Attribute::Other(format!("PROP_V{}_R{round}", volume.0)),
                    dpapi::Value::Int(i as i64),
                ),
            );
            txn.disclose(h, bundle);
        }
        txn.sync(h);
        sys.kernel.pass_commit(pid, txn).expect("disclosure commit");
    }
    sys.kernel.pass_close(pid, h).expect("close");
}

/// The span-tree contract against a snapshot: well-formed forest,
/// exactly `expect_batches` batch traces, each one a connected tree
/// crossing every local layer.
fn check_contract(trace: &provscope::Trace, expect_batches: usize) -> Result<(), String> {
    prop_assert!(
        trace.validate().is_ok(),
        "span forest must validate: {:?}",
        trace.validate()
    );
    for s in &trace.spans {
        if let Some(p) = s.parent {
            prop_assert!(
                trace.spans.iter().any(|c| c.id == p),
                "span {} names a parent {} that does not exist",
                s.id.0,
                p.0
            );
        }
    }
    let batches = trace.batch_traces();
    prop_assert!(
        batches.len() == expect_batches,
        "every multi-op disclosure allocates exactly one batch id: \
         got {}, want {}",
        batches.len(),
        expect_batches
    );
    for t in batches {
        prop_assert!(t.is_batch());
        prop_assert!(
            trace.is_connected_tree(t),
            "batch {:?} must form one connected span tree",
            t
        );
        let layers = trace.layers_of(t);
        for need in LOCAL_LAYERS {
            prop_assert!(
                layers.contains(&need),
                "batch {:?} must cross {}; got {:?}",
                t,
                need,
                layers
            );
        }
    }
    Ok(())
}

fn single_daemon_trace(rounds: usize, batch_ops: usize) -> provscope::Trace {
    let mut sys = System::single_volume();
    let scope = sys.enable_tracing();
    disclose_rounds(&mut sys, VolumeId(1), rounds, batch_ops);
    let volumes = sys.volumes.clone();
    for (_, m, _) in &volumes {
        sys.kernel.dpapi_at(*m).unwrap().force_log_rotation();
    }
    let mut w = sys.spawn_waldo();
    w.set_scope(scope.clone());
    for (path, m, _) in &volumes {
        w.poll_volume(&mut sys.kernel, *m, path);
    }
    scope.snapshot()
}

fn cluster_trace(rounds: usize, batch_ops: usize) -> provscope::Trace {
    let mut sys = SystemBuilder::new(CostModel::default())
        .pass_volume("/v1", VolumeId(1))
        .pass_volume("/v2", VolumeId(2))
        .build();
    let scope = sys.enable_tracing();
    disclose_rounds(&mut sys, VolumeId(1), rounds, batch_ops);
    disclose_rounds(&mut sys, VolumeId(2), rounds, batch_ops);
    let volumes = sys.volumes.clone();
    for (_, m, _) in &volumes {
        sys.kernel.dpapi_at(*m).unwrap().force_log_rotation();
    }
    let mut cluster = sys.spawn_cluster(2);
    cluster.set_scope(scope.clone());
    cluster.poll_volumes(&mut sys.kernel, &volumes);
    scope.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Single daemon: every generated disclosure schedule produces a
    /// well-formed forest with one connected 4-layer tree per
    /// multi-op transaction, and none for bare syncs.
    #[test]
    fn single_daemon_span_trees(rounds in 1usize..4, batch_ops in 1usize..6) {
        let trace = single_daemon_trace(rounds, batch_ops);
        let expect = if batch_ops >= 2 { rounds } else { 0 };
        check_contract(&trace, expect)?;
    }

    /// 2-member cluster: two volumes' schedules interleave across
    /// members, yet every batch still resolves to exactly one
    /// connected tree — batch ids are volume-salted, so member
    /// fan-in cannot collide or split them.
    #[test]
    fn cluster_span_trees(rounds in 1usize..4, batch_ops in 2usize..6) {
        let trace = cluster_trace(rounds, batch_ops);
        check_contract(&trace, 2 * rounds)?;
    }
}
