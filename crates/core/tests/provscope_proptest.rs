//! Property tests for the provscope cross-layer span contract, on
//! generated disclosure schedules rather than one hand-picked run:
//!
//! * every span's parent exists (and the whole forest passes
//!   [`provscope::Trace::validate`]: closed, ordered, same-trace);
//! * every multi-op disclosure transaction yields **exactly one**
//!   batch trace, and that trace is one connected span tree crossing
//!   every layer the machine has (dpapi → kernel → lasagna → waldo);
//! * single-op disclosures (a bare sync) allocate no batch id at all
//!   — their windows ride synthetic traces;
//!
//! on both the single-daemon machine and a 2-member cluster (where
//! the per-volume schedules interleave across members).

use dpapi::VolumeId;
use passv2::{System, SystemBuilder};
use proptest::prelude::*;
use sim_os::cost::CostModel;

/// Every provenance-bearing layer of a local PASS machine (the
/// PA-NFS layers are exercised by `bench --bin provscope_trace`).
const LOCAL_LAYERS: [&str; 4] = ["dpapi", "kernel", "lasagna", "waldo"];

/// Drives `rounds` disclosure transactions of `batch_ops` DPAPI ops
/// each against one object on `volume`. The trailing `sync` flushes
/// the module-cached disclosure records into the volume transaction;
/// `batch_ops = 1` is a bare sync — an unbatched volume commit.
fn disclose_rounds(sys: &mut System, volume: VolumeId, rounds: usize, batch_ops: usize) {
    let pid = sys.spawn("discloser");
    let h = sys
        .kernel
        .pass_mkobj(pid, Some(volume))
        .expect("mkobj on a PASS volume");
    for round in 0..rounds {
        let mut txn = dpapi::Txn::new();
        for i in 0..batch_ops - 1 {
            let mut bundle = dpapi::Bundle::new();
            bundle.push(
                h,
                dpapi::ProvenanceRecord::new(
                    dpapi::Attribute::Other(format!("PROP_V{}_R{round}", volume.0)),
                    dpapi::Value::Int(i as i64),
                ),
            );
            txn.disclose(h, bundle);
        }
        txn.sync(h);
        sys.kernel.pass_commit(pid, txn).expect("disclosure commit");
    }
    sys.kernel.pass_close(pid, h).expect("close");
}

/// The span-tree contract against a snapshot: well-formed forest,
/// exactly `expect_batches` batch traces, each one a connected tree
/// crossing every local layer.
fn check_contract(trace: &provscope::Trace, expect_batches: usize) -> Result<(), String> {
    prop_assert!(
        trace.validate().is_ok(),
        "span forest must validate: {:?}",
        trace.validate()
    );
    for s in &trace.spans {
        if let Some(p) = s.parent {
            prop_assert!(
                trace.spans.iter().any(|c| c.id == p),
                "span {} names a parent {} that does not exist",
                s.id.0,
                p.0
            );
        }
    }
    let batches = trace.batch_traces();
    prop_assert!(
        batches.len() == expect_batches,
        "every multi-op disclosure allocates exactly one batch id: \
         got {}, want {}",
        batches.len(),
        expect_batches
    );
    for t in batches {
        prop_assert!(t.is_batch());
        prop_assert!(
            trace.is_connected_tree(t),
            "batch {:?} must form one connected span tree",
            t
        );
        let layers = trace.layers_of(t);
        for need in LOCAL_LAYERS {
            prop_assert!(
                layers.contains(&need),
                "batch {:?} must cross {}; got {:?}",
                t,
                need,
                layers
            );
        }
    }
    Ok(())
}

fn single_daemon_trace(rounds: usize, batch_ops: usize) -> provscope::Trace {
    let mut sys = System::single_volume();
    let scope = sys.enable_tracing();
    disclose_rounds(&mut sys, VolumeId(1), rounds, batch_ops);
    let volumes = sys.volumes.clone();
    for (_, m, _) in &volumes {
        sys.kernel.dpapi_at(*m).unwrap().force_log_rotation();
    }
    let mut w = sys.spawn_waldo();
    w.set_scope(scope.clone());
    for (path, m, _) in &volumes {
        w.poll_volume(&mut sys.kernel, *m, path);
    }
    scope.snapshot()
}

fn cluster_trace(
    rounds: usize,
    batch_ops: usize,
    threaded: bool,
) -> (provscope::Trace, Vec<Vec<u8>>) {
    let mut sys = SystemBuilder::new(CostModel::default())
        .pass_volume("/v1", VolumeId(1))
        .pass_volume("/v2", VolumeId(2))
        .build();
    let scope = sys.enable_tracing();
    disclose_rounds(&mut sys, VolumeId(1), rounds, batch_ops);
    disclose_rounds(&mut sys, VolumeId(2), rounds, batch_ops);
    let volumes = sys.volumes.clone();
    for (_, m, _) in &volumes {
        sys.kernel.dpapi_at(*m).unwrap().force_log_rotation();
    }
    let mut cluster = if threaded {
        sys.spawn_cluster_threaded(2)
    } else {
        sys.spawn_cluster(2)
    };
    cluster.set_scope(scope.clone());
    cluster.poll_volumes(&mut sys.kernel, &volumes);
    let images = cluster
        .try_merged_store()
        .expect("disjoint members merge")
        .segment_images();
    (scope.snapshot(), images)
}

/// Interleaving-independent census of a span forest: how many spans
/// each (layer, name) pair produced, regardless of parentage.
/// Threaded runs may allocate span ids in any order and re-root the
/// coordinator-side durability spans, but may not grow or shrink
/// these counts relative to the sequential runtime.
fn span_census(
    trace: &provscope::Trace,
) -> std::collections::BTreeMap<(&'static str, String), usize> {
    let mut census = std::collections::BTreeMap::new();
    for s in &trace.spans {
        *census.entry((s.layer, s.name.clone())).or_insert(0) += 1;
    }
    census
}

/// The shape of the *batch* span trees only — (layer, name,
/// root-or-child) counts over spans bound to a batch trace. Unlike
/// the scope-wide census this does constrain parentage: batch trees
/// must keep the exact sequential structure on the threaded runtime.
/// (Non-batch spans are excluded because durability runs on the
/// coordinator thread there: `wal_persist` is a root span instead of
/// a `drain_logs` child. Batch trees never change shape.)
fn batch_shape(
    trace: &provscope::Trace,
) -> std::collections::BTreeMap<(&'static str, String, bool), usize> {
    let mut shape = std::collections::BTreeMap::new();
    for s in &trace.spans {
        if s.trace.is_some_and(|t| t.is_batch()) {
            *shape
                .entry((s.layer, s.name.clone(), s.parent.is_some()))
                .or_insert(0) += 1;
        }
    }
    shape
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Single daemon: every generated disclosure schedule produces a
    /// well-formed forest with one connected 4-layer tree per
    /// multi-op transaction, and none for bare syncs.
    #[test]
    fn single_daemon_span_trees(rounds in 1usize..4, batch_ops in 1usize..6) {
        let trace = single_daemon_trace(rounds, batch_ops);
        let expect = if batch_ops >= 2 { rounds } else { 0 };
        check_contract(&trace, expect)?;
    }

    /// 2-member cluster: two volumes' schedules interleave across
    /// members, yet every batch still resolves to exactly one
    /// connected tree — batch ids are volume-salted, so member
    /// fan-in cannot collide or split them.
    #[test]
    fn cluster_span_trees(rounds in 1usize..4, batch_ops in 2usize..6) {
        let (trace, _) = cluster_trace(rounds, batch_ops, false);
        check_contract(&trace, 2 * rounds)?;
    }

    /// Threaded 2-member cluster: members ingest on worker OS threads,
    /// yet the span contract is unchanged — every batch is still one
    /// connected tree crossing every local layer, with exactly the
    /// sequential runtime's tree shape; the scope-wide (layer, op)
    /// census matches span for span; and the merged store is
    /// byte-equal to the sequential run's. Only span *ids* (allocation
    /// order) and the parentage of coordinator-side durability spans
    /// may differ across runtimes.
    #[test]
    fn threaded_cluster_span_trees(rounds in 1usize..4, batch_ops in 2usize..6) {
        let (seq_trace, seq_images) = cluster_trace(rounds, batch_ops, false);
        let (thr_trace, thr_images) = cluster_trace(rounds, batch_ops, true);
        check_contract(&thr_trace, 2 * rounds)?;
        prop_assert!(
            span_census(&thr_trace) == span_census(&seq_trace),
            "threaded runtime changed the span census:\n{:?}\nvs sequential\n{:?}",
            span_census(&thr_trace),
            span_census(&seq_trace)
        );
        prop_assert!(
            batch_shape(&thr_trace) == batch_shape(&seq_trace),
            "threaded runtime changed a batch tree's shape:\n{:?}\nvs sequential\n{:?}",
            batch_shape(&thr_trace),
            batch_shape(&seq_trace)
        );
        prop_assert!(
            thr_images == seq_images,
            "threaded merged store diverged from sequential"
        );
    }
}
