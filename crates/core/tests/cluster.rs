//! The cluster fan-in tier, end to end: real volumes, real rotated
//! logs, real daemons — against the single-daemon reference.
//!
//! ProvMark's correctness oracle (arXiv:1909.11187) for scaled-out
//! provenance collection: the distributed collector must record *the
//! same graph* as the single-node reference. Three layers of it here:
//!
//! * a single daemon serving a multi-volume system (the reference
//!   baseline itself must work: interleaved disclosure across
//!   volumes, rotate + poll both);
//! * the differential: an N-member cluster's merged store is
//!   byte-equivalent to the single daemon's
//!   (`Store::segment_images`), and scatter-gather `Cluster::query`
//!   answers equal the single-store planned pipeline's for ancestry,
//!   descendant, attribute-equality and prefix queries;
//! * cluster-wide durability: per-member checkpoint + machine crash +
//!   `System::restart_cluster` round-trips every member's store.

use dpapi::{Attribute, Bundle, ProvenanceRecord, Value, VolumeId};
use passv2::{System, SystemBuilder};
use sim_os::cost::CostModel;
use waldo::{IngestStats, WaldoConfig};

fn test_cfg() -> WaldoConfig {
    WaldoConfig {
        shards: 8,
        ingest_batch: 16,
        ancestry_cache: 64,
        // Checkpoints driven manually where a test wants them.
        checkpoint_commits: 0,
        checkpoint_wal_bytes: 0,
        ..WaldoConfig::default()
    }
}

/// Builds an `nvol`-volume machine and runs a deterministic
/// interleaved workload on it: per-round writes on every volume,
/// cross-volume copies (ancestry spanning members), and a disclosure
/// transaction targeted at each volume in turn (DPAPI v2 group
/// frames, so the volume-salted batch-id space is exercised).
/// Deterministic: two calls produce bit-identical logs.
fn multi_volume_system(nvol: u32, rounds: usize) -> System {
    // A plain volume homes the daemons' databases (no mount at "/"
    // in this machine; a db home on a PASS volume would also work —
    // daemons are observation-exempt — but keeping it plain mirrors
    // a dedicated database disk).
    let mut b = SystemBuilder::new(CostModel::default())
        .waldo_config(test_cfg())
        .plain_volume("/db");
    for v in 1..=nvol {
        b = b.pass_volume(&format!("/v{v}"), VolumeId(v));
    }
    let mut sys = b.build();
    let pid = sys.kernel.spawn_init("driver");
    for round in 0..rounds {
        for v in 1..=nvol {
            sys.kernel
                .write_file(pid, &format!("/v{v}/r{round}.dat"), b"round payload")
                .unwrap();
        }
        // Cross-volume copy: /v1's file of this round flows into a
        // rotating target volume (when there is more than one).
        if nvol > 1 {
            let target = (round as u32 % (nvol - 1)) + 2;
            let data = sys
                .kernel
                .read_file(pid, &format!("/v1/r{round}.dat"))
                .unwrap();
            sys.kernel
                .write_file(pid, &format!("/v{target}/x{round}.dat"), &data)
                .unwrap();
        }
        // Interleaved disclosure: one batched transaction per volume,
        // round-robin, so group frames from different volumes land in
        // different logs with salted batch ids.
        let vol = VolumeId((round as u32 % nvol) + 1);
        let h = sys.kernel.pass_mkobj(pid, Some(vol)).unwrap();
        let mut txn = dpapi::Txn::new();
        txn.disclose(
            h,
            Bundle::single(
                h,
                ProvenanceRecord::new(Attribute::Type, Value::str("STAGE")),
            ),
        );
        txn.disclose(
            h,
            Bundle::single(
                h,
                ProvenanceRecord::new(
                    Attribute::Other("ROUND".into()),
                    Value::str(format!("{round}")),
                ),
            ),
        );
        txn.sync(h);
        sys.kernel.pass_commit(pid, txn).unwrap();
    }
    sys.kernel.exit(pid);
    // Close out every volume's active log so polling sees everything.
    for (_, m, _) in &sys.volumes {
        sys.kernel.dpapi_at(*m).unwrap().force_log_rotation();
    }
    sys
}

/// Satellite baseline: one daemon, two PASS volumes, interleaved
/// disclosure — rotate and poll both. This is the reference the
/// cluster differential below must match.
#[test]
fn single_daemon_serves_two_volumes() {
    let mut sys = multi_volume_system(2, 6);
    let mut w = sys.spawn_waldo();
    let volumes = sys.volumes.clone();
    let total: IngestStats = volumes
        .iter()
        .map(|(path, m, _)| w.poll_volume(&mut sys.kernel, *m, path))
        .sum();
    assert!(total.applied > 0);
    assert!(
        total.txns_committed >= 6,
        "each round's disclosure transaction must commit as a batch: {total:?}"
    );
    assert!(w.db.open_txns().is_empty(), "no orphaned transactions");
    // Both volumes' objects are present and queryable.
    for v in 1..=2u32 {
        let found = w.db.find_by_name(&format!("/v{v}/r0.dat"));
        assert_eq!(found.len(), 1, "volume {v}'s file must be indexed");
        assert_eq!(found[0].volume, VolumeId(v));
    }
    // The cross-volume copy's ancestry reaches back into volume 1.
    let dst = w.db.find_by_name("/v2/x0.dat");
    assert_eq!(dst.len(), 1);
    let cur = w.db.object(dst[0]).unwrap().current;
    let anc =
        w.db.ancestors(dpapi::ObjectRef::new(dst[0], dpapi::Version(cur)));
    let src = w.db.find_by_name("/v1/r0.dat");
    assert!(
        anc.iter().any(|r| r.pnode == src[0]),
        "/v2/x0.dat must descend from /v1/r0.dat: {anc:?}"
    );
    // Disclosed STAGE objects landed on both volumes.
    let stages = w.db.find_by_type("STAGE");
    assert!(stages.iter().any(|p| p.volume == VolumeId(1)));
    assert!(stages.iter().any(|p| p.volume == VolumeId(2)));
}

/// The acceptance differential: for the same multi-volume workload,
/// an N-member cluster's merged store is byte-equivalent to the
/// single-daemon store, and scatter-gather queries answer identically
/// to the single-store planned pipeline.
#[test]
fn cluster_fan_in_matches_single_daemon_reference() {
    const NVOL: u32 = 4;
    const ROUNDS: usize = 8;

    // Reference: one daemon ingests every volume.
    let mut ref_sys = multi_volume_system(NVOL, ROUNDS);
    let mut single = ref_sys.spawn_waldo();
    let volumes = ref_sys.volumes.clone();
    let ref_stats: IngestStats = volumes
        .iter()
        .map(|(path, m, _)| single.poll_volume(&mut ref_sys.kernel, *m, path))
        .sum();
    let ref_images = single.db.segment_images();

    for members in [1usize, 2, 4] {
        // An identically-built machine, ingested by an N-member
        // cluster instead.
        let mut sys = multi_volume_system(NVOL, ROUNDS);
        let mut cluster = sys.spawn_cluster(members);
        let volumes = sys.volumes.clone();
        let stats = cluster.poll_volumes(&mut sys.kernel, &volumes);
        assert_eq!(
            stats.applied, ref_stats.applied,
            "{members}-member cluster must apply the same entries"
        );
        assert_eq!(stats.txns_committed, ref_stats.txns_committed);

        // Routing sanity: every volume went to exactly the member the
        // table says, and the members jointly hold the whole graph.
        let table = cluster.routing_table(volumes.iter().map(|(_, _, v)| *v));
        for (vol, member) in &table {
            assert_eq!(*member, cluster.route(*vol));
            assert!(*member < members);
        }

        // Store-level equivalence: merged member stores are
        // byte-identical to the reference under the canonical images.
        let merged = cluster.merged_store();
        assert_eq!(
            merged.segment_images(),
            ref_images,
            "{members}-member merge must equal the single-daemon store"
        );

        // Read-path equivalence: scatter-gather planned queries equal
        // the single-store planned pipeline, row for row.
        let queries = [
            // Ancestry (the paper's §5.7 shape), crossing volumes.
            "select A from Provenance.obj as F F.input* as A \
             where F.name = '/v2/x0.dat'",
            // Descendants: inverse closure over scattered reverse edges.
            "select D from Provenance.obj as F F.input~+ as D \
             where F.name = '/v1/r0.dat'",
            // Attribute equality via the generalized attribute index.
            "select S from Provenance.stage as S where S.round = '3'",
            // Prefix scan over the name index.
            "select F from Provenance.file as F where F.name like '/v3/*'",
        ];
        for q in queries {
            let clustered = cluster.query(q).expect("cluster query");
            let reference = single.query(q).expect("single-store query");
            assert_eq!(
                clustered.result, reference.result,
                "{members}-member scatter-gather must match single-store \
                 results for: {q}"
            );
            assert!(
                !clustered.result.is_empty(),
                "differential query must not be vacuous: {q}"
            );
        }
        let ops = cluster.query_ops();
        assert_eq!(ops.queries, queries.len() as u64);
        // Pushdown must survive the scatter: every member answered
        // the sargable root bindings from its indexes.
        assert!(ops.planner.index_hits >= 3, "{:?}", ops.planner);
    }
}

/// Cluster-wide durability: per-member checkpoints, a machine crash,
/// and a same-size restart rebuild every member byte-identically —
/// with each member replaying only its routed volumes.
#[test]
fn cluster_checkpoint_and_restart_round_trip() {
    const MEMBERS: usize = 2;
    let mut sys = multi_volume_system(3, 6);
    let mut cluster = sys.spawn_cluster_durable(MEMBERS, "/db/cluster");
    let volumes = sys.volumes.clone();
    cluster.poll_volumes(&mut sys.kernel, &volumes);
    let published = cluster.checkpoint_all(&mut sys.kernel).unwrap();
    assert!(published >= 1, "at least one member had data to publish");
    let images: Vec<_> = cluster
        .members()
        .iter()
        .map(|m| m.db.segment_images())
        .collect();
    let merged_images = cluster.merged_store().segment_images();
    drop(cluster); // machine crash: memory gone, disks survive

    let restarted = sys.restart_cluster(MEMBERS, "/db/cluster");
    for (i, member) in restarted.members().iter().enumerate() {
        assert_eq!(
            member.db.segment_images(),
            images[i],
            "member {i} must restart to its pre-crash store"
        );
    }
    assert_eq!(restarted.merged_store().segment_images(), merged_images);
    // The restarted cluster still serves scatter-gather queries.
    let mut restarted = restarted;
    let out = restarted
        .query("select F from Provenance.file as F where F.name like '/v1/*'")
        .unwrap();
    assert!(!out.result.is_empty());
}

/// More daemons than volumes: surplus members stay empty but the
/// cluster remains correct (merge and queries unaffected).
#[test]
fn oversized_cluster_tolerates_idle_members() {
    let mut sys = multi_volume_system(2, 4);
    let mut cluster = sys.spawn_cluster(5);
    let volumes = sys.volumes.clone();
    let stats = cluster.poll_volumes(&mut sys.kernel, &volumes);
    assert!(stats.applied > 0);
    let populated = cluster
        .members()
        .iter()
        .filter(|m| m.db.object_count() > 0)
        .count();
    assert!(populated <= 2, "at most one member per volume is populated");
    let out = cluster
        .query("select F from Provenance.file as F where F.name = '/v1/r0.dat'")
        .unwrap();
    assert_eq!(out.result.len(), 1);
}

/// A member's durable home vanishing (disk swap, bad mount) must fail
/// the restart with a *member-indexed* typed error — not a panic, not
/// a silent cold start — and restoring the home brings the whole
/// cluster back byte-equal.
#[test]
fn cluster_restart_names_the_member_with_a_missing_db_dir() {
    const MEMBERS: usize = 2;
    let mut sys = multi_volume_system(3, 4);
    let mut cluster = sys.spawn_cluster_durable(MEMBERS, "/db/cluster");
    let volumes = sys.volumes.clone();
    cluster.poll_volumes(&mut sys.kernel, &volumes);
    cluster.checkpoint_all(&mut sys.kernel).unwrap();
    let images: Vec<_> = cluster
        .members()
        .iter()
        .map(|m| m.db.segment_images())
        .collect();
    drop(cluster); // machine crash

    let admin = sys.kernel.spawn_init("admin");
    sys.kernel
        .rename(admin, "/db/cluster/member1", "/db/cluster/lost")
        .unwrap();
    let err = sys.try_restart_cluster(MEMBERS, "/db/cluster").unwrap_err();
    assert_eq!(err.member, 1, "the error names the failed member");
    assert!(
        matches!(err.source, waldo::RestartError::MissingDbDir { .. }),
        "unexpected restart error: {err}"
    );
    assert!(err.to_string().contains("member 1"), "{err}");

    // Repair the mount and everyone comes back to the pre-crash bytes.
    sys.kernel
        .rename(admin, "/db/cluster/lost", "/db/cluster/member1")
        .unwrap();
    let restarted = sys.restart_cluster(MEMBERS, "/db/cluster");
    for (i, member) in restarted.members().iter().enumerate() {
        assert_eq!(
            member.db.segment_images(),
            images[i],
            "member {i} must restart to its pre-crash store after repair"
        );
    }
}

/// A member whose checkpoints are all unreadable is reported with its
/// index and a typed `NoReadableCheckpoint` — never downgraded to a
/// full-replay cold start — while the surviving member still restarts
/// byte-equal from its own untouched home.
#[test]
fn cluster_restart_names_the_member_with_corrupt_checkpoints() {
    const MEMBERS: usize = 2;
    let mut sys = multi_volume_system(3, 4);
    let mut cluster = sys.spawn_cluster_durable(MEMBERS, "/db/cluster");
    let volumes = sys.volumes.clone();
    cluster.poll_volumes(&mut sys.kernel, &volumes);
    cluster.checkpoint_all(&mut sys.kernel).unwrap();
    let images: Vec<_> = cluster
        .members()
        .iter()
        .map(|m| m.db.segment_images())
        .collect();
    drop(cluster); // machine crash

    // Volume 1's member is guaranteed to have published checkpoints;
    // scribble over every one of its manifests.
    let target = waldo::route_volume(VolumeId(1), MEMBERS);
    let admin = sys.kernel.spawn_init("admin");
    let ckpt_dir = format!("/db/cluster/member{target}/checkpoints");
    let mut corrupted = 0;
    for entry in sys.kernel.readdir(admin, &ckpt_dir).unwrap() {
        if entry.name.starts_with("manifest.") {
            sys.kernel
                .write_file(admin, &format!("{ckpt_dir}/{}", entry.name), b"garbage")
                .unwrap();
            corrupted += 1;
        }
    }
    assert!(corrupted >= 1, "the target member published no manifests");

    let err = sys.try_restart_cluster(MEMBERS, "/db/cluster").unwrap_err();
    assert_eq!(err.member, target, "the error names the corrupted member");
    assert!(
        matches!(
            err.source,
            waldo::RestartError::NoReadableCheckpoint { manifests } if manifests == corrupted
        ),
        "unexpected restart error: {err}"
    );

    // The survivor's home is untouched: restarted on its own routed
    // volumes, it is byte-equal to its pre-crash store.
    let other = 1 - target;
    let pid = sys.kernel.spawn_init("waldo");
    sys.pass.exempt(pid);
    let mounts: Vec<String> = volumes
        .iter()
        .filter(|(_, _, v)| waldo::route_volume(*v, MEMBERS) == other)
        .map(|(p, _, _)| p.clone())
        .collect();
    let refs: Vec<&str> = mounts.iter().map(String::as_str).collect();
    let survivor = waldo::Waldo::restart(
        pid,
        &mut sys.kernel,
        test_cfg(),
        &format!("/db/cluster/member{other}"),
        &refs,
    )
    .unwrap();
    assert_eq!(
        survivor.db.segment_images(),
        images[other],
        "the surviving member restarts byte-equal"
    );
}
