//! The `Dpapi` trait: the calls every provenance-aware layer
//! implements and/or invokes.
//!
//! Since DPAPI v2 the trait is built around *disclosure transactions*
//! ([`crate::Txn`]): [`Dpapi::pass_commit`] is the one required
//! disclosure entry point, and the classic single-shot calls
//! (`pass_write`, `pass_mkobj`, `pass_freeze`, `pass_reviveobj`,
//! `pass_sync`) are provided as default methods that commit a one-op
//! transaction — so every existing call site keeps working while
//! every layer gains batching for free.

use crate::error::{DpapiError, Result};
use crate::id::{ObjectRef, Pnode, Version, VolumeId};
use crate::record::Bundle;
use crate::txn::{DpapiOp, OpResult, Txn};

/// An opaque handle naming an open object at some layer.
///
/// Handles are layer-local, like file descriptors: the same raw value
/// means different things to libpass, to the kernel and to an NFS
/// client. Objects created with `pass_mkobj` are referenced like
/// files, with handles.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Handle(u64);

impl Handle {
    /// Wraps a raw handle value.
    pub const fn from_raw(raw: u64) -> Handle {
        Handle(raw)
    }

    /// Unwraps the raw handle value.
    pub const fn raw(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for Handle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// What kind of thing a handle refers to, reported by implementations
/// for diagnostics and by the distributor to decide persistence.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ObjectKind {
    /// A regular file on some volume.
    File,
    /// A process.
    Process,
    /// A pipe endpoint.
    Pipe,
    /// An application-defined object created via `pass_mkobj`
    /// (a browser session, a data set, a workflow operator, …).
    AppObject,
}

/// The result of a `pass_read`: the data plus the exact identity of
/// what was read.
///
/// Returning the pnode and version with the data is what lets higher
/// layers construct provenance records that accurately describe what
/// they read — the consistency requirement of the paper's §4.
#[derive(Clone, Debug)]
pub struct ReadResult {
    /// The bytes read.
    pub data: Vec<u8>,
    /// The identity (pnode and version) of the object as of the
    /// moment of the read.
    pub identity: ObjectRef,
}

/// The result of a `pass_write`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteResult {
    /// Bytes of data accepted (0 for provenance-only writes).
    pub written: usize,
    /// The identity of the object after the write.
    pub identity: ObjectRef,
}

/// The Disclosed Provenance API.
///
/// Components of PASSv2 communicate with each other via the DPAPI, and
/// so do different provenance systems across layer boundaries: a
/// provenance-aware application issues DPAPI calls to libpass, libpass
/// to the kernel observer, the observer (via analyzer and distributor)
/// to Lasagna or to the PA-NFS client, and the PA-NFS client to the
/// PA-NFS server. Layers that serve as substrates for higher layers
/// must *export* the DPAPI; layers that disclose provenance *invoke*
/// it.
pub trait Dpapi {
    /// Reads up to `len` bytes at `offset`, returning both the data
    /// and the exact identity (pnode, version) of what was read.
    ///
    /// Reads disclose nothing, so they are not part of the
    /// transaction op vector.
    fn pass_read(&mut self, h: Handle, offset: u64, len: usize) -> Result<ReadResult>;

    /// Commits a disclosure transaction: applies every operation of
    /// `txn`, in order, atomically — all of them or none.
    ///
    /// On success the returned vector is index-aligned with the
    /// transaction's operations. On failure the error is
    /// [`DpapiError::TxnAborted`], naming the index of the operation
    /// that failed validation, and no effect of the transaction is
    /// observable. See [`crate::txn`] for the full contract (atomicity,
    /// write-ahead-provenance ordering of data, handle scope).
    fn pass_commit(&mut self, txn: Txn) -> Result<Vec<OpResult>>;

    /// Writes `data` at `offset` together with a bundle of provenance
    /// records describing it, so data and provenance move together.
    ///
    /// Provenance-only writes pass an empty `data` slice; data-only
    /// writes pass an empty bundle (PASSv2 will still observe the
    /// write and generate implicit provenance at the OS layer).
    ///
    /// Default: a one-op transaction through [`Dpapi::pass_commit`].
    fn pass_write(
        &mut self,
        h: Handle,
        offset: u64,
        data: &[u8],
        bundle: Bundle,
    ) -> Result<WriteResult> {
        let mut txn = Txn::new();
        txn.write(h, offset, data.to_vec(), bundle);
        match single_op(self_commit(self, txn)?) {
            Some(OpResult::Written(w)) => Ok(w),
            other => Err(bad_shape("write", other)),
        }
    }

    /// Requests a new version of the object to break a dependency
    /// cycle. Versions are materialized at the bottom layer (the
    /// storage system), but cycle-breaking may occur at any layer.
    ///
    /// Default: a one-op transaction through [`Dpapi::pass_commit`].
    fn pass_freeze(&mut self, h: Handle) -> Result<Version> {
        let mut txn = Txn::new();
        txn.freeze(h);
        match single_op(self_commit(self, txn)?) {
            Some(OpResult::Frozen(v)) => Ok(v),
            other => Err(bad_shape("freeze", other)),
        }
    }

    /// Creates a provenance-only object: something that has identity
    /// and provenance but no file-system manifestation (a browser
    /// session, a data set, a program variable, a workflow operator).
    ///
    /// `volume_hint` selects the PASS volume that will hold the
    /// object's provenance if it never acquires a persistent ancestor;
    /// `None` lets the distributor choose.
    ///
    /// Default: a one-op transaction through [`Dpapi::pass_commit`].
    fn pass_mkobj(&mut self, volume_hint: Option<VolumeId>) -> Result<Handle> {
        let mut txn = Txn::new();
        txn.mkobj(volume_hint);
        match single_op(self_commit(self, txn)?) {
            Some(OpResult::Made(h)) => Ok(h),
            other => Err(bad_shape("mkobj", other)),
        }
    }

    /// Re-opens an object previously created via `pass_mkobj`, given
    /// its pnode and version (e.g. a browser session restored from
    /// disk after a restart).
    ///
    /// Default: a one-op transaction through [`Dpapi::pass_commit`].
    fn pass_reviveobj(&mut self, pnode: Pnode, version: Version) -> Result<Handle> {
        let mut txn = Txn::new();
        txn.revive(pnode, version);
        match single_op(self_commit(self, txn)?) {
            Some(OpResult::Revived(h)) => Ok(h),
            other => Err(bad_shape("revive", other)),
        }
    }

    /// Forces the provenance of an object created via `pass_mkobj` to
    /// persistent storage even if it is not (yet) in the ancestry of
    /// any persistent object.
    ///
    /// Default: a one-op transaction through [`Dpapi::pass_commit`].
    fn pass_sync(&mut self, h: Handle) -> Result<()> {
        let mut txn = Txn::new();
        txn.sync(h);
        match single_op(self_commit(self, txn)?) {
            Some(OpResult::Synced) => Ok(()),
            other => Err(bad_shape("sync", other)),
        }
    }

    /// Closes a handle obtained from this layer. Not one of the six
    /// paper calls (the paper reuses `close`), but required here since
    /// the simulation has no ambient process context.
    fn pass_close(&mut self, h: Handle) -> Result<()>;
}

/// Commits through the trait object, unwrapping a single-op abort to
/// its cause so the one-op defaults surface the same error a direct
/// call would have.
fn self_commit<D: Dpapi + ?Sized>(layer: &mut D, txn: Txn) -> Result<Vec<OpResult>> {
    layer
        .pass_commit(txn)
        .map_err(DpapiError::into_single_op_cause)
}

fn single_op(mut results: Vec<OpResult>) -> Option<OpResult> {
    if results.len() == 1 {
        results.pop()
    } else {
        None
    }
}

fn bad_shape(op: &'static str, got: Option<OpResult>) -> DpapiError {
    DpapiError::Inconsistent(format!(
        "pass_commit returned a mismatched result for a single {op} op: {got:?}"
    ))
}

/// Executes one operation of a transaction against a layer's
/// single-shot entry points.
///
/// This is the building block for layers that implement the v1 calls
/// natively and want `pass_commit` to fall back to sequential
/// execution (no atomicity beyond abort-on-first-failure); it is also
/// used by test doubles. Real substrates (Lasagna, the PA-NFS client,
/// the kernel module) override `pass_commit` with genuinely atomic,
/// group-framed implementations instead.
pub fn run_op_single_shot<D: Dpapi + ?Sized>(layer: &mut D, op: DpapiOp) -> Result<OpResult> {
    match op {
        DpapiOp::Write {
            handle,
            offset,
            data,
            bundle,
        } => Ok(OpResult::Written(
            layer.pass_write(handle, offset, &data, bundle)?,
        )),
        DpapiOp::Mkobj { volume_hint } => Ok(OpResult::Made(layer.pass_mkobj(volume_hint)?)),
        DpapiOp::Freeze { handle } => Ok(OpResult::Frozen(layer.pass_freeze(handle)?)),
        DpapiOp::Revive { pnode, version } => {
            Ok(OpResult::Revived(layer.pass_reviveobj(pnode, version)?))
        }
        DpapiOp::Sync { handle } => {
            layer.pass_sync(handle)?;
            Ok(OpResult::Synced)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::DpapiError;
    use crate::record::{Bundle, ProvenanceRecord};

    /// A minimal in-memory DPAPI implementation used to validate that
    /// the trait is object-safe and usable through `dyn`.
    struct MiniLayer {
        store: Vec<(Vec<u8>, Vec<ProvenanceRecord>)>,
        alloc: crate::PnodeAllocator,
        pnodes: Vec<Pnode>,
    }

    impl MiniLayer {
        fn new() -> Self {
            MiniLayer {
                store: Vec::new(),
                alloc: crate::PnodeAllocator::new(VolumeId(1)),
                pnodes: Vec::new(),
            }
        }
    }

    impl Dpapi for MiniLayer {
        fn pass_commit(&mut self, txn: crate::Txn) -> Result<Vec<crate::OpResult>> {
            let ops = txn.into_ops();
            let mut out = Vec::with_capacity(ops.len());
            for (i, op) in ops.into_iter().enumerate() {
                match crate::api::run_op_single_shot(self, op) {
                    Ok(r) => out.push(r),
                    Err(e) => return Err(DpapiError::aborted_at(i, e)),
                }
            }
            Ok(out)
        }

        fn pass_read(&mut self, h: Handle, _o: u64, _l: usize) -> Result<ReadResult> {
            let idx = h.raw() as usize;
            let (data, _) = self.store.get(idx).ok_or(DpapiError::InvalidHandle)?;
            Ok(ReadResult {
                data: data.clone(),
                identity: ObjectRef::new(self.pnodes[idx], Version(0)),
            })
        }

        fn pass_write(
            &mut self,
            h: Handle,
            _o: u64,
            data: &[u8],
            bundle: Bundle,
        ) -> Result<WriteResult> {
            let idx = h.raw() as usize;
            let entry = self.store.get_mut(idx).ok_or(DpapiError::InvalidHandle)?;
            entry.0.extend_from_slice(data);
            entry.1.extend(bundle.iter().map(|(_, r)| r.clone()));
            Ok(WriteResult {
                written: data.len(),
                identity: ObjectRef::new(self.pnodes[idx], Version(0)),
            })
        }

        fn pass_freeze(&mut self, _h: Handle) -> Result<Version> {
            Ok(Version(1))
        }

        fn pass_mkobj(&mut self, _v: Option<VolumeId>) -> Result<Handle> {
            let h = Handle::from_raw(self.store.len() as u64);
            self.store.push((Vec::new(), Vec::new()));
            self.pnodes.push(self.alloc.allocate());
            Ok(h)
        }

        fn pass_reviveobj(&mut self, pnode: Pnode, _v: Version) -> Result<Handle> {
            self.pnodes
                .iter()
                .position(|p| *p == pnode)
                .map(|i| Handle::from_raw(i as u64))
                .ok_or(DpapiError::UnknownPnode(pnode))
        }

        fn pass_sync(&mut self, h: Handle) -> Result<()> {
            if (h.raw() as usize) < self.store.len() {
                Ok(())
            } else {
                Err(DpapiError::InvalidHandle)
            }
        }

        fn pass_close(&mut self, _h: Handle) -> Result<()> {
            Ok(())
        }
    }

    #[test]
    fn trait_is_object_safe_and_roundtrips() {
        let mut layer: Box<dyn Dpapi> = Box::new(MiniLayer::new());
        let h = layer.pass_mkobj(None).unwrap();
        let bundle = Bundle::single(
            h,
            ProvenanceRecord::new(crate::Attribute::Type, crate::Value::str("SESSION")),
        );
        let w = layer.pass_write(h, 0, b"hello", bundle).unwrap();
        assert_eq!(w.written, 5);
        let r = layer.pass_read(h, 0, 5).unwrap();
        assert_eq!(r.data, b"hello");
        assert_eq!(r.identity, w.identity);
    }

    #[test]
    fn reviveobj_finds_previously_made_object() {
        let mut layer = MiniLayer::new();
        let h = layer.pass_mkobj(None).unwrap();
        let id = layer.pass_read(h, 0, 0).unwrap().identity;
        let h2 = layer.pass_reviveobj(id.pnode, id.version).unwrap();
        assert_eq!(h, h2);
        let missing = Pnode::new(VolumeId(1), 999);
        assert_eq!(
            layer.pass_reviveobj(missing, Version(0)),
            Err(DpapiError::UnknownPnode(missing))
        );
    }

    #[test]
    fn handle_display() {
        assert_eq!(Handle::from_raw(42).to_string(), "h42");
    }

    #[test]
    fn multi_op_transaction_returns_aligned_results() {
        let mut layer = MiniLayer::new();
        let h = layer.pass_mkobj(None).unwrap();
        let mut txn = crate::Txn::new();
        txn.write(
            h,
            0,
            b"abc".to_vec(),
            Bundle::single(
                h,
                ProvenanceRecord::new(crate::Attribute::Type, crate::Value::str("SESSION")),
            ),
        )
        .freeze(h)
        .sync(h);
        let results = layer.pass_commit(txn).unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].as_written().unwrap().written, 3);
        assert_eq!(results[1].as_version(), Some(Version(1)));
        assert_eq!(results[2], crate::OpResult::Synced);
    }

    #[test]
    fn aborted_transaction_names_the_failing_op() {
        let mut layer = MiniLayer::new();
        let h = layer.pass_mkobj(None).unwrap();
        let bogus = Handle::from_raw(999);
        let mut txn = crate::Txn::new();
        txn.freeze(h).sync(bogus);
        let err = layer.pass_commit(txn).unwrap_err();
        assert_eq!(
            err,
            DpapiError::aborted_at(1, DpapiError::InvalidHandle),
            "the abort must carry the failing op's index"
        );
    }
}
