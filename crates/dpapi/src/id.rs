//! Object identity: volumes, pnode numbers and versions.
//!
//! A *pnode number* is a unique ID assigned to an object at creation
//! time. It is a handle for the object's provenance, akin to an inode
//! number, but never recycled. Pnode numbers are allocated per PASS
//! volume; a fully-qualified identity is the ([`VolumeId`], pnode)
//! pair, packaged here as [`Pnode`].

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifies one PASS-enabled volume (a mounted provenance-aware file
/// system, local or remote).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VolumeId(pub u32);

impl fmt::Display for VolumeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vol{}", self.0)
    }
}

/// A pnode number: the never-recycled provenance identity of an object.
///
/// Unlike an inode number, a pnode number is never reused, so a pnode
/// observed in a provenance record always denotes the same object even
/// after that object is deleted.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pnode {
    /// Volume on which the object's provenance is stored.
    pub volume: VolumeId,
    /// Per-volume serial number, starting at 1. Zero is reserved and
    /// never allocated.
    pub number: u64,
}

impl Pnode {
    /// Creates a pnode identity from its parts.
    pub const fn new(volume: VolumeId, number: u64) -> Self {
        Pnode { volume, number }
    }

    /// The reserved null pnode, used as an "unassigned" sentinel.
    pub const NULL: Pnode = Pnode {
        volume: VolumeId(0),
        number: 0,
    };

    /// Returns true for the reserved null pnode.
    pub fn is_null(&self) -> bool {
        self.number == 0
    }
}

impl fmt::Display for Pnode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:p{}", self.volume, self.number)
    }
}

impl fmt::Debug for Pnode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pnode({self})")
    }
}

/// A version number of an object.
///
/// Versions begin at 0 on creation and increase monotonically; a
/// `pass_freeze` bumps the version to break (avoid) dependency cycles.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct Version(pub u32);

impl Version {
    /// The initial version of a freshly created object.
    pub const INITIAL: Version = Version(0);

    /// Returns the next version.
    pub fn next(self) -> Version {
        Version(self.0 + 1)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A fully-qualified reference to one version of one object.
///
/// This is the currency of cross-references in provenance records: a
/// dependency edge names the exact `(pnode, version)` that was read,
/// which is what `pass_read` returns alongside the data.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ObjectRef {
    /// The referenced object.
    pub pnode: Pnode,
    /// The referenced version of that object.
    pub version: Version,
}

impl ObjectRef {
    /// Creates a reference from its parts.
    pub const fn new(pnode: Pnode, version: Version) -> Self {
        ObjectRef { pnode, version }
    }
}

impl fmt::Display for ObjectRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.pnode, self.version)
    }
}

/// Allocates pnode numbers for one volume.
///
/// Pnode numbers are never recycled, so the allocator is a plain
/// monotonic counter. It is thread-safe: Waldo, the kernel and
/// applications may allocate concurrently.
#[derive(Debug)]
pub struct PnodeAllocator {
    volume: VolumeId,
    next: AtomicU64,
}

impl PnodeAllocator {
    /// Creates an allocator for `volume` starting at pnode number 1.
    pub fn new(volume: VolumeId) -> Self {
        PnodeAllocator {
            volume,
            next: AtomicU64::new(1),
        }
    }

    /// Creates an allocator resuming at `next` (used after recovery).
    pub fn resume(volume: VolumeId, next: u64) -> Self {
        PnodeAllocator {
            volume,
            next: AtomicU64::new(next.max(1)),
        }
    }

    /// Returns the volume this allocator serves.
    pub fn volume(&self) -> VolumeId {
        self.volume
    }

    /// Allocates the next pnode number.
    pub fn allocate(&self) -> Pnode {
        let n = self.next.fetch_add(1, Ordering::Relaxed);
        Pnode::new(self.volume, n)
    }

    /// Returns the next number that would be allocated, without
    /// allocating it. Used when checkpointing allocator state.
    pub fn peek(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn pnode_display_and_null() {
        let p = Pnode::new(VolumeId(3), 17);
        assert_eq!(p.to_string(), "vol3:p17");
        assert!(!p.is_null());
        assert!(Pnode::NULL.is_null());
    }

    #[test]
    fn version_ordering_and_next() {
        let v = Version::INITIAL;
        assert_eq!(v.next(), Version(1));
        assert!(Version(2) > Version(1));
        assert_eq!(Version::default(), Version::INITIAL);
    }

    #[test]
    fn allocator_is_monotonic_and_never_recycles() {
        let alloc = PnodeAllocator::new(VolumeId(1));
        let mut seen = HashSet::new();
        for _ in 0..1000 {
            let p = alloc.allocate();
            assert_eq!(p.volume, VolumeId(1));
            assert!(p.number >= 1);
            assert!(seen.insert(p), "pnode number recycled: {p}");
        }
        assert_eq!(alloc.peek(), 1001);
    }

    #[test]
    fn allocator_resume_skips_allocated_range() {
        let alloc = PnodeAllocator::resume(VolumeId(2), 500);
        assert_eq!(alloc.allocate().number, 500);
        assert_eq!(alloc.allocate().number, 501);
        // Resuming at 0 still never yields the null pnode.
        let alloc = PnodeAllocator::resume(VolumeId(2), 0);
        assert_eq!(alloc.allocate().number, 1);
    }

    #[test]
    fn allocator_is_thread_safe() {
        let alloc = std::sync::Arc::new(PnodeAllocator::new(VolumeId(9)));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let a = alloc.clone();
            handles.push(std::thread::spawn(move || {
                (0..250).map(|_| a.allocate().number).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 1000, "duplicate pnode allocated across threads");
    }

    #[test]
    fn object_ref_display() {
        let r = ObjectRef::new(Pnode::new(VolumeId(1), 2), Version(3));
        assert_eq!(r.to_string(), "vol1:p2@v3");
    }
}
