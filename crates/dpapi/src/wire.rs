//! Binary wire format for provenance records.
//!
//! Both the Lasagna provenance log and the PA-NFS protocol carry
//! records in this encoding, which keeps the client and server
//! analyzer input/output representations identical — the property
//! that lets analyzer instances stack (paper §6.1.1).
//!
//! The format is a simple length-prefixed TLV scheme, little-endian
//! throughout:
//!
//! ```text
//! record   := attr value
//! attr     := u16 len, len bytes of UTF-8
//! value    := tag u8, payload
//! payload  := Int: i64 | Str: u32 len + bytes | Bool: u8
//!           | Bytes: u32 len + bytes | StrList: u32 n + n * (u32 len + bytes)
//!           | Xref: u32 volume, u64 pnode, u32 version
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{DpapiError, Result};
use crate::id::{ObjectRef, Pnode, Version, VolumeId};
use crate::record::{Attribute, ProvenanceRecord, Value};

const TAG_INT: u8 = 0;
const TAG_STR: u8 = 1;
const TAG_BOOL: u8 = 2;
const TAG_BYTES: u8 = 3;
const TAG_STRLIST: u8 = 4;
const TAG_XREF: u8 = 5;

/// Encodes an [`ObjectRef`] into `buf`.
pub fn put_object_ref(buf: &mut BytesMut, r: ObjectRef) {
    buf.put_u32_le(r.pnode.volume.0);
    buf.put_u64_le(r.pnode.number);
    buf.put_u32_le(r.version.0);
}

/// Decodes an [`ObjectRef`] from `buf`.
pub fn get_object_ref(buf: &mut Bytes) -> Result<ObjectRef> {
    if buf.remaining() < 16 {
        return Err(DpapiError::Malformed("truncated object ref".into()));
    }
    let volume = VolumeId(buf.get_u32_le());
    let number = buf.get_u64_le();
    let version = Version(buf.get_u32_le());
    Ok(ObjectRef::new(Pnode::new(volume, number), version))
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String> {
    if buf.remaining() < 4 {
        return Err(DpapiError::Malformed("truncated string length".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(DpapiError::Malformed("truncated string body".into()));
    }
    let raw = buf.split_to(len);
    String::from_utf8(raw.to_vec())
        .map_err(|_| DpapiError::Malformed("invalid UTF-8 in record".into()))
}

/// Checks that `rec` is representable in the wire encoding: the
/// attribute name must fit the `u16` length prefix and every variable
/// payload its `u32` prefix. Layers validate disclosed records up
/// front so a malformed record aborts a whole transaction before
/// anything is logged.
pub fn validate_record(rec: &ProvenanceRecord) -> Result<()> {
    let name = rec.attribute.as_str();
    if name.len() > u16::MAX as usize {
        return Err(DpapiError::Malformed(format!(
            "attribute name of {} bytes exceeds the u16 wire limit",
            name.len()
        )));
    }
    let payload_len = match &rec.value {
        Value::Str(s) => s.len(),
        Value::Bytes(b) => b.len(),
        Value::StrList(l) => {
            if l.len() > u32::MAX as usize {
                return Err(DpapiError::Malformed(format!(
                    "string list of {} entries exceeds the u32 wire limit",
                    l.len()
                )));
            }
            l.iter().map(String::len).max().unwrap_or(0)
        }
        Value::Int(_) | Value::Bool(_) | Value::Xref(_) => 0,
    };
    if payload_len > u32::MAX as usize {
        return Err(DpapiError::Malformed(format!(
            "value payload of {payload_len} bytes exceeds the u32 wire limit"
        )));
    }
    Ok(())
}

/// Encodes one provenance record into `buf`.
///
/// Returns [`DpapiError::Malformed`] — writing nothing — for records
/// whose attribute name or payload cannot be represented (the name
/// length is a `u16` on the wire; it used to be silently truncated).
pub fn put_record(buf: &mut BytesMut, rec: &ProvenanceRecord) -> Result<()> {
    validate_record(rec)?;
    let name = rec.attribute.as_str();
    buf.put_u16_le(name.len() as u16);
    buf.put_slice(name.as_bytes());
    match &rec.value {
        Value::Int(i) => {
            buf.put_u8(TAG_INT);
            buf.put_i64_le(*i);
        }
        Value::Str(s) => {
            buf.put_u8(TAG_STR);
            put_str(buf, s);
        }
        Value::Bool(b) => {
            buf.put_u8(TAG_BOOL);
            buf.put_u8(u8::from(*b));
        }
        Value::Bytes(b) => {
            buf.put_u8(TAG_BYTES);
            buf.put_u32_le(b.len() as u32);
            buf.put_slice(b);
        }
        Value::StrList(l) => {
            buf.put_u8(TAG_STRLIST);
            buf.put_u32_le(l.len() as u32);
            for s in l {
                put_str(buf, s);
            }
        }
        Value::Xref(r) => {
            buf.put_u8(TAG_XREF);
            put_object_ref(buf, *r);
        }
    }
    Ok(())
}

/// Decodes one provenance record from `buf`.
pub fn get_record(buf: &mut Bytes) -> Result<ProvenanceRecord> {
    if buf.remaining() < 2 {
        return Err(DpapiError::Malformed("truncated attribute length".into()));
    }
    let name_len = buf.get_u16_le() as usize;
    if buf.remaining() < name_len {
        return Err(DpapiError::Malformed("truncated attribute name".into()));
    }
    let name_raw = buf.split_to(name_len);
    let name = std::str::from_utf8(&name_raw)
        .map_err(|_| DpapiError::Malformed("invalid UTF-8 attribute".into()))?;
    let attribute = Attribute::from_name(name);
    if buf.remaining() < 1 {
        return Err(DpapiError::Malformed("truncated value tag".into()));
    }
    let value = match buf.get_u8() {
        TAG_INT => {
            if buf.remaining() < 8 {
                return Err(DpapiError::Malformed("truncated int".into()));
            }
            Value::Int(buf.get_i64_le())
        }
        TAG_STR => Value::Str(get_str(buf)?),
        TAG_BOOL => {
            if buf.remaining() < 1 {
                return Err(DpapiError::Malformed("truncated bool".into()));
            }
            Value::Bool(buf.get_u8() != 0)
        }
        TAG_BYTES => {
            if buf.remaining() < 4 {
                return Err(DpapiError::Malformed("truncated bytes length".into()));
            }
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < len {
                return Err(DpapiError::Malformed("truncated bytes body".into()));
            }
            Value::Bytes(buf.split_to(len).to_vec())
        }
        TAG_STRLIST => {
            if buf.remaining() < 4 {
                return Err(DpapiError::Malformed("truncated list length".into()));
            }
            let n = buf.get_u32_le() as usize;
            let mut l = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                l.push(get_str(buf)?);
            }
            Value::StrList(l)
        }
        TAG_XREF => Value::Xref(get_object_ref(buf)?),
        tag => {
            return Err(DpapiError::Malformed(format!("unknown value tag {tag}")));
        }
    };
    Ok(ProvenanceRecord { attribute, value })
}

/// Serialized size of one record in this encoding.
pub fn record_wire_size(rec: &ProvenanceRecord) -> usize {
    let name = rec.attribute.as_str().len();
    let value = match &rec.value {
        Value::Int(_) => 8,
        Value::Str(s) => 4 + s.len(),
        Value::Bool(_) => 1,
        Value::Bytes(b) => 4 + b.len(),
        Value::StrList(l) => 4 + l.iter().map(|s| 4 + s.len()).sum::<usize>(),
        Value::Xref(_) => 16,
    };
    2 + name + 1 + value
}

/// Encodes a record to a standalone byte vector.
pub fn encode_record(rec: &ProvenanceRecord) -> Result<Vec<u8>> {
    let mut buf = BytesMut::with_capacity(record_wire_size(rec));
    put_record(&mut buf, rec)?;
    Ok(buf.to_vec())
}

/// Decodes a record from a standalone byte slice, requiring the slice
/// to be fully consumed.
pub fn decode_record(data: &[u8]) -> Result<ProvenanceRecord> {
    let mut buf = Bytes::copy_from_slice(data);
    let rec = get_record(&mut buf)?;
    if buf.has_remaining() {
        return Err(DpapiError::Malformed("trailing bytes after record".into()));
    }
    Ok(rec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rec: ProvenanceRecord) {
        let enc = encode_record(&rec).unwrap();
        assert_eq!(enc.len(), record_wire_size(&rec), "size mismatch: {rec}");
        let dec = decode_record(&enc).unwrap();
        assert_eq!(dec, rec);
    }

    #[test]
    fn roundtrip_every_value_kind() {
        roundtrip(ProvenanceRecord::new(Attribute::Type, Value::str("FILE")));
        roundtrip(ProvenanceRecord::new(Attribute::Input, Value::Int(-42)));
        roundtrip(ProvenanceRecord::new(
            Attribute::Other("FLAG".into()),
            Value::Bool(true),
        ));
        roundtrip(ProvenanceRecord::new(
            Attribute::DataDigest,
            Value::Bytes(vec![0xde, 0xad, 0xbe, 0xef]),
        ));
        roundtrip(ProvenanceRecord::new(
            Attribute::Argv,
            Value::StrList(vec!["ls".into(), "-l".into(), "".into()]),
        ));
        roundtrip(ProvenanceRecord::input(ObjectRef::new(
            Pnode::new(VolumeId(7), 123456789),
            Version(42),
        )));
    }

    #[test]
    fn oversize_attribute_name_is_rejected_not_truncated() {
        // Regression: `name.len() as u16` used to silently truncate
        // names longer than u16::MAX, producing a frame whose length
        // prefix disagreed with its body.
        let long = "A".repeat(u16::MAX as usize + 1);
        let rec = ProvenanceRecord::new(Attribute::Other(long), Value::Int(1));
        let mut buf = BytesMut::new();
        let err = put_record(&mut buf, &rec).unwrap_err();
        assert!(matches!(err, DpapiError::Malformed(_)), "got {err:?}");
        assert!(buf.is_empty(), "a rejected record must write nothing");
        assert!(encode_record(&rec).is_err());
        // The boundary case still encodes and round-trips.
        let edge = ProvenanceRecord::new(
            Attribute::Other("B".repeat(u16::MAX as usize)),
            Value::Int(2),
        );
        roundtrip(edge);
    }

    #[test]
    fn decode_rejects_truncation_at_every_byte() {
        let rec = ProvenanceRecord::new(Attribute::Argv, Value::StrList(vec!["a".into()]));
        let enc = encode_record(&rec).unwrap();
        for cut in 0..enc.len() {
            assert!(
                decode_record(&enc[..cut]).is_err(),
                "decode of {cut}-byte prefix unexpectedly succeeded"
            );
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut enc =
            encode_record(&ProvenanceRecord::new(Attribute::Type, Value::Int(1))).unwrap();
        enc.push(0xff);
        assert!(decode_record(&enc).is_err());
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        let mut buf = BytesMut::new();
        buf.put_u16_le(4);
        buf.put_slice(b"TYPE");
        buf.put_u8(99);
        assert!(decode_record(&buf).is_err());
    }

    #[test]
    fn multiple_records_stream_from_one_buffer() {
        let recs = vec![
            ProvenanceRecord::new(Attribute::Name, Value::str("x")),
            ProvenanceRecord::new(Attribute::Type, Value::str("PROC")),
            ProvenanceRecord::freeze(Version(2)),
        ];
        let mut buf = BytesMut::new();
        for r in &recs {
            put_record(&mut buf, r).unwrap();
        }
        let mut stream = buf.freeze();
        let mut out = Vec::new();
        while stream.has_remaining() {
            out.push(get_record(&mut stream).unwrap());
        }
        assert_eq!(out, recs);
    }
}
