//! Provenance records and bundles.
//!
//! A *provenance record* is a structure containing a single unit of
//! provenance: an attribute/value pair, where the attribute is an
//! identifier and the value might be a plain value (integer, string,
//! …) or a cross-reference to another object. Records may carry
//! ancestry information, records of data flows, or identity
//! information.
//!
//! A *bundle* is an array of object handles and records, each
//! potentially describing a different object. The complete provenance
//! for a block of data written to a file might involve many objects
//! (e.g. several processes and pipes in a shell pipeline); a bundle
//! lets all of them travel with the data in a single `pass_write`.

use std::fmt;

use crate::api::Handle;
use crate::id::ObjectRef;

/// The attribute of a provenance record.
///
/// The well-known attributes cover the record vocabulary of Table 1 of
/// the paper (PA-NFS transaction records, PA-Kepler operator records,
/// PA-links session records, PA-Python function records) plus the
/// system-level attributes PASSv2 itself generates. Applications may
/// introduce their own attributes with [`Attribute::Other`].
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Attribute {
    /// Ancestry: the subject depends on the referenced object.
    Input,
    /// The type of the object (e.g. `FILE`, `PROC`, `SESSION`,
    /// `OPERATOR`, `FUNCTION`).
    Type,
    /// The name of the object (file name, operator name, method name).
    Name,
    /// Process arguments, recorded at `execve` time.
    Argv,
    /// Process environment, recorded at `execve` time.
    Env,
    /// A freeze record: the object's version was bumped to break a
    /// potential cycle. Sent in `pass_write` so ordering with respect
    /// to data writes is preserved.
    Freeze,
    /// Beginning record of a PA-NFS provenance transaction; the value
    /// is the transaction id.
    BeginTxn,
    /// Terminating record of a PA-NFS provenance transaction; the
    /// value is the transaction id.
    EndTxn,
    /// PA-Kepler: operator parameters (e.g. `fileName`,
    /// `confirmOverwrite`).
    Params,
    /// PA-links: dependency between a browsing session and a URL the
    /// user visited.
    VisitedUrl,
    /// PA-links: the URL a downloaded file itself came from.
    FileUrl,
    /// PA-links: the URL the user was viewing when the download was
    /// initiated.
    CurrentUrl,
    /// MD5 digest of the data a record batch describes; used by the
    /// write-ahead-provenance protocol during recovery.
    DataDigest,
    /// An application-specific attribute.
    Other(String),
}

impl Attribute {
    /// Canonical wire name of the attribute, matching the paper's
    /// record-type spelling where one exists.
    pub fn as_str(&self) -> &str {
        match self {
            Attribute::Input => "INPUT",
            Attribute::Type => "TYPE",
            Attribute::Name => "NAME",
            Attribute::Argv => "ARGV",
            Attribute::Env => "ENV",
            Attribute::Freeze => "FREEZE",
            Attribute::BeginTxn => "BEGINTXN",
            Attribute::EndTxn => "ENDTXN",
            Attribute::Params => "PARAMS",
            Attribute::VisitedUrl => "VISITED_URL",
            Attribute::FileUrl => "FILE_URL",
            Attribute::CurrentUrl => "CURRENT_URL",
            Attribute::DataDigest => "DATA_DIGEST",
            Attribute::Other(s) => s,
        }
    }

    /// Parses a wire name back into an attribute.
    pub fn from_name(name: &str) -> Attribute {
        match name {
            "INPUT" => Attribute::Input,
            "TYPE" => Attribute::Type,
            "NAME" => Attribute::Name,
            "ARGV" => Attribute::Argv,
            "ENV" => Attribute::Env,
            "FREEZE" => Attribute::Freeze,
            "BEGINTXN" => Attribute::BeginTxn,
            "ENDTXN" => Attribute::EndTxn,
            "PARAMS" => Attribute::Params,
            "VISITED_URL" => Attribute::VisitedUrl,
            "FILE_URL" => Attribute::FileUrl,
            "CURRENT_URL" => Attribute::CurrentUrl,
            "DATA_DIGEST" => Attribute::DataDigest,
            other => Attribute::Other(other.to_string()),
        }
    }

    /// True if this attribute expresses ancestry (an edge in the
    /// provenance graph) rather than a scalar annotation.
    pub fn is_ancestry(&self) -> bool {
        matches!(
            self,
            Attribute::Input | Attribute::VisitedUrl | Attribute::FileUrl | Attribute::CurrentUrl
        )
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The value of a provenance record.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Value {
    /// A signed integer.
    Int(i64),
    /// A UTF-8 string.
    Str(String),
    /// A boolean. (Lorel lacked booleans; PQL requires them.)
    Bool(bool),
    /// Raw bytes (e.g. an MD5 digest).
    Bytes(Vec<u8>),
    /// A list of strings (e.g. `argv`).
    StrList(Vec<String>),
    /// A cross-reference to a specific version of another object.
    Xref(ObjectRef),
}

impl Value {
    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Convenience constructor for a cross-reference value.
    pub fn xref(r: ObjectRef) -> Value {
        Value::Xref(r)
    }

    /// Returns the cross-reference if this value is one.
    pub fn as_xref(&self) -> Option<ObjectRef> {
        match self {
            Value::Xref(r) => Some(*r),
            _ => None,
        }
    }

    /// Returns the string if this value is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer if this value is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Bytes(b) => {
                for byte in b {
                    write!(f, "{byte:02x}")?;
                }
                Ok(())
            }
            Value::StrList(l) => write!(f, "{l:?}"),
            Value::Xref(r) => write!(f, "{r}"),
        }
    }
}

/// A single unit of provenance: one attribute/value pair.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProvenanceRecord {
    /// The attribute (identifier) of this unit of provenance.
    pub attribute: Attribute,
    /// The value: a plain value or a cross-reference.
    pub value: Value,
}

impl ProvenanceRecord {
    /// Creates a record from its parts.
    pub fn new(attribute: Attribute, value: Value) -> Self {
        ProvenanceRecord { attribute, value }
    }

    /// Creates an `INPUT` ancestry record referencing `ancestor`.
    pub fn input(ancestor: ObjectRef) -> Self {
        ProvenanceRecord::new(Attribute::Input, Value::Xref(ancestor))
    }

    /// Creates a `FREEZE` record for the given new version number.
    pub fn freeze(new_version: crate::Version) -> Self {
        ProvenanceRecord::new(Attribute::Freeze, Value::Int(new_version.0 as i64))
    }
}

impl fmt::Display for ProvenanceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.attribute, self.value)
    }
}

/// One entry of a bundle: the handle of the object being described and
/// the records that describe it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BundleEntry {
    /// The object the records describe.
    pub handle: Handle,
    /// The records describing that object.
    pub records: Vec<ProvenanceRecord>,
}

/// A bundle of provenance: an array of object handles and records,
/// each potentially describing a different object.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Bundle {
    entries: Vec<BundleEntry>,
}

impl Bundle {
    /// Creates an empty bundle.
    pub fn new() -> Self {
        Bundle::default()
    }

    /// Creates a bundle with a single record describing `handle`.
    pub fn single(handle: Handle, record: ProvenanceRecord) -> Self {
        let mut b = Bundle::new();
        b.push(handle, record);
        b
    }

    /// Appends `record` for `handle`, coalescing with an existing
    /// entry for the same handle if one is already present.
    pub fn push(&mut self, handle: Handle, record: ProvenanceRecord) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.handle == handle) {
            e.records.push(record);
        } else {
            self.entries.push(BundleEntry {
                handle,
                records: vec![record],
            });
        }
    }

    /// Appends every record of `other` into this bundle.
    pub fn merge(&mut self, other: Bundle) {
        for e in other.entries {
            for r in e.records {
                self.push(e.handle, r);
            }
        }
    }

    /// The entries of the bundle, in insertion order.
    pub fn entries(&self) -> &[BundleEntry] {
        &self.entries
    }

    /// Total number of records across all entries.
    pub fn record_count(&self) -> usize {
        self.entries.iter().map(|e| e.records.len()).sum()
    }

    /// True if the bundle carries no records.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(handle, record)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Handle, &ProvenanceRecord)> {
        self.entries
            .iter()
            .flat_map(|e| e.records.iter().map(move |r| (e.handle, r)))
    }

    /// Rough serialized size, used by PA-NFS to decide whether a
    /// bundle still fits a single wire block or must be chunked into a
    /// provenance transaction.
    pub fn approx_wire_size(&self) -> usize {
        self.iter()
            .map(|(_, r)| crate::wire::record_wire_size(r))
            .sum::<usize>()
            + self.entries.len() * 16
    }
}

impl FromIterator<(Handle, ProvenanceRecord)> for Bundle {
    fn from_iter<T: IntoIterator<Item = (Handle, ProvenanceRecord)>>(iter: T) -> Self {
        let mut b = Bundle::new();
        for (h, r) in iter {
            b.push(h, r);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{Pnode, Version, VolumeId};

    fn xref(n: u64) -> ObjectRef {
        ObjectRef::new(Pnode::new(VolumeId(1), n), Version(0))
    }

    #[test]
    fn attribute_roundtrip_for_all_well_known_names() {
        let attrs = [
            Attribute::Input,
            Attribute::Type,
            Attribute::Name,
            Attribute::Argv,
            Attribute::Env,
            Attribute::Freeze,
            Attribute::BeginTxn,
            Attribute::EndTxn,
            Attribute::Params,
            Attribute::VisitedUrl,
            Attribute::FileUrl,
            Attribute::CurrentUrl,
            Attribute::DataDigest,
        ];
        for a in attrs {
            assert_eq!(Attribute::from_name(a.as_str()), a);
        }
        assert_eq!(
            Attribute::from_name("SESSION_COOKIE"),
            Attribute::Other("SESSION_COOKIE".into())
        );
    }

    #[test]
    fn ancestry_attributes_are_flagged() {
        assert!(Attribute::Input.is_ancestry());
        assert!(Attribute::VisitedUrl.is_ancestry());
        assert!(!Attribute::Name.is_ancestry());
        assert!(!Attribute::Freeze.is_ancestry());
    }

    #[test]
    fn bundle_coalesces_same_handle() {
        let mut b = Bundle::new();
        let h1 = Handle::from_raw(1);
        let h2 = Handle::from_raw(2);
        b.push(h1, ProvenanceRecord::input(xref(10)));
        b.push(
            h2,
            ProvenanceRecord::new(Attribute::Type, Value::str("PROC")),
        );
        b.push(h1, ProvenanceRecord::input(xref(11)));
        assert_eq!(b.entries().len(), 2);
        assert_eq!(b.entries()[0].records.len(), 2);
        assert_eq!(b.record_count(), 3);
    }

    #[test]
    fn bundle_merge_preserves_all_records() {
        let h = Handle::from_raw(5);
        let mut a = Bundle::single(h, ProvenanceRecord::input(xref(1)));
        let b = Bundle::single(h, ProvenanceRecord::input(xref(2)));
        a.merge(b);
        assert_eq!(a.record_count(), 2);
        assert_eq!(a.entries().len(), 1);
    }

    #[test]
    fn bundle_iter_order_is_insertion_order() {
        let mut b = Bundle::new();
        let h = Handle::from_raw(1);
        b.push(h, ProvenanceRecord::input(xref(1)));
        b.push(h, ProvenanceRecord::input(xref(2)));
        let refs: Vec<_> = b.iter().map(|(_, r)| r.value.as_xref().unwrap()).collect();
        assert_eq!(refs, vec![xref(1), xref(2)]);
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_int(), None);
        let r = xref(9);
        assert_eq!(Value::xref(r).as_xref(), Some(r));
    }

    #[test]
    fn record_display_is_readable() {
        let r = ProvenanceRecord::new(Attribute::Name, Value::str("atlas-x.gif"));
        assert_eq!(r.to_string(), "NAME=\"atlas-x.gif\"");
        let f = ProvenanceRecord::freeze(Version(4));
        assert_eq!(f.to_string(), "FREEZE=4");
    }

    #[test]
    fn empty_bundle_reports_empty() {
        let b = Bundle::new();
        assert!(b.is_empty());
        assert_eq!(b.record_count(), 0);
        assert_eq!(b.approx_wire_size(), 0);
    }
}
