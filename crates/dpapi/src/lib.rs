//! The Disclosed Provenance API (DPAPI).
//!
//! The DPAPI is the central interface of the PASSv2 layered provenance
//! architecture. It allows transfer of provenance both among the
//! components of a single system (observer → analyzer → distributor →
//! storage) and *between layers* (a provenance-aware application →
//! libpass → the kernel → a provenance-aware file system or NFS
//! client → an NFS server).
//!
//! The API consists of six calls — [`Dpapi::pass_read`],
//! [`Dpapi::pass_write`], [`Dpapi::pass_freeze`], [`Dpapi::pass_mkobj`],
//! [`Dpapi::pass_reviveobj`] and [`Dpapi::pass_sync`] — and two
//! concepts: the *pnode number* ([`Pnode`]), a never-recycled handle
//! for an object's provenance, and the *provenance record*
//! ([`ProvenanceRecord`]), a single attribute/value unit of provenance.
//!
//! # DPAPI v2: disclosure transactions
//!
//! Since v2 the five disclosing calls are sugar over one batched
//! entry point: [`Txn::new`] opens a [`Txn`], [`Txn::add`] queues
//! [`DpapiOp`]s, and [`Dpapi::pass_commit`] applies the whole vector
//! atomically, returning one [`OpResult`] per op. A batch crosses
//! every layer boundary as a unit — one syscall at the kernel, one
//! COMPOUND RPC in PA-NFS, one length-prefixed group record in the
//! Lasagna log, one group commit in Waldo — so per-event overhead is
//! amortized end to end and multi-record disclosures become atomic
//! (commit failure reports [`DpapiError::TxnAborted`] with the failing
//! op's index).
//!
//! Layers that act as a substrate to higher layers (an interpreter, an
//! NFS client, the OS itself) accept DPAPI calls from above and issue
//! DPAPI calls below, so an arbitrary number of provenance-aware layers
//! can stack.
//!
//! # Examples
//!
//! Constructing a bundle that discloses application provenance for a
//! file write:
//!
//! ```
//! use dpapi::{Attribute, Bundle, ProvenanceRecord, Value};
//!
//! let mut bundle = Bundle::new();
//! let h = dpapi::Handle::from_raw(7);
//! bundle.push(h, ProvenanceRecord::new(Attribute::Type, Value::str("SESSION")));
//! bundle.push(h, ProvenanceRecord::new(Attribute::VisitedUrl, Value::str("http://a.example/")));
//! assert_eq!(bundle.record_count(), 2);
//! ```

pub mod api;
pub mod error;
pub mod id;
pub mod record;
pub mod txn;
pub mod wire;

pub use api::{run_op_single_shot, Dpapi, Handle, ObjectKind, ReadResult, WriteResult};
pub use error::{DpapiError, RejectReason, Result};
pub use id::{ObjectRef, Pnode, PnodeAllocator, Version, VolumeId};
pub use record::{Attribute, Bundle, BundleEntry, ProvenanceRecord, Value};
pub use txn::{DpapiOp, OpResult, Txn};
