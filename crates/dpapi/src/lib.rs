//! The Disclosed Provenance API (DPAPI).
//!
//! The DPAPI is the central interface of the PASSv2 layered provenance
//! architecture. It allows transfer of provenance both among the
//! components of a single system (observer → analyzer → distributor →
//! storage) and *between layers* (a provenance-aware application →
//! libpass → the kernel → a provenance-aware file system or NFS
//! client → an NFS server).
//!
//! The API consists of six calls — [`Dpapi::pass_read`],
//! [`Dpapi::pass_write`], [`Dpapi::pass_freeze`], [`Dpapi::pass_mkobj`],
//! [`Dpapi::pass_reviveobj`] and [`Dpapi::pass_sync`] — and two
//! concepts: the *pnode number* ([`Pnode`]), a never-recycled handle
//! for an object's provenance, and the *provenance record*
//! ([`ProvenanceRecord`]), a single attribute/value unit of provenance.
//!
//! Layers that act as a substrate to higher layers (an interpreter, an
//! NFS client, the OS itself) accept DPAPI calls from above and issue
//! DPAPI calls below, so an arbitrary number of provenance-aware layers
//! can stack.
//!
//! # Examples
//!
//! Constructing a bundle that discloses application provenance for a
//! file write:
//!
//! ```
//! use dpapi::{Attribute, Bundle, ProvenanceRecord, Value};
//!
//! let mut bundle = Bundle::new();
//! let h = dpapi::Handle::from_raw(7);
//! bundle.push(h, ProvenanceRecord::new(Attribute::Type, Value::str("SESSION")));
//! bundle.push(h, ProvenanceRecord::new(Attribute::VisitedUrl, Value::str("http://a.example/")));
//! assert_eq!(bundle.record_count(), 2);
//! ```

pub mod api;
pub mod error;
pub mod id;
pub mod record;
pub mod wire;

pub use api::{Dpapi, Handle, ObjectKind, ReadResult, WriteResult};
pub use error::{DpapiError, Result};
pub use id::{ObjectRef, Pnode, PnodeAllocator, Version, VolumeId};
pub use record::{Attribute, Bundle, BundleEntry, ProvenanceRecord, Value};
