//! Error type shared by all DPAPI implementations.

use std::fmt;

use crate::id::{Pnode, Version};

/// Result alias used throughout the DPAPI and its implementors.
pub type Result<T> = std::result::Result<T, DpapiError>;

/// Errors a DPAPI call can produce.
///
/// Implementations at every layer (libpass, the kernel observer,
/// Lasagna, the PA-NFS client and server) share this type so errors
/// propagate across layers unchanged.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DpapiError {
    /// The handle does not name an open object at this layer.
    InvalidHandle,
    /// No object with this pnode exists (e.g. `pass_reviveobj` of a
    /// never-allocated pnode).
    UnknownPnode(Pnode),
    /// The requested version of the object does not exist.
    UnknownVersion(Pnode, Version),
    /// The target object lives on a volume that is not
    /// provenance-aware, so provenance cannot be stored with it.
    NotPassVolume,
    /// An I/O error in the underlying storage or network substrate.
    Io(String),
    /// The provenance log or database detected a consistency violation
    /// (e.g. a data digest mismatch during recovery).
    Inconsistent(String),
    /// A provenance transaction was aborted or its id is unknown.
    BadTransaction(u64),
    /// The operation is not supported by this layer.
    Unsupported(&'static str),
    /// A malformed record or bundle was presented.
    Malformed(String),
}

impl fmt::Display for DpapiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpapiError::InvalidHandle => write!(f, "invalid object handle"),
            DpapiError::UnknownPnode(p) => write!(f, "unknown pnode {p}"),
            DpapiError::UnknownVersion(p, v) => write!(f, "unknown version {v} of {p}"),
            DpapiError::NotPassVolume => write!(f, "volume is not provenance-aware"),
            DpapiError::Io(m) => write!(f, "i/o error: {m}"),
            DpapiError::Inconsistent(m) => write!(f, "provenance inconsistency: {m}"),
            DpapiError::BadTransaction(id) => write!(f, "bad provenance transaction {id}"),
            DpapiError::Unsupported(op) => write!(f, "operation not supported: {op}"),
            DpapiError::Malformed(m) => write!(f, "malformed provenance: {m}"),
        }
    }
}

impl std::error::Error for DpapiError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::VolumeId;

    #[test]
    fn display_messages_are_specific() {
        let p = Pnode::new(VolumeId(2), 7);
        assert_eq!(
            DpapiError::UnknownPnode(p).to_string(),
            "unknown pnode vol2:p7"
        );
        assert_eq!(
            DpapiError::UnknownVersion(p, Version(3)).to_string(),
            "unknown version v3 of vol2:p7"
        );
        assert_eq!(
            DpapiError::BadTransaction(9).to_string(),
            "bad provenance transaction 9"
        );
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&DpapiError::InvalidHandle);
    }
}
