//! Error type shared by all DPAPI implementations.

use std::fmt;

use crate::id::{Pnode, Version};

/// Result alias used throughout the DPAPI and its implementors.
pub type Result<T> = std::result::Result<T, DpapiError>;

/// Errors a DPAPI call can produce.
///
/// Implementations at every layer (libpass, the kernel observer,
/// Lasagna, the PA-NFS client and server) share this type so errors
/// propagate across layers unchanged.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DpapiError {
    /// The handle does not name an open object at this layer.
    InvalidHandle,
    /// No object with this pnode exists (e.g. `pass_reviveobj` of a
    /// never-allocated pnode).
    UnknownPnode(Pnode),
    /// The requested version of the object does not exist.
    UnknownVersion(Pnode, Version),
    /// The target object lives on a volume that is not
    /// provenance-aware, so provenance cannot be stored with it.
    NotPassVolume,
    /// An I/O error in the underlying storage or network substrate.
    Io(String),
    /// The provenance log or database detected a consistency violation
    /// (e.g. a data digest mismatch during recovery).
    Inconsistent(String),
    /// A provenance transaction was aborted or its id is unknown.
    BadTransaction(u64),
    /// The operation is not supported by this layer.
    Unsupported(&'static str),
    /// A malformed record or bundle was presented.
    Malformed(String),
    /// A disclosure transaction was aborted: the operation at index
    /// `failed_op` of the committed [`crate::Txn`] failed with
    /// `cause`. Within each layer's atomicity domain (a single volume,
    /// one PA-NFS export, one log) none of the transaction's effects
    /// were applied; see [`crate::txn`] for the exact contract,
    /// including the multi-volume caveat.
    TxnAborted {
        /// Zero-based index of the failing operation within the
        /// transaction's op vector.
        failed_op: usize,
        /// Why that operation failed.
        cause: Box<DpapiError>,
    },
    /// An admission-controlled front door (the sluice) refused the
    /// submission before any of its operations ran. Unlike
    /// [`DpapiError::TxnAborted`], a rejection means the transaction
    /// was never enqueued: nothing was validated, logged or applied,
    /// and the caller may retry the identical transaction later.
    Rejected(RejectReason),
}

/// Why an admission-controlled layer refused a submission.
///
/// Backpressure reasons (`QueueFull*`) are transient — capacity frees
/// as the drainer commits queued work. Quota reasons (`Quota*`) are
/// per-client: other clients may still be admitted, and the rejected
/// client regains budget only as its own in-flight work completes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RejectReason {
    /// The shared queue's operation budget is exhausted.
    QueueFullOps {
        /// Operations currently queued or in flight.
        queued: usize,
        /// The configured ceiling.
        limit: usize,
    },
    /// The shared queue's byte budget is exhausted.
    QueueFullBytes {
        /// Payload bytes currently queued or in flight.
        queued: usize,
        /// The configured ceiling.
        limit: usize,
    },
    /// The submitting client's per-client operation quota is spent.
    QuotaOps {
        /// The client whose quota is exhausted.
        client: u64,
        /// That client's operations currently in flight.
        in_flight: usize,
        /// That client's configured ceiling.
        limit: usize,
    },
    /// The submitting client's per-client byte quota is spent.
    QuotaBytes {
        /// The client whose quota is exhausted.
        client: u64,
        /// That client's payload bytes currently in flight.
        in_flight: usize,
        /// That client's configured ceiling.
        limit: usize,
    },
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFullOps { queued, limit } => {
                write!(f, "queue full: {queued} ops in flight, limit {limit}")
            }
            RejectReason::QueueFullBytes { queued, limit } => {
                write!(f, "queue full: {queued} bytes in flight, limit {limit}")
            }
            RejectReason::QuotaOps {
                client,
                in_flight,
                limit,
            } => write!(
                f,
                "client {client} op quota exhausted: {in_flight} in flight, limit {limit}"
            ),
            RejectReason::QuotaBytes {
                client,
                in_flight,
                limit,
            } => write!(
                f,
                "client {client} byte quota exhausted: {in_flight} in flight, limit {limit}"
            ),
        }
    }
}

impl DpapiError {
    /// Wraps `cause` as a transaction abort at operation `failed_op`.
    pub fn aborted_at(failed_op: usize, cause: DpapiError) -> DpapiError {
        DpapiError::TxnAborted {
            failed_op,
            cause: Box::new(cause),
        }
    }

    /// Unwraps a single-op transaction abort back into its cause, so
    /// the one-op default methods of [`crate::Dpapi`] surface the same
    /// error a direct call would. Multi-op aborts pass through.
    pub fn into_single_op_cause(self) -> DpapiError {
        match self {
            DpapiError::TxnAborted {
                failed_op: 0,
                cause,
            } => *cause,
            other => other,
        }
    }
}

impl fmt::Display for DpapiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpapiError::InvalidHandle => write!(f, "invalid object handle"),
            DpapiError::UnknownPnode(p) => write!(f, "unknown pnode {p}"),
            DpapiError::UnknownVersion(p, v) => write!(f, "unknown version {v} of {p}"),
            DpapiError::NotPassVolume => write!(f, "volume is not provenance-aware"),
            DpapiError::Io(m) => write!(f, "i/o error: {m}"),
            DpapiError::Inconsistent(m) => write!(f, "provenance inconsistency: {m}"),
            DpapiError::BadTransaction(id) => write!(f, "bad provenance transaction {id}"),
            DpapiError::Unsupported(op) => write!(f, "operation not supported: {op}"),
            DpapiError::Malformed(m) => write!(f, "malformed provenance: {m}"),
            DpapiError::TxnAborted { failed_op, cause } => {
                write!(
                    f,
                    "disclosure transaction aborted at op {failed_op}: {cause}"
                )
            }
            DpapiError::Rejected(reason) => {
                write!(f, "submission rejected: {reason}")
            }
        }
    }
}

impl std::error::Error for DpapiError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::VolumeId;

    #[test]
    fn display_messages_are_specific() {
        let p = Pnode::new(VolumeId(2), 7);
        assert_eq!(
            DpapiError::UnknownPnode(p).to_string(),
            "unknown pnode vol2:p7"
        );
        assert_eq!(
            DpapiError::UnknownVersion(p, Version(3)).to_string(),
            "unknown version v3 of vol2:p7"
        );
        assert_eq!(
            DpapiError::BadTransaction(9).to_string(),
            "bad provenance transaction 9"
        );
        assert_eq!(
            DpapiError::aborted_at(3, DpapiError::InvalidHandle).to_string(),
            "disclosure transaction aborted at op 3: invalid object handle"
        );
    }

    #[test]
    fn single_op_abort_unwraps_to_cause() {
        let e = DpapiError::aborted_at(0, DpapiError::NotPassVolume);
        assert_eq!(e.into_single_op_cause(), DpapiError::NotPassVolume);
        let multi = DpapiError::aborted_at(2, DpapiError::NotPassVolume);
        assert_eq!(multi.clone().into_single_op_cause(), multi);
        let plain = DpapiError::InvalidHandle;
        assert_eq!(plain.clone().into_single_op_cause(), plain);
    }

    #[test]
    fn rejection_displays_are_specific() {
        assert_eq!(
            DpapiError::Rejected(RejectReason::QueueFullOps {
                queued: 64,
                limit: 64
            })
            .to_string(),
            "submission rejected: queue full: 64 ops in flight, limit 64"
        );
        assert_eq!(
            DpapiError::Rejected(RejectReason::QuotaBytes {
                client: 3,
                in_flight: 4096,
                limit: 4096
            })
            .to_string(),
            "submission rejected: client 3 byte quota exhausted: 4096 in flight, limit 4096"
        );
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&DpapiError::InvalidHandle);
    }
}
