//! Disclosure transactions: the batched DPAPI v2 entry point.
//!
//! The original DPAPI is one-call-one-bundle: every `pass_write` is a
//! separately charged syscall, every PA-NFS operation its own RPC,
//! every bundle its own log record. A *disclosure transaction* lets a
//! layer hand its substrate an entire vector of operations at once:
//!
//! ```
//! use dpapi::{Bundle, Handle, Txn};
//!
//! let mut txn = Txn::new();
//! txn.mkobj(None);
//! txn.disclose(Handle::from_raw(7), Bundle::new());
//! txn.sync(Handle::from_raw(7));
//! assert_eq!(txn.len(), 3);
//! // layer.pass_commit(txn)? -> Vec<OpResult>, one per op, in order.
//! ```
//!
//! # Atomicity contract
//!
//! [`crate::Dpapi::pass_commit`] applies the whole vector or none of
//! it: implementations validate every operation against current state
//! *before* producing any effect, and a validation failure aborts with
//! [`crate::DpapiError::TxnAborted`] naming the offending operation
//! index. After validation, the provenance of the batch is made
//! durable as one unit (Lasagna frames it as a single length-prefixed
//! group record; PA-NFS ships it as one COMPOUND request); data writes
//! follow write-ahead-provenance ordering, so a data-path failure
//! mid-batch is recoverable from the already-logged digests.
//!
//! Atomicity is guaranteed **per target volume**. A transaction whose
//! ops fan out to several PASS volumes commits one group per volume;
//! if a later volume's commit fails (practically impossible after
//! validation), earlier volumes' groups remain durable. Use one
//! volume per transaction where cross-volume atomicity matters.
//!
//! # Handle scope
//!
//! Operations may only reference handles that existed before the
//! transaction began. A handle produced by a [`DpapiOp::Mkobj`] or
//! [`DpapiOp::Revive`] inside the batch is returned in the matching
//! [`OpResult`] but cannot be named by later operations of the same
//! batch — split such flows into two commits.

use crate::api::{Handle, WriteResult};
use crate::id::{Pnode, Version, VolumeId};
use crate::record::Bundle;

/// One operation of a disclosure transaction.
///
/// The vector covers the five *disclosing* calls of the DPAPI.
/// `pass_read` is absent by design: reads disclose nothing, so there
/// is nothing to batch atomically with them.
#[derive(Clone, Debug, PartialEq)]
pub enum DpapiOp {
    /// `pass_write`: data plus a bundle of provenance records, moved
    /// together.
    Write {
        /// The object written.
        handle: Handle,
        /// Byte offset of the data write.
        offset: u64,
        /// The data (empty for provenance-only disclosure).
        data: Vec<u8>,
        /// Provenance records riding the write.
        bundle: Bundle,
    },
    /// `pass_mkobj`: create a provenance-only object.
    Mkobj {
        /// Volume that should hold the object's provenance (`None`
        /// lets the layer choose).
        volume_hint: Option<VolumeId>,
    },
    /// `pass_freeze`: open a new version of the object.
    Freeze {
        /// The object frozen.
        handle: Handle,
    },
    /// `pass_reviveobj`: reopen an object by identity.
    Revive {
        /// The object's pnode.
        pnode: Pnode,
        /// The version to revive at.
        version: Version,
    },
    /// `pass_sync`: force the object's provenance to durable storage.
    Sync {
        /// The object synced.
        handle: Handle,
    },
}

impl DpapiOp {
    /// Short operation name, for diagnostics and error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            DpapiOp::Write { .. } => "write",
            DpapiOp::Mkobj { .. } => "mkobj",
            DpapiOp::Freeze { .. } => "freeze",
            DpapiOp::Revive { .. } => "revive",
            DpapiOp::Sync { .. } => "sync",
        }
    }
}

/// The per-operation result of a committed transaction, index-aligned
/// with the transaction's operations.
#[derive(Clone, Debug, PartialEq)]
pub enum OpResult {
    /// Result of a [`DpapiOp::Write`].
    Written(WriteResult),
    /// Handle created by a [`DpapiOp::Mkobj`].
    Made(Handle),
    /// New version opened by a [`DpapiOp::Freeze`].
    Frozen(Version),
    /// Handle reopened by a [`DpapiOp::Revive`].
    Revived(Handle),
    /// A [`DpapiOp::Sync`] completed.
    Synced,
}

impl OpResult {
    /// The write result, if this op was a write.
    pub fn as_written(&self) -> Option<&WriteResult> {
        match self {
            OpResult::Written(w) => Some(w),
            _ => None,
        }
    }

    /// The handle, if this op produced one (mkobj or revive).
    pub fn as_handle(&self) -> Option<Handle> {
        match self {
            OpResult::Made(h) | OpResult::Revived(h) => Some(*h),
            _ => None,
        }
    }

    /// The version, if this op was a freeze.
    pub fn as_version(&self) -> Option<Version> {
        match self {
            OpResult::Frozen(v) => Some(*v),
            _ => None,
        }
    }
}

/// A disclosure transaction under construction: an ordered vector of
/// [`DpapiOp`]s committed atomically by [`crate::Dpapi::pass_commit`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Txn {
    ops: Vec<DpapiOp>,
}

impl Txn {
    /// Starts an empty transaction — the one constructor path.
    ///
    /// This is the DPAPI v2 spelling of "open a batch" (the paper's
    /// `pass_begin`). `Txn` also derives [`Default`], which this
    /// delegates to, so struct-update and container contexts need no
    /// special casing; there is no other way to make a `Txn` besides
    /// collecting [`DpapiOp`]s via [`FromIterator`].
    pub fn new() -> Txn {
        Txn::default()
    }

    /// Appends one operation, returning `&mut self` for chaining.
    pub fn add(&mut self, op: DpapiOp) -> &mut Txn {
        self.ops.push(op);
        self
    }

    /// Appends a data-plus-provenance write.
    pub fn write(
        &mut self,
        handle: Handle,
        offset: u64,
        data: Vec<u8>,
        bundle: Bundle,
    ) -> &mut Txn {
        self.add(DpapiOp::Write {
            handle,
            offset,
            data,
            bundle,
        })
    }

    /// Appends a provenance-only write (no data).
    pub fn disclose(&mut self, handle: Handle, bundle: Bundle) -> &mut Txn {
        self.write(handle, 0, Vec::new(), bundle)
    }

    /// Appends an object creation.
    pub fn mkobj(&mut self, volume_hint: Option<VolumeId>) -> &mut Txn {
        self.add(DpapiOp::Mkobj { volume_hint })
    }

    /// Appends a freeze.
    pub fn freeze(&mut self, handle: Handle) -> &mut Txn {
        self.add(DpapiOp::Freeze { handle })
    }

    /// Appends a revive.
    pub fn revive(&mut self, pnode: Pnode, version: Version) -> &mut Txn {
        self.add(DpapiOp::Revive { pnode, version })
    }

    /// Appends a sync.
    pub fn sync(&mut self, handle: Handle) -> &mut Txn {
        self.add(DpapiOp::Sync { handle })
    }

    /// Number of operations queued.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if no operations are queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The queued operations, in commit order.
    pub fn ops(&self) -> &[DpapiOp] {
        &self.ops
    }

    /// Consumes the transaction into its operation vector.
    pub fn into_ops(self) -> Vec<DpapiOp> {
        self.ops
    }
}

impl FromIterator<DpapiOp> for Txn {
    fn from_iter<T: IntoIterator<Item = DpapiOp>>(iter: T) -> Self {
        Txn {
            ops: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_preserves_op_order() {
        let mut txn = Txn::new();
        let h = Handle::from_raw(3);
        txn.mkobj(None).disclose(h, Bundle::new()).freeze(h).sync(h);
        assert_eq!(txn.len(), 4);
        let kinds: Vec<&str> = txn.ops().iter().map(DpapiOp::kind).collect();
        assert_eq!(kinds, vec!["mkobj", "write", "freeze", "sync"]);
        let ops = txn.into_ops();
        assert!(matches!(ops[1], DpapiOp::Write { offset: 0, .. }));
    }

    #[test]
    fn op_result_accessors() {
        let h = Handle::from_raw(9);
        assert_eq!(OpResult::Made(h).as_handle(), Some(h));
        assert_eq!(OpResult::Revived(h).as_handle(), Some(h));
        assert_eq!(OpResult::Frozen(Version(2)).as_version(), Some(Version(2)));
        assert_eq!(OpResult::Synced.as_handle(), None);
        assert!(OpResult::Synced.as_written().is_none());
    }

    #[test]
    fn txn_collects_from_iterator() {
        let txn: Txn = (0..3)
            .map(|_| DpapiOp::Mkobj { volume_hint: None })
            .collect();
        assert_eq!(txn.len(), 3);
        assert!(!txn.is_empty());
        assert!(Txn::new().is_empty());
    }
}
