//! Property-based tests for the DPAPI wire encoding.

use dpapi::wire::{decode_record, encode_record, record_wire_size};
use dpapi::{Attribute, ObjectRef, Pnode, ProvenanceRecord, Value, Version, VolumeId};
use proptest::prelude::*;

fn arb_attribute() -> impl Strategy<Value = Attribute> {
    prop_oneof![
        Just(Attribute::Input),
        Just(Attribute::Type),
        Just(Attribute::Name),
        Just(Attribute::Argv),
        Just(Attribute::Env),
        Just(Attribute::Freeze),
        Just(Attribute::BeginTxn),
        Just(Attribute::EndTxn),
        Just(Attribute::Params),
        Just(Attribute::VisitedUrl),
        Just(Attribute::FileUrl),
        Just(Attribute::CurrentUrl),
        Just(Attribute::DataDigest),
        "[A-Z_]{1,24}".prop_map(|s| Attribute::from_name(&s)),
    ]
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        ".{0,64}".prop_map(Value::Str),
        any::<bool>().prop_map(Value::Bool),
        proptest::collection::vec(any::<u8>(), 0..128).prop_map(Value::Bytes),
        proptest::collection::vec(".{0,16}".prop_map(String::from), 0..8).prop_map(Value::StrList),
        (any::<u32>(), any::<u64>(), any::<u32>()).prop_map(|(vol, num, ver)| {
            Value::Xref(ObjectRef::new(Pnode::new(VolumeId(vol), num), Version(ver)))
        }),
    ]
}

proptest! {
    /// Every record survives an encode/decode roundtrip unchanged.
    #[test]
    fn record_roundtrip(attr in arb_attribute(), value in arb_value()) {
        let rec = ProvenanceRecord::new(attr, value);
        let enc = encode_record(&rec).unwrap();
        prop_assert_eq!(enc.len(), record_wire_size(&rec));
        let dec = decode_record(&enc).unwrap();
        prop_assert_eq!(dec, rec);
    }

    /// Arbitrary byte soup never panics the decoder; it either decodes
    /// (possibly to some record) or errors cleanly.
    #[test]
    fn decoder_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_record(&data);
    }

    /// Truncating a valid record always fails to decode (no prefix of
    /// a record is itself a whole record).
    #[test]
    fn truncation_always_detected(attr in arb_attribute(), value in arb_value()) {
        let rec = ProvenanceRecord::new(attr, value);
        let enc = encode_record(&rec).unwrap();
        if enc.len() > 1 {
            let cut = enc.len() / 2;
            prop_assert!(decode_record(&enc[..cut]).is_err());
        }
    }
}
