//! The provenance-aware `links` browser.
//!
//! A PA-browser captures semantic information invisible to PASS
//! (paper §6.3): the URL of any downloaded file, the page the user
//! was examining when she initiated the download, the sequence of
//! pages visited before it, and the grouping of activity into
//! *sessions*. Sessions are PASS objects created with `pass_mkobj`;
//! each visit generates a `VISITED_URL` record; each download
//! replaces the browser's plain `write` with a `pass_write` carrying
//! three records — `INPUT` (file ← session), `FILE_URL` and
//! `CURRENT_URL` — together with the data.

use dpapi::{Attribute, Bundle, Handle, ObjectRef, ProvenanceRecord, Value};
use sim_os::proc::Pid;
use sim_os::syscall::{Kernel, OpenFlags};

use crate::web::{Fetched, SimWeb};

/// Errors the browser can hit.
#[derive(Debug)]
pub enum BrowserError {
    /// The URL did not resolve.
    NotFound(String),
    /// Redirect loop.
    RedirectLoop(String),
    /// A kernel or provenance failure.
    Sys(String),
}

impl std::fmt::Display for BrowserError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BrowserError::NotFound(u) => write!(f, "404: {u}"),
            BrowserError::RedirectLoop(u) => write!(f, "redirect loop at {u}"),
            BrowserError::Sys(m) => write!(f, "browser system error: {m}"),
        }
    }
}

impl std::error::Error for BrowserError {}

fn sys<E: std::fmt::Display>(e: E) -> BrowserError {
    BrowserError::Sys(e.to_string())
}

/// One browsing session of the PA-browser.
pub struct Session {
    pid: Pid,
    handle: Handle,
    identity: ObjectRef,
    current_url: Option<String>,
    history: Vec<String>,
}

impl Session {
    /// Opens a new session: creates the session PASS object and
    /// records its TYPE.
    pub fn open(kernel: &mut Kernel, pid: Pid) -> Result<Session, BrowserError> {
        let handle = kernel.pass_mkobj(pid, None).map_err(sys)?;
        let bundle = Bundle::single(
            handle,
            ProvenanceRecord::new(Attribute::Type, Value::str("SESSION")),
        );
        kernel
            .pass_write(pid, handle, 0, &[], bundle)
            .map_err(sys)?;
        let identity = kernel.pass_read(pid, handle, 0, 0).map_err(sys)?.identity;
        Ok(Session {
            pid,
            handle,
            identity,
            current_url: None,
            history: Vec::new(),
        })
    }

    /// Revives a session saved by [`Session::save`] — the Firefox
    /// scenario that motivated adding `pass_reviveobj` to the DPAPI
    /// (§6.5).
    pub fn restore(kernel: &mut Kernel, pid: Pid, path: &str) -> Result<Session, BrowserError> {
        let saved = kernel.read_file(pid, path).map_err(sys)?;
        let text = String::from_utf8(saved).map_err(sys)?;
        let mut parts = text.split_whitespace();
        let volume = parts
            .next()
            .and_then(|s| s.parse::<u32>().ok())
            .ok_or_else(|| BrowserError::Sys("bad session file".into()))?;
        let number = parts
            .next()
            .and_then(|s| s.parse::<u64>().ok())
            .ok_or_else(|| BrowserError::Sys("bad session file".into()))?;
        let version = parts
            .next()
            .and_then(|s| s.parse::<u32>().ok())
            .ok_or_else(|| BrowserError::Sys("bad session file".into()))?;
        let pnode = dpapi::Pnode::new(dpapi::VolumeId(volume), number);
        let handle = kernel
            .pass_reviveobj(pid, pnode, dpapi::Version(version))
            .map_err(sys)?;
        let identity = kernel.pass_read(pid, handle, 0, 0).map_err(sys)?.identity;
        Ok(Session {
            pid,
            handle,
            identity,
            current_url: None,
            history: Vec::new(),
        })
    }

    /// Persists the session identity so a restarted browser can
    /// revive it.
    pub fn save(&self, kernel: &mut Kernel, path: &str) -> Result<(), BrowserError> {
        let body = format!(
            "{} {} {}",
            self.identity.pnode.volume.0, self.identity.pnode.number, self.identity.version.0
        );
        kernel
            .write_file(self.pid, path, body.as_bytes())
            .map_err(sys)
    }

    /// The session's provenance identity.
    pub fn identity(&self) -> ObjectRef {
        self.identity
    }

    /// URLs visited so far, in order.
    pub fn history(&self) -> &[String] {
        &self.history
    }

    /// Visits a URL (following redirects), recording a `VISITED_URL`
    /// dependency between the session and every URL on the redirect
    /// chain. Returns the final URL.
    pub fn visit(
        &mut self,
        kernel: &mut Kernel,
        web: &SimWeb,
        url: &str,
    ) -> Result<String, BrowserError> {
        match web.fetch(url) {
            Fetched::NotFound => Err(BrowserError::NotFound(url.into())),
            Fetched::TooManyRedirects => Err(BrowserError::RedirectLoop(url.into())),
            Fetched::Ok {
                url: fin, chain, ..
            } => {
                let mut bundle = Bundle::new();
                for u in &chain {
                    bundle.push(
                        self.handle,
                        ProvenanceRecord::new(Attribute::VisitedUrl, Value::str(u)),
                    );
                    self.history.push(u.clone());
                }
                kernel
                    .pass_write(self.pid, self.handle, 0, &[], bundle)
                    .map_err(sys)?;
                self.current_url = Some(fin.clone());
                Ok(fin)
            }
        }
    }

    /// Downloads `url` to `dest` as **one disclosure transaction**:
    /// the session's redirect-chain visits, the data write and the
    /// three download records (`INPUT`, `FILE_URL`, `CURRENT_URL`)
    /// commit atomically — all of it reaches the provenance log, or
    /// none of it does — and cost one `pass_commit` syscall instead of
    /// two `pass_write`s.
    pub fn download(
        &mut self,
        kernel: &mut Kernel,
        web: &SimWeb,
        url: &str,
        dest: &str,
    ) -> Result<ObjectRef, BrowserError> {
        let fetched = web.fetch(url);
        let Fetched::Ok {
            url: final_url,
            content,
            chain,
        } = fetched
        else {
            return Err(BrowserError::NotFound(url.into()));
        };
        let fd = kernel
            .open(self.pid, dest, OpenFlags::WRONLY_CREATE)
            .map_err(sys)?;
        let file_h = kernel.pass_handle_for_fd(self.pid, fd).map_err(sys)?;
        let mut txn = dpapi::Txn::new();
        // The redirect chain is part of the session history too.
        let mut visits = Bundle::new();
        for u in &chain {
            visits.push(
                self.handle,
                ProvenanceRecord::new(Attribute::VisitedUrl, Value::str(u)),
            );
        }
        if !visits.is_empty() {
            txn.disclose(self.handle, visits);
        }
        let mut bundle = Bundle::new();
        // INPUT: dependency between the file and the session.
        bundle.push(file_h, ProvenanceRecord::input(self.identity));
        // FILE_URL: the URL of the file itself.
        bundle.push(
            file_h,
            ProvenanceRecord::new(Attribute::FileUrl, Value::str(&final_url)),
        );
        // CURRENT_URL: the page the user was viewing when she decided
        // to download.
        if let Some(cur) = &self.current_url {
            bundle.push(
                file_h,
                ProvenanceRecord::new(Attribute::CurrentUrl, Value::str(cur)),
            );
        }
        txn.write(file_h, 0, content, bundle);
        let results = kernel.pass_commit(self.pid, txn).map_err(sys)?;
        // Only record history once the commit has succeeded, so the
        // in-memory session mirrors the disclosed provenance.
        self.history.extend(chain);
        kernel.close(self.pid, fd).map_err(sys)?;
        let w = results
            .last()
            .and_then(dpapi::OpResult::as_written)
            .copied()
            .ok_or_else(|| BrowserError::Sys("mismatched commit results".into()))?;
        Ok(w.identity)
    }

    /// [`Session::download`] through the async disclosure front door:
    /// the same visits-plus-write transaction is submitted into `pipe`
    /// instead of committing synchronously, so a burst of downloads
    /// coalesces into group frames. Returns the completion ticket;
    /// resolve it with [`Session::resolve_download`] (or any
    /// `Sluice::wait`) once the burst is submitted.
    ///
    /// History is recorded at admission: a rejected submit
    /// (backpressure or quota) leaves the session untouched and the
    /// transaction retriable verbatim.
    pub fn download_pipelined(
        &mut self,
        kernel: &mut Kernel,
        pipe: &mut sluice::Sluice,
        client: sluice::ClientId,
        web: &SimWeb,
        url: &str,
        dest: &str,
    ) -> Result<sluice::Ticket, BrowserError> {
        let fetched = web.fetch(url);
        let Fetched::Ok {
            url: final_url,
            content,
            chain,
        } = fetched
        else {
            return Err(BrowserError::NotFound(url.into()));
        };
        let fd = kernel
            .open(self.pid, dest, OpenFlags::WRONLY_CREATE)
            .map_err(sys)?;
        let file_h = kernel.pass_handle_for_fd(self.pid, fd).map_err(sys)?;
        let mut txn = dpapi::Txn::new();
        let mut visits = Bundle::new();
        for u in &chain {
            visits.push(
                self.handle,
                ProvenanceRecord::new(Attribute::VisitedUrl, Value::str(u)),
            );
        }
        if !visits.is_empty() {
            txn.disclose(self.handle, visits);
        }
        let mut bundle = Bundle::new();
        bundle.push(file_h, ProvenanceRecord::input(self.identity));
        bundle.push(
            file_h,
            ProvenanceRecord::new(Attribute::FileUrl, Value::str(&final_url)),
        );
        if let Some(cur) = &self.current_url {
            bundle.push(
                file_h,
                ProvenanceRecord::new(Attribute::CurrentUrl, Value::str(cur)),
            );
        }
        txn.write(file_h, 0, content, bundle);
        let mut layer = passv2::LibPass::new(kernel, self.pid);
        let ticket = pipe.submit(&mut layer, client, txn).map_err(sys)?;
        self.history.extend(chain);
        kernel.close(self.pid, fd).map_err(sys)?;
        Ok(ticket)
    }

    /// Blocks on a [`Session::download_pipelined`] ticket and returns
    /// the downloaded file's identity (the last op of the submitted
    /// transaction is always its data write).
    pub fn resolve_download(
        &self,
        kernel: &mut Kernel,
        pipe: &mut sluice::Sluice,
        ticket: sluice::Ticket,
    ) -> Result<ObjectRef, BrowserError> {
        let mut layer = passv2::LibPass::new(kernel, self.pid);
        let results = pipe.wait(&mut layer, ticket).map_err(sys)?;
        results
            .last()
            .and_then(dpapi::OpResult::as_written)
            .map(|w| w.identity)
            .ok_or_else(|| BrowserError::Sys("mismatched commit results".into()))
    }

    /// Ensures the session's provenance is durable even if nothing
    /// was downloaded (e.g. browsing-only sessions).
    pub fn sync(&self, kernel: &mut Kernel) -> Result<(), BrowserError> {
        kernel.pass_sync(self.pid, self.handle).map_err(sys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::web::demo_web;
    use passv2::System;

    fn ingest(sys: &mut System) -> waldo::Waldo {
        let waldo_pid = sys.kernel.spawn_init("waldo");
        sys.pass.exempt(waldo_pid);
        let mut w = waldo::Waldo::new(waldo_pid);
        for (_, logs) in sys.rotate_all_logs() {
            for log in logs {
                w.ingest_log_file(&mut sys.kernel, &log);
            }
        }
        w
    }

    #[test]
    fn session_records_visits_and_download_records() {
        let mut sys = System::single_volume();
        let pid = sys.spawn("links");
        let web = demo_web();
        sys.kernel.mkdir_p(pid, "/home").unwrap();
        let mut s = Session::open(&mut sys.kernel, pid).unwrap();
        s.visit(&mut sys.kernel, &web, "http://uni.example/")
            .unwrap();
        s.download(
            &mut sys.kernel,
            &web,
            "http://uni.example/graphs/speedup.gif",
            "/home/speedup.gif",
        )
        .unwrap();
        let w = ingest(&mut sys);

        // The session is a typed object with VISITED_URL records.
        let sessions = w.db.find_by_type("SESSION");
        assert_eq!(sessions.len(), 1);
        let sess = w.db.object(sessions[0]).unwrap();
        let visited: Vec<&dpapi::Value> = sess
            .versions
            .values()
            .flat_map(|v| v.attrs.iter())
            .filter(|(a, _)| *a == Attribute::VisitedUrl)
            .map(|(_, v)| v)
            .collect();
        assert!(visited.contains(&&Value::str("http://uni.example/")));

        // The downloaded file carries FILE_URL and CURRENT_URL and
        // descends from the session.
        let files = w.db.find_by_name("/home/speedup.gif");
        assert_eq!(files.len(), 1);
        let f = w.db.object(files[0]).unwrap();
        assert_eq!(
            f.first_attr(&Attribute::FileUrl),
            Some(&Value::str("http://uni.example/graphs/speedup.gif"))
        );
        assert_eq!(
            f.first_attr(&Attribute::CurrentUrl),
            Some(&Value::str("http://uni.example/"))
        );
        let v = dpapi::Version(f.current);
        let anc = w.db.ancestors(dpapi::ObjectRef::new(files[0], v));
        assert!(anc.iter().any(|r| r.pnode == sessions[0]));
    }

    #[test]
    fn attribution_survives_rename() {
        // §3.2: "if the user moves, renames, or copies the file, the
        // browser loses the connection" — but PASSv2 does not.
        let mut sys = System::single_volume();
        let pid = sys.spawn("links");
        let web = demo_web();
        sys.kernel.mkdir_p(pid, "/downloads").unwrap();
        let mut s = Session::open(&mut sys.kernel, pid).unwrap();
        s.visit(&mut sys.kernel, &web, "http://uni.example/")
            .unwrap();
        s.download(
            &mut sys.kernel,
            &web,
            "http://uni.example/quotes/knuth.txt",
            "/downloads/quote.txt",
        )
        .unwrap();
        sys.kernel.mkdir_p(pid, "/talk").unwrap();
        sys.kernel
            .rename(pid, "/downloads/quote.txt", "/talk/quote.txt")
            .unwrap();
        let w = ingest(&mut sys);
        // Query by the *new* name, find the original URL.
        let files = w.db.find_by_name("/talk/quote.txt");
        assert_eq!(files.len(), 1, "renamed file must be findable by new name");
        let f = w.db.object(files[0]).unwrap();
        assert_eq!(
            f.first_attr(&Attribute::FileUrl),
            Some(&Value::str("http://uni.example/quotes/knuth.txt"))
        );
    }

    #[test]
    fn session_save_and_revive_keeps_identity() {
        let mut sys = System::single_volume();
        let pid = sys.spawn("links");
        let web = demo_web();
        sys.kernel.mkdir_p(pid, "/home").unwrap();
        let id = {
            let mut s = Session::open(&mut sys.kernel, pid).unwrap();
            s.visit(&mut sys.kernel, &web, "http://portal.example/")
                .unwrap();
            s.sync(&mut sys.kernel).unwrap();
            s.save(&mut sys.kernel, "/home/session.dat").unwrap();
            s.identity()
        };
        // "Restart" the browser.
        let pid2 = sys.kernel.spawn_init("links");
        let mut revived = Session::restore(&mut sys.kernel, pid2, "/home/session.dat").unwrap();
        assert_eq!(revived.identity().pnode, id.pnode);
        // Further visits accrue to the same object.
        revived
            .visit(&mut sys.kernel, &web, "http://uni.example/")
            .unwrap();
        revived.sync(&mut sys.kernel).unwrap();
        let w = ingest(&mut sys);
        let sess = w.db.object(id.pnode).unwrap();
        let visited: Vec<&dpapi::Value> = sess
            .versions
            .values()
            .flat_map(|v| v.attrs.iter())
            .filter(|(a, _)| *a == Attribute::VisitedUrl)
            .map(|(_, v)| v)
            .collect();
        assert!(visited.contains(&&Value::str("http://portal.example/")));
        assert!(visited.contains(&&Value::str("http://uni.example/")));
    }

    #[test]
    fn redirect_chains_are_fully_recorded() {
        let mut sys = System::single_volume();
        let pid = sys.spawn("links");
        let web = demo_web();
        let mut s = Session::open(&mut sys.kernel, pid).unwrap();
        let fin = s
            .visit(&mut sys.kernel, &web, "http://portal.example/codec")
            .unwrap();
        assert_eq!(fin, "http://codecs.example/best-codec");
        assert_eq!(
            s.history(),
            &[
                "http://portal.example/codec".to_string(),
                "http://codecs.example/best-codec".to_string(),
            ]
        );
    }
}
