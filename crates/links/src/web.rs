//! A deterministic simulated web.
//!
//! The browser use cases (§3.2) need sites, redirects, linked third
//! parties and downloadable files — including a site that an attacker
//! silently compromises. This module provides an in-process web with
//! exactly those behaviours.

use std::collections::HashMap;

/// One fetchable resource.
#[derive(Clone, Debug)]
pub struct Page {
    /// HTML-ish body (irrelevant bytes, deterministic).
    pub content: Vec<u8>,
    /// URLs this page links to.
    pub links: Vec<String>,
    /// If set, fetching this URL redirects.
    pub redirect: Option<String>,
}

impl Page {
    /// A plain page with content and links.
    pub fn new(content: &[u8], links: &[&str]) -> Page {
        Page {
            content: content.to_vec(),
            links: links.iter().map(|s| s.to_string()).collect(),
            redirect: None,
        }
    }

    /// A redirect.
    pub fn redirect_to(target: &str) -> Page {
        Page {
            content: Vec::new(),
            links: Vec::new(),
            redirect: Some(target.to_string()),
        }
    }
}

/// The outcome of a fetch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fetched {
    /// A page, with the URL finally reached (after redirects) and the
    /// chain of URLs traversed (including the final one).
    Ok {
        /// Final URL.
        url: String,
        /// Body at the final URL.
        content: Vec<u8>,
        /// Every URL traversed, in order.
        chain: Vec<String>,
    },
    /// No such resource.
    NotFound,
    /// Redirect loop or overlong chain.
    TooManyRedirects,
}

/// The simulated web.
#[derive(Clone, Debug, Default)]
pub struct SimWeb {
    pages: HashMap<String, Page>,
}

impl SimWeb {
    /// An empty web.
    pub fn new() -> SimWeb {
        SimWeb::default()
    }

    /// Publishes (or replaces) a resource.
    pub fn publish(&mut self, url: &str, page: Page) {
        self.pages.insert(url.to_string(), page);
    }

    /// Removes a resource (the §3.2 attribution scenario: "some of
    /// them are no longer even accessible on the Web").
    pub fn take_down(&mut self, url: &str) {
        self.pages.remove(url);
    }

    /// The page at `url`, without following redirects.
    pub fn page(&self, url: &str) -> Option<&Page> {
        self.pages.get(url)
    }

    /// Fetches `url`, following redirects.
    pub fn fetch(&self, url: &str) -> Fetched {
        let mut chain = vec![url.to_string()];
        let mut at = url.to_string();
        for _ in 0..8 {
            match self.pages.get(&at) {
                None => return Fetched::NotFound,
                Some(p) => match &p.redirect {
                    Some(next) => {
                        at = next.clone();
                        chain.push(at.clone());
                    }
                    None => {
                        return Fetched::Ok {
                            url: at,
                            content: p.content.clone(),
                            chain,
                        };
                    }
                },
            }
        }
        Fetched::TooManyRedirects
    }
}

/// A ready-made web for the use cases: a university site with graphs
/// and quotes, a codec download site with a third-party mirror, and a
/// trusted portal that redirects to it.
pub fn demo_web() -> SimWeb {
    let mut web = SimWeb::new();
    web.publish(
        "http://uni.example/",
        Page::new(
            b"<h1>research group</h1>",
            &[
                "http://uni.example/graphs/speedup.gif",
                "http://uni.example/quotes/knuth.txt",
            ],
        ),
    );
    web.publish(
        "http://uni.example/graphs/speedup.gif",
        Page::new(b"GIF89a-speedup-graph-bytes", &[]),
    );
    web.publish(
        "http://uni.example/quotes/knuth.txt",
        Page::new(b"premature optimization...", &[]),
    );
    web.publish(
        "http://portal.example/",
        Page::new(b"<h1>trusted portal</h1>", &["http://portal.example/codec"]),
    );
    web.publish(
        "http://portal.example/codec",
        Page::redirect_to("http://codecs.example/best-codec"),
    );
    web.publish(
        "http://codecs.example/best-codec",
        Page::new(
            b"<h1>codec</h1>",
            &["http://codecs.example/download/codec.bin"],
        ),
    );
    web.publish(
        "http://codecs.example/download/codec.bin",
        Page::new(b"CODEC-v1-clean-binary", &[]),
    );
    web
}

/// Replaces the codec download with malware, as Eve would.
pub fn compromise_codec_site(web: &mut SimWeb) {
    web.publish(
        "http://codecs.example/download/codec.bin",
        Page::new(b"CODEC-v1-TROJANED-payload", &[]),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_follows_redirects_and_records_chain() {
        let web = demo_web();
        let Fetched::Ok { url, chain, .. } = web.fetch("http://portal.example/codec") else {
            panic!("fetch failed")
        };
        assert_eq!(url, "http://codecs.example/best-codec");
        assert_eq!(
            chain,
            vec![
                "http://portal.example/codec".to_string(),
                "http://codecs.example/best-codec".to_string(),
            ]
        );
    }

    #[test]
    fn missing_pages_and_takedowns() {
        let mut web = demo_web();
        assert_eq!(web.fetch("http://nowhere.example/"), Fetched::NotFound);
        web.take_down("http://uni.example/quotes/knuth.txt");
        assert_eq!(
            web.fetch("http://uni.example/quotes/knuth.txt"),
            Fetched::NotFound
        );
    }

    #[test]
    fn redirect_loops_are_bounded() {
        let mut web = SimWeb::new();
        web.publish("http://a/", Page::redirect_to("http://b/"));
        web.publish("http://b/", Page::redirect_to("http://a/"));
        assert_eq!(web.fetch("http://a/"), Fetched::TooManyRedirects);
    }

    #[test]
    fn compromise_changes_the_payload() {
        let mut web = demo_web();
        let before = web.fetch("http://codecs.example/download/codec.bin");
        compromise_codec_site(&mut web);
        let after = web.fetch("http://codecs.example/download/codec.bin");
        assert_ne!(before, after);
    }
}
