//! Provenance-aware `links`: a text browser over a simulated web.
//!
//! The paper made the `links` 0.98 text browser provenance-aware
//! (§6.3). This crate reproduces that layer: browsing sessions are
//! PASS objects, visits produce `VISITED_URL` records, and downloads
//! send `INPUT`, `FILE_URL` and `CURRENT_URL` records to PASSv2
//! together with the file data — enabling the attribution and
//! malware-tracking use cases of §3.2.

pub mod browser;
pub mod web;

pub use browser::{BrowserError, Session};
pub use web::{compromise_codec_site, demo_web, Fetched, Page, SimWeb};
