//! The kernel: mounts, processes, system calls and hook dispatch.
//!
//! The kernel intercepts exactly the calls PASSv2's interceptor
//! handles — `execve`, `fork`, `exit`, `read`, `readv`, `write`,
//! `writev`, `mmap`, `open`, `pipe` and the kernel operation
//! `drop_inode` — and reports them to the installed provenance module
//! (if any). Reads and writes of regular files are *delegated* to the
//! module so that data and provenance flow together through the DPAPI
//! of the backing volume.

use std::collections::{HashMap, HashSet};

use dpapi::{Bundle, Handle, Pnode, ReadResult, Version, VolumeId, WriteResult};

use crate::clock::Clock;
use crate::cost::CostModel;
use crate::events::{ExecImage, HookCtx, ModuleRef, Mount};
use crate::fs::{DirEntry, DpapiVolume, FileAttr, FileSystem, FsError, FsResult, FsUsage, Ino};
use crate::inotify::{InotifyEvent, InotifyTable, WatchId};
use crate::pipe::PipeTable;
use crate::proc::{Fd, FdTarget, FileLoc, MountId, OpenFile, Pid, PipeEnd, Process, ProcessTable};

/// Flags for [`Kernel::open`].
#[derive(Clone, Copy, Debug, Default)]
pub struct OpenFlags {
    /// Open for reading.
    pub read: bool,
    /// Open for writing.
    pub write: bool,
    /// Create the file if missing.
    pub create: bool,
    /// Truncate to zero length.
    pub truncate: bool,
    /// All writes append.
    pub append: bool,
}

impl OpenFlags {
    /// Read-only open.
    pub const RDONLY: OpenFlags = OpenFlags {
        read: true,
        write: false,
        create: false,
        truncate: false,
        append: false,
    };

    /// Write-only, create, truncate — the classic "output file" open.
    pub const WRONLY_CREATE: OpenFlags = OpenFlags {
        read: false,
        write: true,
        create: true,
        truncate: true,
        append: false,
    };

    /// Read-write, create.
    pub const RDWR_CREATE: OpenFlags = OpenFlags {
        read: true,
        write: true,
        create: true,
        truncate: false,
        append: false,
    };

    /// Write-only, create, append.
    pub const APPEND_CREATE: OpenFlags = OpenFlags {
        read: false,
        write: true,
        create: true,
        truncate: false,
        append: true,
    };
}

/// Counters for the kernel's activity.
#[derive(Clone, Copy, Debug, Default)]
pub struct KernelStats {
    /// Total system calls dispatched.
    pub syscalls: u64,
    /// Bytes moved through `read`.
    pub bytes_read: u64,
    /// Bytes moved through `write`.
    pub bytes_written: u64,
    /// Disclosure transactions committed via `pass_commit` (each one
    /// syscall regardless of size).
    pub dpapi_txns: u64,
    /// Operations carried by those transactions.
    pub dpapi_txn_ops: u64,
}

impl provscope::MetricSource for KernelStats {
    fn record(&self, out: &mut dyn FnMut(&str, u64)) {
        out("syscalls", self.syscalls);
        out("bytes_read", self.bytes_read);
        out("bytes_written", self.bytes_written);
        out("dpapi_txns", self.dpapi_txns);
        out("dpapi_txn_ops", self.dpapi_txn_ops);
    }
}

/// The simulated kernel.
pub struct Kernel {
    clock: Clock,
    model: CostModel,
    mounts: Vec<Mount>,
    procs: ProcessTable,
    pipes: PipeTable,
    module: Option<ModuleRef>,
    inotify: InotifyTable,
    open_counts: HashMap<FileLoc, u32>,
    unlinked: HashSet<FileLoc>,
    stats: KernelStats,
    scope: provscope::Scope,
}

impl Kernel {
    /// Creates a kernel with no mounts and no provenance module.
    pub fn new(clock: Clock, model: CostModel) -> Kernel {
        Kernel {
            clock,
            model,
            mounts: Vec::new(),
            procs: ProcessTable::new(),
            pipes: PipeTable::new(),
            module: None,
            inotify: InotifyTable::new(),
            open_counts: HashMap::new(),
            unlinked: HashSet::new(),
            stats: KernelStats::default(),
            scope: provscope::Scope::default(),
        }
    }

    /// Attaches a tracing scope to the kernel and to every mounted
    /// provenance-aware volume (future mounts pick it up too). The
    /// default scope is disabled, so tracing costs nothing unless
    /// explicitly enabled.
    pub fn set_scope(&mut self, scope: provscope::Scope) {
        for m in &mut self.mounts {
            if let Some(d) = m.fs.as_dpapi() {
                d.set_scope(scope.clone());
            }
        }
        self.scope = scope;
    }

    /// The kernel's tracing scope (disabled by default).
    pub fn scope(&self) -> provscope::Scope {
        self.scope.clone()
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> Clock {
        self.clock.clone()
    }

    /// The cost model.
    pub fn model(&self) -> CostModel {
        self.model
    }

    /// Kernel statistics so far.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Installs the provenance module (PASSv2).
    pub fn install_module(&mut self, module: ModuleRef) {
        self.module = Some(module);
    }

    /// Mounts `fs` at `path` (normalized absolute path). Returns the
    /// mount id.
    pub fn mount(&mut self, path: &str, fs: Box<dyn FileSystem>) -> MountId {
        let path = if path == "/" {
            "/".to_string()
        } else {
            path.trim_end_matches('/').to_string()
        };
        let mut fs = fs;
        if self.scope.is_enabled() {
            if let Some(d) = fs.as_dpapi() {
                d.set_scope(self.scope.clone());
            }
        }
        self.mounts.push(Mount { path, fs });
        MountId(self.mounts.len() - 1)
    }

    /// Direct access to a mounted file system (for tests and tools).
    pub fn fs_at(&mut self, m: MountId) -> &mut dyn FileSystem {
        &mut *self.mounts[m.0].fs
    }

    /// The DPAPI of the volume mounted at `m`, if provenance-aware.
    pub fn dpapi_at(&mut self, m: MountId) -> Option<&mut dyn DpapiVolume> {
        self.mounts[m.0].fs.as_dpapi()
    }

    /// Space usage of the mount at `m`.
    pub fn usage_at(&self, m: MountId) -> FsUsage {
        self.mounts[m.0].fs.usage()
    }

    fn charge_syscall(&mut self) {
        self.stats.syscalls += 1;
        self.clock.advance(self.model.cpu.syscall_ns);
    }

    /// Advances the clock by `units` abstract compute units, modelling
    /// application CPU time.
    pub fn compute(&mut self, units: u64) {
        self.clock.advance(units * self.model.cpu.compute_unit_ns);
    }

    // ---- path resolution -------------------------------------------------

    /// Finds the mount whose path is the longest prefix of `path` and
    /// returns the residual path relative to that mount's root.
    pub fn resolve_mount(&self, path: &str) -> FsResult<(MountId, String)> {
        if !path.starts_with('/') {
            return Err(FsError::Invalid(format!("path not absolute: {path}")));
        }
        let mut best: Option<(usize, usize)> = None; // (mount idx, prefix len)
        for (i, m) in self.mounts.iter().enumerate() {
            let p = &m.path;
            let matches = if p == "/" {
                true
            } else {
                path == p || path.starts_with(&format!("{p}/"))
            };
            if matches {
                let len = p.len();
                if best.map(|(_, l)| len > l).unwrap_or(true) {
                    best = Some((i, len));
                }
            }
        }
        let (idx, plen) = best.ok_or_else(|| FsError::NotFound(path.to_string()))?;
        let rest = if self.mounts[idx].path == "/" {
            path[1..].to_string()
        } else {
            path[plen..].trim_start_matches('/').to_string()
        };
        Ok((MountId(idx), rest))
    }

    fn walk_dir(&mut self, m: MountId, rel: &str) -> FsResult<Ino> {
        let fs = &mut *self.mounts[m.0].fs;
        let mut dir = fs.root();
        if rel.is_empty() {
            return Ok(dir);
        }
        for comp in rel.split('/') {
            if comp.is_empty() {
                continue;
            }
            dir = fs.lookup(dir, comp)?;
        }
        Ok(dir)
    }

    /// Resolves `path` to its parent directory and final component.
    fn resolve_parent(&mut self, path: &str) -> FsResult<(MountId, Ino, String)> {
        let (m, rest) = self.resolve_mount(path)?;
        if rest.is_empty() {
            return Err(FsError::Invalid(format!("no final component in {path}")));
        }
        let (dir_part, name) = match rest.rfind('/') {
            Some(i) => (&rest[..i], &rest[i + 1..]),
            None => ("", rest.as_str()),
        };
        let dir = self.walk_dir(m, dir_part)?;
        Ok((m, dir, name.to_string()))
    }

    /// Resolves `path` to a file location.
    pub fn resolve_file(&mut self, path: &str) -> FsResult<FileLoc> {
        let (m, rest) = self.resolve_mount(path)?;
        let ino = self.walk_dir(m, &rest)?;
        Ok(FileLoc { mount: m, ino })
    }

    // ---- module dispatch -------------------------------------------------

    fn with_module<R>(&mut self, f: impl FnOnce(&ModuleRef, &mut HookCtx<'_>) -> R) -> Option<R> {
        let m = self.module.clone()?;
        let mut ctx = HookCtx {
            mounts: &mut self.mounts,
            clock: &self.clock,
        };
        Some(f(&m, &mut ctx))
    }

    /// A visibility barrier: forces the module to make any deferred
    /// work (e.g. a batched burst of observed writes) visible. The
    /// kernel runs this wherever file or directory state becomes
    /// observable without going through the module's own hooks —
    /// `stat`, `fsync`, `readdir`, `sync`, and the state reads at the
    /// top of `open`, `execve` and append-mode `write`.
    pub fn barrier(&mut self) {
        self.with_module(|m, ctx| m.on_barrier(ctx));
    }

    // ---- process lifecycle -----------------------------------------------

    /// Spawns the first process.
    pub fn spawn_init(&mut self, exe: &str) -> Pid {
        self.charge_syscall();
        self.procs.spawn_init(exe)
    }

    /// `fork(2)`.
    pub fn fork(&mut self, parent: Pid) -> FsResult<Pid> {
        self.charge_syscall();
        let child = self
            .procs
            .fork(parent)
            .ok_or_else(|| FsError::Invalid(format!("fork of dead {parent}")))?;
        // Duplicate pipe references and open counts.
        let fds: Vec<OpenFile> = self
            .procs
            .get(child)
            .map(|p| p.fds.values().cloned().collect())
            .unwrap_or_default();
        for f in fds {
            match f.target {
                FdTarget::Pipe { id, end } => self.pipes.add_ref(id, end == PipeEnd::Write),
                FdTarget::File(loc) => *self.open_counts.entry(loc).or_insert(0) += 1,
            }
        }
        self.with_module(|m, ctx| m.on_fork(ctx, parent, child));
        Ok(child)
    }

    /// `execve(2)`.
    pub fn execve(
        &mut self,
        pid: Pid,
        path: &str,
        argv: &[String],
        env: &[String],
    ) -> FsResult<()> {
        self.charge_syscall();
        // The image read below must see every deferred write.
        self.barrier();
        let loc = self.resolve_file(path).ok();
        // Loading the image costs a read of the binary (up to 256 KB).
        let mut identity = None;
        if let Some(loc) = loc {
            let size = self.mounts[loc.mount.0].fs.getattr(loc.ino)?.size;
            let len = size.min(256 * 1024) as usize;
            let _ = self.mounts[loc.mount.0].fs.read(loc.ino, 0, len)?;
            if let Some(d) = self.mounts[loc.mount.0].fs.as_dpapi() {
                identity = d.identity_of_ino(loc.ino).ok();
            }
        }
        {
            let p = self
                .procs
                .get_mut(pid)
                .ok_or_else(|| FsError::Invalid(format!("execve of dead {pid}")))?;
            p.exe = path.to_string();
            p.argv = argv.to_vec();
            p.env = env.to_vec();
        }
        let argv = argv.to_vec();
        let env = env.to_vec();
        self.with_module(|m, ctx| {
            m.on_execve(
                ctx,
                pid,
                &ExecImage {
                    path,
                    loc,
                    identity,
                    argv: &argv,
                    env: &env,
                },
            )
        });
        Ok(())
    }

    /// `exit(2)`: closes all descriptors and retires the process.
    pub fn exit(&mut self, pid: Pid) {
        self.charge_syscall();
        let open: Vec<(Fd, OpenFile)> = self
            .procs
            .get(pid)
            .map(|p| p.fds.iter().map(|(fd, o)| (*fd, o.clone())).collect())
            .unwrap_or_default();
        for (fd, _) in open {
            let _ = self.close(pid, fd);
        }
        self.procs.exit(pid);
        self.with_module(|m, ctx| m.on_exit(ctx, pid));
    }

    // ---- descriptors -----------------------------------------------------

    /// `open(2)`.
    pub fn open(&mut self, pid: Pid, path: &str, flags: OpenFlags) -> FsResult<Fd> {
        self.charge_syscall();
        // The lookup, O_TRUNC truncate and O_APPEND size read below
        // must see every deferred write.
        self.barrier();
        let (m, dir, name) = self.resolve_parent(path)?;
        let fs = &mut *self.mounts[m.0].fs;
        let (ino, created) = match fs.lookup(dir, &name) {
            Ok(ino) => {
                if flags.truncate {
                    fs.truncate(ino, 0)?;
                }
                (ino, false)
            }
            Err(FsError::NotFound(_)) if flags.create => (fs.create(dir, &name)?, true),
            Err(e) => return Err(e),
        };
        let loc = FileLoc { mount: m, ino };
        let parent = FileLoc { mount: m, ino: dir };
        let offset = if flags.append {
            fs.getattr(ino)?.size
        } else {
            0
        };
        let open = OpenFile {
            target: FdTarget::File(loc),
            offset,
            append: flags.append,
            path: path.to_string(),
            parent: Some(parent),
            name: name.clone(),
            wrote: false,
            readable: flags.read,
            writable: flags.write,
        };
        let fd = self
            .procs
            .get_mut(pid)
            .ok_or_else(|| FsError::Invalid(format!("open by dead {pid}")))?
            .alloc_fd(open);
        *self.open_counts.entry(loc).or_insert(0) += 1;
        if created {
            self.inotify
                .deliver(parent, &InotifyEvent::Created { name, loc });
        }
        self.with_module(|m, ctx| m.on_open(ctx, pid, loc, path, created));
        Ok(fd)
    }

    fn get_open(&self, pid: Pid, fd: Fd) -> FsResult<OpenFile> {
        self.procs
            .get(pid)
            .and_then(|p| p.fds.get(&fd))
            .cloned()
            .ok_or_else(|| FsError::Invalid(format!("bad fd {fd:?} for {pid}")))
    }

    /// `close(2)`.
    pub fn close(&mut self, pid: Pid, fd: Fd) -> FsResult<()> {
        self.charge_syscall();
        let open = {
            let p = self
                .procs
                .get_mut(pid)
                .ok_or_else(|| FsError::Invalid(format!("close by dead {pid}")))?;
            p.fds
                .remove(&fd)
                .ok_or_else(|| FsError::Invalid(format!("bad fd {fd:?}")))?
        };
        match open.target {
            FdTarget::Pipe { id, end } => {
                self.pipes.drop_ref(id, end == PipeEnd::Write);
            }
            FdTarget::File(loc) => {
                if open.wrote {
                    // Close-to-open consistency hook (NFS flush). Any
                    // deferred writes must be in the file system
                    // before the flush observes it.
                    self.barrier();
                    let _ = self.mounts[loc.mount.0].fs.close_hint(loc.ino);
                    if let Some(parent) = open.parent {
                        self.inotify.deliver(
                            parent,
                            &InotifyEvent::CloseWrite {
                                name: open.name.clone(),
                                loc,
                            },
                        );
                    }
                }
                let count = self.open_counts.entry(loc).or_insert(1);
                *count = count.saturating_sub(1);
                if *count == 0 {
                    self.open_counts.remove(&loc);
                    if self.unlinked.remove(&loc) {
                        self.with_module(|m, ctx| m.on_drop_inode(ctx, loc));
                    }
                }
            }
        }
        self.with_module(|m, ctx| m.on_close(ctx, pid, &open.target));
        Ok(())
    }

    /// `read(2)`.
    pub fn read(&mut self, pid: Pid, fd: Fd, len: usize) -> FsResult<Vec<u8>> {
        self.charge_syscall();
        let open = self.get_open(pid, fd)?;
        if !open.readable {
            return Err(FsError::Invalid("fd not open for reading".into()));
        }
        match open.target {
            FdTarget::File(loc) => {
                let offset = open.offset;
                let data = match self.module.clone() {
                    Some(m) => {
                        let mut ctx = HookCtx {
                            mounts: &mut self.mounts,
                            clock: &self.clock,
                        };
                        m.handle_read(&mut ctx, pid, loc, offset, len)?
                    }
                    None => self.mounts[loc.mount.0].fs.read(loc.ino, offset, len)?,
                };
                if let Some(p) = self.procs.get_mut(pid) {
                    if let Some(o) = p.fds.get_mut(&fd) {
                        o.offset += data.len() as u64;
                    }
                }
                self.stats.bytes_read += data.len() as u64;
                Ok(data)
            }
            FdTarget::Pipe { id, .. } => {
                let data = self
                    .pipes
                    .read(id, len)
                    .ok_or_else(|| FsError::Invalid("pipe gone".into()))?;
                self.clock.advance(self.model.copy_cost(data.len()));
                self.stats.bytes_read += data.len() as u64;
                self.with_module(|m, ctx| m.on_pipe_read(ctx, pid, id, data.len()));
                Ok(data)
            }
        }
    }

    /// `write(2)`.
    pub fn write(&mut self, pid: Pid, fd: Fd, data: &[u8]) -> FsResult<usize> {
        self.charge_syscall();
        let open = self.get_open(pid, fd)?;
        if !open.writable {
            return Err(FsError::Invalid("fd not open for writing".into()));
        }
        match open.target {
            FdTarget::File(loc) => {
                let offset = if open.append {
                    // The append offset is the file size *including*
                    // any deferred writes — flush them first.
                    self.barrier();
                    self.mounts[loc.mount.0].fs.getattr(loc.ino)?.size
                } else {
                    open.offset
                };
                let n = match self.module.clone() {
                    Some(m) => {
                        let mut ctx = HookCtx {
                            mounts: &mut self.mounts,
                            clock: &self.clock,
                        };
                        m.handle_write(&mut ctx, pid, loc, offset, data)?
                    }
                    None => self.mounts[loc.mount.0].fs.write(loc.ino, offset, data)?,
                };
                if let Some(p) = self.procs.get_mut(pid) {
                    if let Some(o) = p.fds.get_mut(&fd) {
                        o.offset = offset + n as u64;
                        o.wrote = true;
                    }
                }
                self.stats.bytes_written += n as u64;
                Ok(n)
            }
            FdTarget::Pipe { id, .. } => {
                let n = self
                    .pipes
                    .write(id, data)
                    .ok_or_else(|| FsError::Invalid("EPIPE".into()))?;
                self.clock.advance(self.model.copy_cost(n));
                self.stats.bytes_written += n as u64;
                self.with_module(|m, ctx| m.on_pipe_write(ctx, pid, id, n));
                Ok(n)
            }
        }
    }

    /// `readv(2)`: one read per iovec length, concatenated.
    pub fn readv(&mut self, pid: Pid, fd: Fd, lens: &[usize]) -> FsResult<Vec<u8>> {
        let mut out = Vec::new();
        for &l in lens {
            let chunk = self.read(pid, fd, l)?;
            let done = chunk.len() < l;
            out.extend(chunk);
            if done {
                break;
            }
        }
        Ok(out)
    }

    /// `writev(2)`: one write per iovec.
    pub fn writev(&mut self, pid: Pid, fd: Fd, bufs: &[&[u8]]) -> FsResult<usize> {
        let mut n = 0;
        for b in bufs {
            n += self.write(pid, fd, b)?;
        }
        Ok(n)
    }

    /// `lseek(2)` (absolute positioning only).
    pub fn lseek(&mut self, pid: Pid, fd: Fd, pos: u64) -> FsResult<()> {
        self.charge_syscall();
        let p = self
            .procs
            .get_mut(pid)
            .ok_or_else(|| FsError::Invalid(format!("lseek by dead {pid}")))?;
        let o = p
            .fds
            .get_mut(&fd)
            .ok_or_else(|| FsError::Invalid(format!("bad fd {fd:?}")))?;
        o.offset = pos;
        Ok(())
    }

    /// `pipe(2)`: returns (read fd, write fd).
    pub fn pipe(&mut self, pid: Pid) -> FsResult<(Fd, Fd)> {
        self.charge_syscall();
        let id = self.pipes.create();
        let p = self
            .procs
            .get_mut(pid)
            .ok_or_else(|| FsError::Invalid(format!("pipe by dead {pid}")))?;
        let rfd = p.alloc_fd(OpenFile::for_pipe(id, PipeEnd::Read));
        let wfd = p.alloc_fd(OpenFile::for_pipe(id, PipeEnd::Write));
        self.with_module(|m, ctx| m.on_pipe_create(ctx, pid, id));
        Ok((rfd, wfd))
    }

    /// `mmap(2)` (provenance-relevant aspects only).
    pub fn mmap(&mut self, pid: Pid, fd: Fd, writable: bool) -> FsResult<()> {
        self.charge_syscall();
        let open = self.get_open(pid, fd)?;
        match open.target {
            FdTarget::File(loc) => {
                self.with_module(|m, ctx| m.on_mmap(ctx, pid, loc, writable));
                Ok(())
            }
            FdTarget::Pipe { .. } => Err(FsError::Invalid("mmap of a pipe".into())),
        }
    }

    // ---- namespace operations ---------------------------------------------

    /// `mkdir(2)`.
    pub fn mkdir(&mut self, pid: Pid, path: &str) -> FsResult<Ino> {
        self.charge_syscall();
        let _ = pid;
        let (m, dir, name) = self.resolve_parent(path)?;
        self.mounts[m.0].fs.mkdir(dir, &name)
    }

    /// Creates every missing directory along `path`.
    pub fn mkdir_p(&mut self, pid: Pid, path: &str) -> FsResult<()> {
        let (m, rest) = self.resolve_mount(path)?;
        let mut cur = String::from(&self.mounts[m.0].path);
        for comp in rest.split('/').filter(|c| !c.is_empty()) {
            if !cur.ends_with('/') {
                cur.push('/');
            }
            cur.push_str(comp);
            match self.mkdir(pid, &cur) {
                Ok(_) | Err(FsError::Exists(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// `unlink(2)`.
    pub fn unlink(&mut self, pid: Pid, path: &str) -> FsResult<()> {
        self.charge_syscall();
        let (m, dir, name) = self.resolve_parent(path)?;
        let ino = self.mounts[m.0].fs.lookup(dir, &name)?;
        let loc = FileLoc { mount: m, ino };
        self.mounts[m.0].fs.unlink(dir, &name)?;
        self.inotify.deliver(
            FileLoc { mount: m, ino: dir },
            &InotifyEvent::Removed { name: name.clone() },
        );
        self.with_module(|mo, ctx| mo.on_unlink(ctx, pid, loc, path));
        if self.open_counts.get(&loc).copied().unwrap_or(0) == 0 {
            self.with_module(|mo, ctx| mo.on_drop_inode(ctx, loc));
        } else {
            self.unlinked.insert(loc);
        }
        Ok(())
    }

    /// `rename(2)`.
    pub fn rename(&mut self, pid: Pid, from: &str, to: &str) -> FsResult<()> {
        self.charge_syscall();
        let (m1, d1, n1) = self.resolve_parent(from)?;
        let (m2, d2, n2) = self.resolve_parent(to)?;
        if m1 != m2 {
            return Err(FsError::Invalid("cross-mount rename".into()));
        }
        let ino = self.mounts[m1.0].fs.lookup(d1, &n1)?;
        let loc = FileLoc { mount: m1, ino };
        self.mounts[m1.0].fs.rename(d1, &n1, d2, &n2)?;
        self.inotify.deliver(
            FileLoc { mount: m1, ino: d1 },
            &InotifyEvent::Removed { name: n1.clone() },
        );
        self.inotify.deliver(
            FileLoc { mount: m2, ino: d2 },
            &InotifyEvent::Created {
                name: n2.clone(),
                loc,
            },
        );
        self.with_module(|mo, ctx| mo.on_rename(ctx, pid, loc, from, to));
        Ok(())
    }

    /// `stat(2)`.
    pub fn stat(&mut self, pid: Pid, path: &str) -> FsResult<FileAttr> {
        self.charge_syscall();
        let _ = pid;
        self.barrier();
        let loc = self.resolve_file(path)?;
        self.mounts[loc.mount.0].fs.getattr(loc.ino)
    }

    /// `fsync(2)`.
    pub fn fsync(&mut self, pid: Pid, fd: Fd) -> FsResult<()> {
        self.charge_syscall();
        self.barrier();
        let open = self.get_open(pid, fd)?;
        match open.target {
            FdTarget::File(loc) => self.mounts[loc.mount.0].fs.fsync(loc.ino),
            FdTarget::Pipe { .. } => Ok(()),
        }
    }

    /// Lists a directory by path.
    pub fn readdir(&mut self, pid: Pid, path: &str) -> FsResult<Vec<DirEntry>> {
        self.charge_syscall();
        let _ = pid;
        self.barrier();
        let loc = self.resolve_file(path)?;
        self.mounts[loc.mount.0].fs.readdir(loc.ino)
    }

    /// Flushes every mount.
    pub fn sync_all(&mut self) -> FsResult<()> {
        self.barrier();
        for m in &mut self.mounts {
            m.fs.sync()?;
        }
        Ok(())
    }

    // ---- inotify -----------------------------------------------------------

    /// Watches the directory at `path`.
    pub fn inotify_watch(&mut self, path: &str) -> FsResult<WatchId> {
        let loc = self.resolve_file(path)?;
        Ok(self.inotify.add_watch(loc))
    }

    /// Drains pending events for `watch`.
    pub fn inotify_poll(&mut self, watch: WatchId) -> Vec<InotifyEvent> {
        self.inotify.poll(watch)
    }

    // ---- user-level DPAPI (libpass backend) --------------------------------

    fn module_ref(&self) -> FsResult<ModuleRef> {
        self.module
            .clone()
            .ok_or_else(|| FsError::Invalid("no provenance module installed".into()))
    }

    /// User-level `pass_mkobj`.
    pub fn pass_mkobj(&mut self, pid: Pid, volume: Option<VolumeId>) -> FsResult<Handle> {
        self.charge_syscall();
        let m = self.module_ref()?;
        let mut ctx = HookCtx {
            mounts: &mut self.mounts,
            clock: &self.clock,
        };
        Ok(m.dp_mkobj(&mut ctx, pid, volume)?)
    }

    /// User-level `pass_reviveobj`.
    pub fn pass_reviveobj(&mut self, pid: Pid, pnode: Pnode, version: Version) -> FsResult<Handle> {
        self.charge_syscall();
        let m = self.module_ref()?;
        let mut ctx = HookCtx {
            mounts: &mut self.mounts,
            clock: &self.clock,
        };
        Ok(m.dp_reviveobj(&mut ctx, pid, pnode, version)?)
    }

    /// User-level `pass_read` on a module handle.
    pub fn pass_read(
        &mut self,
        pid: Pid,
        h: Handle,
        offset: u64,
        len: usize,
    ) -> FsResult<ReadResult> {
        self.charge_syscall();
        let m = self.module_ref()?;
        let mut ctx = HookCtx {
            mounts: &mut self.mounts,
            clock: &self.clock,
        };
        Ok(m.dp_read(&mut ctx, pid, h, offset, len)?)
    }

    /// User-level `pass_write` on a module handle.
    pub fn pass_write(
        &mut self,
        pid: Pid,
        h: Handle,
        offset: u64,
        data: &[u8],
        bundle: Bundle,
    ) -> FsResult<WriteResult> {
        self.charge_syscall();
        let m = self.module_ref()?;
        let mut ctx = HookCtx {
            mounts: &mut self.mounts,
            clock: &self.clock,
        };
        Ok(m.dp_write(&mut ctx, pid, h, offset, data, bundle)?)
    }

    /// User-level `pass_freeze`.
    pub fn pass_freeze(&mut self, pid: Pid, h: Handle) -> FsResult<Version> {
        self.charge_syscall();
        let m = self.module_ref()?;
        let mut ctx = HookCtx {
            mounts: &mut self.mounts,
            clock: &self.clock,
        };
        Ok(m.dp_freeze(&mut ctx, pid, h)?)
    }

    /// User-level `pass_sync`.
    pub fn pass_sync(&mut self, pid: Pid, h: Handle) -> FsResult<()> {
        self.charge_syscall();
        let m = self.module_ref()?;
        let mut ctx = HookCtx {
            mounts: &mut self.mounts,
            clock: &self.clock,
        };
        Ok(m.dp_sync(&mut ctx, pid, h)?)
    }

    /// User-level `pass_commit`: applies a whole disclosure
    /// transaction in **one** system call.
    ///
    /// This is where the batch API's cost model lives: a transaction
    /// of N ops is charged one `syscall_ns` entry/exit plus N times
    /// the (much smaller) per-op dispatch cost, instead of the N full
    /// syscalls the single-shot calls would pay. Per-op failures abort
    /// the whole batch and surface as
    /// [`dpapi::DpapiError::TxnAborted`] (wrapped in
    /// [`FsError::Provenance`]), naming the failing op's index.
    pub fn pass_commit(&mut self, pid: Pid, txn: dpapi::Txn) -> FsResult<Vec<dpapi::OpResult>> {
        let span = self.scope.open("kernel", "pass_commit");
        self.charge_syscall();
        let ops = txn.len() as u64;
        self.clock.advance(ops * self.model.cpu.dpapi_op_ns);
        self.stats.dpapi_txns += 1;
        self.stats.dpapi_txn_ops += ops;
        let m = match self.module_ref() {
            Ok(m) => m,
            Err(e) => {
                self.scope.close(span);
                return Err(e);
            }
        };
        let result = {
            let mut ctx = HookCtx {
                mounts: &mut self.mounts,
                clock: &self.clock,
            };
            m.dp_commit(&mut ctx, pid, txn)
        };
        self.scope.close(span);
        Ok(result?)
    }

    /// Closes a user-level DPAPI handle.
    pub fn pass_close(&mut self, pid: Pid, h: Handle) -> FsResult<()> {
        self.charge_syscall();
        let m = self.module_ref()?;
        let mut ctx = HookCtx {
            mounts: &mut self.mounts,
            clock: &self.clock,
        };
        Ok(m.dp_close(&mut ctx, pid, h)?)
    }

    /// A user-level DPAPI handle for an open file descriptor.
    pub fn pass_handle_for_fd(&mut self, pid: Pid, fd: Fd) -> FsResult<Handle> {
        self.charge_syscall();
        let open = self.get_open(pid, fd)?;
        let loc = match open.target {
            FdTarget::File(loc) => loc,
            FdTarget::Pipe { .. } => {
                return Err(FsError::Invalid("no DPAPI handle for pipes".into()));
            }
        };
        let m = self.module_ref()?;
        let mut ctx = HookCtx {
            mounts: &mut self.mounts,
            clock: &self.clock,
        };
        Ok(m.dp_handle_for_file(&mut ctx, pid, loc)?)
    }

    /// Offset of an open descriptor (used by libpass to emulate
    /// sequential pass_read/pass_write).
    pub fn fd_offset(&self, pid: Pid, fd: Fd) -> FsResult<u64> {
        Ok(self.get_open(pid, fd)?.offset)
    }

    /// The file location behind an open descriptor.
    pub fn fd_loc(&self, pid: Pid, fd: Fd) -> FsResult<FileLoc> {
        match self.get_open(pid, fd)?.target {
            FdTarget::File(loc) => Ok(loc),
            FdTarget::Pipe { .. } => Err(FsError::Invalid("fd is a pipe".into())),
        }
    }

    /// Reads a whole file by path (convenience for tools/workloads).
    pub fn read_file(&mut self, pid: Pid, path: &str) -> FsResult<Vec<u8>> {
        let fd = self.open(pid, path, OpenFlags::RDONLY)?;
        let size = self.stat(pid, path)?.size as usize;
        let data = self.read(pid, fd, size)?;
        self.close(pid, fd)?;
        Ok(data)
    }

    /// Writes a whole file by path (convenience for tools/workloads).
    pub fn write_file(&mut self, pid: Pid, path: &str, data: &[u8]) -> FsResult<()> {
        let fd = self.open(pid, path, OpenFlags::WRONLY_CREATE)?;
        self.write(pid, fd, data)?;
        self.close(pid, fd)?;
        Ok(())
    }

    /// A snapshot view of a process, for tests.
    pub fn process(&self, pid: Pid) -> Option<&Process> {
        self.procs.get(pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::basefs::BaseFs;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn kernel() -> (Kernel, Pid) {
        let clock = Clock::new();
        let mut k = Kernel::new(clock.clone(), CostModel::default());
        let fs = BaseFs::new(clock, CostModel::default());
        k.mount("/", Box::new(fs));
        let pid = k.spawn_init("/bin/sh");
        (k, pid)
    }

    #[test]
    fn open_write_read_via_syscalls() {
        let (mut k, pid) = kernel();
        let fd = k.open(pid, "/hello.txt", OpenFlags::WRONLY_CREATE).unwrap();
        assert_eq!(k.write(pid, fd, b"hi there").unwrap(), 8);
        k.close(pid, fd).unwrap();
        let fd = k.open(pid, "/hello.txt", OpenFlags::RDONLY).unwrap();
        assert_eq!(k.read(pid, fd, 2).unwrap(), b"hi");
        assert_eq!(k.read(pid, fd, 100).unwrap(), b" there");
        k.close(pid, fd).unwrap();
    }

    #[test]
    fn offsets_advance_and_lseek_works() {
        let (mut k, pid) = kernel();
        k.write_file(pid, "/f", b"0123456789").unwrap();
        let fd = k.open(pid, "/f", OpenFlags::RDONLY).unwrap();
        assert_eq!(k.read(pid, fd, 3).unwrap(), b"012");
        k.lseek(pid, fd, 8).unwrap();
        assert_eq!(k.read(pid, fd, 10).unwrap(), b"89");
        k.close(pid, fd).unwrap();
    }

    #[test]
    fn append_mode_appends() {
        let (mut k, pid) = kernel();
        k.write_file(pid, "/log", b"one\n").unwrap();
        let fd = k.open(pid, "/log", OpenFlags::APPEND_CREATE).unwrap();
        k.write(pid, fd, b"two\n").unwrap();
        k.close(pid, fd).unwrap();
        assert_eq!(k.read_file(pid, "/log").unwrap(), b"one\ntwo\n");
    }

    #[test]
    fn mkdir_p_and_nested_paths() {
        let (mut k, pid) = kernel();
        k.mkdir_p(pid, "/a/b/c").unwrap();
        k.write_file(pid, "/a/b/c/file", b"x").unwrap();
        assert_eq!(k.read_file(pid, "/a/b/c/file").unwrap(), b"x");
        let entries = k.readdir(pid, "/a/b").unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "c");
    }

    #[test]
    fn pipes_between_parent_and_child() {
        let (mut k, pid) = kernel();
        let (rfd, wfd) = k.pipe(pid).unwrap();
        let child = k.fork(pid).unwrap();
        // Parent writes, child reads.
        k.write(pid, wfd, b"through the pipe").unwrap();
        let got = k.read(child, rfd, 100).unwrap();
        assert_eq!(got, b"through the pipe");
        k.exit(child);
        k.exit(pid);
    }

    #[test]
    fn rename_and_unlink() {
        let (mut k, pid) = kernel();
        k.write_file(pid, "/a", b"data").unwrap();
        k.rename(pid, "/a", "/b").unwrap();
        assert!(k.read_file(pid, "/a").is_err());
        assert_eq!(k.read_file(pid, "/b").unwrap(), b"data");
        k.unlink(pid, "/b").unwrap();
        assert!(k.read_file(pid, "/b").is_err());
    }

    #[test]
    fn multiple_mounts_resolve_by_longest_prefix() {
        let clock = Clock::new();
        let mut k = Kernel::new(clock.clone(), CostModel::default());
        k.mount(
            "/",
            Box::new(BaseFs::new(clock.clone(), CostModel::default())),
        );
        k.mount(
            "/mnt/remote",
            Box::new(BaseFs::new(clock.clone(), CostModel::default())),
        );
        let pid = k.spawn_init("sh");
        k.mkdir_p(pid, "/mnt").unwrap(); // directory on the root mount
        k.write_file(pid, "/mnt/remote/r.txt", b"remote").unwrap();
        k.write_file(pid, "/local.txt", b"local").unwrap();
        let (m, rest) = k.resolve_mount("/mnt/remote/r.txt").unwrap();
        assert_eq!(m, MountId(1));
        assert_eq!(rest, "r.txt");
        assert_eq!(k.read_file(pid, "/mnt/remote/r.txt").unwrap(), b"remote");
        // The remote file does not appear on the root mount.
        assert!(k.resolve_file("/mnt/r.txt").is_err());
    }

    #[test]
    fn inotify_sees_create_closewrite_remove() {
        let (mut k, pid) = kernel();
        k.mkdir_p(pid, "/watched").unwrap();
        let w = k.inotify_watch("/watched").unwrap();
        let fd = k.open(pid, "/watched/f", OpenFlags::WRONLY_CREATE).unwrap();
        k.write(pid, fd, b"x").unwrap();
        k.close(pid, fd).unwrap();
        k.unlink(pid, "/watched/f").unwrap();
        let evs = k.inotify_poll(w);
        assert_eq!(evs.len(), 3);
        assert!(matches!(evs[0], InotifyEvent::Created { .. }));
        assert!(matches!(evs[1], InotifyEvent::CloseWrite { .. }));
        assert!(matches!(evs[2], InotifyEvent::Removed { .. }));
    }

    #[test]
    fn exit_closes_descriptors_and_pipe_refs() {
        let (mut k, pid) = kernel();
        let (rfd, _wfd) = k.pipe(pid).unwrap();
        let child = k.fork(pid).unwrap();
        k.exit(pid); // parent's write end closed
                     // Child still holds both ends; write end alive.
        let _ = rfd;
        k.exit(child);
        assert_eq!(k.procs.live_count(), 0);
    }

    #[test]
    fn read_write_permissions_enforced() {
        let (mut k, pid) = kernel();
        k.write_file(pid, "/f", b"x").unwrap();
        let fd = k.open(pid, "/f", OpenFlags::RDONLY).unwrap();
        assert!(k.write(pid, fd, b"y").is_err());
        k.close(pid, fd).unwrap();
        let fd = k.open(pid, "/f", OpenFlags::WRONLY_CREATE).unwrap();
        assert!(k.read(pid, fd, 1).is_err());
        k.close(pid, fd).unwrap();
    }

    /// A module that records which hooks fired.
    #[derive(Default)]
    struct SpyModule {
        log: RefCell<Vec<String>>,
    }

    impl crate::events::PassModule for SpyModule {
        fn on_fork(&self, _ctx: &mut HookCtx<'_>, parent: Pid, child: Pid) {
            self.log
                .borrow_mut()
                .push(format!("fork {parent}->{child}"));
        }
        fn on_execve(&self, _ctx: &mut HookCtx<'_>, pid: Pid, image: &ExecImage<'_>) {
            self.log
                .borrow_mut()
                .push(format!("exec {pid} {}", image.path));
        }
        fn on_open(
            &self,
            _ctx: &mut HookCtx<'_>,
            _pid: Pid,
            _loc: FileLoc,
            path: &str,
            created: bool,
        ) {
            self.log.borrow_mut().push(format!("open {path} {created}"));
        }
        fn on_exit(&self, _ctx: &mut HookCtx<'_>, pid: Pid) {
            self.log.borrow_mut().push(format!("exit {pid}"));
        }
        fn on_drop_inode(&self, _ctx: &mut HookCtx<'_>, _loc: FileLoc) {
            self.log.borrow_mut().push("drop_inode".into());
        }
    }

    impl crate::events::ProvenanceKernel for SpyModule {
        fn dp_mkobj(
            &self,
            _ctx: &mut HookCtx<'_>,
            _pid: Pid,
            _volume: Option<VolumeId>,
        ) -> dpapi::Result<Handle> {
            Ok(Handle::from_raw(1))
        }
        fn dp_reviveobj(
            &self,
            _ctx: &mut HookCtx<'_>,
            _pid: Pid,
            _pnode: Pnode,
            _version: Version,
        ) -> dpapi::Result<Handle> {
            Err(dpapi::DpapiError::Unsupported("spy"))
        }
        fn dp_read(
            &self,
            _ctx: &mut HookCtx<'_>,
            _pid: Pid,
            _h: Handle,
            _offset: u64,
            _len: usize,
        ) -> dpapi::Result<ReadResult> {
            Err(dpapi::DpapiError::Unsupported("spy"))
        }
        fn dp_write(
            &self,
            _ctx: &mut HookCtx<'_>,
            _pid: Pid,
            _h: Handle,
            _offset: u64,
            _data: &[u8],
            _bundle: Bundle,
        ) -> dpapi::Result<WriteResult> {
            Err(dpapi::DpapiError::Unsupported("spy"))
        }
        fn dp_freeze(
            &self,
            _ctx: &mut HookCtx<'_>,
            _pid: Pid,
            _h: Handle,
        ) -> dpapi::Result<Version> {
            Err(dpapi::DpapiError::Unsupported("spy"))
        }
        fn dp_sync(&self, _ctx: &mut HookCtx<'_>, _pid: Pid, _h: Handle) -> dpapi::Result<()> {
            Ok(())
        }
        fn dp_close(&self, _ctx: &mut HookCtx<'_>, _pid: Pid, _h: Handle) -> dpapi::Result<()> {
            Ok(())
        }
        fn dp_handle_for_file(
            &self,
            _ctx: &mut HookCtx<'_>,
            _pid: Pid,
            _loc: FileLoc,
        ) -> dpapi::Result<Handle> {
            Ok(Handle::from_raw(2))
        }
    }

    #[test]
    fn module_hooks_fire_in_order() {
        let (mut k, pid) = kernel();
        let spy = Rc::new(SpyModule::default());
        k.install_module(spy.clone());
        k.write_file(pid, "/bin-ls", b"ELF").unwrap();
        let child = k.fork(pid).unwrap();
        k.execve(child, "/bin-ls", &["ls".into()], &[]).unwrap();
        k.write_file(child, "/out", b"o").unwrap();
        k.unlink(child, "/out").unwrap();
        k.exit(child);
        let log = spy.log.borrow().clone();
        assert!(log.iter().any(|l| l.starts_with("fork pid1->pid2")));
        assert!(log.iter().any(|l| l.starts_with("exec pid2 /bin-ls")));
        assert!(log.iter().any(|l| l == "open /out true"));
        assert!(log.iter().any(|l| l == "drop_inode"));
        assert!(log.iter().any(|l| l == "exit pid2"));
    }

    #[test]
    fn pass_calls_require_module() {
        let (mut k, pid) = kernel();
        assert!(k.pass_mkobj(pid, None).is_err());
        let spy = Rc::new(SpyModule::default());
        k.install_module(spy);
        assert_eq!(k.pass_mkobj(pid, None).unwrap(), Handle::from_raw(1));
    }

    #[test]
    fn pass_commit_charges_one_syscall_per_batch() {
        let (mut k, pid) = kernel();
        let spy = Rc::new(SpyModule::default());
        k.install_module(spy);
        let before = k.stats().syscalls;
        let mut txn = dpapi::Txn::new();
        txn.mkobj(None)
            .sync(Handle::from_raw(1))
            .sync(Handle::from_raw(1));
        let results = k.pass_commit(pid, txn).unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[0], dpapi::OpResult::Made(Handle::from_raw(1)));
        let s = k.stats();
        assert_eq!(s.syscalls, before + 1, "a batch is one syscall");
        assert_eq!(s.dpapi_txns, 1);
        assert_eq!(s.dpapi_txn_ops, 3);
    }

    #[test]
    fn pass_commit_abort_survives_the_syscall_boundary() {
        let (mut k, pid) = kernel();
        let spy = Rc::new(SpyModule::default());
        k.install_module(spy);
        let mut txn = dpapi::Txn::new();
        txn.sync(Handle::from_raw(1)).freeze(Handle::from_raw(1));
        let err = k.pass_commit(pid, txn).unwrap_err();
        // The structured per-op abort crosses the FsError boundary
        // intact (no stringly conversion).
        assert_eq!(
            err,
            FsError::Provenance(dpapi::DpapiError::aborted_at(
                1,
                dpapi::DpapiError::Unsupported("spy"),
            ))
        );
    }

    #[test]
    fn execve_records_identity_absence_on_plain_fs() {
        let (mut k, pid) = kernel();
        k.write_file(pid, "/prog", b"binary").unwrap();
        // No module installed: execve still succeeds and charges cost.
        let before = k.clock().now();
        k.execve(pid, "/prog", &["prog".into()], &["A=1".into()])
            .unwrap();
        assert!(k.clock().now() > before);
        let p = k.process(pid).unwrap();
        assert_eq!(p.exe, "/prog");
        assert_eq!(p.env, vec!["A=1".to_string()]);
    }
}
