//! A compact O(1) LRU set used for page-cache accounting.
//!
//! The simulator does not store page *contents* in the cache (file
//! data lives in the inodes for correctness); the cache tracks which
//! pages are resident so reads can be classified as hits or misses
//! and evictions of dirty pages can be charged as writebacks.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

struct Node<K> {
    key: K,
    prev: usize,
    next: usize,
    dirty: bool,
}

/// An LRU set with a dirty bit per entry.
pub struct LruSet<K: Eq + Hash + Clone> {
    map: HashMap<K, usize>,
    nodes: Vec<Node<K>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
}

/// What happened when an entry was inserted or touched.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CacheOutcome<K> {
    /// The key was already resident.
    Hit,
    /// The key was inserted without evicting anything.
    Miss,
    /// The key was inserted and the returned key was evicted; the
    /// boolean reports whether the victim was dirty (requiring
    /// writeback).
    Evicted(K, bool),
}

impl<K: Eq + Hash + Clone> LruSet<K> {
    /// Creates an LRU set holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruSet {
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity: capacity.max(1),
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// True if `key` is resident (does not touch recency).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn attach_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Touches `key`, inserting it if absent. `dirty` is OR-ed into
    /// the entry's dirty bit. Returns what happened, including any
    /// eviction this insertion forced.
    pub fn touch(&mut self, key: K, dirty: bool) -> CacheOutcome<K> {
        if let Some(&idx) = self.map.get(&key) {
            self.detach(idx);
            self.attach_front(idx);
            self.nodes[idx].dirty |= dirty;
            return CacheOutcome::Hit;
        }
        let mut outcome = CacheOutcome::Miss;
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.detach(victim);
            let vkey = self.nodes[victim].key.clone();
            let vdirty = self.nodes[victim].dirty;
            self.map.remove(&vkey);
            self.free.push(victim);
            outcome = CacheOutcome::Evicted(vkey, vdirty);
        }
        let idx = if let Some(idx) = self.free.pop() {
            self.nodes[idx] = Node {
                key: key.clone(),
                prev: NIL,
                next: NIL,
                dirty,
            };
            idx
        } else {
            self.nodes.push(Node {
                key: key.clone(),
                prev: NIL,
                next: NIL,
                dirty,
            });
            self.nodes.len() - 1
        };
        self.map.insert(key, idx);
        self.attach_front(idx);
        outcome
    }

    /// Removes `key` if resident, returning its dirty bit.
    pub fn remove(&mut self, key: &K) -> Option<bool> {
        let idx = self.map.remove(key)?;
        self.detach(idx);
        self.free.push(idx);
        Some(self.nodes[idx].dirty)
    }

    /// Clears the dirty bit of `key` (after writeback).
    pub fn mark_clean(&mut self, key: &K) {
        if let Some(&idx) = self.map.get(key) {
            self.nodes[idx].dirty = false;
        }
    }

    /// Returns all dirty keys (unordered) and marks them clean.
    pub fn take_dirty(&mut self) -> Vec<K> {
        let mut out = Vec::new();
        for node in &mut self.nodes {
            if node.dirty && self.map.contains_key(&node.key) {
                node.dirty = false;
                out.push(node.key.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_eviction_order() {
        let mut lru = LruSet::new(2);
        assert_eq!(lru.touch(1, false), CacheOutcome::Miss);
        assert_eq!(lru.touch(2, false), CacheOutcome::Miss);
        assert_eq!(lru.touch(1, false), CacheOutcome::Hit);
        // 2 is now least recently used and gets evicted.
        assert_eq!(lru.touch(3, false), CacheOutcome::Evicted(2, false));
        assert!(lru.contains(&1));
        assert!(lru.contains(&3));
        assert!(!lru.contains(&2));
    }

    #[test]
    fn dirty_bit_survives_touches_and_reports_on_eviction() {
        let mut lru = LruSet::new(1);
        lru.touch(7, true);
        lru.touch(7, false); // does not clear dirty
        match lru.touch(8, false) {
            CacheOutcome::Evicted(7, true) => {}
            other => panic!("expected dirty eviction, got {other:?}"),
        }
    }

    #[test]
    fn mark_clean_and_take_dirty() {
        let mut lru = LruSet::new(4);
        lru.touch("a", true);
        lru.touch("b", true);
        lru.touch("c", false);
        lru.mark_clean(&"a");
        let mut dirty = lru.take_dirty();
        dirty.sort();
        assert_eq!(dirty, vec!["b"]);
        assert!(lru.take_dirty().is_empty());
    }

    #[test]
    fn remove_returns_dirty_state() {
        let mut lru = LruSet::new(4);
        lru.touch(1, true);
        lru.touch(2, false);
        assert_eq!(lru.remove(&1), Some(true));
        assert_eq!(lru.remove(&2), Some(false));
        assert_eq!(lru.remove(&3), None);
        assert!(lru.is_empty());
    }

    #[test]
    fn reuses_slots_after_removal() {
        let mut lru = LruSet::new(2);
        for i in 0..100 {
            lru.touch(i, i % 2 == 0);
        }
        assert_eq!(lru.len(), 2);
        // Internal node storage should not have grown unboundedly.
        assert!(lru.nodes.len() <= 3);
    }

    #[test]
    fn capacity_one_always_evicts_previous() {
        let mut lru = LruSet::new(1);
        lru.touch(1, false);
        assert_eq!(lru.touch(2, false), CacheOutcome::Evicted(1, false));
        assert_eq!(lru.touch(3, false), CacheOutcome::Evicted(2, false));
        assert_eq!(lru.len(), 1);
    }
}
