//! The base (lower) file system: an ext3-in-ordered-mode analogue.
//!
//! File contents live in memory for correctness; all timing flows
//! through the shared [`Clock`] via a page cache, a metadata journal
//! and a [`Disk`] with head-position accounting. Metadata operations
//! are batched into journal transactions; in ordered mode a commit
//! first writes back dirty data pages, then the journal blocks — the
//! behaviour the paper's Mercurial benchmark stresses.

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::clock::Clock;
use crate::cost::{CostModel, BLOCK_SIZE};
use crate::disk::{Disk, DiskStats};
use crate::fs::{DirEntry, FileAttr, FileSystem, FileType, FsError, FsResult, FsUsage, Ino};
use crate::lru::{CacheOutcome, LruSet};

/// Journal batching: commit after this many pending metadata ops.
const JOURNAL_BATCH: u32 = 64;
/// Auto-writeback threshold: flush when this many pages are dirty.
const DIRTY_FLUSH_PAGES: usize = 4096; // 16 MB

type PageKey = (u64, u64); // (ino, page index)

enum InodeKind {
    File { data: Vec<u8> },
    Dir { children: BTreeMap<String, Ino> },
}

struct Inode {
    kind: InodeKind,
    nlink: u32,
}

/// Configuration for a [`BaseFs`].
#[derive(Clone, Copy, Debug)]
pub struct BaseFsConfig {
    /// Page-cache capacity in 4 KB pages (default ≈ 384 MB, modelling
    /// the paper's 512 MB machine after kernel overhead).
    pub cache_pages: usize,
    /// Journal region size in blocks.
    pub journal_blocks: u64,
}

impl Default for BaseFsConfig {
    fn default() -> Self {
        BaseFsConfig {
            cache_pages: 98_304,
            journal_blocks: 8_192,
        }
    }
}

/// The simulated lower file system.
pub struct BaseFs {
    clock: Clock,
    model: CostModel,
    disk: Disk,
    inodes: HashMap<u64, Inode>,
    next_ino: u64,
    root: Ino,
    journal_start: u64,
    journal_len: u64,
    journal_at: u64,
    pending_journal: u32,
    page_blocks: HashMap<PageKey, u64>,
    cache: LruSet<PageKey>,
    dirty: HashSet<PageKey>,
    data_bytes: u64,
    prev_sizes: HashMap<u64, u64>,
}

impl BaseFs {
    /// Creates an empty file system on a fresh disk.
    pub fn new(clock: Clock, model: CostModel) -> BaseFs {
        BaseFs::with_config(clock, model, BaseFsConfig::default())
    }

    /// Creates an empty file system with explicit cache/journal sizes.
    pub fn with_config(clock: Clock, model: CostModel, cfg: BaseFsConfig) -> BaseFs {
        let mut disk = Disk::new(clock.clone(), model.disk);
        let journal_start = disk.alloc_region(cfg.journal_blocks);
        let mut inodes = HashMap::new();
        inodes.insert(
            1,
            Inode {
                kind: InodeKind::Dir {
                    children: BTreeMap::new(),
                },
                nlink: 2,
            },
        );
        BaseFs {
            clock,
            model,
            disk,
            inodes,
            next_ino: 2,
            root: Ino(1),
            journal_start,
            journal_len: cfg.journal_blocks,
            journal_at: journal_start,
            pending_journal: 0,
            page_blocks: HashMap::new(),
            cache: LruSet::new(cfg.cache_pages),
            dirty: HashSet::new(),
            data_bytes: 0,
            prev_sizes: HashMap::new(),
        }
    }

    /// Disk statistics (seeks, blocks, busy time) for reporting.
    pub fn disk_stats(&self) -> DiskStats {
        self.disk.stats()
    }

    /// The shared clock, for layered file systems stacked on top.
    pub fn clock(&self) -> Clock {
        self.clock.clone()
    }

    /// The cost model in force.
    pub fn model(&self) -> CostModel {
        self.model
    }

    fn inode(&self, ino: Ino) -> FsResult<&Inode> {
        self.inodes
            .get(&ino.0)
            .ok_or_else(|| FsError::NotFound(format!("{ino}")))
    }

    fn inode_mut(&mut self, ino: Ino) -> FsResult<&mut Inode> {
        self.inodes
            .get_mut(&ino.0)
            .ok_or_else(|| FsError::NotFound(format!("{ino}")))
    }

    fn dir_children(&self, ino: Ino) -> FsResult<&BTreeMap<String, Ino>> {
        match &self.inode(ino)?.kind {
            InodeKind::Dir { children } => Ok(children),
            InodeKind::File { .. } => Err(FsError::NotADirectory(format!("{ino}"))),
        }
    }

    fn dir_children_mut(&mut self, ino: Ino) -> FsResult<&mut BTreeMap<String, Ino>> {
        match &mut self.inode_mut(ino)?.kind {
            InodeKind::Dir { children } => Ok(children),
            InodeKind::File { .. } => Err(FsError::NotADirectory(format!("{ino}"))),
        }
    }

    fn check_name(name: &str) -> FsResult<()> {
        if name.is_empty() || name.contains('/') {
            return Err(FsError::Invalid(format!("bad name {name:?}")));
        }
        Ok(())
    }

    fn alloc_ino(&mut self, kind: InodeKind) -> Ino {
        let n = self.next_ino;
        self.next_ino += 1;
        self.inodes.insert(n, Inode { kind, nlink: 1 });
        Ino(n)
    }

    /// Records one metadata operation in the journal, committing the
    /// batch when full.
    fn journal_op(&mut self) {
        self.pending_journal += 1;
        if self.pending_journal >= JOURNAL_BATCH {
            self.commit_journal();
        }
    }

    /// Commits the journal: ordered mode writes dirty data first, then
    /// the journal blocks (descriptor blocks + commit block).
    fn commit_journal(&mut self) {
        if self.pending_journal == 0 {
            return;
        }
        self.flush_dirty_pages();
        let nblocks = (u64::from(self.pending_journal)).div_ceil(16) + 1;
        if self.journal_at + nblocks > self.journal_start + self.journal_len {
            self.journal_at = self.journal_start;
        }
        self.disk.access(self.journal_at, nblocks, true);
        self.journal_at += nblocks;
        self.pending_journal = 0;
    }

    /// Writes back every dirty page, elevator-sorted so contiguous
    /// blocks coalesce into single accesses.
    fn flush_dirty_pages(&mut self) {
        if self.dirty.is_empty() {
            return;
        }
        let mut blocks: Vec<u64> = self
            .dirty
            .iter()
            .filter_map(|k| self.page_blocks.get(k).copied())
            .collect();
        self.dirty.clear();
        blocks.sort_unstable();
        let mut i = 0;
        while i < blocks.len() {
            let start = blocks[i];
            let mut run = 1;
            while i + run < blocks.len() && blocks[i + run] == start + run as u64 {
                run += 1;
            }
            self.disk.access(start, run as u64, true);
            i += run;
        }
    }

    /// Touches one page in the cache, charging writeback if a dirty
    /// victim is evicted.
    fn cache_touch(&mut self, key: PageKey, dirty: bool) -> bool {
        if dirty {
            self.dirty.insert(key);
        }
        match self.cache.touch(key, false) {
            CacheOutcome::Hit => true,
            CacheOutcome::Miss => false,
            CacheOutcome::Evicted(victim, _) => {
                if self.dirty.remove(&victim) {
                    if let Some(block) = self.page_blocks.get(&victim).copied() {
                        self.disk.access(block, 1, true);
                    }
                }
                false
            }
        }
    }

    fn forget_file_pages(&mut self, ino: Ino, from_page: u64) {
        let keys: Vec<PageKey> = self
            .page_blocks
            .keys()
            .filter(|(i, p)| *i == ino.0 && *p >= from_page)
            .copied()
            .collect();
        for k in keys {
            self.page_blocks.remove(&k);
            self.cache.remove(&k);
            self.dirty.remove(&k);
        }
    }
}

impl FileSystem for BaseFs {
    fn root(&self) -> Ino {
        self.root
    }

    fn lookup(&mut self, dir: Ino, name: &str) -> FsResult<Ino> {
        self.dir_children(dir)?
            .get(name)
            .copied()
            .ok_or_else(|| FsError::NotFound(name.to_string()))
    }

    fn create(&mut self, dir: Ino, name: &str) -> FsResult<Ino> {
        Self::check_name(name)?;
        if self.dir_children(dir)?.contains_key(name) {
            return Err(FsError::Exists(name.to_string()));
        }
        let ino = self.alloc_ino(InodeKind::File { data: Vec::new() });
        self.dir_children_mut(dir)?.insert(name.to_string(), ino);
        self.journal_op();
        Ok(ino)
    }

    fn mkdir(&mut self, dir: Ino, name: &str) -> FsResult<Ino> {
        Self::check_name(name)?;
        if self.dir_children(dir)?.contains_key(name) {
            return Err(FsError::Exists(name.to_string()));
        }
        let ino = self.alloc_ino(InodeKind::Dir {
            children: BTreeMap::new(),
        });
        self.dir_children_mut(dir)?.insert(name.to_string(), ino);
        self.journal_op();
        Ok(ino)
    }

    fn unlink(&mut self, dir: Ino, name: &str) -> FsResult<()> {
        let ino = self.lookup(dir, name)?;
        match &self.inode(ino)?.kind {
            InodeKind::Dir { children } => {
                if !children.is_empty() {
                    return Err(FsError::NotEmpty(name.to_string()));
                }
            }
            InodeKind::File { .. } => {}
        }
        self.dir_children_mut(dir)?.remove(name);
        let node = self.inode_mut(ino)?;
        node.nlink = node.nlink.saturating_sub(1);
        if node.nlink == 0 {
            if let InodeKind::File { data } = &node.kind {
                self.data_bytes -= data.len() as u64;
                self.prev_sizes.remove(&ino.0);
            }
            self.inodes.remove(&ino.0);
            self.forget_file_pages(ino, 0);
        }
        self.journal_op();
        Ok(())
    }

    fn rename(&mut self, from: Ino, name: &str, to: Ino, to_name: &str) -> FsResult<()> {
        Self::check_name(to_name)?;
        let ino = self.lookup(from, name)?;
        // Replace an existing target, like rename(2).
        if self.dir_children(to)?.contains_key(to_name) {
            self.unlink(to, to_name)?;
        }
        self.dir_children_mut(from)?.remove(name);
        self.dir_children_mut(to)?.insert(to_name.to_string(), ino);
        self.journal_op();
        Ok(())
    }

    fn read(&mut self, ino: Ino, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        let data = match &self.inode(ino)?.kind {
            InodeKind::File { data } => data,
            InodeKind::Dir { .. } => {
                return Err(FsError::Invalid("read of a directory".into()));
            }
        };
        let start = (offset as usize).min(data.len());
        let end = (start + len).min(data.len());
        let out = data[start..end].to_vec();
        // Charge the copy out of the page cache.
        self.clock.advance(self.model.copy_cost(out.len()));
        // Classify pages as hits or misses; coalesce miss runs.
        let first_page = offset / BLOCK_SIZE as u64;
        let last_page = (offset + end.saturating_sub(start) as u64) / BLOCK_SIZE as u64;
        let mut miss_blocks: Vec<u64> = Vec::new();
        for page in first_page..=last_page {
            let key = (ino.0, page);
            if !self.cache.contains(&key) {
                if let Some(b) = self.page_blocks.get(&key).copied() {
                    miss_blocks.push(b);
                }
            }
            self.cache_touch(key, false);
        }
        miss_blocks.sort_unstable();
        let mut i = 0;
        while i < miss_blocks.len() {
            let start_b = miss_blocks[i];
            let mut run = 1;
            while i + run < miss_blocks.len() && miss_blocks[i + run] == start_b + run as u64 {
                run += 1;
            }
            self.disk.access(start_b, run as u64, false);
            i += run;
        }
        Ok(out)
    }

    fn write(&mut self, ino: Ino, offset: u64, buf: &[u8]) -> FsResult<usize> {
        {
            let node = self.inode_mut(ino)?;
            let data = match &mut node.kind {
                InodeKind::File { data } => data,
                InodeKind::Dir { .. } => {
                    return Err(FsError::Invalid("write to a directory".into()));
                }
            };
            let end = offset as usize + buf.len();
            if data.len() < end {
                data.resize(end, 0);
            }
            data[offset as usize..end].copy_from_slice(buf);
        }
        let new_len = match &self.inode(ino)?.kind {
            InodeKind::File { data } => data.len() as u64,
            InodeKind::Dir { .. } => unreachable!(),
        };
        self.recompute_size_delta(ino, new_len);

        self.clock.advance(self.model.copy_cost(buf.len()));
        let first_page = offset / BLOCK_SIZE as u64;
        let last_page = (offset + buf.len().max(1) as u64 - 1) / BLOCK_SIZE as u64;
        for page in first_page..=last_page {
            let key = (ino.0, page);
            if !self.page_blocks.contains_key(&key) {
                let block = self.disk.alloc_region(1);
                self.page_blocks.insert(key, block);
            }
            self.cache_touch(key, true);
        }
        if self.dirty.len() >= DIRTY_FLUSH_PAGES {
            self.flush_dirty_pages();
        }
        Ok(buf.len())
    }

    fn truncate(&mut self, ino: Ino, size: u64) -> FsResult<()> {
        let node = self.inode_mut(ino)?;
        let data = match &mut node.kind {
            InodeKind::File { data } => data,
            InodeKind::Dir { .. } => {
                return Err(FsError::Invalid("truncate of a directory".into()));
            }
        };
        data.resize(size as usize, 0);
        self.recompute_size_delta(ino, size);
        let keep_pages = size.div_ceil(BLOCK_SIZE as u64);
        self.forget_file_pages(ino, keep_pages);
        self.journal_op();
        Ok(())
    }

    fn getattr(&mut self, ino: Ino) -> FsResult<FileAttr> {
        let node = self.inode(ino)?;
        Ok(match &node.kind {
            InodeKind::File { data } => FileAttr {
                ino,
                ftype: FileType::Regular,
                size: data.len() as u64,
                nlink: node.nlink,
            },
            InodeKind::Dir { .. } => FileAttr {
                ino,
                ftype: FileType::Directory,
                size: 0,
                nlink: node.nlink,
            },
        })
    }

    fn readdir(&mut self, dir: Ino) -> FsResult<Vec<DirEntry>> {
        let children = self.dir_children(dir)?.clone();
        children
            .into_iter()
            .map(|(name, ino)| {
                let ftype = match &self.inode(ino)?.kind {
                    InodeKind::File { .. } => FileType::Regular,
                    InodeKind::Dir { .. } => FileType::Directory,
                };
                Ok(DirEntry { name, ino, ftype })
            })
            .collect()
    }

    fn sync(&mut self) -> FsResult<()> {
        self.commit_journal();
        self.flush_dirty_pages();
        Ok(())
    }

    fn fsync(&mut self, ino: Ino) -> FsResult<()> {
        // Flush this file's dirty pages, then commit metadata.
        let mut blocks: Vec<u64> = self
            .dirty
            .iter()
            .filter(|(i, _)| *i == ino.0)
            .filter_map(|k| self.page_blocks.get(k).copied())
            .collect();
        self.dirty.retain(|(i, _)| *i != ino.0);
        blocks.sort_unstable();
        let mut i = 0;
        while i < blocks.len() {
            let start = blocks[i];
            let mut run = 1;
            while i + run < blocks.len() && blocks[i + run] == start + run as u64 {
                run += 1;
            }
            self.disk.access(start, run as u64, true);
            i += run;
        }
        // A single journal block for this file's metadata; full
        // commits happen on sync() or when the batch fills.
        if self.pending_journal > 0 {
            if self.journal_at + 1 > self.journal_start + self.journal_len {
                self.journal_at = self.journal_start;
            }
            self.disk.access(self.journal_at, 1, true);
            self.journal_at += 1;
        }
        Ok(())
    }

    fn usage(&self) -> FsUsage {
        let meta: u64 = self
            .inodes
            .values()
            .map(|n| {
                128 + match &n.kind {
                    InodeKind::Dir { children } => {
                        children.keys().map(|k| k.len() as u64 + 8).sum::<u64>()
                    }
                    InodeKind::File { .. } => 0,
                }
            })
            .sum();
        FsUsage {
            data_bytes: self.data_bytes,
            meta_bytes: meta,
            provenance_bytes: 0,
        }
    }
}

impl BaseFs {
    /// Maintains the running `data_bytes` sum when a file's size
    /// changes to `new_len`.
    fn recompute_size_delta(&mut self, ino: Ino, new_len: u64) {
        let prev = self.prev_sizes.entry(ino.0).or_insert(0);
        self.data_bytes = (self.data_bytes - *prev) + new_len;
        *prev = new_len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> BaseFs {
        BaseFs::new(Clock::new(), CostModel::default())
    }

    #[test]
    fn create_write_read_roundtrip() {
        let mut f = fs();
        let root = f.root();
        let ino = f.create(root, "a.txt").unwrap();
        f.write(ino, 0, b"hello world").unwrap();
        assert_eq!(f.read(ino, 0, 5).unwrap(), b"hello");
        assert_eq!(f.read(ino, 6, 100).unwrap(), b"world");
        assert_eq!(f.getattr(ino).unwrap().size, 11);
    }

    #[test]
    fn lookup_and_errors() {
        let mut f = fs();
        let root = f.root();
        let d = f.mkdir(root, "dir").unwrap();
        let a = f.create(d, "x").unwrap();
        assert_eq!(f.lookup(d, "x").unwrap(), a);
        assert!(matches!(f.lookup(d, "y"), Err(FsError::NotFound(_))));
        assert!(matches!(f.create(d, "x"), Err(FsError::Exists(_))));
        assert!(matches!(f.lookup(a, "z"), Err(FsError::NotADirectory(_))));
        assert!(matches!(f.create(root, "a/b"), Err(FsError::Invalid(_))));
    }

    #[test]
    fn unlink_removes_and_frees_space() {
        let mut f = fs();
        let root = f.root();
        let ino = f.create(root, "f").unwrap();
        f.write(ino, 0, &vec![7u8; 10_000]).unwrap();
        assert_eq!(f.usage().data_bytes, 10_000);
        f.unlink(root, "f").unwrap();
        assert_eq!(f.usage().data_bytes, 0);
        assert!(matches!(f.lookup(root, "f"), Err(FsError::NotFound(_))));
    }

    #[test]
    fn unlink_refuses_nonempty_dir() {
        let mut f = fs();
        let root = f.root();
        let d = f.mkdir(root, "d").unwrap();
        f.create(d, "x").unwrap();
        assert!(matches!(f.unlink(root, "d"), Err(FsError::NotEmpty(_))));
        f.unlink(d, "x").unwrap();
        f.unlink(root, "d").unwrap();
    }

    #[test]
    fn rename_moves_and_replaces() {
        let mut f = fs();
        let root = f.root();
        let a = f.create(root, "a").unwrap();
        f.write(a, 0, b"A").unwrap();
        let b = f.create(root, "b").unwrap();
        f.write(b, 0, b"B").unwrap();
        f.rename(root, "a", root, "b").unwrap();
        assert_eq!(f.lookup(root, "b").unwrap(), a);
        assert!(matches!(f.lookup(root, "a"), Err(FsError::NotFound(_))));
        assert_eq!(f.read(a, 0, 1).unwrap(), b"A");
        // The replaced file's bytes were freed.
        assert_eq!(f.usage().data_bytes, 1);
    }

    #[test]
    fn readdir_lists_sorted_entries() {
        let mut f = fs();
        let root = f.root();
        f.create(root, "b").unwrap();
        f.create(root, "a").unwrap();
        f.mkdir(root, "c").unwrap();
        let names: Vec<String> = f
            .readdir(root)
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn cached_reads_cost_less_than_cold_reads() {
        let clock = Clock::new();
        let mut f = BaseFs::new(clock.clone(), CostModel::default());
        let root = f.root();
        let ino = f.create(root, "big").unwrap();
        let payload = vec![1u8; 64 * 1024];
        f.write(ino, 0, &payload).unwrap();
        f.sync().unwrap();

        let (_, warm) = clock.measure(|| f.read(ino, 0, payload.len()).unwrap());

        // Evict by building a tiny-cache FS and reloading cold.
        let clock2 = Clock::new();
        let mut f2 = BaseFs::with_config(
            clock2.clone(),
            CostModel::default(),
            BaseFsConfig {
                cache_pages: 4,
                journal_blocks: 128,
            },
        );
        let root2 = f2.root();
        let i2 = f2.create(root2, "big").unwrap();
        f2.write(i2, 0, &payload).unwrap();
        f2.sync().unwrap();
        // Push the file out of the 4-page cache.
        let other = f2.create(root2, "other").unwrap();
        f2.write(other, 0, &vec![0u8; 64 * 1024]).unwrap();
        f2.sync().unwrap();
        let (_, cold) = clock2.measure(|| f2.read(i2, 0, payload.len()).unwrap());
        assert!(
            cold > warm * 5,
            "cold read ({cold} ns) should dwarf warm read ({warm} ns)"
        );
    }

    #[test]
    fn sync_writes_back_dirty_pages_once() {
        let mut f = fs();
        let root = f.root();
        let ino = f.create(root, "f").unwrap();
        f.write(ino, 0, &vec![0u8; BLOCK_SIZE * 8]).unwrap();
        f.sync().unwrap();
        let written = f.disk_stats().blocks_written;
        assert!(
            written >= 8,
            "expected at least 8 data blocks, got {written}"
        );
        // A second sync with nothing dirty writes nothing new.
        f.sync().unwrap();
        assert_eq!(f.disk_stats().blocks_written, written);
    }

    #[test]
    fn truncate_shrinks_and_frees_pages() {
        let mut f = fs();
        let root = f.root();
        let ino = f.create(root, "f").unwrap();
        f.write(ino, 0, &vec![9u8; BLOCK_SIZE * 4]).unwrap();
        f.truncate(ino, 10).unwrap();
        assert_eq!(f.getattr(ino).unwrap().size, 10);
        assert_eq!(f.usage().data_bytes, 10);
        assert_eq!(f.read(ino, 0, 100).unwrap().len(), 10);
    }

    #[test]
    fn sparse_write_reads_zeros_without_disk_access() {
        let mut f = fs();
        let root = f.root();
        let ino = f.create(root, "sparse").unwrap();
        f.write(ino, (BLOCK_SIZE * 10) as u64, b"end").unwrap();
        let head = f.read(ino, 0, 4).unwrap();
        assert_eq!(head, vec![0, 0, 0, 0]);
    }

    #[test]
    fn metadata_ops_are_journal_batched() {
        let mut f = fs();
        let root = f.root();
        for i in 0..(JOURNAL_BATCH - 1) {
            f.create(root, &format!("f{i}")).unwrap();
        }
        // Not yet committed: no journal blocks written.
        assert_eq!(f.disk_stats().blocks_written, 0);
        f.create(root, "tip").unwrap();
        assert!(f.disk_stats().blocks_written > 0);
    }
}
