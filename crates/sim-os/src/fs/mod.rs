//! The virtual file system layer.
//!
//! Mounted file systems implement [`FileSystem`]; provenance-aware
//! file systems (Lasagna, the PA-NFS client) additionally implement
//! [`DpapiVolume`], which is how the kernel's PASS module reaches the
//! DPAPI of the volume backing a given file.

pub mod basefs;

use std::fmt;

use dpapi::{Bundle, Handle, ObjectRef, Pnode, ReadResult, Version, VolumeId, WriteResult};

/// An inode number within one file system.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Ino(pub u64);

impl fmt::Display for Ino {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// File-system errors.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FsError {
    /// Path component not found.
    NotFound(String),
    /// A directory was required (or forbidden).
    NotADirectory(String),
    /// Name already exists.
    Exists(String),
    /// Directory not empty on remove.
    NotEmpty(String),
    /// Invalid argument (bad offset, bad name).
    Invalid(String),
    /// Provenance subsystem failure surfaced through the VFS.
    Provenance(dpapi::DpapiError),
    /// The file system is out of space.
    NoSpace,
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "not found: {p}"),
            FsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            FsError::Exists(p) => write!(f, "already exists: {p}"),
            FsError::NotEmpty(p) => write!(f, "directory not empty: {p}"),
            FsError::Invalid(m) => write!(f, "invalid argument: {m}"),
            FsError::Provenance(e) => write!(f, "provenance error: {e}"),
            FsError::NoSpace => write!(f, "no space left on device"),
        }
    }
}

impl std::error::Error for FsError {}

impl From<dpapi::DpapiError> for FsError {
    fn from(e: dpapi::DpapiError) -> Self {
        FsError::Provenance(e)
    }
}

impl From<FsError> for dpapi::DpapiError {
    /// The inverse of `From<DpapiError> for FsError`: a provenance
    /// error crossing back out of the VFS is returned **unchanged**
    /// (so structured errors like [`dpapi::DpapiError::TxnAborted`]
    /// survive the syscall boundary with their per-op index intact);
    /// genuine file-system failures surface as I/O errors.
    ///
    /// These two impls are the only conversions between the types —
    /// every layer routes through them instead of ad-hoc stringly
    /// mappings, which is what makes the round trip lossless for
    /// provenance errors.
    fn from(e: FsError) -> Self {
        match e {
            FsError::Provenance(d) => d,
            other => dpapi::DpapiError::Io(other.to_string()),
        }
    }
}

/// Result alias for VFS operations.
pub type FsResult<T> = Result<T, FsError>;

/// The type of an inode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FileType {
    /// Regular file.
    Regular,
    /// Directory.
    Directory,
}

/// Stat information for an inode.
#[derive(Clone, Copy, Debug)]
pub struct FileAttr {
    /// The inode number.
    pub ino: Ino,
    /// Regular file or directory.
    pub ftype: FileType,
    /// Size in bytes (0 for directories).
    pub size: u64,
    /// Link count.
    pub nlink: u32,
}

/// One directory entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name (no slashes).
    pub name: String,
    /// Inode the name resolves to.
    pub ino: Ino,
    /// Entry type.
    pub ftype: FileType,
}

/// Aggregate space usage, the basis of the Table 3 space-overhead
/// comparison.
#[derive(Clone, Copy, Debug, Default)]
pub struct FsUsage {
    /// Bytes of file data stored.
    pub data_bytes: u64,
    /// Bytes of metadata (directories, inode table approximation).
    pub meta_bytes: u64,
    /// Bytes of provenance log (zero for non-PASS volumes).
    pub provenance_bytes: u64,
}

/// A mounted file system.
///
/// All operations are inode-based; path walking lives in the kernel.
/// Costs (virtual time) are charged internally by each implementation
/// against the shared [`Clock`](crate::clock::Clock).
pub trait FileSystem {
    /// The root directory inode.
    fn root(&self) -> Ino;

    /// Resolves `name` inside directory `dir`.
    fn lookup(&mut self, dir: Ino, name: &str) -> FsResult<Ino>;

    /// Creates a regular file `name` in `dir`.
    fn create(&mut self, dir: Ino, name: &str) -> FsResult<Ino>;

    /// Creates a directory `name` in `dir`.
    fn mkdir(&mut self, dir: Ino, name: &str) -> FsResult<Ino>;

    /// Removes the file or empty directory `name` from `dir`.
    fn unlink(&mut self, dir: Ino, name: &str) -> FsResult<()>;

    /// Renames `name` in `from` to `to_name` in `to`, replacing any
    /// existing target file.
    fn rename(&mut self, from: Ino, name: &str, to: Ino, to_name: &str) -> FsResult<()>;

    /// Reads up to `len` bytes at `offset`.
    fn read(&mut self, ino: Ino, offset: u64, len: usize) -> FsResult<Vec<u8>>;

    /// Writes `data` at `offset`, extending the file if needed.
    fn write(&mut self, ino: Ino, offset: u64, data: &[u8]) -> FsResult<usize>;

    /// Truncates the file to `size` bytes.
    fn truncate(&mut self, ino: Ino, size: u64) -> FsResult<()>;

    /// Returns stat information.
    fn getattr(&mut self, ino: Ino) -> FsResult<FileAttr>;

    /// Lists a directory.
    fn readdir(&mut self, dir: Ino) -> FsResult<Vec<DirEntry>>;

    /// Flushes dirty state to the simulated disk.
    fn sync(&mut self) -> FsResult<()>;

    /// Flushes one file's dirty pages (and the journal). The default
    /// falls back to a full sync.
    fn fsync(&mut self, _ino: Ino) -> FsResult<()> {
        self.sync()
    }

    /// Notification that a descriptor for `ino` was closed after
    /// writing. Network file systems use this for close-to-open
    /// consistency (flush on close); local file systems ignore it.
    fn close_hint(&mut self, _ino: Ino) -> FsResult<()> {
        Ok(())
    }

    /// Space usage for Table 3 accounting.
    fn usage(&self) -> FsUsage;

    /// Access to the volume's DPAPI, if this file system is
    /// provenance-aware. The default is not provenance-aware.
    fn as_dpapi(&mut self) -> Option<&mut dyn DpapiVolume> {
        None
    }
}

/// The DPAPI surface of a provenance-aware volume.
///
/// This extends the six-call [`dpapi::Dpapi`] interface with the glue
/// the kernel needs: translating inodes to DPAPI handles and asking
/// for the identity of a file without reading it.
pub trait DpapiVolume: dpapi::Dpapi {
    /// The volume's identity, as used inside [`Pnode`]s.
    fn volume(&self) -> VolumeId;

    /// Returns a DPAPI handle for an existing file inode.
    fn handle_for_ino(&mut self, ino: Ino) -> dpapi::Result<Handle>;

    /// Returns the current identity (pnode, version) of a file inode.
    fn identity_of_ino(&mut self, ino: Ino) -> dpapi::Result<ObjectRef>;

    /// Provenance-only disclosure against an open handle (sugar for
    /// `pass_write` with no data).
    fn disclose(&mut self, h: Handle, bundle: Bundle) -> dpapi::Result<WriteResult> {
        self.pass_write(h, 0, &[], bundle)
    }

    /// Drains the queue of provenance log files that have been closed
    /// (rotated) since the last call. Paths are relative to the
    /// volume's mount point. This is the simulation's stand-in for
    /// the `inotify` watch Waldo keeps on the log directory.
    fn take_log_rotations(&mut self) -> Vec<String> {
        Vec::new()
    }

    /// Forces the current provenance log to rotate so that a
    /// subsequent [`DpapiVolume::take_log_rotations`] reports it.
    /// Called at quiescent points (the "dormant log" timeout of the
    /// paper).
    fn force_log_rotation(&mut self) {}

    /// Attaches a tracing scope. Provenance-aware volumes record
    /// their commit spans in it (and bind the window to the batch
    /// ids they allocate); the default is to ignore tracing.
    fn set_scope(&mut self, _scope: provscope::Scope) {}
}

/// Convenience: a provenance-aware read through the volume trait.
///
/// Provided as a free function so callers holding a `&mut dyn
/// DpapiVolume` can read by inode without first materializing a
/// handle.
pub fn pass_read_ino(
    vol: &mut dyn DpapiVolume,
    ino: Ino,
    offset: u64,
    len: usize,
) -> dpapi::Result<ReadResult> {
    let h = vol.handle_for_ino(ino)?;
    vol.pass_read(h, offset, len)
}

/// Convenience: a provenance-aware write through the volume trait.
pub fn pass_write_ino(
    vol: &mut dyn DpapiVolume,
    ino: Ino,
    offset: u64,
    data: &[u8],
    bundle: Bundle,
) -> dpapi::Result<WriteResult> {
    let h = vol.handle_for_ino(ino)?;
    vol.pass_write(h, offset, data, bundle)
}

/// Convenience: freeze by inode.
pub fn pass_freeze_ino(vol: &mut dyn DpapiVolume, ino: Ino) -> dpapi::Result<Version> {
    let h = vol.handle_for_ino(ino)?;
    vol.pass_freeze(h)
}

/// Identifies a revivable object for [`dpapi::Dpapi::pass_reviveobj`]
/// bookkeeping at upper layers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RevivedObject {
    /// The object's pnode.
    pub pnode: Pnode,
    /// The version at which it was revived.
    pub version: Version,
    /// The fresh handle.
    pub handle: Handle,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fs_error_display() {
        assert_eq!(
            FsError::NotFound("/a/b".into()).to_string(),
            "not found: /a/b"
        );
        assert_eq!(FsError::NoSpace.to_string(), "no space left on device");
        let e: FsError = dpapi::DpapiError::InvalidHandle.into();
        assert_eq!(e.to_string(), "provenance error: invalid object handle");
    }

    #[test]
    fn provenance_errors_roundtrip_the_syscall_boundary() {
        // DpapiError -> FsError -> DpapiError is the identity for
        // every provenance error — the property that lets per-op
        // transaction aborts cross the kernel unscathed.
        let cases = vec![
            dpapi::DpapiError::InvalidHandle,
            dpapi::DpapiError::NotPassVolume,
            dpapi::DpapiError::Malformed("oversize attribute".into()),
            dpapi::DpapiError::aborted_at(7, dpapi::DpapiError::InvalidHandle),
            dpapi::DpapiError::aborted_at(2, dpapi::DpapiError::Malformed("bad record".into())),
        ];
        for e in cases {
            let through: dpapi::DpapiError = FsError::from(e.clone()).into();
            assert_eq!(through, e);
        }
        // Genuine fs failures become I/O errors (no structure to keep).
        let io: dpapi::DpapiError = FsError::NoSpace.into();
        assert_eq!(io, dpapi::DpapiError::Io("no space left on device".into()));
    }

    #[test]
    fn ino_display() {
        assert_eq!(Ino(9).to_string(), "i9");
    }
}
