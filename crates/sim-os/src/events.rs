//! Kernel hook points for a provenance module.
//!
//! PASSv2's interceptor is "a thin operating system specific layer"
//! (paper §5.3); in this simulation it is the [`PassModule`] trait.
//! The kernel invokes the module at each system call it intercepts
//! (`execve`, `fork`, `exit`, `read`, `readv`, `write`, `writev`,
//! `mmap`, `open`, `pipe` and the kernel operation `drop_inode`), and
//! *delegates* the data path of reads and writes so the module can
//! route them through the DPAPI of the backing volume — keeping data
//! and provenance together.

use std::rc::Rc;

use dpapi::{ObjectRef, VolumeId};

use crate::clock::Clock;
use crate::fs::{DpapiVolume, FileSystem, FsResult};
use crate::pipe::PipeId;
use crate::proc::{FdTarget, FileLoc, MountId, Pid};

/// One mounted file system.
pub struct Mount {
    /// Absolute mount point path (normalized, no trailing slash
    /// except for root).
    pub path: String,
    /// The mounted file system.
    pub fs: Box<dyn FileSystem>,
}

/// The kernel state a hook may touch: the mount table and the clock.
///
/// Handing the module this restricted view (rather than `&mut Kernel`)
/// is what lets hooks issue DPAPI calls against volumes while the
/// kernel is mid-syscall.
pub struct HookCtx<'a> {
    /// All mounts, indexable by [`MountId`].
    pub mounts: &'a mut [Mount],
    /// The shared virtual clock.
    pub clock: &'a Clock,
}

impl<'a> HookCtx<'a> {
    /// The file system behind `m`.
    pub fn fs(&mut self, m: MountId) -> &mut dyn FileSystem {
        &mut *self.mounts[m.0].fs
    }

    /// The DPAPI surface of mount `m`, if it is provenance-aware.
    pub fn dpapi(&mut self, m: MountId) -> Option<&mut dyn DpapiVolume> {
        self.mounts[m.0].fs.as_dpapi()
    }

    /// The volume id of mount `m`, if provenance-aware.
    pub fn volume_of(&mut self, m: MountId) -> Option<VolumeId> {
        self.dpapi(m).map(|d| d.volume())
    }

    /// Every provenance-aware volume currently mounted.
    pub fn pass_volumes(&mut self) -> Vec<(MountId, VolumeId)> {
        let mut out = Vec::new();
        for (i, m) in self.mounts.iter_mut().enumerate() {
            if let Some(d) = m.fs.as_dpapi() {
                out.push((MountId(i), d.volume()));
            }
        }
        out
    }

    /// Finds the mounted volume with id `v`.
    pub fn find_volume(&mut self, v: VolumeId) -> Option<&mut dyn DpapiVolume> {
        for m in self.mounts.iter_mut() {
            if let Some(d) = m.fs.as_dpapi() {
                if d.volume() == v {
                    return m.fs.as_dpapi();
                }
            }
        }
        None
    }
}

/// Everything the module learns about an `execve`.
#[derive(Clone, Debug)]
pub struct ExecImage<'a> {
    /// Path of the executable.
    pub path: &'a str,
    /// Where the binary lives, if it was resolvable.
    pub loc: Option<FileLoc>,
    /// The binary's provenance identity, if it lives on a PASS volume.
    pub identity: Option<ObjectRef>,
    /// Arguments.
    pub argv: &'a [String],
    /// Environment.
    pub env: &'a [String],
}

/// The provenance module interface (the interceptor's upcalls).
///
/// All methods take `&self`; a module uses interior mutability for its
/// own state because the kernel holds it behind an `Rc` and invokes it
/// re-entrantly with a [`HookCtx`] borrowing kernel internals.
///
/// `handle_read`/`handle_write` *replace* the kernel's default data
/// path for regular files so the module can bundle provenance with
/// data through the DPAPI; the default implementations fall through to
/// the plain VFS operations.
pub trait PassModule {
    /// A new process appeared via `fork`.
    fn on_fork(&self, ctx: &mut HookCtx<'_>, parent: Pid, child: Pid) {
        let _ = (ctx, parent, child);
    }

    /// A process replaced its image via `execve`.
    fn on_execve(&self, ctx: &mut HookCtx<'_>, pid: Pid, image: &ExecImage<'_>) {
        let _ = (ctx, pid, image);
    }

    /// A process exited.
    fn on_exit(&self, ctx: &mut HookCtx<'_>, pid: Pid) {
        let _ = (ctx, pid);
    }

    /// A process opened (or created) a file.
    fn on_open(&self, ctx: &mut HookCtx<'_>, pid: Pid, loc: FileLoc, path: &str, created: bool) {
        let _ = (ctx, pid, loc, path, created);
    }

    /// A process closed a descriptor.
    fn on_close(&self, ctx: &mut HookCtx<'_>, pid: Pid, target: &FdTarget) {
        let _ = (ctx, pid, target);
    }

    /// The data path of a file read.
    fn handle_read(
        &self,
        ctx: &mut HookCtx<'_>,
        pid: Pid,
        loc: FileLoc,
        offset: u64,
        len: usize,
    ) -> FsResult<Vec<u8>> {
        let _ = pid;
        ctx.fs(loc.mount).read(loc.ino, offset, len)
    }

    /// The data path of a file write.
    fn handle_write(
        &self,
        ctx: &mut HookCtx<'_>,
        pid: Pid,
        loc: FileLoc,
        offset: u64,
        data: &[u8],
    ) -> FsResult<usize> {
        let _ = pid;
        ctx.fs(loc.mount).write(loc.ino, offset, data)
    }

    /// A process read from a pipe.
    fn on_pipe_read(&self, ctx: &mut HookCtx<'_>, pid: Pid, pipe: PipeId, len: usize) {
        let _ = (ctx, pid, pipe, len);
    }

    /// A process wrote to a pipe.
    fn on_pipe_write(&self, ctx: &mut HookCtx<'_>, pid: Pid, pipe: PipeId, len: usize) {
        let _ = (ctx, pid, pipe, len);
    }

    /// A process created a pipe.
    fn on_pipe_create(&self, ctx: &mut HookCtx<'_>, pid: Pid, pipe: PipeId) {
        let _ = (ctx, pid, pipe);
    }

    /// A process mapped a file. A writable shared mapping makes the
    /// file both an input and an output of the process.
    fn on_mmap(&self, ctx: &mut HookCtx<'_>, pid: Pid, loc: FileLoc, writable: bool) {
        let _ = (ctx, pid, loc, writable);
    }

    /// A file was renamed. Provenance follows the file (it is keyed
    /// by pnode, not by name), but modules may track naming.
    fn on_rename(&self, ctx: &mut HookCtx<'_>, pid: Pid, loc: FileLoc, from: &str, to: &str) {
        let _ = (ctx, pid, loc, from, to);
    }

    /// A name was unlinked.
    fn on_unlink(&self, ctx: &mut HookCtx<'_>, pid: Pid, loc: FileLoc, path: &str) {
        let _ = (ctx, pid, loc, path);
    }

    /// The kernel dropped the last reference to an inode.
    fn on_drop_inode(&self, ctx: &mut HookCtx<'_>, loc: FileLoc) {
        let _ = (ctx, loc);
    }

    /// A visibility barrier: the kernel is about to expose file or
    /// directory state to an observer (`stat`, `readdir`, `fsync`,
    /// `sync`, an `open` or `execve` path lookup). A module that
    /// defers work — e.g. batching a burst of observed writes into
    /// one transaction — must make everything it holds back visible
    /// before returning.
    fn on_barrier(&self, ctx: &mut HookCtx<'_>) {
        let _ = ctx;
    }
}

/// The disclosed-provenance entry points of a provenance module.
///
/// The observer "is also the entry point for provenance-aware
/// applications that use the DPAPI to explicitly disclose provenance"
/// (paper §5.3): libpass forwards each user-level DPAPI call to these
/// methods. Handles returned here live in a per-kernel namespace
/// managed by the module.
pub trait ProvenanceKernel: PassModule {
    /// `pass_mkobj` from user level: creates a provenance-only object.
    fn dp_mkobj(
        &self,
        ctx: &mut HookCtx<'_>,
        pid: Pid,
        volume: Option<VolumeId>,
    ) -> dpapi::Result<dpapi::Handle>;

    /// `pass_reviveobj` from user level.
    fn dp_reviveobj(
        &self,
        ctx: &mut HookCtx<'_>,
        pid: Pid,
        pnode: dpapi::Pnode,
        version: dpapi::Version,
    ) -> dpapi::Result<dpapi::Handle>;

    /// `pass_read` from user level against a module handle.
    fn dp_read(
        &self,
        ctx: &mut HookCtx<'_>,
        pid: Pid,
        h: dpapi::Handle,
        offset: u64,
        len: usize,
    ) -> dpapi::Result<dpapi::ReadResult>;

    /// `pass_write` from user level against a module handle.
    fn dp_write(
        &self,
        ctx: &mut HookCtx<'_>,
        pid: Pid,
        h: dpapi::Handle,
        offset: u64,
        data: &[u8],
        bundle: dpapi::Bundle,
    ) -> dpapi::Result<dpapi::WriteResult>;

    /// `pass_freeze` from user level.
    fn dp_freeze(
        &self,
        ctx: &mut HookCtx<'_>,
        pid: Pid,
        h: dpapi::Handle,
    ) -> dpapi::Result<dpapi::Version>;

    /// `pass_sync` from user level.
    fn dp_sync(&self, ctx: &mut HookCtx<'_>, pid: Pid, h: dpapi::Handle) -> dpapi::Result<()>;

    /// Closes a user-level handle.
    fn dp_close(&self, ctx: &mut HookCtx<'_>, pid: Pid, h: dpapi::Handle) -> dpapi::Result<()>;

    /// A user-level handle for an open file descriptor's file, so an
    /// application can pass-write to a file it already has open.
    fn dp_handle_for_file(
        &self,
        ctx: &mut HookCtx<'_>,
        pid: Pid,
        loc: FileLoc,
    ) -> dpapi::Result<dpapi::Handle>;

    /// `pass_commit` from user level: applies a whole disclosure
    /// transaction, returning per-op results (index-aligned with the
    /// transaction's ops).
    ///
    /// The default executes the ops sequentially through the single
    /// `dp_*` entry points, aborting on the first failure with
    /// [`dpapi::DpapiError::TxnAborted`] — correct but unbatched, and
    /// atomic only up to the failing op. Real modules override this to
    /// validate the batch up front, analyze it as a unit and emit one
    /// contiguous log group per target volume (see the `Pass` module
    /// in the `passv2` crate).
    fn dp_commit(
        &self,
        ctx: &mut HookCtx<'_>,
        pid: Pid,
        txn: dpapi::Txn,
    ) -> dpapi::Result<Vec<dpapi::OpResult>> {
        let ops = txn.into_ops();
        let mut out = Vec::with_capacity(ops.len());
        for (i, op) in ops.into_iter().enumerate() {
            let result = match op {
                dpapi::DpapiOp::Write {
                    handle,
                    offset,
                    data,
                    bundle,
                } => self
                    .dp_write(ctx, pid, handle, offset, &data, bundle)
                    .map(dpapi::OpResult::Written),
                dpapi::DpapiOp::Mkobj { volume_hint } => self
                    .dp_mkobj(ctx, pid, volume_hint)
                    .map(dpapi::OpResult::Made),
                dpapi::DpapiOp::Freeze { handle } => self
                    .dp_freeze(ctx, pid, handle)
                    .map(dpapi::OpResult::Frozen),
                dpapi::DpapiOp::Revive { pnode, version } => self
                    .dp_reviveobj(ctx, pid, pnode, version)
                    .map(dpapi::OpResult::Revived),
                dpapi::DpapiOp::Sync { handle } => self
                    .dp_sync(ctx, pid, handle)
                    .map(|()| dpapi::OpResult::Synced),
            };
            match result {
                Ok(r) => out.push(r),
                Err(e) => return Err(dpapi::DpapiError::aborted_at(i, e)),
            }
        }
        Ok(out)
    }
}

/// A shared handle to a provenance module.
pub type ModuleRef = Rc<dyn ProvenanceKernel>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::fs::basefs::BaseFs;

    struct NullModule;
    impl PassModule for NullModule {}

    #[test]
    fn default_module_passes_data_through() {
        let clock = Clock::new();
        let mut mounts = vec![Mount {
            path: "/".to_string(),
            fs: Box::new(BaseFs::new(clock.clone(), CostModel::default())),
        }];
        let root = mounts[0].fs.root();
        let ino = mounts[0].fs.create(root, "f").unwrap();
        let mut ctx = HookCtx {
            mounts: &mut mounts,
            clock: &clock,
        };
        let m = NullModule;
        let loc = FileLoc {
            mount: MountId(0),
            ino,
        };
        m.handle_write(&mut ctx, Pid(1), loc, 0, b"data").unwrap();
        assert_eq!(m.handle_read(&mut ctx, Pid(1), loc, 0, 4).unwrap(), b"data");
    }

    #[test]
    fn hookctx_reports_no_pass_volumes_for_basefs() {
        let clock = Clock::new();
        let mut mounts = vec![Mount {
            path: "/".to_string(),
            fs: Box::new(BaseFs::new(clock.clone(), CostModel::default())),
        }];
        let mut ctx = HookCtx {
            mounts: &mut mounts,
            clock: &clock,
        };
        assert!(ctx.pass_volumes().is_empty());
        assert!(ctx.dpapi(MountId(0)).is_none());
        assert!(ctx.volume_of(MountId(0)).is_none());
        assert!(ctx.find_volume(VolumeId(1)).is_none());
    }
}
