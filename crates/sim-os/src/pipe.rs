//! Pipes.
//!
//! Pipes matter to PASS because they are first-class provenance
//! objects that are never persistent: a shell pipeline's intermediate
//! dependencies travel through pipe objects, and the distributor must
//! cache their provenance until it reaches a persistent descendant.

use std::collections::{HashMap, VecDeque};

/// A pipe's kernel identity.
pub type PipeId = u64;

#[derive(Debug, Default)]
struct Pipe {
    buf: VecDeque<u8>,
    readers: u32,
    writers: u32,
}

/// The kernel pipe table.
#[derive(Debug, Default)]
pub struct PipeTable {
    pipes: HashMap<PipeId, Pipe>,
    next: PipeId,
}

impl PipeTable {
    /// Creates an empty pipe table.
    pub fn new() -> PipeTable {
        PipeTable::default()
    }

    /// Creates a pipe with one reader and one writer reference.
    pub fn create(&mut self) -> PipeId {
        let id = self.next;
        self.next += 1;
        self.pipes.insert(
            id,
            Pipe {
                buf: VecDeque::new(),
                readers: 1,
                writers: 1,
            },
        );
        id
    }

    /// Writes bytes into the pipe buffer. Returns `None` if the pipe
    /// has no readers left (EPIPE).
    pub fn write(&mut self, id: PipeId, data: &[u8]) -> Option<usize> {
        let p = self.pipes.get_mut(&id)?;
        if p.readers == 0 {
            return None;
        }
        p.buf.extend(data.iter().copied());
        Some(data.len())
    }

    /// Reads up to `len` bytes. An empty result with live writers
    /// means "would block"; with no writers it means EOF. The caller
    /// distinguishes via [`PipeTable::has_writers`].
    pub fn read(&mut self, id: PipeId, len: usize) -> Option<Vec<u8>> {
        let p = self.pipes.get_mut(&id)?;
        let n = len.min(p.buf.len());
        Some(p.buf.drain(..n).collect())
    }

    /// True if the pipe still has writer references.
    pub fn has_writers(&self, id: PipeId) -> bool {
        self.pipes.get(&id).map(|p| p.writers > 0).unwrap_or(false)
    }

    /// Adds a reference to one end (on fork/dup).
    pub fn add_ref(&mut self, id: PipeId, write_end: bool) {
        if let Some(p) = self.pipes.get_mut(&id) {
            if write_end {
                p.writers += 1;
            } else {
                p.readers += 1;
            }
        }
    }

    /// Drops a reference to one end (on close/exit); removes the pipe
    /// once both sides are fully closed.
    pub fn drop_ref(&mut self, id: PipeId, write_end: bool) {
        let remove = if let Some(p) = self.pipes.get_mut(&id) {
            if write_end {
                p.writers = p.writers.saturating_sub(1);
            } else {
                p.readers = p.readers.saturating_sub(1);
            }
            p.readers == 0 && p.writers == 0
        } else {
            false
        };
        if remove {
            self.pipes.remove(&id);
        }
    }

    /// Bytes currently buffered in the pipe.
    pub fn buffered(&self, id: PipeId) -> usize {
        self.pipes.get(&id).map(|p| p.buf.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_fifo_order() {
        let mut t = PipeTable::new();
        let id = t.create();
        assert_eq!(t.write(id, b"abc"), Some(3));
        assert_eq!(t.write(id, b"de"), Some(2));
        assert_eq!(t.read(id, 4).unwrap(), b"abcd");
        assert_eq!(t.read(id, 4).unwrap(), b"e");
        assert_eq!(t.read(id, 4).unwrap(), b"");
    }

    #[test]
    fn write_to_readerless_pipe_is_epipe() {
        let mut t = PipeTable::new();
        let id = t.create();
        t.drop_ref(id, false);
        assert_eq!(t.write(id, b"x"), None);
    }

    #[test]
    fn eof_detection_via_writer_refs() {
        let mut t = PipeTable::new();
        let id = t.create();
        t.write(id, b"tail").unwrap();
        t.drop_ref(id, true);
        assert!(!t.has_writers(id));
        // Drain remains readable after writers close.
        assert_eq!(t.read(id, 10).unwrap(), b"tail");
    }

    #[test]
    fn pipe_removed_when_fully_closed() {
        let mut t = PipeTable::new();
        let id = t.create();
        t.add_ref(id, true); // a fork duplicated the write end
        t.drop_ref(id, true);
        t.drop_ref(id, true);
        t.drop_ref(id, false);
        assert_eq!(t.read(id, 1), None);
        assert_eq!(t.buffered(id), 0);
    }
}
