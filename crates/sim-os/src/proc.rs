//! Processes and file descriptors.

use std::collections::HashMap;

use crate::fs::Ino;

/// A process id.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Pid(pub u32);

impl std::fmt::Display for Pid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// A file descriptor, local to one process.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Fd(pub u32);

/// Index of a mount in the kernel mount table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MountId(pub usize);

/// A file identified across the whole kernel: which mount, which
/// inode.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FileLoc {
    /// Mount the file lives on.
    pub mount: MountId,
    /// Inode within that mount.
    pub ino: Ino,
}

impl std::fmt::Display for FileLoc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}:{}", self.mount.0, self.ino)
    }
}

/// Which end of a pipe a descriptor refers to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PipeEnd {
    /// The read end.
    Read,
    /// The write end.
    Write,
}

/// What a file descriptor points at.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FdTarget {
    /// A regular file on some mount.
    File(FileLoc),
    /// One end of a pipe.
    Pipe {
        /// Pipe identity in the kernel pipe table.
        id: u64,
        /// Which end this descriptor holds.
        end: PipeEnd,
    },
}

/// An open file description (shared offset semantics are simplified:
/// each fd has its own offset, which is sufficient for the workloads).
#[derive(Clone, Debug)]
pub struct OpenFile {
    /// What the descriptor points at.
    pub target: FdTarget,
    /// Current file offset.
    pub offset: u64,
    /// Opened with append semantics.
    pub append: bool,
    /// Full path used at open time (empty for pipes).
    pub path: String,
    /// Containing directory, for inotify delivery (files only).
    pub parent: Option<FileLoc>,
    /// Last path component (files only).
    pub name: String,
    /// Whether this descriptor has been written.
    pub wrote: bool,
    /// Opened readable.
    pub readable: bool,
    /// Opened writable.
    pub writable: bool,
}

impl OpenFile {
    /// Creates a description for one end of a pipe.
    pub fn for_pipe(id: u64, end: PipeEnd) -> OpenFile {
        OpenFile {
            target: FdTarget::Pipe { id, end },
            offset: 0,
            append: false,
            path: String::new(),
            parent: None,
            name: String::new(),
            wrote: false,
            readable: end == PipeEnd::Read,
            writable: end == PipeEnd::Write,
        }
    }
}

/// One simulated process.
#[derive(Clone, Debug)]
pub struct Process {
    /// This process's id.
    pub pid: Pid,
    /// Parent process id (0 for init).
    pub ppid: Pid,
    /// Executable path, set by `execve`.
    pub exe: String,
    /// Arguments, set by `execve`.
    pub argv: Vec<String>,
    /// Environment, set by `execve`.
    pub env: Vec<String>,
    /// Open descriptors.
    pub fds: HashMap<Fd, OpenFile>,
    /// Next descriptor number to hand out.
    next_fd: u32,
    /// Has the process exited?
    pub exited: bool,
}

impl Process {
    fn new(pid: Pid, ppid: Pid, exe: &str) -> Process {
        Process {
            pid,
            ppid,
            exe: exe.to_string(),
            argv: vec![exe.to_string()],
            env: Vec::new(),
            fds: HashMap::new(),
            next_fd: 3, // 0..2 reserved, as on a real system
            exited: false,
        }
    }

    /// Allocates the next free descriptor.
    pub fn alloc_fd(&mut self, open: OpenFile) -> Fd {
        let fd = Fd(self.next_fd);
        self.next_fd += 1;
        self.fds.insert(fd, open);
        fd
    }
}

/// The kernel's process table.
#[derive(Debug, Default)]
pub struct ProcessTable {
    procs: HashMap<u32, Process>,
    next_pid: u32,
}

impl ProcessTable {
    /// Creates an empty table; pids start at 1.
    pub fn new() -> ProcessTable {
        ProcessTable {
            procs: HashMap::new(),
            next_pid: 1,
        }
    }

    /// Spawns the first process (no parent).
    pub fn spawn_init(&mut self, exe: &str) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.procs.insert(pid.0, Process::new(pid, Pid(0), exe));
        pid
    }

    /// Forks `parent`, duplicating its descriptor table, and returns
    /// the child pid.
    pub fn fork(&mut self, parent: Pid) -> Option<Pid> {
        let p = self.get(parent)?.clone();
        let child = Pid(self.next_pid);
        self.next_pid += 1;
        let mut c = p;
        c.pid = child;
        c.ppid = parent;
        self.procs.insert(child.0, c);
        Some(child)
    }

    /// Looks up a live process.
    pub fn get(&self, pid: Pid) -> Option<&Process> {
        self.procs.get(&pid.0).filter(|p| !p.exited)
    }

    /// Looks up a live process mutably.
    pub fn get_mut(&mut self, pid: Pid) -> Option<&mut Process> {
        self.procs.get_mut(&pid.0).filter(|p| !p.exited)
    }

    /// Marks a process exited, returning its descriptors for cleanup.
    pub fn exit(&mut self, pid: Pid) -> Vec<OpenFile> {
        if let Some(p) = self.procs.get_mut(&pid.0) {
            p.exited = true;
            return p.fds.drain().map(|(_, o)| o).collect();
        }
        Vec::new()
    }

    /// Number of live processes.
    pub fn live_count(&self) -> usize {
        self.procs.values().filter(|p| !p.exited).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_fork_exit_lifecycle() {
        let mut t = ProcessTable::new();
        let init = t.spawn_init("/sbin/init");
        assert_eq!(init, Pid(1));
        let child = t.fork(init).unwrap();
        assert_eq!(child, Pid(2));
        assert_eq!(t.get(child).unwrap().ppid, init);
        assert_eq!(t.live_count(), 2);
        t.exit(child);
        assert!(t.get(child).is_none());
        assert_eq!(t.live_count(), 1);
    }

    #[test]
    fn fork_duplicates_descriptors() {
        let mut t = ProcessTable::new();
        let init = t.spawn_init("sh");
        let loc = FileLoc {
            mount: MountId(0),
            ino: Ino(5),
        };
        let fd = t.get_mut(init).unwrap().alloc_fd(OpenFile {
            target: FdTarget::File(loc),
            offset: 7,
            append: false,
            path: "/x".into(),
            parent: None,
            name: "x".into(),
            wrote: false,
            readable: true,
            writable: false,
        });
        let child = t.fork(init).unwrap();
        let copy = t.get(child).unwrap().fds.get(&fd).unwrap();
        assert_eq!(copy.offset, 7);
        assert_eq!(copy.target, FdTarget::File(loc));
    }

    #[test]
    fn fork_of_dead_process_fails() {
        let mut t = ProcessTable::new();
        let p = t.spawn_init("a");
        t.exit(p);
        assert!(t.get(p).is_none());
        assert!(t.fork(p).is_none());
    }

    #[test]
    fn fds_start_at_three_and_increment() {
        let mut t = ProcessTable::new();
        let p = t.spawn_init("x");
        let proc = t.get_mut(p).unwrap();
        let f1 = proc.alloc_fd(OpenFile::for_pipe(0, PipeEnd::Read));
        let f2 = proc.alloc_fd(OpenFile::for_pipe(0, PipeEnd::Write));
        assert_eq!(f1, Fd(3));
        assert_eq!(f2, Fd(4));
    }
}
