//! A deterministic operating-system simulation.
//!
//! This crate is the substrate beneath the PASSv2 reproduction: a
//! kernel with processes, file descriptors, a VFS, pipes, `mmap`,
//! `inotify` and a virtual-time cost model for CPU, disk and network.
//! The provenance system installs a [`events::PassModule`] to
//! intercept the same system calls the paper's interceptor handles,
//! and provenance-aware file systems implement [`fs::DpapiVolume`] so
//! data and provenance travel together through the DPAPI.
//!
//! Nothing in this crate knows *how* provenance is collected; it only
//! provides the hook points and the timing substrate, mirroring the
//! paper's separation between the thin OS-specific interceptor and
//! the mostly OS-independent rest of the system.

pub mod clock;
pub mod cost;
pub mod disk;
pub mod events;
pub mod fs;
pub mod inotify;
pub mod lru;
pub mod pipe;
pub mod proc;
pub mod syscall;

pub use clock::{Clock, Nanos, NANOS_PER_SEC};
pub use cost::{CostModel, BLOCK_SIZE};
pub use disk::{Disk, DiskStats};
pub use events::{ExecImage, HookCtx, ModuleRef, Mount, PassModule, ProvenanceKernel};
pub use fs::basefs::{BaseFs, BaseFsConfig};
pub use fs::{
    DirEntry, DpapiVolume, FileAttr, FileSystem, FileType, FsError, FsResult, FsUsage, Ino,
};
pub use inotify::{InotifyEvent, WatchId};
pub use proc::{Fd, FdTarget, FileLoc, MountId, OpenFile, Pid, PipeEnd};
pub use syscall::{Kernel, KernelStats, OpenFlags};
