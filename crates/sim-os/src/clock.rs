//! The virtual clock.
//!
//! Every component of the simulation — CPUs, disks, the network —
//! advances one shared clock. Benchmarks report virtual elapsed time,
//! which makes runs deterministic and lets the evaluation reproduce
//! the *shape* of the paper's overhead tables independent of host
//! hardware.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Virtual nanoseconds since simulation start.
pub type Nanos = u64;

/// One nanosecond expressed in [`Nanos`].
pub const NANOS_PER_SEC: Nanos = 1_000_000_000;

/// A shareable, thread-safe virtual clock.
///
/// Cloning a `Clock` yields another handle on the same timeline.
#[derive(Clone, Debug, Default)]
pub struct Clock {
    now: Arc<AtomicU64>,
}

impl Clock {
    /// Creates a clock at time zero.
    pub fn new() -> Clock {
        Clock::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.now.load(Ordering::Relaxed)
    }

    /// Advances the clock by `ns` nanoseconds and returns the new time.
    pub fn advance(&self, ns: Nanos) -> Nanos {
        self.now.fetch_add(ns, Ordering::Relaxed) + ns
    }

    /// Current time in (virtual) seconds as a float, for reporting.
    pub fn seconds(&self) -> f64 {
        self.now() as f64 / NANOS_PER_SEC as f64
    }

    /// Runs `f` and returns the virtual time it consumed alongside its
    /// result.
    pub fn measure<T>(&self, f: impl FnOnce() -> T) -> (T, Nanos) {
        let start = self.now();
        let out = f();
        (out, self.now() - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = Clock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(5), 5);
        assert_eq!(c.advance(10), 15);
        assert_eq!(c.now(), 15);
    }

    #[test]
    fn clones_share_the_timeline() {
        let a = Clock::new();
        let b = a.clone();
        a.advance(100);
        assert_eq!(b.now(), 100);
        b.advance(1);
        assert_eq!(a.now(), 101);
    }

    #[test]
    fn seconds_conversion() {
        let c = Clock::new();
        c.advance(NANOS_PER_SEC / 2);
        assert!((c.seconds() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn measure_reports_consumed_time() {
        let c = Clock::new();
        let (out, spent) = c.measure(|| {
            c.advance(42);
            "done"
        });
        assert_eq!(out, "done");
        assert_eq!(spent, 42);
    }
}
