//! The I/O and CPU cost model.
//!
//! The paper's evaluation ran on a 3 GHz Pentium 4 with a 7200 RPM
//! IDE disk and 100 Mb Ethernet; the defaults here approximate that
//! hardware so that the *relative* overheads of Tables 2 and 3 come
//! out with the right shape. Absolute virtual times are not meant to
//! match the paper's wall-clock numbers.

use crate::clock::Nanos;

/// Size of one simulated disk block / page.
pub const BLOCK_SIZE: usize = 4096;

/// Disk timing parameters.
#[derive(Clone, Copy, Debug)]
pub struct DiskParams {
    /// Average seek time charged when the head must move.
    pub seek_ns: Nanos,
    /// Average rotational delay charged on a non-sequential access.
    pub rotational_ns: Nanos,
    /// Transfer time per 4 KB block (≈ 60 MB/s sustained).
    pub per_block_ns: Nanos,
}

impl Default for DiskParams {
    fn default() -> Self {
        DiskParams {
            seek_ns: 4_500_000,       // 4.5 ms average seek
            rotational_ns: 4_160_000, // half a rotation at 7200 RPM
            per_block_ns: 68_000,     // 4 KB at ~60 MB/s
        }
    }
}

/// CPU timing parameters.
#[derive(Clone, Copy, Debug)]
pub struct CpuParams {
    /// Fixed cost of entering/exiting a system call.
    pub syscall_ns: Nanos,
    /// Cost per byte of copying data between buffers (page cache,
    /// stackable file system double buffering, network marshalling).
    pub copy_ns_per_byte: Nanos,
    /// Cost of one abstract "compute unit" used by workload
    /// generators to model application CPU time.
    pub compute_unit_ns: Nanos,
    /// Marginal cost of one operation inside a batched `pass_commit`:
    /// argument marshalling and dispatch without the syscall
    /// entry/exit. A disclosure transaction of N ops costs one
    /// `syscall_ns` plus N of these — the per-event saving the DPAPI
    /// v2 batch API exists to realize.
    pub dpapi_op_ns: Nanos,
}

impl Default for CpuParams {
    fn default() -> Self {
        CpuParams {
            syscall_ns: 900,
            // Effective copy cost including page management on the
            // P4-era memory system (~500 MB/s for FS buffer paths).
            copy_ns_per_byte: 2,
            compute_unit_ns: 1_000,
            // Roughly a quarter of a syscall: no privilege-level
            // crossing, just per-op dispatch.
            dpapi_op_ns: 220,
        }
    }
}

/// Network timing parameters for the simulated LAN between NFS client
/// and server.
#[derive(Clone, Copy, Debug)]
pub struct NetParams {
    /// Round-trip latency per RPC.
    pub rtt_ns: Nanos,
    /// Transfer time per byte on the wire (≈ 100 Mb/s).
    pub per_byte_ns: Nanos,
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams {
            rtt_ns: 200_000, // 0.2 ms LAN round trip
            per_byte_ns: 85, // ~11.7 MB/s on 100 Mb Ethernet
        }
    }
}

/// The complete cost model used by a simulated machine.
#[derive(Clone, Copy, Debug, Default)]
pub struct CostModel {
    /// Disk timing.
    pub disk: DiskParams,
    /// CPU timing.
    pub cpu: CpuParams,
    /// Network timing.
    pub net: NetParams,
}

impl CostModel {
    /// Cost of copying `bytes` through one buffer layer.
    pub fn copy_cost(&self, bytes: usize) -> Nanos {
        bytes as Nanos * self.cpu.copy_ns_per_byte
    }

    /// Cost of transferring `bytes` over the simulated network,
    /// including one round trip.
    pub fn net_cost(&self, bytes: usize) -> Nanos {
        self.net.rtt_ns + bytes as Nanos * self.net.per_byte_ns
    }

    /// Number of blocks needed to hold `bytes`.
    pub fn blocks_for(bytes: usize) -> u64 {
        (bytes as u64).div_ceil(BLOCK_SIZE as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_in_plausible_ranges() {
        let m = CostModel::default();
        // A random 4 KB disk access (seek + rotation + transfer) should
        // land in the canonical 5–15 ms window for a 7200 RPM disk.
        let random_io = m.disk.seek_ns + m.disk.rotational_ns + m.disk.per_block_ns;
        assert!((5_000_000..15_000_000).contains(&random_io));
        // Sequential throughput should beat 30 MB/s.
        let bytes_per_sec = BLOCK_SIZE as u64 * 1_000_000_000 / m.disk.per_block_ns;
        assert!(bytes_per_sec > 30_000_000);
    }

    #[test]
    fn blocks_for_rounds_up_and_never_returns_zero() {
        assert_eq!(CostModel::blocks_for(0), 1);
        assert_eq!(CostModel::blocks_for(1), 1);
        assert_eq!(CostModel::blocks_for(BLOCK_SIZE), 1);
        assert_eq!(CostModel::blocks_for(BLOCK_SIZE + 1), 2);
        assert_eq!(CostModel::blocks_for(10 * BLOCK_SIZE), 10);
    }

    #[test]
    fn net_cost_includes_rtt() {
        let m = CostModel::default();
        assert_eq!(m.net_cost(0), m.net.rtt_ns);
        assert!(m.net_cost(1 << 16) > m.net_cost(0));
    }

    #[test]
    fn copy_cost_scales_linearly() {
        let m = CostModel::default();
        assert_eq!(m.copy_cost(4096) * 2, m.copy_cost(8192));
    }
}
