//! A minimal inotify analogue.
//!
//! Waldo (the user-level provenance daemon) uses the Linux `inotify`
//! interface to learn when the kernel closes a provenance log file and
//! opens a new one (paper §5.6). This module provides directory
//! watches with create / close-after-write / remove events.

use std::collections::HashMap;

use crate::proc::FileLoc;

/// Identifies one watch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct WatchId(pub u64);

/// An event on a watched directory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InotifyEvent {
    /// A file was created in the directory.
    Created {
        /// Name within the directory.
        name: String,
        /// Location of the new file.
        loc: FileLoc,
    },
    /// A file opened for writing was closed.
    CloseWrite {
        /// Name within the directory.
        name: String,
        /// Location of the file.
        loc: FileLoc,
    },
    /// A name was removed from the directory.
    Removed {
        /// Name within the directory.
        name: String,
    },
}

/// The kernel's watch table.
#[derive(Debug, Default)]
pub struct InotifyTable {
    watches: HashMap<u64, Watch>,
    next: u64,
}

#[derive(Debug)]
struct Watch {
    dir: FileLoc,
    queue: Vec<InotifyEvent>,
}

impl InotifyTable {
    /// Creates an empty watch table.
    pub fn new() -> Self {
        InotifyTable::default()
    }

    /// Watches the directory at `dir`.
    pub fn add_watch(&mut self, dir: FileLoc) -> WatchId {
        let id = self.next;
        self.next += 1;
        self.watches.insert(
            id,
            Watch {
                dir,
                queue: Vec::new(),
            },
        );
        WatchId(id)
    }

    /// Removes a watch.
    pub fn remove_watch(&mut self, id: WatchId) {
        self.watches.remove(&id.0);
    }

    /// Delivers `event` to every watch on `dir`.
    pub fn deliver(&mut self, dir: FileLoc, event: &InotifyEvent) {
        for w in self.watches.values_mut() {
            if w.dir == dir {
                w.queue.push(event.clone());
            }
        }
    }

    /// Drains pending events for `id`.
    pub fn poll(&mut self, id: WatchId) -> Vec<InotifyEvent> {
        self.watches
            .get_mut(&id.0)
            .map(|w| std::mem::take(&mut w.queue))
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::Ino;
    use crate::proc::MountId;

    fn loc(ino: u64) -> FileLoc {
        FileLoc {
            mount: MountId(0),
            ino: Ino(ino),
        }
    }

    #[test]
    fn events_route_to_matching_watch_only() {
        let mut t = InotifyTable::new();
        let w1 = t.add_watch(loc(1));
        let w2 = t.add_watch(loc(2));
        let ev = InotifyEvent::Created {
            name: "log.0".into(),
            loc: loc(10),
        };
        t.deliver(loc(1), &ev);
        assert_eq!(t.poll(w1), vec![ev]);
        assert!(t.poll(w2).is_empty());
    }

    #[test]
    fn poll_drains_the_queue() {
        let mut t = InotifyTable::new();
        let w = t.add_watch(loc(1));
        t.deliver(loc(1), &InotifyEvent::Removed { name: "old".into() });
        assert_eq!(t.poll(w).len(), 1);
        assert!(t.poll(w).is_empty());
    }

    #[test]
    fn removed_watch_stops_receiving() {
        let mut t = InotifyTable::new();
        let w = t.add_watch(loc(3));
        t.remove_watch(w);
        t.deliver(loc(3), &InotifyEvent::Removed { name: "x".into() });
        assert!(t.poll(w).is_empty());
    }

    #[test]
    fn multiple_watches_on_same_dir_all_receive() {
        let mut t = InotifyTable::new();
        let w1 = t.add_watch(loc(1));
        let w2 = t.add_watch(loc(1));
        let ev = InotifyEvent::CloseWrite {
            name: "log".into(),
            loc: loc(4),
        };
        t.deliver(loc(1), &ev);
        assert_eq!(t.poll(w1).len(), 1);
        assert_eq!(t.poll(w2).len(), 1);
    }
}
