//! A simulated disk with head-position-aware cost accounting.
//!
//! The disk is the mechanism behind the paper's headline overhead
//! result: provenance log writes that interleave with a workload's
//! own writes land in a different region of the platter and force
//! extra seeks (the Mercurial benchmark's 23.1% overhead). Modelling
//! the head position makes that interference emerge naturally instead
//! of being hard-coded.

use crate::clock::{Clock, Nanos};
use crate::cost::{DiskParams, BLOCK_SIZE};

/// Running statistics for one disk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Number of head movements charged.
    pub seeks: u64,
    /// Blocks read.
    pub blocks_read: u64,
    /// Blocks written.
    pub blocks_written: u64,
    /// Total virtual time this disk was busy.
    pub busy_ns: Nanos,
}

/// A simulated disk.
///
/// Regions of the block address space are handed out linearly with
/// [`Disk::alloc_region`]; a file system typically allocates separate
/// regions for its journal, its data blocks and (for Lasagna) the
/// provenance log, which is what makes cross-region interference
/// visible as seeks.
#[derive(Debug)]
pub struct Disk {
    clock: Clock,
    params: DiskParams,
    head: u64,
    next_region: u64,
    stats: DiskStats,
}

impl Disk {
    /// Creates a disk advancing `clock` with `params` timing.
    pub fn new(clock: Clock, params: DiskParams) -> Disk {
        Disk {
            clock,
            params,
            head: 0,
            next_region: 0,
            stats: DiskStats::default(),
        }
    }

    /// Reserves a contiguous region of `blocks` blocks and returns its
    /// first block number.
    pub fn alloc_region(&mut self, blocks: u64) -> u64 {
        let start = self.next_region;
        self.next_region += blocks;
        start
    }

    /// Performs (accounts) an access of `nblocks` blocks starting at
    /// `block`. Sequential accesses — those starting exactly where the
    /// head rests — are charged transfer time only; any other access
    /// is charged a seek plus rotational delay.
    pub fn access(&mut self, block: u64, nblocks: u64, write: bool) -> Nanos {
        let nblocks = nblocks.max(1);
        let mut cost: Nanos = 0;
        if block != self.head {
            cost += self.params.seek_ns + self.params.rotational_ns;
            self.stats.seeks += 1;
        }
        cost += nblocks * self.params.per_block_ns;
        self.head = block + nblocks;
        if write {
            self.stats.blocks_written += nblocks;
        } else {
            self.stats.blocks_read += nblocks;
        }
        self.stats.busy_ns += cost;
        self.clock.advance(cost);
        cost
    }

    /// Accounts a byte-granularity access rounded up to whole blocks.
    pub fn access_bytes(&mut self, block: u64, bytes: usize, write: bool) -> Nanos {
        let nblocks = (bytes as u64).div_ceil(BLOCK_SIZE as u64).max(1);
        self.access(block, nblocks, write)
    }

    /// Current head position (block number), exposed for tests.
    pub fn head(&self) -> u64 {
        self.head
    }

    /// Snapshot of the statistics so far.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// The timing parameters in force.
    pub fn params(&self) -> DiskParams {
        self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> Disk {
        Disk::new(Clock::new(), DiskParams::default())
    }

    #[test]
    fn sequential_access_skips_the_seek() {
        let mut d = disk();
        let c1 = d.access(0, 1, true); // head at 0 -> sequential
        assert_eq!(d.stats().seeks, 0);
        let c2 = d.access(1, 1, true); // continues where head rests
        assert_eq!(d.stats().seeks, 0);
        assert_eq!(c1, c2);
        assert_eq!(d.head(), 2);
    }

    #[test]
    fn random_access_pays_seek_and_rotation() {
        let mut d = disk();
        d.access(0, 1, true);
        let far = d.access(10_000, 1, true);
        assert_eq!(d.stats().seeks, 1);
        let p = d.params();
        assert_eq!(far, p.seek_ns + p.rotational_ns + p.per_block_ns);
    }

    #[test]
    fn alternating_regions_seek_every_time() {
        // This is the provenance-interference pattern: workload data in
        // one region, provenance log in another.
        let mut d = disk();
        let data = d.alloc_region(1000);
        let log = d.alloc_region(1000);
        for i in 0..10 {
            d.access(data + i, 1, true);
            d.access(log + i, 1, true);
        }
        // Every access after the first had to move the head.
        assert_eq!(d.stats().seeks, 19);
    }

    #[test]
    fn clock_advances_with_disk_busy_time() {
        let clock = Clock::new();
        let mut d = Disk::new(clock.clone(), DiskParams::default());
        d.access(123, 4, false);
        assert_eq!(clock.now(), d.stats().busy_ns);
        assert_eq!(d.stats().blocks_read, 4);
        assert_eq!(d.stats().blocks_written, 0);
    }

    #[test]
    fn regions_do_not_overlap() {
        let mut d = disk();
        let a = d.alloc_region(10);
        let b = d.alloc_region(5);
        let c = d.alloc_region(1);
        assert_eq!(a, 0);
        assert_eq!(b, 10);
        assert_eq!(c, 15);
    }

    #[test]
    fn access_bytes_rounds_to_blocks() {
        let mut d = disk();
        d.access_bytes(0, 1, true);
        assert_eq!(d.stats().blocks_written, 1);
        d.access_bytes(1, BLOCK_SIZE * 2 + 1, true);
        assert_eq!(d.stats().blocks_written, 4);
    }
}
