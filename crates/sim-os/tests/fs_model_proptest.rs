//! Model-based property tests: the simulated base file system against
//! a trivial in-memory model, under random operation sequences.

use std::collections::HashMap;

use proptest::prelude::*;
use sim_os::clock::Clock;
use sim_os::cost::CostModel;
use sim_os::fs::basefs::BaseFs;
use sim_os::fs::{FileSystem, FsError};

#[derive(Clone, Debug)]
enum Op {
    Create(u8),
    Write(u8, u16, Vec<u8>),
    Read(u8, u16, u16),
    Unlink(u8),
    Rename(u8, u8),
    Truncate(u8, u16),
    Sync,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..12).prop_map(Op::Create),
        (
            0u8..12,
            0u16..4096,
            proptest::collection::vec(any::<u8>(), 0..256)
        )
            .prop_map(|(f, o, d)| Op::Write(f, o, d)),
        (0u8..12, 0u16..4096, 0u16..512).prop_map(|(f, o, l)| Op::Read(f, o, l)),
        (0u8..12).prop_map(Op::Unlink),
        (0u8..12, 0u8..12).prop_map(|(a, b)| Op::Rename(a, b)),
        (0u8..12, 0u16..2048).prop_map(|(f, s)| Op::Truncate(f, s)),
        Just(Op::Sync),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Contents always match a plain `HashMap<String, Vec<u8>>` model.
    #[test]
    fn basefs_matches_reference_model(ops in proptest::collection::vec(arb_op(), 1..120)) {
        let mut fs = BaseFs::new(Clock::new(), CostModel::default());
        let root = fs.root();
        let mut model: HashMap<String, Vec<u8>> = HashMap::new();
        let name = |f: u8| format!("f{f}");

        for op in ops {
            match op {
                Op::Create(f) => {
                    let n = name(f);
                    let real = fs.create(root, &n);
                    match model.entry(n) {
                        std::collections::hash_map::Entry::Occupied(_) => {
                            prop_assert!(matches!(real, Err(FsError::Exists(_))));
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            prop_assert!(real.is_ok());
                            e.insert(Vec::new());
                        }
                    }
                }
                Op::Write(f, off, data) => {
                    let n = name(f);
                    match fs.lookup(root, &n) {
                        Ok(ino) => {
                            fs.write(ino, off as u64, &data).unwrap();
                            let m = model.get_mut(&n).unwrap();
                            let end = off as usize + data.len();
                            if m.len() < end {
                                m.resize(end, 0);
                            }
                            m[off as usize..end].copy_from_slice(&data);
                        }
                        Err(_) => prop_assert!(!model.contains_key(&n)),
                    }
                }
                Op::Read(f, off, len) => {
                    let n = name(f);
                    if let Ok(ino) = fs.lookup(root, &n) {
                        let got = fs.read(ino, off as u64, len as usize).unwrap();
                        let m = &model[&n];
                        let start = (off as usize).min(m.len());
                        let end = (start + len as usize).min(m.len());
                        prop_assert_eq!(got, m[start..end].to_vec());
                    }
                }
                Op::Unlink(f) => {
                    let n = name(f);
                    let real = fs.unlink(root, &n);
                    prop_assert_eq!(real.is_ok(), model.remove(&n).is_some());
                }
                Op::Rename(a, b) => {
                    let (na, nb) = (name(a), name(b));
                    if model.contains_key(&na) && na != nb {
                        fs.rename(root, &na, root, &nb).unwrap();
                        let v = model.remove(&na).unwrap();
                        model.insert(nb, v);
                    } else if !model.contains_key(&na) {
                        prop_assert!(fs.rename(root, &na, root, &nb).is_err());
                    }
                }
                Op::Truncate(f, size) => {
                    let n = name(f);
                    if let Ok(ino) = fs.lookup(root, &n) {
                        fs.truncate(ino, size as u64).unwrap();
                        model.get_mut(&n).unwrap().resize(size as usize, 0);
                    }
                }
                Op::Sync => fs.sync().unwrap(),
            }
            // Size accounting stays consistent with the model.
            let expect: u64 = model.values().map(|v| v.len() as u64).sum();
            prop_assert_eq!(fs.usage().data_bytes, expect);
        }
        // Final contents identical file by file.
        for (n, data) in &model {
            let ino = fs.lookup(root, n).unwrap();
            let got = fs.read(ino, 0, data.len() + 16).unwrap();
            prop_assert_eq!(&got, data);
        }
    }

    /// Virtual time never goes backwards and always advances under
    /// writes plus sync.
    #[test]
    fn clock_monotonicity(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let clock = Clock::new();
        let mut fs = BaseFs::new(clock.clone(), CostModel::default());
        let root = fs.root();
        let mut last = clock.now();
        for op in ops {
            match op {
                Op::Create(f) => {
                    let _ = fs.create(root, &format!("f{f}"));
                }
                Op::Write(f, off, data) => {
                    if let Ok(ino) = fs.lookup(root, &format!("f{f}")) {
                        let _ = fs.write(ino, off as u64, &data);
                    }
                }
                _ => {
                    let _ = fs.sync();
                }
            }
            let now = clock.now();
            prop_assert!(now >= last);
            last = now;
        }
    }
}
