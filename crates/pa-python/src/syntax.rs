//! Pythonette: lexer, AST and parser.
//!
//! The paper's PA-Python wraps Python objects and methods; shipping
//! CPython is out of scope here, so the wrapper layer is reproduced
//! over a small interpreted language ("Pythonette"). The language has
//! numbers, strings, booleans, lists, user functions, `if`/`for`/
//! `while`, and builtin functions that bridge to the simulated
//! kernel. Braces replace indentation; the provenance semantics of
//! the wrapper layer (crate::interp) are what matter.

use std::fmt;

/// Tokens.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Integer literal.
    Int(i64),
    /// String literal.
    Str(String),
    /// Identifier.
    Ident(String),
    /// Keyword.
    Kw(&'static str),
    /// Punctuation / operator.
    Sym(&'static str),
    /// End of input.
    Eof,
}

const KEYWORDS: &[&str] = &[
    "def", "let", "if", "else", "for", "in", "while", "return", "true", "false", "and", "or",
    "not", "none",
];

/// A parse error with position.
#[derive(Clone, Debug, PartialEq)]
pub struct SyntaxError {
    /// Description.
    pub msg: String,
    /// Byte offset.
    pub pos: usize,
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "syntax error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for SyntaxError {}

/// Tokenizes source text.
pub fn lex(src: &str) -> Result<Vec<(Tok, usize)>, SyntaxError> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '#' {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let pos = i;
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < b.len() && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            let word = &src[start..i];
            match KEYWORDS.iter().find(|k| **k == word) {
                Some(k) => out.push((Tok::Kw(k), pos)),
                None => out.push((Tok::Ident(word.to_string()), pos)),
            }
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < b.len() && (b[i] as char).is_ascii_digit() {
                i += 1;
            }
            let n = src[start..i].parse().map_err(|_| SyntaxError {
                msg: "integer overflow".into(),
                pos,
            })?;
            out.push((Tok::Int(n), pos));
            continue;
        }
        if c == '"' {
            i += 1;
            let mut s = String::new();
            loop {
                if i >= b.len() {
                    return Err(SyntaxError {
                        msg: "unterminated string".into(),
                        pos,
                    });
                }
                let ch = b[i] as char;
                if ch == '"' {
                    i += 1;
                    break;
                }
                if ch == '\\' && i + 1 < b.len() {
                    s.push(match b[i + 1] as char {
                        'n' => '\n',
                        't' => '\t',
                        o => o,
                    });
                    i += 2;
                    continue;
                }
                s.push(ch);
                i += 1;
            }
            out.push((Tok::Str(s), pos));
            continue;
        }
        let two = if i + 1 < b.len() { &src[i..i + 2] } else { "" };
        let sym: Option<(&'static str, usize)> = match two {
            "==" => Some(("==", 2)),
            "!=" => Some(("!=", 2)),
            "<=" => Some(("<=", 2)),
            ">=" => Some((">=", 2)),
            _ => "+-*/%<>(){}[],;=".find(c).map(|_| {
                let s: &'static str = match c {
                    '+' => "+",
                    '-' => "-",
                    '*' => "*",
                    '/' => "/",
                    '%' => "%",
                    '<' => "<",
                    '>' => ">",
                    '(' => "(",
                    ')' => ")",
                    '{' => "{",
                    '}' => "}",
                    '[' => "[",
                    ']' => "]",
                    ',' => ",",
                    ';' => ";",
                    '=' => "=",
                    _ => unreachable!(),
                };
                (s, 1)
            }),
        };
        match sym {
            Some((s, n)) => {
                out.push((Tok::Sym(s), pos));
                i += n;
            }
            None => {
                return Err(SyntaxError {
                    msg: format!("unexpected character {c:?}"),
                    pos,
                });
            }
        }
    }
    out.push((Tok::Eof, src.len()));
    Ok(out)
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `none`.
    None,
    /// List literal.
    List(Vec<Expr>),
    /// Variable reference.
    Var(String),
    /// Unary operation (`-`, `not`).
    Unary(&'static str, Box<Expr>),
    /// Binary operation.
    Binary(&'static str, Box<Expr>, Box<Expr>),
    /// Function call.
    Call(String, Vec<Expr>),
    /// Indexing `a[i]`.
    Index(Box<Expr>, Box<Expr>),
}

/// Statements.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `let x = e;`
    Let(String, Expr),
    /// `x = e;`
    Assign(String, Expr),
    /// An expression as a statement.
    Expr(Expr),
    /// `if cond { } else { }`
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `for x in e { }`
    For(String, Expr, Vec<Stmt>),
    /// `while cond { }`
    While(Expr, Vec<Stmt>),
    /// `return e;`
    Return(Option<Expr>),
    /// `def f(a, b) { }`
    Def(String, Vec<String>, Vec<Stmt>),
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    at: usize,
}

/// Parses a program.
pub fn parse(src: &str) -> Result<Vec<Stmt>, SyntaxError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, at: 0 };
    let mut stmts = Vec::new();
    while !matches!(p.peek(), Tok::Eof) {
        stmts.push(p.stmt()?);
    }
    Ok(stmts)
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.at].0
    }

    fn pos(&self) -> usize {
        self.toks[self.at].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.at].0.clone();
        if self.at + 1 < self.toks.len() {
            self.at += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> SyntaxError {
        SyntaxError {
            msg: msg.into(),
            pos: self.pos(),
        }
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Tok::Sym(x) if *x == s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Tok::Kw(x) if *x == s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<(), SyntaxError> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`, found {:?}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String, SyntaxError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, SyntaxError> {
        self.expect_sym("{")?;
        let mut stmts = Vec::new();
        while !self.eat_sym("}") {
            if matches!(self.peek(), Tok::Eof) {
                return Err(self.err("unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, SyntaxError> {
        if self.eat_kw("def") {
            let name = self.expect_ident()?;
            self.expect_sym("(")?;
            let mut params = Vec::new();
            if !self.eat_sym(")") {
                loop {
                    params.push(self.expect_ident()?);
                    if self.eat_sym(")") {
                        break;
                    }
                    self.expect_sym(",")?;
                }
            }
            let body = self.block()?;
            return Ok(Stmt::Def(name, params, body));
        }
        if self.eat_kw("let") {
            let name = self.expect_ident()?;
            self.expect_sym("=")?;
            let e = self.expr()?;
            self.expect_sym(";")?;
            return Ok(Stmt::Let(name, e));
        }
        if self.eat_kw("if") {
            let cond = self.expr()?;
            let then = self.block()?;
            let els = if self.eat_kw("else") {
                if matches!(self.peek(), Tok::Kw("if")) {
                    vec![self.stmt()?]
                } else {
                    self.block()?
                }
            } else {
                Vec::new()
            };
            return Ok(Stmt::If(cond, then, els));
        }
        if self.eat_kw("for") {
            let var = self.expect_ident()?;
            if !self.eat_kw("in") {
                return Err(self.err("expected `in`"));
            }
            let iter = self.expr()?;
            let body = self.block()?;
            return Ok(Stmt::For(var, iter, body));
        }
        if self.eat_kw("while") {
            let cond = self.expr()?;
            let body = self.block()?;
            return Ok(Stmt::While(cond, body));
        }
        if self.eat_kw("return") {
            if self.eat_sym(";") {
                return Ok(Stmt::Return(None));
            }
            let e = self.expr()?;
            self.expect_sym(";")?;
            return Ok(Stmt::Return(Some(e)));
        }
        // Assignment or expression statement.
        if let Tok::Ident(name) = self.peek().clone() {
            if matches!(
                self.toks.get(self.at + 1).map(|t| &t.0),
                Some(Tok::Sym("="))
            ) {
                self.bump();
                self.bump();
                let e = self.expr()?;
                self.expect_sym(";")?;
                return Ok(Stmt::Assign(name, e));
            }
        }
        let e = self.expr()?;
        self.expect_sym(";")?;
        Ok(Stmt::Expr(e))
    }

    fn expr(&mut self) -> Result<Expr, SyntaxError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, SyntaxError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("or") {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary("or", Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, SyntaxError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat_kw("and") {
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary("and", Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, SyntaxError> {
        let lhs = self.add_expr()?;
        for op in ["==", "!=", "<=", ">=", "<", ">"] {
            if self.eat_sym(op) {
                let rhs = self.add_expr()?;
                let op: &'static str = match op {
                    "==" => "==",
                    "!=" => "!=",
                    "<=" => "<=",
                    ">=" => ">=",
                    "<" => "<",
                    _ => ">",
                };
                return Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)));
            }
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, SyntaxError> {
        let mut lhs = self.mul_expr()?;
        loop {
            if self.eat_sym("+") {
                let rhs = self.mul_expr()?;
                lhs = Expr::Binary("+", Box::new(lhs), Box::new(rhs));
            } else if self.eat_sym("-") {
                let rhs = self.mul_expr()?;
                lhs = Expr::Binary("-", Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, SyntaxError> {
        let mut lhs = self.unary_expr()?;
        loop {
            if self.eat_sym("*") {
                let rhs = self.unary_expr()?;
                lhs = Expr::Binary("*", Box::new(lhs), Box::new(rhs));
            } else if self.eat_sym("/") {
                let rhs = self.unary_expr()?;
                lhs = Expr::Binary("/", Box::new(lhs), Box::new(rhs));
            } else if self.eat_sym("%") {
                let rhs = self.unary_expr()?;
                lhs = Expr::Binary("%", Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, SyntaxError> {
        if self.eat_sym("-") {
            return Ok(Expr::Unary("-", Box::new(self.unary_expr()?)));
        }
        if self.eat_kw("not") {
            return Ok(Expr::Unary("not", Box::new(self.unary_expr()?)));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, SyntaxError> {
        let mut e = self.primary()?;
        while self.eat_sym("[") {
            let idx = self.expr()?;
            self.expect_sym("]")?;
            e = Expr::Index(Box::new(e), Box::new(idx));
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, SyntaxError> {
        match self.peek().clone() {
            Tok::Int(n) => {
                self.bump();
                Ok(Expr::Int(n))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Str(s))
            }
            Tok::Kw("true") => {
                self.bump();
                Ok(Expr::Bool(true))
            }
            Tok::Kw("false") => {
                self.bump();
                Ok(Expr::Bool(false))
            }
            Tok::Kw("none") => {
                self.bump();
                Ok(Expr::None)
            }
            Tok::Sym("(") => {
                self.bump();
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Tok::Sym("[") => {
                self.bump();
                let mut items = Vec::new();
                if !self.eat_sym("]") {
                    loop {
                        items.push(self.expr()?);
                        if self.eat_sym("]") {
                            break;
                        }
                        self.expect_sym(",")?;
                    }
                }
                Ok(Expr::List(items))
            }
            Tok::Ident(name) => {
                self.bump();
                if self.eat_sym("(") {
                    let mut args = Vec::new();
                    if !self.eat_sym(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_sym(")") {
                                break;
                            }
                            self.expect_sym(",")?;
                        }
                    }
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_function_and_loop() {
        let prog = parse(
            r#"
            def analyze(files) {
                let results = [];
                for f in files {
                    let doc = read_file(f);
                    if contains(doc, "classA") {
                        push(results, f);
                    }
                }
                return results;
            }
            let out = analyze(list_dir("/data"));
            "#,
        )
        .unwrap();
        assert_eq!(prog.len(), 2);
        assert!(
            matches!(&prog[0], Stmt::Def(name, params, _) if name == "analyze" && params.len() == 1)
        );
    }

    #[test]
    fn operator_precedence() {
        let prog = parse("let x = 1 + 2 * 3;").unwrap();
        let Stmt::Let(_, Expr::Binary("+", _, rhs)) = &prog[0] else {
            panic!("bad parse: {prog:?}");
        };
        assert!(matches!(**rhs, Expr::Binary("*", _, _)));
    }

    #[test]
    fn if_else_chains() {
        let prog = parse("if a == 1 { f(); } else if a == 2 { g(); } else { h(); }").unwrap();
        assert_eq!(prog.len(), 1);
    }

    #[test]
    fn comments_and_strings() {
        let prog = parse("# a comment\nlet s = \"hi\\n\"; # trailing\n").unwrap();
        assert_eq!(prog.len(), 1);
        assert!(matches!(&prog[0], Stmt::Let(_, Expr::Str(s)) if s == "hi\n"));
    }

    #[test]
    fn errors_report_position() {
        let err = parse("let x = ;").unwrap_err();
        assert_eq!(err.pos, 8);
        assert!(parse("def f( {").is_err());
        assert!(parse("for x 5 {}").is_err());
    }

    #[test]
    fn indexing_and_lists() {
        let prog = parse("let v = [1, 2, 3][0];").unwrap();
        assert!(matches!(&prog[0], Stmt::Let(_, Expr::Index(_, _))));
    }
}
