//! The Pythonette interpreter and its provenance wrappers.
//!
//! The wrapper layer reproduces the PA-Python design of paper §6.4:
//! wrapped functions become PASS objects (`TYPE=FUNCTION`, `NAME`)
//! created with `pass_mkobj`; every invocation records `INPUT`
//! dependencies between each input and the invocation, and between
//! the invocation and each of its outputs. Values carry an optional
//! *origin* (the provenance identity of the object they came from) —
//! and, exactly as the paper observed, origins are *lost across
//! built-in operators*: wrapping functions makes an application
//! provenance-aware, not the interpreter itself (§6.5).

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use dpapi::{Attribute, Bundle, ObjectRef, ProvenanceRecord, Value as DValue};
use sim_os::proc::Pid;
use sim_os::syscall::{Kernel, OpenFlags};

use crate::syntax::{parse, Expr, Stmt, SyntaxError};

/// Runtime errors.
#[derive(Debug)]
pub enum PyError {
    /// A parse failure.
    Syntax(SyntaxError),
    /// A runtime failure.
    Runtime(String),
}

impl std::fmt::Display for PyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PyError::Syntax(e) => write!(f, "{e}"),
            PyError::Runtime(m) => write!(f, "runtime error: {m}"),
        }
    }
}

impl std::error::Error for PyError {}

impl From<SyntaxError> for PyError {
    fn from(e: SyntaxError) -> Self {
        PyError::Syntax(e)
    }
}

fn rt(msg: impl Into<String>) -> PyError {
    PyError::Runtime(msg.into())
}

/// A runtime value.
#[derive(Clone, Debug)]
pub enum Val {
    /// Integer.
    Int(i64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// `none`.
    None,
    /// A list (reference semantics, as in Python).
    List(Rc<RefCell<Vec<PValue>>>),
}

impl PartialEq for Val {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Val::Int(a), Val::Int(b)) => a == b,
            (Val::Str(a), Val::Str(b)) => a == b,
            (Val::Bool(a), Val::Bool(b)) => a == b,
            (Val::None, Val::None) => true,
            (Val::List(a), Val::List(b)) => {
                let a = a.borrow();
                let b = b.borrow();
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.v == y.v)
            }
            _ => false,
        }
    }
}

/// A value with its provenance origin.
#[derive(Clone, Debug, PartialEq)]
pub struct PValue {
    /// The value.
    pub v: Val,
    /// Where it came from, if tracked.
    pub origin: Option<ObjectRef>,
}

impl PValue {
    /// An origin-less value.
    pub fn plain(v: Val) -> PValue {
        PValue { v, origin: None }
    }

    /// `none`.
    pub fn none() -> PValue {
        PValue::plain(Val::None)
    }

    fn truthy(&self) -> bool {
        match &self.v {
            Val::Bool(b) => *b,
            Val::Int(i) => *i != 0,
            Val::Str(s) => !s.is_empty(),
            Val::None => false,
            Val::List(l) => !l.borrow().is_empty(),
        }
    }
}

enum Flow {
    Normal(#[allow(dead_code)] PValue),
    Return(PValue),
}

/// One recorded wrapped invocation (for tests and reports).
#[derive(Clone, Debug)]
pub struct Invocation {
    /// The function name.
    pub name: String,
    /// The invocation object's identity.
    pub identity: ObjectRef,
    /// Origins of the inputs that carried provenance.
    pub inputs: Vec<ObjectRef>,
}

/// The interpreter.
pub struct Interp {
    pid: Pid,
    funcs: HashMap<String, (Vec<String>, Vec<Stmt>)>,
    globals: HashMap<String, PValue>,
    wrapped: HashSet<String>,
    step_limit: u64,
    steps: u64,
    /// Wrapped invocations performed, in order.
    pub invocations: Vec<Invocation>,
    /// When set, invocation disclosures go through the async front
    /// door instead of committing synchronously.
    pipe: Option<(sluice::Sluice, sluice::ClientId)>,
}

impl Interp {
    /// Creates an interpreter running as `pid`.
    pub fn new(pid: Pid) -> Interp {
        Interp {
            pid,
            funcs: HashMap::new(),
            globals: HashMap::new(),
            wrapped: HashSet::new(),
            step_limit: 10_000_000,
            steps: 0,
            invocations: Vec::new(),
            pipe: None,
        }
    }

    /// Routes invocation disclosures through a [`sluice::Sluice`]: a
    /// call-heavy program submits each invocation's records-plus-sync
    /// transaction into the pipeline, where consecutive invocations
    /// coalesce into group frames. [`Interp::run`] drains before
    /// returning, so the disclosed provenance is identical to the
    /// synchronous interpreter's. Identities stay immediate: the
    /// invocation object's pnode is allocated eagerly by `pass_mkobj`.
    pub fn enable_pipelining(&mut self, pipe: sluice::Sluice) {
        self.pipe = Some((pipe, sluice::ClientId(0)));
    }

    /// Pipeline statistics, if pipelining is enabled.
    pub fn pipe_stats(&self) -> Option<sluice::SluiceStats> {
        self.pipe.as_ref().map(|(p, _)| p.stats())
    }

    /// Flushes any queued invocation disclosures to completion.
    pub fn drain_pipeline(&mut self, kernel: &mut Kernel) {
        if let Some((pipe, _)) = self.pipe.as_mut() {
            let mut layer = passv2::LibPass::new(kernel, self.pid);
            pipe.drain(&mut layer);
        }
    }

    /// Wraps a function: its invocations become provenance objects.
    /// "By wrapping a few modules and objects we record the
    /// information flow pertaining to those objects."
    pub fn wrap(&mut self, name: &str) {
        self.wrapped.insert(name.to_string());
    }

    /// Runs a program, returning the value of `main()` if defined, or
    /// `none`.
    pub fn run(&mut self, kernel: &mut Kernel, src: &str) -> Result<PValue, PyError> {
        let prog = parse(src)?;
        let mut scope = HashMap::new();
        for stmt in &prog {
            match self.exec(kernel, stmt, &mut scope) {
                Ok(Flow::Return(v)) => {
                    self.drain_pipeline(kernel);
                    return Ok(v);
                }
                Ok(_) => {}
                Err(e) => {
                    self.drain_pipeline(kernel);
                    return Err(e);
                }
            }
        }
        self.globals.extend(scope);
        self.drain_pipeline(kernel);
        Ok(PValue::none())
    }

    /// Calls a defined function by name (e.g. from a host test).
    pub fn call_function(
        &mut self,
        kernel: &mut Kernel,
        name: &str,
        args: Vec<PValue>,
    ) -> Result<PValue, PyError> {
        self.call(kernel, name, args)
    }

    fn tick(&mut self) -> Result<(), PyError> {
        self.steps += 1;
        if self.steps > self.step_limit {
            return Err(rt("step limit exceeded (infinite loop?)"));
        }
        Ok(())
    }

    fn exec(
        &mut self,
        kernel: &mut Kernel,
        stmt: &Stmt,
        scope: &mut HashMap<String, PValue>,
    ) -> Result<Flow, PyError> {
        self.tick()?;
        match stmt {
            Stmt::Def(name, params, body) => {
                self.funcs
                    .insert(name.clone(), (params.clone(), body.clone()));
                Ok(Flow::Normal(PValue::none()))
            }
            Stmt::Let(name, e) | Stmt::Assign(name, e) => {
                let v = self.eval(kernel, e, scope)?;
                scope.insert(name.clone(), v);
                Ok(Flow::Normal(PValue::none()))
            }
            Stmt::Expr(e) => {
                let v = self.eval(kernel, e, scope)?;
                Ok(Flow::Normal(v))
            }
            Stmt::If(cond, then, els) => {
                let c = self.eval(kernel, cond, scope)?;
                let body = if c.truthy() { then } else { els };
                for s in body {
                    if let Flow::Return(v) = self.exec(kernel, s, scope)? {
                        return Ok(Flow::Return(v));
                    }
                }
                Ok(Flow::Normal(PValue::none()))
            }
            Stmt::For(var, iter, body) => {
                let it = self.eval(kernel, iter, scope)?;
                let items: Vec<PValue> = match &it.v {
                    Val::List(l) => l.borrow().clone(),
                    other => return Err(rt(format!("cannot iterate over {other:?}"))),
                };
                for item in items {
                    scope.insert(var.clone(), item);
                    for s in body {
                        if let Flow::Return(v) = self.exec(kernel, s, scope)? {
                            return Ok(Flow::Return(v));
                        }
                    }
                }
                Ok(Flow::Normal(PValue::none()))
            }
            Stmt::While(cond, body) => {
                while self.eval(kernel, cond, scope)?.truthy() {
                    self.tick()?;
                    for s in body {
                        if let Flow::Return(v) = self.exec(kernel, s, scope)? {
                            return Ok(Flow::Return(v));
                        }
                    }
                }
                Ok(Flow::Normal(PValue::none()))
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(kernel, e, scope)?,
                    None => PValue::none(),
                };
                Ok(Flow::Return(v))
            }
        }
    }

    fn eval(
        &mut self,
        kernel: &mut Kernel,
        expr: &Expr,
        scope: &mut HashMap<String, PValue>,
    ) -> Result<PValue, PyError> {
        self.tick()?;
        match expr {
            Expr::Int(n) => Ok(PValue::plain(Val::Int(*n))),
            Expr::Str(s) => Ok(PValue::plain(Val::Str(s.clone()))),
            Expr::Bool(b) => Ok(PValue::plain(Val::Bool(*b))),
            Expr::None => Ok(PValue::none()),
            Expr::List(items) => {
                let vals: Result<Vec<PValue>, PyError> =
                    items.iter().map(|e| self.eval(kernel, e, scope)).collect();
                Ok(PValue::plain(Val::List(Rc::new(RefCell::new(vals?)))))
            }
            Expr::Var(name) => scope
                .get(name)
                .or_else(|| self.globals.get(name))
                .cloned()
                .ok_or_else(|| rt(format!("undefined variable `{name}`"))),
            Expr::Unary(op, e) => {
                let v = self.eval(kernel, e, scope)?;
                match (*op, &v.v) {
                    ("-", Val::Int(i)) => Ok(PValue::plain(Val::Int(-i))),
                    ("not", _) => Ok(PValue::plain(Val::Bool(!v.truthy()))),
                    (op, other) => Err(rt(format!("bad operand for `{op}`: {other:?}"))),
                }
            }
            Expr::Binary(op, a, b) => {
                let lhs = self.eval(kernel, a, scope)?;
                if *op == "and" {
                    if !lhs.truthy() {
                        return Ok(PValue::plain(Val::Bool(false)));
                    }
                    let rhs = self.eval(kernel, b, scope)?;
                    return Ok(PValue::plain(Val::Bool(rhs.truthy())));
                }
                if *op == "or" {
                    if lhs.truthy() {
                        return Ok(PValue::plain(Val::Bool(true)));
                    }
                    let rhs = self.eval(kernel, b, scope)?;
                    return Ok(PValue::plain(Val::Bool(rhs.truthy())));
                }
                let rhs = self.eval(kernel, b, scope)?;
                // NOTE: built-in operators produce origin-less values;
                // this is the wrapper blind spot the paper documents.
                let v = match (*op, &lhs.v, &rhs.v) {
                    ("+", Val::Int(x), Val::Int(y)) => Val::Int(x + y),
                    ("+", Val::Str(x), Val::Str(y)) => Val::Str(format!("{x}{y}")),
                    ("-", Val::Int(x), Val::Int(y)) => Val::Int(x - y),
                    ("*", Val::Int(x), Val::Int(y)) => Val::Int(x * y),
                    ("/", Val::Int(x), Val::Int(y)) => {
                        if *y == 0 {
                            return Err(rt("division by zero"));
                        }
                        Val::Int(x / y)
                    }
                    ("%", Val::Int(x), Val::Int(y)) => {
                        if *y == 0 {
                            return Err(rt("modulo by zero"));
                        }
                        Val::Int(x % y)
                    }
                    ("==", _, _) => Val::Bool(lhs.v == rhs.v),
                    ("!=", _, _) => Val::Bool(lhs.v != rhs.v),
                    ("<", Val::Int(x), Val::Int(y)) => Val::Bool(x < y),
                    ("<=", Val::Int(x), Val::Int(y)) => Val::Bool(x <= y),
                    (">", Val::Int(x), Val::Int(y)) => Val::Bool(x > y),
                    (">=", Val::Int(x), Val::Int(y)) => Val::Bool(x >= y),
                    ("<", Val::Str(x), Val::Str(y)) => Val::Bool(x < y),
                    (">", Val::Str(x), Val::Str(y)) => Val::Bool(x > y),
                    (op, x, y) => {
                        return Err(rt(format!("bad operands for `{op}`: {x:?}, {y:?}")));
                    }
                };
                Ok(PValue::plain(v))
            }
            Expr::Index(e, idx) => {
                let v = self.eval(kernel, e, scope)?;
                let i = self.eval(kernel, idx, scope)?;
                match (&v.v, &i.v) {
                    (Val::List(l), Val::Int(n)) => {
                        let l = l.borrow();
                        let idx = *n as usize;
                        l.get(idx)
                            .cloned()
                            .ok_or_else(|| rt(format!("index {n} out of range")))
                    }
                    (x, y) => Err(rt(format!("cannot index {x:?} with {y:?}"))),
                }
            }
            Expr::Call(name, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(kernel, a, scope)?);
                }
                self.call(kernel, name, vals)
            }
        }
    }

    fn call(
        &mut self,
        kernel: &mut Kernel,
        name: &str,
        args: Vec<PValue>,
    ) -> Result<PValue, PyError> {
        if let Some(v) = self.builtin(kernel, name, &args)? {
            return Ok(v);
        }
        let (params, body) = self
            .funcs
            .get(name)
            .cloned()
            .ok_or_else(|| rt(format!("undefined function `{name}`")))?;
        if params.len() != args.len() {
            return Err(rt(format!(
                "`{name}` takes {} arguments, got {}",
                params.len(),
                args.len()
            )));
        }
        let wrapped = self.wrapped.contains(name);
        let invocation = if wrapped {
            self.begin_invocation(kernel, name, &args)
        } else {
            None
        };
        let mut scope: HashMap<String, PValue> = params.into_iter().zip(args).collect();
        let mut result = PValue::none();
        for s in &body {
            if let Flow::Return(v) = self.exec(kernel, s, &mut scope)? {
                result = v;
                break;
            }
        }
        if let Some(inv) = invocation {
            result = self.end_invocation(kernel, inv, result);
        }
        Ok(result)
    }

    /// Creates the invocation object and records input dependencies.
    fn begin_invocation(
        &mut self,
        kernel: &mut Kernel,
        name: &str,
        args: &[PValue],
    ) -> Option<Invocation> {
        let h = kernel.pass_mkobj(self.pid, None).ok()?;
        let mut bundle = Bundle::new();
        bundle.push(
            h,
            ProvenanceRecord::new(Attribute::Type, DValue::str("FUNCTION")),
        );
        bundle.push(h, ProvenanceRecord::new(Attribute::Name, DValue::str(name)));
        let mut inputs = Vec::new();
        for a in args {
            for origin in collect_origins(a) {
                bundle.push(h, ProvenanceRecord::input(origin));
                inputs.push(origin);
            }
        }
        // One disclosure transaction for the invocation: its records
        // and the durability sync commit atomically (and cost one
        // syscall instead of two).
        let mut txn = dpapi::Txn::new();
        txn.disclose(h, bundle).sync(h);
        match self.pipe.as_mut() {
            Some((pipe, client)) => {
                let client = *client;
                let mut layer = passv2::LibPass::new(kernel, self.pid);
                pipe.submit_with(&mut layer, client, txn, Box::new(|_, _| {}))
                    .ok()?;
            }
            None => {
                kernel.pass_commit(self.pid, txn).ok()?;
            }
        }
        let identity = kernel.pass_read(self.pid, h, 0, 0).ok()?.identity;
        let inv = Invocation {
            name: name.to_string(),
            identity,
            inputs,
        };
        self.invocations.push(inv.clone());
        Some(inv)
    }

    /// Records output dependencies and tags the result's origin.
    fn end_invocation(
        &mut self,
        kernel: &mut Kernel,
        inv: Invocation,
        mut result: PValue,
    ) -> PValue {
        match result.origin {
            Some(out) if out != inv.identity && !inv.inputs.contains(&out) => {
                // The result is a genuinely new object (e.g. a file
                // the function wrote): record invocation → output. A
                // passed-through *input* origin must not take this
                // path — that would invert the edge and make the
                // input look like a product of the call.
                if let Ok(h) = kernel.pass_reviveobj(self.pid, out.pnode, out.version) {
                    let bundle = Bundle::single(h, ProvenanceRecord::input(inv.identity));
                    let _ = kernel.pass_write(self.pid, h, 0, &[], bundle);
                    let _ = kernel.pass_close(self.pid, h);
                }
            }
            _ => {
                // A computed value (or a value derived from an
                // input): its origin is the invocation.
                result.origin = Some(inv.identity);
            }
        }
        result
    }

    /// Builtin functions; returns `Ok(None)` if `name` is not one.
    fn builtin(
        &mut self,
        kernel: &mut Kernel,
        name: &str,
        args: &[PValue],
    ) -> Result<Option<PValue>, PyError> {
        let v = match (name, args) {
            ("len", [a]) => {
                let n = match &a.v {
                    Val::Str(s) => s.len() as i64,
                    Val::List(l) => l.borrow().len() as i64,
                    other => return Err(rt(format!("len of {other:?}"))),
                };
                PValue::plain(Val::Int(n))
            }
            ("push", [list, item]) => {
                let Val::List(l) = &list.v else {
                    return Err(rt("push on non-list"));
                };
                l.borrow_mut().push(item.clone());
                PValue::none()
            }
            ("range", [a]) => {
                let Val::Int(n) = a.v else {
                    return Err(rt("range of non-int"));
                };
                let items: Vec<PValue> = (0..n).map(|i| PValue::plain(Val::Int(i))).collect();
                PValue::plain(Val::List(Rc::new(RefCell::new(items))))
            }
            ("contains", [hay, needle]) => match (&hay.v, &needle.v) {
                (Val::Str(h), Val::Str(n)) => PValue::plain(Val::Bool(h.contains(n.as_str()))),
                (Val::List(l), _) => {
                    PValue::plain(Val::Bool(l.borrow().iter().any(|x| x.v == needle.v)))
                }
                (x, y) => return Err(rt(format!("contains({x:?}, {y:?})"))),
            },
            ("str", [a]) => PValue::plain(Val::Str(display(&a.v))),
            ("xml_field", [doc, field]) => {
                let (Val::Str(d), Val::Str(f)) = (&doc.v, &field.v) else {
                    return Err(rt("xml_field wants strings"));
                };
                let open = format!("<{f}>");
                let close = format!("</{f}>");
                let value = d
                    .find(&open)
                    .and_then(|s| {
                        let rest = &d[s + open.len()..];
                        rest.find(&close).map(|e| rest[..e].to_string())
                    })
                    .unwrap_or_default();
                PValue {
                    v: Val::Str(value),
                    // Substring extraction is a *wrapped helper*, so
                    // it preserves the document's origin.
                    origin: doc.origin,
                }
            }
            ("read_file", [path]) => {
                let Val::Str(p) = &path.v else {
                    return Err(rt("read_file wants a path string"));
                };
                return Ok(Some(self.read_file(kernel, p)?));
            }
            ("write_file", [path, data]) => {
                let Val::Str(p) = &path.v else {
                    return Err(rt("write_file wants a path string"));
                };
                let body = display(&data.v);
                return Ok(Some(self.write_file(kernel, p, body.as_bytes(), data)?));
            }
            ("list_dir", [path]) => {
                let Val::Str(p) = &path.v else {
                    return Err(rt("list_dir wants a path string"));
                };
                let entries = kernel.readdir(self.pid, p).map_err(|e| rt(e.to_string()))?;
                let prefix = if p == "/" { String::new() } else { p.clone() };
                let items: Vec<PValue> = entries
                    .into_iter()
                    .map(|e| PValue::plain(Val::Str(format!("{prefix}/{}", e.name))))
                    .collect();
                PValue::plain(Val::List(Rc::new(RefCell::new(items))))
            }
            ("compute", [a]) => {
                let Val::Int(units) = a.v else {
                    return Err(rt("compute wants an int"));
                };
                kernel.compute(units.max(0) as u64);
                PValue::none()
            }
            _ => return Ok(None),
        };
        Ok(Some(v))
    }

    fn read_file(&mut self, kernel: &mut Kernel, path: &str) -> Result<PValue, PyError> {
        let fd = kernel
            .open(self.pid, path, OpenFlags::RDONLY)
            .map_err(|e| rt(e.to_string()))?;
        let size = kernel
            .stat(self.pid, path)
            .map_err(|e| rt(e.to_string()))?
            .size as usize;
        // Read through the DPAPI when available so the exact identity
        // of what was read is captured.
        let (data, origin) = match kernel.pass_handle_for_fd(self.pid, fd) {
            Ok(h) => match kernel.pass_read(self.pid, h, 0, size) {
                Ok(r) => (r.data, Some(r.identity)),
                Err(_) => (
                    kernel
                        .read(self.pid, fd, size)
                        .map_err(|e| rt(e.to_string()))?,
                    None,
                ),
            },
            Err(_) => (
                kernel
                    .read(self.pid, fd, size)
                    .map_err(|e| rt(e.to_string()))?,
                None,
            ),
        };
        kernel.close(self.pid, fd).map_err(|e| rt(e.to_string()))?;
        Ok(PValue {
            v: Val::Str(String::from_utf8_lossy(&data).into_owned()),
            origin,
        })
    }

    fn write_file(
        &mut self,
        kernel: &mut Kernel,
        path: &str,
        body: &[u8],
        data: &PValue,
    ) -> Result<PValue, PyError> {
        let fd = kernel
            .open(self.pid, path, OpenFlags::WRONLY_CREATE)
            .map_err(|e| rt(e.to_string()))?;
        let identity = match kernel.pass_handle_for_fd(self.pid, fd) {
            Ok(h) => {
                let mut bundle = Bundle::new();
                for origin in collect_origins(data) {
                    bundle.push(h, ProvenanceRecord::input(origin));
                }
                let w = kernel
                    .pass_write(self.pid, h, 0, body, bundle)
                    .map_err(|e| rt(e.to_string()))?;
                Some(w.identity)
            }
            Err(_) => {
                kernel
                    .write(self.pid, fd, body)
                    .map_err(|e| rt(e.to_string()))?;
                None
            }
        };
        kernel.close(self.pid, fd).map_err(|e| rt(e.to_string()))?;
        Ok(PValue {
            v: Val::Str(path.to_string()),
            origin: identity,
        })
    }
}

/// Collects every origin reachable in a value (lists are walked).
fn collect_origins(v: &PValue) -> Vec<ObjectRef> {
    let mut out = Vec::new();
    fn walk(v: &PValue, out: &mut Vec<ObjectRef>) {
        if let Some(o) = v.origin {
            if !out.contains(&o) {
                out.push(o);
            }
        }
        if let Val::List(l) = &v.v {
            for item in l.borrow().iter() {
                walk(item, out);
            }
        }
    }
    walk(v, &mut out);
    out
}

fn display(v: &Val) -> String {
    match v {
        Val::Int(i) => i.to_string(),
        Val::Str(s) => s.clone(),
        Val::Bool(b) => b.to_string(),
        Val::None => "none".to_string(),
        Val::List(l) => {
            let items: Vec<String> = l.borrow().iter().map(|x| display(&x.v)).collect();
            format!("[{}]", items.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use passv2::System;

    fn plain_kernel() -> (Kernel, Pid) {
        let mut sys = System::baseline();
        let pid = sys.spawn("pythonette");
        (sys.kernel, pid)
    }

    fn run_plain(src: &str) -> PValue {
        let (mut k, pid) = plain_kernel();
        let mut interp = Interp::new(pid);
        interp.run(&mut k, src).unwrap()
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let v = run_plain(
            r#"
            def fib(n) {
                if n < 2 { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            return fib(10);
            "#,
        );
        assert_eq!(v.v, Val::Int(55));
    }

    #[test]
    fn lists_have_reference_semantics() {
        let v = run_plain(
            r#"
            let xs = [];
            def fill(l) {
                push(l, 1);
                push(l, 2);
            }
            fill(xs);
            return len(xs);
            "#,
        );
        assert_eq!(v.v, Val::Int(2));
    }

    #[test]
    fn while_and_range() {
        let v = run_plain(
            r#"
            let total = 0;
            for i in range(5) { total = total + i; }
            let j = 0;
            while j < 3 { total = total + 10; j = j + 1; }
            return total;
            "#,
        );
        assert_eq!(v.v, Val::Int(40));
    }

    #[test]
    fn string_ops_and_xml_field() {
        let v = run_plain(
            r#"
            let doc = "<exp><heat>42</heat><class>classA</class></exp>";
            if contains(doc, "classA") {
                return xml_field(doc, "heat");
            }
            return "no";
            "#,
        );
        assert_eq!(v.v, Val::Str("42".into()));
    }

    #[test]
    fn file_io_round_trip() {
        let (mut k, pid) = plain_kernel();
        k.write_file(pid, "/data.txt", b"payload").unwrap();
        let mut interp = Interp::new(pid);
        let v = interp
            .run(
                &mut k,
                r#"
                let d = read_file("/data.txt");
                write_file("/copy.txt", d + "!");
                return read_file("/copy.txt");
                "#,
            )
            .unwrap();
        assert_eq!(v.v, Val::Str("payload!".into()));
    }

    #[test]
    fn infinite_loops_are_bounded() {
        let (mut k, pid) = plain_kernel();
        let mut interp = Interp::new(pid);
        interp.step_limit = 10_000;
        let err = interp.run(&mut k, "while true { let x = 1; }").unwrap_err();
        assert!(matches!(err, PyError::Runtime(_)));
    }

    #[test]
    fn runtime_errors_are_reported() {
        let (mut k, pid) = plain_kernel();
        let mut interp = Interp::new(pid);
        assert!(interp.run(&mut k, "return 1 / 0;").is_err());
        assert!(interp.run(&mut k, "return nope();").is_err());
        assert!(interp.run(&mut k, "return undefined_var;").is_err());
        assert!(interp.run(&mut k, "return [1][5];").is_err());
    }

    #[test]
    fn wrapped_function_creates_invocation_objects() {
        let mut sys = System::single_volume();
        let pid = sys.spawn("pythonette");
        sys.kernel
            .write_file(pid, "/in.xml", b"<heat>7</heat>")
            .unwrap();
        let mut interp = Interp::new(pid);
        interp.wrap("crack_heat");
        interp
            .run(
                &mut sys.kernel,
                r#"
                def crack_heat(doc) {
                    return xml_field(doc, "heat");
                }
                let d = read_file("/in.xml");
                let h = crack_heat(d);
                write_file("/plot.out", h);
                "#,
            )
            .unwrap();
        assert_eq!(interp.invocations.len(), 1);
        let inv = &interp.invocations[0];
        assert_eq!(inv.name, "crack_heat");
        assert_eq!(inv.inputs.len(), 1, "the XML doc origin is an input");
        // The result of the wrapped call carried the invocation's
        // provenance into the output file: check the graph.
        let waldo_pid = sys.kernel.spawn_init("waldo");
        sys.pass.exempt(waldo_pid);
        let mut w = waldo::Waldo::new(waldo_pid);
        for (_, logs) in sys.rotate_all_logs() {
            for log in logs {
                w.ingest_log_file(&mut sys.kernel, &log);
            }
        }
        let funcs = w.db.find_by_type("FUNCTION");
        assert_eq!(funcs.len(), 1);
        let plots = w.db.find_by_name("/plot.out");
        assert_eq!(plots.len(), 1);
        let obj = w.db.object(plots[0]).unwrap();
        let v = dpapi::Version(obj.current);
        let anc = w.db.ancestors(dpapi::ObjectRef::new(plots[0], v));
        assert!(
            anc.iter().any(|r| r.pnode == funcs[0]),
            "plot must descend from the crack_heat invocation: {anc:?}"
        );
    }

    #[test]
    fn builtin_operators_lose_provenance() {
        // The §6.5 lesson: "while we could wrap functions, we lost
        // provenance across built-in operators."
        let mut sys = System::single_volume();
        let pid = sys.spawn("pythonette");
        sys.kernel.write_file(pid, "/a.txt", b"aaa").unwrap();
        let mut interp = Interp::new(pid);
        interp
            .run(
                &mut sys.kernel,
                r#"
                let a = read_file("/a.txt");
                let joined = a + "suffix";
                "#,
            )
            .unwrap();
        // `a` had an origin; `joined` does not.
        let a = interp.globals.get("a").unwrap();
        let joined = interp.globals.get("joined").unwrap();
        assert!(a.origin.is_some());
        assert!(joined.origin.is_none());
        // xml_field (a wrapped helper) preserves it by contrast.
        interp
            .run(
                &mut sys.kernel,
                r#"let f = xml_field(read_file("/a.txt"), "x");"#,
            )
            .unwrap();
        assert!(interp.globals.get("f").unwrap().origin.is_some());
    }
}
