//! PA-Python: provenance-aware scripting via wrappers.
//!
//! The paper's colleagues wrapped Python objects, modules and output
//! files so that method invocations became provenance objects with
//! `TYPE=FUNCTION`, `NAME` and `INPUT` records (§6.4). This crate
//! reproduces that layer over "Pythonette", a small interpreted
//! language, including the honest limitation the paper reports: the
//! wrappers capture provenance across *function calls* but lose it
//! across *built-in operators* — the difference between a
//! provenance-aware application and a provenance-aware interpreter
//! (§6.5).

pub mod interp;
pub mod syntax;

pub use interp::{Interp, Invocation, PValue, PyError, Val};
pub use syntax::{lex, parse, Expr, Stmt, SyntaxError};
