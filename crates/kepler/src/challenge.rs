//! The First Provenance Challenge fMRI workflow.
//!
//! The paper's Figure 1 scenario executes "the Provenance Challenge
//! workflow, reading inputs from one NFS file server and writing
//! outputs to another" (§3.1). The workflow is the well-known fMRI
//! pipeline: four anatomy images are aligned against a reference
//! (`align_warp`), resliced, averaged into an atlas (`softmean`),
//! sliced along three axes (`slicer`) and converted to images
//! (`convert`), producing `atlas-x.gif`, `atlas-y.gif` and
//! `atlas-z.gif`.

use std::rc::Rc;

use sim_os::fs::FsResult;
use sim_os::proc::Pid;
use sim_os::syscall::Kernel;

use crate::engine::{mix, OpKind, Workflow};

/// The three output axes.
pub const AXES: [&str; 3] = ["x", "y", "z"];

/// Paths used by one challenge run.
#[derive(Clone, Debug)]
pub struct ChallengePaths {
    /// Directory holding `anatomy{1..4}.img/.hdr` and
    /// `reference.img/.hdr` (typically the first NFS mount).
    pub input_dir: String,
    /// Directory for intermediates (typically local disk).
    pub work_dir: String,
    /// Directory for the atlas outputs (typically the second NFS
    /// mount).
    pub output_dir: String,
}

impl ChallengePaths {
    /// Path of the `i`-th anatomy image (1-based).
    pub fn anatomy(&self, i: usize) -> String {
        format!("{}/anatomy{}.img", self.input_dir, i)
    }

    /// Path of the anatomy header.
    pub fn anatomy_hdr(&self, i: usize) -> String {
        format!("{}/anatomy{}.hdr", self.input_dir, i)
    }

    /// Path of the reference image.
    pub fn reference(&self) -> String {
        format!("{}/reference.img", self.input_dir)
    }

    /// Path of a final atlas image for an axis.
    pub fn atlas_gif(&self, axis: &str) -> String {
        format!("{}/atlas-{}.gif", self.output_dir, axis)
    }
}

/// Writes synthetic input data sets into `paths.input_dir`. `seed`
/// varies the content so tests can model "a colleague modified an
/// input".
pub fn populate_inputs(
    kernel: &mut Kernel,
    pid: Pid,
    paths: &ChallengePaths,
    seed: u8,
) -> FsResult<()> {
    for i in 1..=4 {
        let body: Vec<u8> = (0..2048u32)
            .map(|j| (j as u8).wrapping_mul(i as u8).wrapping_add(seed))
            .collect();
        kernel.write_file(pid, &paths.anatomy(i), &body)?;
        kernel.write_file(
            pid,
            &paths.anatomy_hdr(i),
            format!("anatomy {i} header seed {seed}").as_bytes(),
        )?;
    }
    let reference: Vec<u8> = (0..2048u32).map(|j| (j % 251) as u8).collect();
    kernel.write_file(pid, &paths.reference(), &reference)?;
    kernel.write_file(
        pid,
        &format!("{}/reference.hdr", paths.input_dir),
        b"ref header",
    )?;
    Ok(())
}

/// Builds the fMRI workflow over the given directories.
pub fn fmri_workflow(paths: &ChallengePaths) -> Workflow {
    let mut wf = Workflow::new();
    let reference = wf.add(
        "reference",
        OpKind::FileSource {
            path: paths.reference(),
        },
    );
    let mut reslice_outputs = Vec::new();
    for i in 1..=4 {
        let img = wf.add(
            &format!("anatomy{i}"),
            OpKind::FileSource {
                path: paths.anatomy(i),
            },
        );
        let hdr = wf.add(
            &format!("anatomy{i}_hdr"),
            OpKind::FileSource {
                path: paths.anatomy_hdr(i),
            },
        );
        let name = format!("align_warp_{i}");
        let align = wf.add_with_params(
            &name,
            &[("model", "12"), ("quick", "false")],
            OpKind::Transform {
                f: {
                    let n = name.clone();
                    Rc::new(move |ins| mix(&n, ins))
                },
                cpu_units: 4_000,
            },
        );
        wf.connect(img, align);
        wf.connect(hdr, align);
        wf.connect(reference, align);
        let warp_sink = wf.add(
            &format!("warp{i}_store"),
            OpKind::FileSink {
                path: format!("{}/warp{}.warp", paths.work_dir, i),
            },
        );
        wf.connect(align, warp_sink);
        let rname = format!("reslice_{i}");
        let reslice = wf.add(
            &rname,
            OpKind::Transform {
                f: {
                    let n = rname.clone();
                    Rc::new(move |ins| mix(&n, ins))
                },
                cpu_units: 2_500,
            },
        );
        wf.connect(warp_sink, reslice);
        let rs_sink = wf.add(
            &format!("reslice{i}_store"),
            OpKind::FileSink {
                path: format!("{}/reslice{}.img", paths.work_dir, i),
            },
        );
        wf.connect(reslice, rs_sink);
        reslice_outputs.push(rs_sink);
    }
    let softmean = wf.add_with_params(
        "softmean",
        &[("threshold", "0.5")],
        OpKind::Transform {
            f: Rc::new(|ins| mix("softmean", ins)),
            cpu_units: 6_000,
        },
    );
    for r in reslice_outputs {
        wf.connect(r, softmean);
    }
    let atlas_sink = wf.add(
        "atlas_store",
        OpKind::FileSink {
            path: format!("{}/atlas.img", paths.work_dir),
        },
    );
    wf.connect(softmean, atlas_sink);
    for axis in AXES {
        let sname = format!("slicer_{axis}");
        let slicer = wf.add_with_params(
            &sname,
            &[("axis", axis)],
            OpKind::Transform {
                f: {
                    let n = sname.clone();
                    Rc::new(move |ins| mix(&n, ins))
                },
                cpu_units: 1_200,
            },
        );
        wf.connect(atlas_sink, slicer);
        let cname = format!("convert_{axis}");
        let convert = wf.add(
            &cname,
            OpKind::Transform {
                f: {
                    let n = cname.clone();
                    Rc::new(move |ins| mix(&n, ins))
                },
                cpu_units: 800,
            },
        );
        wf.connect(slicer, convert);
        let sink = wf.add(
            &format!("atlas_{axis}_store"),
            OpKind::FileSink {
                path: paths.atlas_gif(axis),
            },
        );
        wf.connect(convert, sink);
    }
    wf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;
    use crate::recorder::NullRecorder;

    #[test]
    fn challenge_workflow_produces_three_atlases() {
        let mut sys = passv2::System::baseline();
        let pid = sys.spawn("kepler");
        let paths = ChallengePaths {
            input_dir: "/inputs".into(),
            work_dir: "/work".into(),
            output_dir: "/outputs".into(),
        };
        sys.kernel.mkdir_p(pid, "/inputs").unwrap();
        sys.kernel.mkdir_p(pid, "/work").unwrap();
        sys.kernel.mkdir_p(pid, "/outputs").unwrap();
        populate_inputs(&mut sys.kernel, pid, &paths, 0).unwrap();
        let wf = fmri_workflow(&paths);
        run(&wf, &mut sys.kernel, pid, &mut NullRecorder).unwrap();
        for axis in AXES {
            let out = sys.kernel.read_file(pid, &paths.atlas_gif(axis)).unwrap();
            assert!(!out.is_empty(), "atlas-{axis}.gif must exist");
        }
    }

    #[test]
    fn modified_input_changes_every_atlas() {
        let run_once = |seed: u8| -> Vec<Vec<u8>> {
            let mut sys = passv2::System::baseline();
            let pid = sys.spawn("kepler");
            let paths = ChallengePaths {
                input_dir: "/in".into(),
                work_dir: "/work".into(),
                output_dir: "/out".into(),
            };
            for d in ["/in", "/work", "/out"] {
                sys.kernel.mkdir_p(pid, d).unwrap();
            }
            populate_inputs(&mut sys.kernel, pid, &paths, 0).unwrap();
            if seed != 0 {
                // A colleague silently modifies one input.
                let body = vec![seed; 2048];
                sys.kernel
                    .write_file(pid, &paths.anatomy(2), &body)
                    .unwrap();
            }
            let wf = fmri_workflow(&paths);
            run(&wf, &mut sys.kernel, pid, &mut NullRecorder).unwrap();
            AXES.iter()
                .map(|a| sys.kernel.read_file(pid, &paths.atlas_gif(a)).unwrap())
                .collect()
        };
        let monday = run_once(0);
        let wednesday = run_once(7);
        for (a, b) in monday.iter().zip(&wednesday) {
            assert_ne!(a, b, "a changed input must change the outputs");
        }
        // And an identical rerun reproduces identical outputs.
        let rerun = run_once(0);
        assert_eq!(monday, rerun);
    }

    #[test]
    fn workflow_shape_matches_the_challenge() {
        let paths = ChallengePaths {
            input_dir: "/i".into(),
            work_dir: "/w".into(),
            output_dir: "/o".into(),
        };
        let wf = fmri_workflow(&paths);
        let names: Vec<&str> = wf.operators.iter().map(|o| o.name.as_str()).collect();
        for expect in [
            "align_warp_1",
            "align_warp_4",
            "reslice_1",
            "softmean",
            "slicer_x",
            "slicer_z",
            "convert_y",
        ] {
            assert!(names.contains(&expect), "missing operator {expect}");
        }
        // 4 aligns × 3 inputs each + softmean with 4 inputs + …
        assert!(wf.edges.len() >= 30);
        wf.schedule().expect("acyclic");
    }
}
