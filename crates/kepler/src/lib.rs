//! A miniature Kepler workflow engine with provenance recording.
//!
//! Kepler is the workflow enactment engine the paper integrates with
//! PASSv2 (§6.2). This crate provides the engine (operators, channels
//! and a director), Kepler's provenance recording interface with all
//! three backends (text file, relational table, and the PASSv2 DPAPI
//! recorder the paper contributes), and the First Provenance
//! Challenge fMRI workflow used throughout the evaluation.

pub mod challenge;
pub mod engine;
pub mod recorder;

pub use challenge::{fmri_workflow, populate_inputs, ChallengePaths, AXES};
pub use engine::{mix, run, OpKind, Operator, Token, Workflow, WorkflowError};
pub use recorder::{DpapiRecorder, NullRecorder, Recorder, RelationalRecorder, TextRecorder};
