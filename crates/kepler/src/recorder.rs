//! Kepler's provenance recording interface.
//!
//! Kepler records provenance for all communication between workflow
//! operators, "recording these events either in a text file or
//! relational database"; the paper adds a third option that transmits
//! the provenance into PASSv2 via the DPAPI (§6.2). All three
//! recorders are implemented here.

use dpapi::{Attribute, Bundle, Handle, ProvenanceRecord, Value};
use sim_os::proc::{Fd, Pid};
use sim_os::syscall::Kernel;

use crate::engine::Workflow;

/// The recording interface the director notifies.
pub trait Recorder {
    /// The workflow is about to execute.
    fn workflow_started(&mut self, kernel: &mut Kernel, pid: Pid, wf: &Workflow) {
        let _ = (kernel, pid, wf);
    }

    /// Operator `from` delivered a result to operator `to`.
    fn message(&mut self, kernel: &mut Kernel, pid: Pid, from: usize, to: usize) {
        let _ = (kernel, pid, from, to);
    }

    /// A source operator read `path` (fd still open).
    fn file_read(&mut self, kernel: &mut Kernel, pid: Pid, op: usize, fd: Fd, path: &str) {
        let _ = (kernel, pid, op, fd, path);
    }

    /// A sink operator wrote `path` (fd still open).
    fn file_written(&mut self, kernel: &mut Kernel, pid: Pid, op: usize, fd: Fd, path: &str) {
        let _ = (kernel, pid, op, fd, path);
    }

    /// The workflow completed.
    fn workflow_finished(&mut self, kernel: &mut Kernel, pid: Pid, wf: &Workflow) {
        let _ = (kernel, pid, wf);
    }
}

/// Discards all events.
pub struct NullRecorder;

impl Recorder for NullRecorder {}

/// Kepler's classic text-file recorder.
#[derive(Default)]
pub struct TextRecorder {
    /// The recorded lines.
    pub lines: Vec<String>,
    /// Where to write the log at workflow end (optional).
    pub output_path: Option<String>,
}

impl Recorder for TextRecorder {
    fn workflow_started(&mut self, _k: &mut Kernel, _pid: Pid, wf: &Workflow) {
        self.lines
            .push(format!("workflow start: {} operators", wf.operators.len()));
    }

    fn message(&mut self, _k: &mut Kernel, _pid: Pid, from: usize, to: usize) {
        self.lines.push(format!("message {from} -> {to}"));
    }

    fn file_read(&mut self, _k: &mut Kernel, _pid: Pid, op: usize, _fd: Fd, path: &str) {
        self.lines.push(format!("op {op} read {path}"));
    }

    fn file_written(&mut self, _k: &mut Kernel, _pid: Pid, op: usize, _fd: Fd, path: &str) {
        self.lines.push(format!("op {op} wrote {path}"));
    }

    fn workflow_finished(&mut self, kernel: &mut Kernel, pid: Pid, _wf: &Workflow) {
        self.lines.push("workflow end".to_string());
        if let Some(path) = self.output_path.clone() {
            let body = self.lines.join("\n");
            let _ = kernel.write_file(pid, &path, body.as_bytes());
        }
    }
}

/// Kepler's relational recorder: rows in an in-memory table.
#[derive(Default)]
pub struct RelationalRecorder {
    /// (event, subject, object) rows.
    pub rows: Vec<(String, String, String)>,
}

impl Recorder for RelationalRecorder {
    fn message(&mut self, _k: &mut Kernel, _pid: Pid, from: usize, to: usize) {
        self.rows
            .push(("message".into(), from.to_string(), to.to_string()));
    }

    fn file_read(&mut self, _k: &mut Kernel, _pid: Pid, op: usize, _fd: Fd, path: &str) {
        self.rows
            .push(("read".into(), op.to_string(), path.to_string()));
    }

    fn file_written(&mut self, _k: &mut Kernel, _pid: Pid, op: usize, _fd: Fd, path: &str) {
        self.rows
            .push(("write".into(), op.to_string(), path.to_string()));
    }
}

/// The PASSv2 recorder: translates Kepler's provenance events into
/// explicit ancestor-descendant relationships through the DPAPI.
///
/// Every operator gets a PASS object (`pass_mkobj`) carrying `NAME`,
/// `TYPE=OPERATOR` and `PARAMS` records; message events become INPUT
/// edges between operator objects; source/sink file events link
/// Kepler's provenance to the files in PASSv2.
#[derive(Default)]
pub struct DpapiRecorder {
    handles: Vec<Handle>,
    /// Identities of the operator objects (exposed for tests).
    pub identities: Vec<dpapi::ObjectRef>,
}

impl DpapiRecorder {
    /// Creates an empty recorder; objects are created at
    /// `workflow_started`.
    pub fn new() -> Self {
        DpapiRecorder::default()
    }

    fn identity(&self, op: usize) -> Option<dpapi::ObjectRef> {
        self.identities.get(op).copied()
    }
}

impl Recorder for DpapiRecorder {
    fn workflow_started(&mut self, kernel: &mut Kernel, pid: Pid, wf: &Workflow) {
        // DPAPI v2: the whole workflow's operator objects come from
        // one mkobj transaction, and their TYPE/NAME/PARAMS records
        // commit in a second — two syscalls for the workflow instead
        // of two per operator, and an operator set that discloses
        // atomically or not at all. (Two commits, not one, because a
        // transaction's ops may only reference pre-existing handles.)
        let mut mk = dpapi::Txn::new();
        for _ in &wf.operators {
            mk.mkobj(None);
        }
        let Ok(made) = kernel.pass_commit(pid, mk) else {
            return;
        };
        let handles: Vec<Handle> = made.iter().filter_map(dpapi::OpResult::as_handle).collect();
        let mut disclose = dpapi::Txn::new();
        for (op, &h) in wf.operators.iter().zip(&handles) {
            let params = op
                .params
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(",");
            let mut bundle = Bundle::new();
            bundle.push(
                h,
                ProvenanceRecord::new(Attribute::Type, Value::str("OPERATOR")),
            );
            bundle.push(
                h,
                ProvenanceRecord::new(Attribute::Name, Value::str(&op.name)),
            );
            if !params.is_empty() {
                bundle.push(
                    h,
                    ProvenanceRecord::new(Attribute::Params, Value::str(params)),
                );
            }
            disclose.disclose(h, bundle);
        }
        let _ = kernel.pass_commit(pid, disclose);
        for &h in &handles {
            let identity = kernel
                .pass_read(pid, h, 0, 0)
                .map(|r| r.identity)
                .unwrap_or(dpapi::ObjectRef::new(dpapi::Pnode::NULL, dpapi::Version(0)));
            self.handles.push(h);
            self.identities.push(identity);
        }
    }

    fn message(&mut self, kernel: &mut Kernel, pid: Pid, from: usize, to: usize) {
        // "Upon receipt of the event, we add an ancestry relationship
        // between this operator and every recipient of the message."
        let (Some(&to_h), Some(from_id)) = (self.handles.get(to), self.identity(from)) else {
            return;
        };
        let bundle = Bundle::single(to_h, ProvenanceRecord::input(from_id));
        let _ = kernel.pass_write(pid, to_h, 0, &[], bundle);
    }

    fn file_read(&mut self, kernel: &mut Kernel, pid: Pid, op: usize, fd: Fd, _path: &str) {
        // The operator depends on the file it read.
        let Some(&op_h) = self.handles.get(op) else {
            return;
        };
        let Ok(file_h) = kernel.pass_handle_for_fd(pid, fd) else {
            return;
        };
        let Ok(r) = kernel.pass_read(pid, file_h, 0, 0) else {
            return;
        };
        let bundle = Bundle::single(op_h, ProvenanceRecord::input(r.identity));
        let _ = kernel.pass_write(pid, op_h, 0, &[], bundle);
    }

    fn file_written(&mut self, kernel: &mut Kernel, pid: Pid, op: usize, fd: Fd, _path: &str) {
        // The file depends on the operator that wrote it: this is the
        // record that stitches Kepler's provenance into PASSv2's.
        let Some(op_id) = self.identity(op) else {
            return;
        };
        let Ok(file_h) = kernel.pass_handle_for_fd(pid, fd) else {
            return;
        };
        let bundle = Bundle::single(file_h, ProvenanceRecord::input(op_id));
        let _ = kernel.pass_write(pid, file_h, 0, &[], bundle);
    }

    fn workflow_finished(&mut self, kernel: &mut Kernel, pid: Pid, _wf: &Workflow) {
        // Make operator provenance durable even if an operator has no
        // persistent descendant (e.g. a sink failed): one transaction
        // of syncs, one syscall for the whole workflow.
        let mut txn = dpapi::Txn::new();
        for &h in &self.handles {
            txn.sync(h);
        }
        let _ = kernel.pass_commit(pid, txn);
    }
}

/// [`DpapiRecorder`] through the async disclosure front door: message
/// and file events — the per-edge chatter a busy workflow generates —
/// are submitted into an internal [`sluice::Sluice`] as
/// fire-and-forget transactions and coalesce into group frames;
/// `workflow_finished` submits the durability syncs and drains the
/// pipeline to empty, so by the time the director returns the
/// provenance is exactly what the synchronous recorder would have
/// disclosed.
///
/// Operator objects are still created synchronously at
/// `workflow_started` (their handles and identities are needed
/// immediately), and `file_read` still reads the file identity
/// synchronously.
pub struct PipelinedDpapiRecorder {
    handles: Vec<Handle>,
    /// Identities of the operator objects (exposed for tests).
    pub identities: Vec<dpapi::ObjectRef>,
    pipe: sluice::Sluice,
    client: sluice::ClientId,
}

impl Default for PipelinedDpapiRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl PipelinedDpapiRecorder {
    /// A pipelined recorder with the default sluice configuration.
    pub fn new() -> Self {
        Self::with_pipe(sluice::Sluice::new(sluice::SluiceConfig::default()))
    }

    /// A pipelined recorder over a caller-configured sluice (queue
    /// bounds, coalescing window, backpressure policy).
    pub fn with_pipe(pipe: sluice::Sluice) -> Self {
        PipelinedDpapiRecorder {
            handles: Vec::new(),
            identities: Vec::new(),
            pipe,
            client: sluice::ClientId(0),
        }
    }

    /// Pipeline statistics (frames, coalesced ops, rejections).
    pub fn pipe_stats(&self) -> sluice::SluiceStats {
        self.pipe.stats()
    }

    fn identity(&self, op: usize) -> Option<dpapi::ObjectRef> {
        self.identities.get(op).copied()
    }

    fn submit(&mut self, kernel: &mut Kernel, pid: Pid, txn: dpapi::Txn) {
        let mut layer = passv2::LibPass::new(kernel, pid);
        // Fire-and-forget: completion results are dropped, exactly as
        // the synchronous recorder ignores its pass_write results.
        let _ = self
            .pipe
            .submit_with(&mut layer, self.client, txn, Box::new(|_, _| {}));
    }
}

impl Recorder for PipelinedDpapiRecorder {
    fn workflow_started(&mut self, kernel: &mut Kernel, pid: Pid, wf: &Workflow) {
        // Same two synchronous commits as DpapiRecorder: handles and
        // identities must exist before any event references them.
        let mut sync = DpapiRecorder::new();
        sync.workflow_started(kernel, pid, wf);
        self.handles = std::mem::take(&mut sync.handles);
        self.identities = std::mem::take(&mut sync.identities);
    }

    fn message(&mut self, kernel: &mut Kernel, pid: Pid, from: usize, to: usize) {
        let (Some(&to_h), Some(from_id)) = (self.handles.get(to), self.identity(from)) else {
            return;
        };
        let bundle = Bundle::single(to_h, ProvenanceRecord::input(from_id));
        let mut txn = dpapi::Txn::new();
        txn.write(to_h, 0, Vec::new(), bundle);
        self.submit(kernel, pid, txn);
    }

    fn file_read(&mut self, kernel: &mut Kernel, pid: Pid, op: usize, fd: Fd, _path: &str) {
        let Some(&op_h) = self.handles.get(op) else {
            return;
        };
        let Ok(file_h) = kernel.pass_handle_for_fd(pid, fd) else {
            return;
        };
        let Ok(r) = kernel.pass_read(pid, file_h, 0, 0) else {
            return;
        };
        let bundle = Bundle::single(op_h, ProvenanceRecord::input(r.identity));
        let mut txn = dpapi::Txn::new();
        txn.write(op_h, 0, Vec::new(), bundle);
        self.submit(kernel, pid, txn);
    }

    fn file_written(&mut self, kernel: &mut Kernel, pid: Pid, op: usize, fd: Fd, _path: &str) {
        let Some(op_id) = self.identity(op) else {
            return;
        };
        let Ok(file_h) = kernel.pass_handle_for_fd(pid, fd) else {
            return;
        };
        let bundle = Bundle::single(file_h, ProvenanceRecord::input(op_id));
        let mut txn = dpapi::Txn::new();
        txn.write(file_h, 0, Vec::new(), bundle);
        self.submit(kernel, pid, txn);
    }

    fn workflow_finished(&mut self, kernel: &mut Kernel, pid: Pid, _wf: &Workflow) {
        let mut txn = dpapi::Txn::new();
        for &h in &self.handles {
            txn.sync(h);
        }
        let mut layer = passv2::LibPass::new(kernel, pid);
        if let Ok(t) = self.pipe.submit(&mut layer, self.client, txn) {
            // FIFO: waiting on the last ticket drains everything
            // submitted before it.
            let _ = self.pipe.wait(&mut layer, t);
        }
        self.pipe.drain(&mut layer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{mix, run, OpKind, Workflow};
    use std::rc::Rc;

    #[test]
    fn text_recorder_logs_messages_and_io() {
        let mut sys = passv2::System::baseline();
        let pid = sys.spawn("kepler");
        sys.kernel.write_file(pid, "/in", b"x").unwrap();
        let mut wf = Workflow::new();
        let s = wf.add("src", OpKind::FileSource { path: "/in".into() });
        let t = wf.add(
            "t",
            OpKind::Transform {
                f: Rc::new(|ins| mix("t", ins)),
                cpu_units: 1,
            },
        );
        let k = wf.add(
            "sink",
            OpKind::FileSink {
                path: "/out".into(),
            },
        );
        wf.connect(s, t);
        wf.connect(t, k);
        let mut rec = TextRecorder {
            output_path: Some("/kepler.log".into()),
            ..Default::default()
        };
        run(&wf, &mut sys.kernel, pid, &mut rec).unwrap();
        let log = sys.kernel.read_file(pid, "/kepler.log").unwrap();
        let text = String::from_utf8(log).unwrap();
        assert!(text.contains("message 0 -> 1"));
        assert!(text.contains("op 0 read /in"));
        assert!(text.contains("op 2 wrote /out"));
    }

    #[test]
    fn dpapi_recorder_creates_operator_objects() {
        let mut sys = passv2::System::single_volume();
        let pid = sys.spawn("kepler");
        sys.kernel.write_file(pid, "/in", b"x").unwrap();
        let mut wf = Workflow::new();
        let s = wf.add("reader", OpKind::FileSource { path: "/in".into() });
        let sink = wf.add_with_params(
            "writer",
            &[("fileName", "/out"), ("confirmOverwrite", "true")],
            OpKind::FileSink {
                path: "/out".into(),
            },
        );
        wf.connect(s, sink);
        let mut rec = DpapiRecorder::new();
        run(&wf, &mut sys.kernel, pid, &mut rec).unwrap();
        assert_eq!(rec.identities.len(), 2);
        assert!(rec.identities.iter().all(|i| !i.pnode.is_null()));

        // Ingest and check the operator objects are in the database
        // with NAME/TYPE/PARAMS, and that /out descends from the
        // writer operator.
        let waldo_pid = sys.kernel.spawn_init("waldo");
        sys.pass.exempt(waldo_pid);
        let mut waldo = waldo::Waldo::new(waldo_pid);
        for (_, logs) in sys.rotate_all_logs() {
            for log in logs {
                waldo.ingest_log_file(&mut sys.kernel, &log);
            }
        }
        let ops = waldo.db.find_by_type("OPERATOR");
        assert_eq!(ops.len(), 2);
        let writer = ops
            .iter()
            .find(|p| {
                waldo
                    .db
                    .object(**p)
                    .and_then(|o| o.first_attr(&Attribute::Name).cloned())
                    == Some(Value::str("writer"))
            })
            .expect("writer operator recorded");
        let params = waldo
            .db
            .object(*writer)
            .and_then(|o| o.first_attr(&Attribute::Params).cloned())
            .expect("PARAMS recorded");
        assert_eq!(params, Value::str("fileName=/out,confirmOverwrite=true"));
        // /out has the writer operator among its ancestors.
        let outs = waldo.db.find_by_name("/out");
        assert_eq!(outs.len(), 1);
        let out_obj = waldo.db.object(outs[0]).unwrap();
        let v = dpapi::Version(out_obj.current);
        let anc = waldo.db.ancestors(dpapi::ObjectRef::new(outs[0], v));
        assert!(
            anc.iter().any(|r| r.pnode == *writer),
            "output must descend from the writer operator: {anc:?}"
        );
        // And transitively from the reader operator via the message
        // edge.
        let reader = ops.iter().find(|p| *p != writer).unwrap();
        assert!(
            anc.iter().any(|r| r.pnode == *reader),
            "output must descend from the reader through message edges"
        );
    }
}
