//! A miniature Kepler: actors, channels and a director.
//!
//! The engine models what PASSv2 needed from Kepler (paper §6.2): a
//! workflow is a graph of named *operators* with parameters; when an
//! operator produces a result, the engine notifies the provenance
//! recording interface with an event naming the sender and every
//! recipient; dedicated data source and sink operators perform file
//! I/O, and the recording interface infers the files they touch.

use std::collections::HashMap;
use std::rc::Rc;

use sim_os::proc::Pid;
use sim_os::syscall::{Kernel, OpenFlags};

use crate::recorder::Recorder;

/// A data token flowing between operators.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token(pub Vec<u8>);

/// A deterministic transform function.
pub type TransformFn = Rc<dyn Fn(&[Token]) -> Token>;

/// What an operator does when it fires.
#[derive(Clone)]
pub enum OpKind {
    /// Reads a file and emits its contents as one token.
    FileSource {
        /// Absolute path to read.
        path: String,
    },
    /// Writes its single input token to a file.
    FileSink {
        /// Absolute path to write.
        path: String,
    },
    /// Computes an output token from its inputs, spending
    /// `cpu_units` of simulated compute per fire.
    Transform {
        /// The function.
        f: TransformFn,
        /// Simulated CPU cost.
        cpu_units: u64,
    },
}

/// One workflow operator.
#[derive(Clone)]
pub struct Operator {
    /// The operator's name (e.g. `align_warp_1`).
    pub name: String,
    /// Parameters, as Kepler would configure them (e.g. `fileName`,
    /// `confirmOverwrite`).
    pub params: Vec<(String, String)>,
    /// Behaviour.
    pub kind: OpKind,
}

/// A workflow: operators plus directed channels between them.
#[derive(Clone, Default)]
pub struct Workflow {
    /// The operators, indexed by position.
    pub operators: Vec<Operator>,
    /// Channels: `(from, to)` operator indices.
    pub edges: Vec<(usize, usize)>,
}

/// Errors from workflow construction or execution.
#[derive(Debug, PartialEq)]
pub enum WorkflowError {
    /// The graph has a cycle and cannot be scheduled.
    Cyclic,
    /// An edge references a missing operator.
    BadEdge(usize, usize),
    /// A file operation failed.
    Io(String),
    /// An operator fired without its required inputs.
    MissingInput(String),
}

impl std::fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkflowError::Cyclic => write!(f, "workflow graph is cyclic"),
            WorkflowError::BadEdge(a, b) => write!(f, "edge {a}->{b} references missing operator"),
            WorkflowError::Io(m) => write!(f, "workflow i/o error: {m}"),
            WorkflowError::MissingInput(op) => write!(f, "operator {op} fired without inputs"),
        }
    }
}

impl std::error::Error for WorkflowError {}

impl Workflow {
    /// Creates an empty workflow.
    pub fn new() -> Workflow {
        Workflow::default()
    }

    /// Adds an operator, returning its index.
    pub fn add(&mut self, name: &str, kind: OpKind) -> usize {
        self.operators.push(Operator {
            name: name.to_string(),
            params: Vec::new(),
            kind,
        });
        self.operators.len() - 1
    }

    /// Adds an operator with parameters.
    pub fn add_with_params(&mut self, name: &str, params: &[(&str, &str)], kind: OpKind) -> usize {
        let idx = self.add(name, kind);
        self.operators[idx].params = params
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        idx
    }

    /// Connects operator `from` to operator `to`.
    pub fn connect(&mut self, from: usize, to: usize) {
        self.edges.push((from, to));
    }

    /// A topological order of the operators (the director's
    /// schedule).
    pub fn schedule(&self) -> Result<Vec<usize>, WorkflowError> {
        let n = self.operators.len();
        for &(a, b) in &self.edges {
            if a >= n || b >= n {
                return Err(WorkflowError::BadEdge(a, b));
            }
        }
        let mut indeg = vec![0usize; n];
        let mut adj: HashMap<usize, Vec<usize>> = HashMap::new();
        for &(a, b) in &self.edges {
            indeg[b] += 1;
            adj.entry(a).or_default().push(b);
        }
        let mut queue: Vec<usize> = (0..n).filter(|i| indeg[*i] == 0).collect();
        queue.sort_unstable();
        let mut order = Vec::with_capacity(n);
        let mut at = 0;
        while at < queue.len() {
            let u = queue[at];
            at += 1;
            order.push(u);
            if let Some(next) = adj.get(&u) {
                let mut next = next.clone();
                next.sort_unstable();
                for v in next {
                    indeg[v] -= 1;
                    if indeg[v] == 0 {
                        queue.push(v);
                    }
                }
            }
        }
        if order.len() != n {
            return Err(WorkflowError::Cyclic);
        }
        Ok(order)
    }

    /// Inputs of an operator, in edge insertion order.
    pub fn inputs_of(&self, op: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|(_, b)| *b == op)
            .map(|(a, _)| *a)
            .collect()
    }

    /// Outputs of an operator.
    pub fn outputs_of(&self, op: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|(a, _)| *a == op)
            .map(|(_, b)| *b)
            .collect()
    }
}

/// Runs `workflow` as process `pid` on `kernel`, reporting events to
/// `recorder`. Returns the tokens produced by each operator.
pub fn run(
    workflow: &Workflow,
    kernel: &mut Kernel,
    pid: Pid,
    recorder: &mut dyn Recorder,
) -> Result<Vec<Token>, WorkflowError> {
    let order = workflow.schedule()?;
    recorder.workflow_started(kernel, pid, workflow);
    let mut outputs: Vec<Option<Token>> = vec![None; workflow.operators.len()];
    for idx in order {
        let op = workflow.operators[idx].clone();
        let input_tokens: Vec<Token> = workflow
            .inputs_of(idx)
            .into_iter()
            .map(|i| {
                outputs[i]
                    .clone()
                    .ok_or_else(|| WorkflowError::MissingInput(op.name.clone()))
            })
            .collect::<Result<_, _>>()?;
        let out = match &op.kind {
            OpKind::FileSource { path } => {
                let fd = kernel
                    .open(pid, path, OpenFlags::RDONLY)
                    .map_err(|e| WorkflowError::Io(e.to_string()))?;
                let size = kernel
                    .stat(pid, path)
                    .map_err(|e| WorkflowError::Io(e.to_string()))?
                    .size as usize;
                let data = kernel
                    .read(pid, fd, size)
                    .map_err(|e| WorkflowError::Io(e.to_string()))?;
                recorder.file_read(kernel, pid, idx, fd, path);
                kernel
                    .close(pid, fd)
                    .map_err(|e| WorkflowError::Io(e.to_string()))?;
                Token(data)
            }
            OpKind::FileSink { path } => {
                let token = input_tokens
                    .first()
                    .cloned()
                    .ok_or_else(|| WorkflowError::MissingInput(op.name.clone()))?;
                let fd = kernel
                    .open(pid, path, OpenFlags::WRONLY_CREATE)
                    .map_err(|e| WorkflowError::Io(e.to_string()))?;
                kernel
                    .write(pid, fd, &token.0)
                    .map_err(|e| WorkflowError::Io(e.to_string()))?;
                recorder.file_written(kernel, pid, idx, fd, path);
                kernel
                    .close(pid, fd)
                    .map_err(|e| WorkflowError::Io(e.to_string()))?;
                token
            }
            OpKind::Transform { f, cpu_units } => {
                kernel.compute(*cpu_units);
                f(&input_tokens)
            }
        };
        // Notify the recording interface: the operator produced a
        // result delivered to every recipient.
        for to in workflow.outputs_of(idx) {
            recorder.message(kernel, pid, idx, to);
        }
        outputs[idx] = Some(out);
    }
    recorder.workflow_finished(kernel, pid, workflow);
    Ok(outputs.into_iter().map(|o| o.expect("all fired")).collect())
}

/// A deterministic content mixer used by synthetic operators: the
/// output depends on every input byte and on the operator name, so a
/// changed input changes every downstream artifact (the §3.1 anomaly
/// scenario relies on this).
pub fn mix(name: &str, inputs: &[Token]) -> Token {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix_byte = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    };
    for b in name.bytes() {
        mix_byte(b);
    }
    for t in inputs {
        for &b in &t.0 {
            mix_byte(b);
        }
    }
    let mut out = Vec::with_capacity(256);
    let mut state = h;
    for _ in 0..32 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        out.extend_from_slice(&state.to_le_bytes());
    }
    Token(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::NullRecorder;
    use sim_os::clock::Clock;
    use sim_os::cost::CostModel;
    use sim_os::fs::basefs::BaseFs;

    fn kernel() -> (Kernel, Pid) {
        let clock = Clock::new();
        let mut k = Kernel::new(clock.clone(), CostModel::default());
        k.mount("/", Box::new(BaseFs::new(clock, CostModel::default())));
        let pid = k.spawn_init("kepler");
        (k, pid)
    }

    fn transform(name: &'static str) -> OpKind {
        OpKind::Transform {
            f: Rc::new(move |ins| mix(name, ins)),
            cpu_units: 10,
        }
    }

    #[test]
    fn linear_pipeline_runs() {
        let (mut k, pid) = kernel();
        k.write_file(pid, "/in.dat", b"input").unwrap();
        let mut wf = Workflow::new();
        let src = wf.add(
            "source",
            OpKind::FileSource {
                path: "/in.dat".into(),
            },
        );
        let t = wf.add("stage", transform("stage"));
        let sink = wf.add(
            "sink",
            OpKind::FileSink {
                path: "/out.dat".into(),
            },
        );
        wf.connect(src, t);
        wf.connect(t, sink);
        let mut rec = NullRecorder;
        run(&wf, &mut k, pid, &mut rec).unwrap();
        let out = k.read_file(pid, "/out.dat").unwrap();
        assert_eq!(out.len(), 256);
    }

    #[test]
    fn changed_input_changes_output() {
        for (content, expect_same) in [(b"aaaa".to_vec(), true), (b"bbbb".to_vec(), false)] {
            let (mut k, pid) = kernel();
            k.write_file(pid, "/in.dat", b"aaaa").unwrap();
            let (mut k2, pid2) = kernel();
            k2.write_file(pid2, "/in.dat", &content).unwrap();
            let build = |_: ()| {
                let mut wf = Workflow::new();
                let src = wf.add(
                    "source",
                    OpKind::FileSource {
                        path: "/in.dat".into(),
                    },
                );
                let t = wf.add("stage", transform("stage"));
                let sink = wf.add(
                    "sink",
                    OpKind::FileSink {
                        path: "/out.dat".into(),
                    },
                );
                wf.connect(src, t);
                wf.connect(t, sink);
                wf
            };
            let mut rec = NullRecorder;
            run(&build(()), &mut k, pid, &mut rec).unwrap();
            run(&build(()), &mut k2, pid2, &mut rec).unwrap();
            let a = k.read_file(pid, "/out.dat").unwrap();
            let b = k2.read_file(pid2, "/out.dat").unwrap();
            assert_eq!(a == b, expect_same);
        }
    }

    #[test]
    fn diamond_schedules_topologically() {
        let mut wf = Workflow::new();
        let a = wf.add("a", transform("a"));
        let b = wf.add("b", transform("b"));
        let c = wf.add("c", transform("c"));
        let d = wf.add("d", transform("d"));
        wf.connect(a, b);
        wf.connect(a, c);
        wf.connect(b, d);
        wf.connect(c, d);
        let order = wf.schedule().unwrap();
        let pos = |x: usize| order.iter().position(|o| *o == x).unwrap();
        assert!(pos(a) < pos(b));
        assert!(pos(a) < pos(c));
        assert!(pos(b) < pos(d));
        assert!(pos(c) < pos(d));
    }

    #[test]
    fn cyclic_workflow_is_rejected() {
        let mut wf = Workflow::new();
        let a = wf.add("a", transform("a"));
        let b = wf.add("b", transform("b"));
        wf.connect(a, b);
        wf.connect(b, a);
        assert_eq!(wf.schedule(), Err(WorkflowError::Cyclic));
    }

    #[test]
    fn bad_edge_is_rejected() {
        let mut wf = Workflow::new();
        let a = wf.add("a", transform("a"));
        wf.connect(a, 99);
        assert!(matches!(wf.schedule(), Err(WorkflowError::BadEdge(_, 99))));
    }

    #[test]
    fn mix_is_deterministic_and_input_sensitive() {
        let t1 = mix("op", &[Token(b"x".to_vec())]);
        let t2 = mix("op", &[Token(b"x".to_vec())]);
        let t3 = mix("op", &[Token(b"y".to_vec())]);
        let t4 = mix("other", &[Token(b"x".to_vec())]);
        assert_eq!(t1, t2);
        assert_ne!(t1, t3);
        assert_ne!(t1, t4);
    }
}
