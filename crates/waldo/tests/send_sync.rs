//! Compile-time pins for the thread-safety contract of the public
//! surface. The multi-core ingest runtime depends on these bounds —
//! scoped member threads take `&mut Waldo` (requires `Send`), and
//! snapshot readers share `&Store` across threads (requires `Sync`).
//! If a future change smuggles an `Rc`, `RefCell`, or raw pointer
//! into any of these types, this file stops compiling instead of the
//! cluster runtime silently losing its threading.

use waldo::{
    Cluster, ClusterGraphSource, ClusterPollReport, ClusterRuntime, IngestStats, LogImage,
    MemberTiming, ProvDb, Store, VolumePoll, Waldo, WaldoConfig,
};

fn assert_send<T: Send>() {}
fn assert_sync<T: Sync>() {}
fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn storage_layer_is_send_and_sync() {
    // The shared-store core: one writer thread, many reader threads.
    assert_send_sync::<Store>();
    assert_send_sync::<ProvDb>();
    assert_send_sync::<WaldoConfig>();
    assert_send_sync::<IngestStats>();
}

#[test]
fn daemon_and_cluster_move_across_threads() {
    // Members are moved into (and mutated from) scoped worker
    // threads; the parsed log images they consume travel with them.
    assert_send::<Waldo>();
    assert_sync::<Waldo>();
    assert_send::<Cluster>();
    assert_send_sync::<LogImage>();
    assert_send_sync::<ClusterRuntime>();
    assert_send_sync::<ClusterPollReport>();
    assert_send_sync::<MemberTiming>();
    assert_send_sync::<VolumePoll>();
}

#[test]
fn scatter_gather_reads_are_shareable() {
    // ClusterGraphSource borrows the member stores; concurrent PQL
    // readers share it while ingest proceeds on other members.
    assert_send_sync::<ClusterGraphSource<'_>>();
}

#[test]
fn instrumentation_is_send_and_sync() {
    // provscope scopes ride inside daemons across threads, and the
    // registry aggregates from all of them.
    assert_send_sync::<provscope::Scope>();
    assert_send_sync::<provscope::Registry>();
    assert_send_sync::<provscope::Trace>();
    assert_send_sync::<provscope::Span>();
}
