//! Checkpoint subsystem properties: the segment/manifest codec
//! roundtrips arbitrary shard contents byte-exactly, damaged
//! checkpoints are rejected in favor of the previous complete one
//! (with a correspondingly longer log replay), and the WAL stays
//! bounded by the truncation policy.

use dpapi::{Attribute, ObjectRef, Pnode, ProvenanceRecord, Value, Version, VolumeId};
use lasagna::LogEntry;
use proptest::prelude::*;
use sim_os::clock::Clock;
use sim_os::cost::CostModel;
use sim_os::fs::basefs::BaseFs;
use sim_os::syscall::Kernel;
use waldo::{IngestStats, Waldo, WaldoConfig};

fn p(volume: u32, n: u64) -> Pnode {
    Pnode::new(VolumeId(volume), n)
}

fn prov(subject: ObjectRef, attr: Attribute, value: Value) -> LogEntry {
    LogEntry::Prov {
        subject,
        record: ProvenanceRecord::new(attr, value),
    }
}

/// A random provenance stream over a bounded id space — including
/// transaction markers, so checkpoints capture open-transaction
/// buffers (ends without begins are no-ops; begins without ends stay
/// open across the checkpoint).
fn arb_entry() -> impl Strategy<Value = LogEntry> {
    let subject =
        (1u32..4, 1u64..64, 0u32..3).prop_map(|(vol, n, v)| ObjectRef::new(p(vol, n), Version(v)));
    prop_oneof![
        (subject.clone(), "[a-z]{1,8}")
            .prop_map(|(s, name)| { prov(s, Attribute::Name, Value::Str(format!("/{name}"))) }),
        (subject.clone(), 0u32..3).prop_map(|(s, t)| {
            let ty = ["FILE", "PROC", "PIPE"][t as usize];
            prov(s, Attribute::Type, Value::str(ty))
        }),
        // Application attributes populate the generalized attribute
        // index, so checkpoints cover segment format v2's new section.
        (subject.clone(), 0u32..3, "[a-z]{1,6}").prop_map(|(s, a, val)| {
            let attr = ["PHASE", "STAGE", "OWNER"][a as usize];
            prov(s, Attribute::Other(attr.into()), Value::Str(val))
        }),
        (subject.clone(), 1u64..64, 0u32..3).prop_map(|(s, n, v)| {
            prov(
                s,
                Attribute::Input,
                Value::Xref(ObjectRef::new(p(1, n), Version(v))),
            )
        }),
        (subject, 0u64..4096, 1u32..4096).prop_map(|(s, off, len)| LogEntry::DataWrite {
            subject: s,
            offset: off,
            len,
            digest: [7u8; 16],
        }),
        (1u64..4).prop_map(|id| LogEntry::TxnBegin { id }),
        (1u64..4).prop_map(|id| LogEntry::TxnEnd { id }),
    ]
}

/// A bare kernel with one plain volume — enough disk for a daemon's
/// database directory.
fn bare_kernel() -> Kernel {
    let clock = Clock::new();
    let mut k = Kernel::new(clock.clone(), CostModel::default());
    k.mount("/", Box::new(BaseFs::new(clock, CostModel::default())));
    k
}

fn stage_all(db: &mut waldo::Store, entries: &[LogEntry], batch: usize) {
    let mut stats = IngestStats::default();
    for e in entries.iter().cloned() {
        db.stage(e, None);
        if db.staged_len() >= batch {
            db.commit_staged(&mut stats);
        }
    }
    db.commit_staged(&mut stats);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Serialize → checkpoint → cold restart over arbitrary shard
    /// contents reproduces the store byte-exactly (the canonical
    /// segment images are the equality oracle), including open
    /// transactions — and the restarted store behaves identically
    /// under continued ingestion.
    #[test]
    fn checkpoint_roundtrips_arbitrary_stores(
        entries in proptest::collection::vec(arb_entry(), 1..120),
        batch in 1usize..24,
        shards in 1usize..16,
        split_at in 0usize..120,
    ) {
        // At least one committed entry, so there is something to
        // checkpoint.
        let split = split_at.max(1).min(entries.len());
        let cfg = WaldoConfig {
            shards,
            ingest_batch: batch,
            ancestry_cache: 0,
            checkpoint_commits: 0,
            checkpoint_wal_bytes: 0,
            ..WaldoConfig::default()
        };
        let mut kernel = bare_kernel();
        let pid = kernel.spawn_init("waldo");
        let mut waldo = Waldo::with_config(pid, cfg);
        waldo.attach_db_dir(&mut kernel, "/waldo-db").unwrap();
        waldo.db.begin_stream();
        stage_all(&mut waldo.db, &entries[..split], batch);
        prop_assert!(waldo.checkpoint(&mut kernel).unwrap());

        // Machine crash: only the kernel's disk survives.
        let mut original = waldo;
        let pid2 = kernel.spawn_init("waldo2");
        let mut restarted = Waldo::restart(pid2, &mut kernel, cfg, "/waldo-db", &[]).unwrap();
        prop_assert_eq!(restarted.db.segment_images(), original.db.segment_images());
        prop_assert_eq!(restarted.db.open_txns(), original.db.open_txns());
        prop_assert_eq!(restarted.db.commit_seq(), original.db.commit_seq());
        prop_assert_eq!(restarted.db.size(), original.db.size());

        // Both stores ingest the suffix the same way and stay equal.
        stage_all(&mut original.db, &entries[split..], batch);
        stage_all(&mut restarted.db, &entries[split..], batch);
        prop_assert_eq!(restarted.db.segment_images(), original.db.segment_images());
    }
}

/// The persistent attribute index: a cold restart rehydrates it from
/// v2 segments — byte-equivalently, with **zero** log replay — and
/// indexed PQL pushdown works immediately against the restarted
/// store.
#[test]
fn attribute_index_survives_cold_restart_without_replay() {
    let cfg = WaldoConfig {
        shards: 4,
        ingest_batch: 8,
        ancestry_cache: 0,
        checkpoint_commits: 0,
        checkpoint_wal_bytes: 0,
        ..WaldoConfig::default()
    };
    let mut kernel = bare_kernel();
    let pid = kernel.spawn_init("waldo");
    let mut waldo = Waldo::with_config(pid, cfg);
    waldo.attach_db_dir(&mut kernel, "/waldo-db").unwrap();
    let entries: Vec<LogEntry> = (1..20u64)
        .flat_map(|i| {
            vec![
                prov(
                    ObjectRef::new(p(1, i), Version(0)),
                    Attribute::Name,
                    Value::Str(format!("/f{i}")),
                ),
                prov(
                    ObjectRef::new(p(1, i), Version(0)),
                    Attribute::Type,
                    Value::str("FILE"),
                ),
                prov(
                    ObjectRef::new(p(1, i), Version(0)),
                    Attribute::Other("PHASE".into()),
                    Value::str(if i % 2 == 0 { "align" } else { "slice" }),
                ),
            ]
        })
        .collect();
    waldo.db.begin_stream();
    stage_all(&mut waldo.db, &entries, 8);
    assert!(waldo.checkpoint(&mut kernel).unwrap());
    let images = waldo.db.segment_images();
    let by_phase = waldo.db.find_by_attr("PHASE", "align");
    assert!(!by_phase.is_empty());

    drop(waldo); // machine crash
    let pid2 = kernel.spawn_init("waldo2");
    let mut restarted = Waldo::restart(pid2, &mut kernel, cfg, "/waldo-db", &[]).unwrap();
    let report = restarted.restart_report().unwrap();
    assert_eq!(
        report.replayed_entries, 0,
        "the index must come from the checkpoint, not a rebuild scan over logs"
    );
    assert_eq!(restarted.db.segment_images(), images, "byte-equivalent");
    assert_eq!(restarted.db.find_by_attr("PHASE", "align"), by_phase);

    // Indexed pushdown answers immediately on the restarted store:
    // name equality, name prefix, and an application attribute.
    for q in [
        "select F from Provenance.file as F where F.name = '/f7'",
        "select F from Provenance.file as F where F.name like '/f1*'",
        "select F from Provenance.file as F where F.phase = 'align'",
    ] {
        let out = restarted.query(q).unwrap();
        assert!(!out.result.is_empty(), "{q}");
        assert_eq!(out.stats.index_hits, 1, "{q}: {:?}", out.stats);
        assert_eq!(out.stats.scan_bindings, 0, "{q}");
    }
    let ops = restarted.query_ops();
    assert_eq!(ops.queries, 3);
    assert_eq!(ops.planner.index_hits, 3);
}

// ---- corruption and fallback ------------------------------------------

/// Builds three waves of provenance through the full stack with a
/// checkpoint after each of the first two waves; wave 3 stays in
/// retained logs only. Returns the system and the uncrashed daemon.
fn three_wave_history() -> (passv2::System, Waldo) {
    let mut sys = passv2::System::single_volume();
    let cfg = WaldoConfig {
        shards: 8,
        ingest_batch: 5,
        ancestry_cache: 0,
        checkpoint_commits: 0,
        checkpoint_wal_bytes: 0,
        ..WaldoConfig::default()
    };
    let pid = sys.kernel.spawn_init("waldo");
    sys.pass.exempt(pid);
    let mut waldo = Waldo::with_config(pid, cfg);
    waldo.attach_db_dir(&mut sys.kernel, "/waldo-db").unwrap();
    let (_, m, _) = sys.volumes[0];
    let worker = sys.spawn("sh");
    for wave in 0..3 {
        for i in 0..6 {
            sys.kernel
                .write_file(worker, &format!("/w{wave}-f{i}"), b"wave data")
                .unwrap();
        }
        sys.kernel.dpapi_at(m).unwrap().force_log_rotation();
        waldo.poll_volume(&mut sys.kernel, m, "/");
        if wave < 2 {
            assert!(waldo.checkpoint(&mut sys.kernel).unwrap());
        }
    }
    (sys, waldo)
}

/// Restarts after damaging the newest checkpoint with `damage`;
/// asserts the fallback loaded the older checkpoint, replayed more,
/// and still equals the uncrashed store byte-for-byte.
fn assert_fallback(damage: impl FnOnce(&mut passv2::System, sim_os::proc::Pid)) {
    let (_, reference) = three_wave_history();
    let (mut sys, crashed) = three_wave_history();
    let cfg = crashed.db.config();
    drop(crashed); // the machine crash

    let pid = sys.kernel.spawn_init("damager");
    sys.pass.exempt(pid);
    damage(&mut sys, pid);

    let pid2 = sys.kernel.spawn_init("waldo-restarted");
    sys.pass.exempt(pid2);
    let restarted = Waldo::restart(pid2, &mut sys.kernel, cfg, "/waldo-db", &["/"]).unwrap();
    let report = restarted.restart_report().unwrap();
    assert_eq!(
        report.checkpoints_skipped, 1,
        "the damaged newest checkpoint must be skipped"
    );
    assert!(
        report.replayed_entries > 0,
        "fallback must replay the wave the lost checkpoint covered"
    );
    assert_eq!(
        restarted.db.segment_images(),
        reference.db.segment_images(),
        "fallback restart must still equal the uncrashed store"
    );
}

/// Paths of the checkpoint directory, via the kernel.
fn checkpoint_files(sys: &mut passv2::System, pid: sim_os::proc::Pid) -> Vec<String> {
    sys.kernel
        .readdir(pid, "/waldo-db/checkpoints")
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect()
}

fn newest_manifest(names: &[String]) -> String {
    let seq = names
        .iter()
        .filter_map(|n| {
            n.strip_prefix("manifest.")
                .and_then(|s| s.parse::<u64>().ok())
        })
        .max()
        .expect("two manifests exist");
    format!("manifest.{seq}")
}

#[test]
fn bitflipped_manifest_falls_back_to_previous_checkpoint() {
    assert_fallback(|sys, pid| {
        let names = checkpoint_files(sys, pid);
        let path = format!("/waldo-db/checkpoints/{}", newest_manifest(&names));
        let mut data = sys.kernel.read_file(pid, &path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0x10;
        sys.kernel.write_file(pid, &path, &data).unwrap();
    });
}

#[test]
fn torn_manifest_falls_back_to_previous_checkpoint() {
    assert_fallback(|sys, pid| {
        let names = checkpoint_files(sys, pid);
        let path = format!("/waldo-db/checkpoints/{}", newest_manifest(&names));
        let data = sys.kernel.read_file(pid, &path).unwrap();
        // A torn publish: only a prefix of the manifest made it.
        sys.kernel
            .write_file(pid, &path, &data[..data.len() / 2])
            .unwrap();
    });
}

#[test]
fn bitflipped_segment_falls_back_to_previous_checkpoint() {
    assert_fallback(|sys, pid| {
        // Find a shard with segments at two generations: the newer
        // belongs to the newest checkpoint only (shared segments would
        // damage both checkpoints, which retention does not protect).
        let names = checkpoint_files(sys, pid);
        let mut by_shard: std::collections::HashMap<&str, Vec<(u64, &String)>> =
            std::collections::HashMap::new();
        for n in &names {
            if let Some(rest) = n.strip_suffix(".seg") {
                if let Some((shard, gen)) = rest.split_once(".g") {
                    if let Ok(g) = gen.parse::<u64>() {
                        by_shard.entry(shard).or_default().push((g, n));
                    }
                }
            }
        }
        let victim = by_shard
            .values_mut()
            .find(|v| v.len() >= 2)
            .map(|v| {
                v.sort();
                v.last().unwrap().1.clone()
            })
            .expect("some shard advanced between the two checkpoints");
        let path = format!("/waldo-db/checkpoints/{victim}");
        let mut data = sys.kernel.read_file(pid, &path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0x01;
        sys.kernel.write_file(pid, &path, &data).unwrap();
    });
}

// ---- WAL truncation policy --------------------------------------------

/// The size trigger keeps the WAL bounded: many polling rounds never
/// grow it past the configured threshold plus one in-flight frame.
#[test]
fn wal_is_bounded_by_truncation_policy() {
    let mut sys = passv2::System::single_volume();
    let cfg = WaldoConfig {
        shards: 8,
        ingest_batch: 4,
        ancestry_cache: 0,
        checkpoint_commits: 0,
        checkpoint_wal_bytes: 512,
        ..WaldoConfig::default()
    };
    let pid = sys.kernel.spawn_init("waldo");
    sys.pass.exempt(pid);
    let mut waldo = Waldo::with_config(pid, cfg);
    waldo.attach_db_dir(&mut sys.kernel, "/waldo-db").unwrap();
    let (_, m, _) = sys.volumes[0];
    let worker = sys.spawn("sh");
    let mut checkpoints = 0;
    for round in 0..12 {
        for i in 0..5 {
            sys.kernel
                .write_file(worker, &format!("/r{round}-f{i}"), b"payload")
                .unwrap();
        }
        sys.kernel.dpapi_at(m).unwrap().force_log_rotation();
        let stats = waldo.poll_volume(&mut sys.kernel, m, "/");
        checkpoints += stats.checkpoints;
        let wal = sys.kernel.stat(pid, "/waldo-db/wal").unwrap().size;
        assert!(
            wal <= 512 + 256,
            "round {round}: WAL grew to {wal} bytes despite the 512-byte policy"
        );
    }
    assert!(checkpoints > 1, "the size trigger must have fired");
    let s = waldo.checkpoint_stats();
    assert!(s.frames_truncated > 0, "truncation must drop frames");
    assert!(s.segments_written > 0);
    assert!(s.checkpoints as usize >= checkpoints);
}
