//! Group-commit crash recovery.
//!
//! The contract: all durable state (shards, open-transaction buffers,
//! per-log-file high-water marks) moves only inside
//! `Store::commit_staged`, and the daemon unlinks a log only when
//! every one of its entries has committed. A crash between group
//! commits therefore loses exactly the staged suffix, and replaying
//! the surviving logs from the recorded marks applies each entry
//! exactly once.

use dpapi::{Attribute, ObjectRef, Pnode, ProvenanceRecord, Value, Version, VolumeId};
use lasagna::LogEntry;
use passv2::System;
use waldo::{IngestStats, Store, Waldo, WaldoConfig};

fn r(n: u64, v: u32) -> ObjectRef {
    ObjectRef::new(Pnode::new(VolumeId(1), n), Version(v))
}

fn prov(subject: ObjectRef, attr: Attribute, value: Value) -> LogEntry {
    LogEntry::Prov {
        subject,
        record: ProvenanceRecord::new(attr, value),
    }
}

/// A stream with a transaction straddling what will be batch
/// boundaries, plus plain records on both sides.
fn stream() -> Vec<LogEntry> {
    let mut s = Vec::new();
    for i in 0..6u64 {
        s.push(prov(
            r(i, 0),
            Attribute::Name,
            Value::str(format!("/pre{i}")),
        ));
        s.push(prov(r(i, 0), Attribute::Type, Value::str("FILE")));
    }
    s.push(LogEntry::TxnBegin { id: 42 });
    for i in 6..11u64 {
        s.push(prov(
            r(i, 0),
            Attribute::Name,
            Value::str(format!("/txn{i}")),
        ));
        s.push(prov(r(i, 0), Attribute::Input, Value::Xref(r(i - 6, 0))));
    }
    s.push(LogEntry::TxnEnd { id: 42 });
    for i in 11..16u64 {
        s.push(prov(
            r(i, 0),
            Attribute::Name,
            Value::str(format!("/post{i}")),
        ));
        s.push(prov(r(i, 0), Attribute::Input, Value::Xref(r(6, 0))));
    }
    s
}

fn reference_db(entries: &[LogEntry]) -> Store {
    let mut db = Store::with_config(WaldoConfig {
        shards: 1,
        ingest_batch: 1 << 20,
        ancestry_cache: 0,
    });
    db.ingest(entries);
    db
}

fn assert_same_db(a: &Store, b: &Store) {
    assert_eq!(a.object_count(), b.object_count());
    assert_eq!(a.size(), b.size(), "duplicate replay would inflate sizes");
    assert_eq!(a.open_txns(), b.open_txns());
    for n in 0..16u64 {
        let node = Pnode::new(VolumeId(1), n);
        assert_eq!(a.descendants(node), b.descendants(node), "pnode {n}");
        let vref = ObjectRef::new(node, Version(0));
        assert_eq!(a.ancestors(vref), b.ancestors(vref), "pnode {n}");
        if let (Some(oa), Some(ob)) = (a.object(node), b.object(node)) {
            assert_eq!(oa.attrs(Version(0)), ob.attrs(Version(0)), "pnode {n}");
        } else {
            assert_eq!(a.object(node).is_none(), b.object(node).is_none());
        }
    }
}

/// Store-level crash: commit part of a registered source in small
/// batches, crash with entries staged (and the transaction context
/// mid-flight), then replay from the recorded high-water mark. The
/// result matches a crash-free one-shot ingest exactly — no entry is
/// lost or applied twice.
#[test]
fn crash_mid_batch_recovers_exactly_once() {
    let entries = stream();
    let reference = reference_db(&entries);
    let total = entries.len();

    // Try crashing at every batch boundary (and mid-stage) position.
    for committed_prefix in [3usize, 8, 14, 17, 20, 24] {
        let cfg = WaldoConfig {
            shards: 8,
            ingest_batch: 4,
            ancestry_cache: 0,
        };
        let mut db = Store::with_config(cfg);
        let (src, mark) = db.register_source("vol1/.pass/log.0");
        assert_eq!(mark, 0);
        db.begin_stream();
        let mut stats = IngestStats::default();
        // Stage and commit up to `committed_prefix` entries, in
        // batches of 4.
        for e in entries.iter().take(committed_prefix).cloned() {
            db.stage(e, Some(src));
            if db.staged_len() >= 4 {
                db.commit_staged(&mut stats);
            }
        }
        // A few more staged but never committed: the crash loses them.
        for e in entries.iter().skip(committed_prefix).take(2).cloned() {
            db.stage(e, Some(src));
        }
        db.drop_staged(); // the crash

        // Restart: the daemon re-reads the surviving log and skips the
        // committed prefix recorded in the store.
        let (src2, mark) = db.register_source("vol1/.pass/log.0");
        assert_eq!(src2, src, "same file resolves to the same source");
        assert!(
            mark <= committed_prefix,
            "mark {mark} must not run ahead of commits ({committed_prefix})"
        );
        // No stream reset: the committed transaction context sits
        // exactly at the mark.
        for e in entries.iter().skip(mark).cloned() {
            db.stage(e, Some(src2));
            if db.staged_len() >= 4 {
                db.commit_staged(&mut stats);
            }
        }
        db.commit_staged(&mut stats);
        assert!(db.source_fully_committed(src2, total));
        assert_same_db(&reference, &db);
    }
}

/// End-to-end daemon crash: a poll is interrupted mid-batch, the
/// half-ingested log survives on disk (unlink happens only after full
/// commit), and a resumed daemon rebuilds exactly the crash-free
/// database.
#[test]
fn daemon_crash_between_polls_replays_surviving_logs() {
    // Build the same filesystem history twice: once for the reference
    // (no crash), once for the crash-and-recover run.
    let run = |crash: bool| {
        let mut sys = System::single_volume();
        let pid = sys.spawn("sh");
        for i in 0..12 {
            sys.kernel
                .write_file(pid, &format!("/data{i}"), b"payload bytes")
                .unwrap();
        }
        let (_, m, _) = sys.volumes[0];
        sys.kernel.dpapi_at(m).unwrap().force_log_rotation();

        let waldo_pid = sys.kernel.spawn_init("waldo");
        sys.pass.exempt(waldo_pid);
        let cfg = WaldoConfig {
            shards: 8,
            ingest_batch: 5,
            ancestry_cache: 0,
        };
        let mut waldo = Waldo::with_config(waldo_pid, cfg);
        if !crash {
            waldo.poll_volume(&mut sys.kernel, m, "/");
            return (sys, waldo);
        }
        // Crash run: ingest the rotated log partially through the
        // store (the daemon's staging path), never unlinking.
        let rotated = sys.kernel.dpapi_at(m).unwrap().take_log_rotations();
        assert!(!rotated.is_empty());
        let mut stats = IngestStats::default();
        for rel in &rotated {
            let abs = format!("/{rel}");
            let bytes = sys.kernel.read_file(waldo_pid, &abs).unwrap();
            let (entries, _) = lasagna::parse_log(&bytes);
            let (src, mark) = waldo.db.register_source(&abs);
            assert_eq!(mark, 0);
            waldo.db.begin_stream();
            // Commit only the first two batches, stage a bit more,
            // then crash.
            for (i, e) in entries.into_iter().enumerate() {
                waldo.db.stage(e, Some(src));
                if waldo.db.staged_len() >= 5 && stats.group_commits < 2 {
                    waldo.db.commit_staged(&mut stats);
                }
                if i > 17 {
                    break;
                }
            }
        }
        // The daemon dies; its committed store survives as the
        // database a restarted daemon adopts. The crashed daemon's
        // in-memory rotation queue died with it, so recovery rescans
        // the log directory for surviving closed logs.
        let db = std::mem::replace(&mut waldo.db, Store::new());
        let mut recovered = Waldo::resume(sys.kernel.spawn_init("waldo2"), db);
        sys.pass.exempt(recovered.pid());
        recovered.recover_volume(&mut sys.kernel, "/");
        (sys, recovered)
    };

    let (mut ref_sys, reference) = run(false);
    let (mut sys, recovered) = run(true);

    assert_same_db_dyn(&reference.db, &recovered.db);
    // The replayed logs are unlinked after full commit: the log
    // directory ends up exactly as in the crash-free run (only the
    // new active log remains).
    let names = |sys: &mut System, pid| -> Vec<String> {
        let mut v: Vec<String> = sys
            .kernel
            .readdir(pid, "/.pass")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        v.sort();
        v
    };
    let ref_pid = reference.pid();
    let rec_pid = recovered.pid();
    assert_eq!(names(&mut ref_sys, ref_pid), names(&mut sys, rec_pid));
}

/// Like `assert_same_db` but over whatever objects exist (the
/// end-to-end run's pnodes are allocated by the volume).
fn assert_same_db_dyn(a: &Store, b: &Store) {
    assert_eq!(a.object_count(), b.object_count());
    assert_eq!(a.size(), b.size(), "duplicate replay would inflate sizes");
    let mut pnodes: Vec<Pnode> = a.objects().map(|(p, _)| *p).collect();
    pnodes.sort();
    let mut other: Vec<Pnode> = b.objects().map(|(p, _)| *p).collect();
    other.sort();
    assert_eq!(pnodes, other);
    for p in pnodes {
        let (oa, ob) = (a.object(p).unwrap(), b.object(p).unwrap());
        assert_eq!(oa.current, ob.current, "pnode {p:?}");
        for v in oa.versions.keys() {
            assert_eq!(oa.attrs(Version(*v)), ob.attrs(Version(*v)), "pnode {p:?}");
            assert_eq!(
                oa.inputs(Version(*v)),
                ob.inputs(Version(*v)),
                "pnode {p:?}"
            );
        }
    }
}
