//! Group-commit crash recovery.
//!
//! The contract: all durable state (shards, open-transaction buffers,
//! per-log-file high-water marks) moves only inside
//! `Store::commit_staged`, and the daemon unlinks a log only when
//! every one of its entries has committed. A crash between group
//! commits therefore loses exactly the staged suffix, and replaying
//! the surviving logs from the recorded marks applies each entry
//! exactly once.

use dpapi::{Attribute, ObjectRef, Pnode, ProvenanceRecord, Value, Version, VolumeId};
use lasagna::LogEntry;
use passv2::System;
use waldo::{IngestStats, Store, Waldo, WaldoConfig};

fn r(n: u64, v: u32) -> ObjectRef {
    ObjectRef::new(Pnode::new(VolumeId(1), n), Version(v))
}

fn prov(subject: ObjectRef, attr: Attribute, value: Value) -> LogEntry {
    LogEntry::Prov {
        subject,
        record: ProvenanceRecord::new(attr, value),
    }
}

/// A stream with a transaction straddling what will be batch
/// boundaries, plus plain records on both sides.
fn stream() -> Vec<LogEntry> {
    let mut s = Vec::new();
    for i in 0..6u64 {
        s.push(prov(
            r(i, 0),
            Attribute::Name,
            Value::str(format!("/pre{i}")),
        ));
        s.push(prov(r(i, 0), Attribute::Type, Value::str("FILE")));
    }
    s.push(LogEntry::TxnBegin { id: 42 });
    for i in 6..11u64 {
        s.push(prov(
            r(i, 0),
            Attribute::Name,
            Value::str(format!("/txn{i}")),
        ));
        s.push(prov(r(i, 0), Attribute::Input, Value::Xref(r(i - 6, 0))));
        // An application attribute, so recovery equivalence also
        // covers the generalized attribute index (manifest/segment
        // format v2).
        s.push(prov(
            r(i, 0),
            Attribute::Other("PHASE".into()),
            Value::str(if i % 2 == 0 { "align" } else { "slice" }),
        ));
    }
    s.push(LogEntry::TxnEnd { id: 42 });
    for i in 11..16u64 {
        s.push(prov(
            r(i, 0),
            Attribute::Name,
            Value::str(format!("/post{i}")),
        ));
        s.push(prov(r(i, 0), Attribute::Input, Value::Xref(r(6, 0))));
    }
    s
}

fn reference_db(entries: &[LogEntry]) -> Store {
    let db = Store::with_config(WaldoConfig {
        shards: 1,
        ingest_batch: 1 << 20,
        ancestry_cache: 0,
        ..WaldoConfig::default()
    });
    db.ingest(entries);
    db
}

fn assert_same_db(a: &Store, b: &Store) {
    assert_eq!(a.object_count(), b.object_count());
    assert_eq!(a.size(), b.size(), "duplicate replay would inflate sizes");
    assert_eq!(a.open_txns(), b.open_txns());
    for n in 0..16u64 {
        let node = Pnode::new(VolumeId(1), n);
        assert_eq!(a.descendants(node), b.descendants(node), "pnode {n}");
        let vref = ObjectRef::new(node, Version(0));
        assert_eq!(a.ancestors(vref), b.ancestors(vref), "pnode {n}");
        if let (Some(oa), Some(ob)) = (a.object(node), b.object(node)) {
            assert_eq!(oa.attrs(Version(0)), ob.attrs(Version(0)), "pnode {n}");
        } else {
            assert_eq!(a.object(node).is_none(), b.object(node).is_none());
        }
    }
}

/// Store-level crash: commit part of a registered source in small
/// batches, crash with entries staged (and the transaction context
/// mid-flight), then replay from the recorded high-water mark. The
/// result matches a crash-free one-shot ingest exactly — no entry is
/// lost or applied twice.
#[test]
fn crash_mid_batch_recovers_exactly_once() {
    let entries = stream();
    let reference = reference_db(&entries);
    let total = entries.len();

    // Try crashing at every batch boundary (and mid-stage) position.
    for committed_prefix in [3usize, 8, 14, 17, 20, 24] {
        let cfg = WaldoConfig {
            shards: 8,
            ingest_batch: 4,
            ancestry_cache: 0,
            ..WaldoConfig::default()
        };
        let db = Store::with_config(cfg);
        let (src, mark) = db.register_source("vol1/.pass/log.0");
        assert_eq!(mark, 0);
        db.begin_stream();
        let mut stats = IngestStats::default();
        // Stage and commit up to `committed_prefix` entries, in
        // batches of 4.
        for e in entries.iter().take(committed_prefix).cloned() {
            db.stage(e, Some(src));
            if db.staged_len() >= 4 {
                db.commit_staged(&mut stats);
            }
        }
        // A few more staged but never committed: the crash loses them.
        for e in entries.iter().skip(committed_prefix).take(2).cloned() {
            db.stage(e, Some(src));
        }
        db.drop_staged(); // the crash

        // Restart: the daemon re-reads the surviving log and skips the
        // committed prefix recorded in the store.
        let (src2, mark) = db.register_source("vol1/.pass/log.0");
        assert_eq!(src2, src, "same file resolves to the same source");
        assert!(
            mark <= committed_prefix,
            "mark {mark} must not run ahead of commits ({committed_prefix})"
        );
        // No stream reset: the committed transaction context sits
        // exactly at the mark.
        for e in entries.iter().skip(mark).cloned() {
            db.stage(e, Some(src2));
            if db.staged_len() >= 4 {
                db.commit_staged(&mut stats);
            }
        }
        db.commit_staged(&mut stats);
        assert!(db.source_fully_committed(src2, total));
        assert_same_db(&reference, &db);
    }
}

/// End-to-end daemon crash: a poll is interrupted mid-batch, the
/// half-ingested log survives on disk (unlink happens only after full
/// commit), and a resumed daemon rebuilds exactly the crash-free
/// database.
#[test]
fn daemon_crash_between_polls_replays_surviving_logs() {
    // Build the same filesystem history twice: once for the reference
    // (no crash), once for the crash-and-recover run.
    let run = |crash: bool| {
        let mut sys = System::single_volume();
        let pid = sys.spawn("sh");
        for i in 0..12 {
            sys.kernel
                .write_file(pid, &format!("/data{i}"), b"payload bytes")
                .unwrap();
        }
        let (_, m, _) = sys.volumes[0];
        sys.kernel.dpapi_at(m).unwrap().force_log_rotation();

        let waldo_pid = sys.kernel.spawn_init("waldo");
        sys.pass.exempt(waldo_pid);
        let cfg = WaldoConfig {
            shards: 8,
            ingest_batch: 5,
            ancestry_cache: 0,
            ..WaldoConfig::default()
        };
        let mut waldo = Waldo::with_config(waldo_pid, cfg);
        if !crash {
            waldo.poll_volume(&mut sys.kernel, m, "/");
            return (sys, waldo);
        }
        // Crash run: ingest the rotated log partially through the
        // store (the daemon's staging path), never unlinking.
        let rotated = sys.kernel.dpapi_at(m).unwrap().take_log_rotations();
        assert!(!rotated.is_empty());
        let mut stats = IngestStats::default();
        for rel in &rotated {
            let abs = format!("/{rel}");
            let bytes = sys.kernel.read_file(waldo_pid, &abs).unwrap();
            let (entries, _) = lasagna::parse_log(&bytes);
            let (src, mark) = waldo.db.register_source(&abs);
            assert_eq!(mark, 0);
            waldo.db.begin_stream();
            // Commit only the first two batches, stage a bit more,
            // then crash.
            for (i, e) in entries.into_iter().enumerate() {
                waldo.db.stage(e, Some(src));
                if waldo.db.staged_len() >= 5 && stats.group_commits < 2 {
                    waldo.db.commit_staged(&mut stats);
                }
                if i > 17 {
                    break;
                }
            }
        }
        // The daemon dies; its committed store survives as the
        // database a restarted daemon adopts. The crashed daemon's
        // in-memory rotation queue died with it, so recovery rescans
        // the log directory for surviving closed logs.
        let db = std::mem::replace(&mut waldo.db, Store::new());
        let mut recovered = Waldo::resume(sys.kernel.spawn_init("waldo2"), db);
        sys.pass.exempt(recovered.pid());
        recovered.recover_volume(&mut sys.kernel, "/");
        (sys, recovered)
    };

    let (mut ref_sys, reference) = run(false);
    let (mut sys, recovered) = run(true);

    assert_same_db_dyn(&reference.db, &recovered.db);
    // The replayed logs are unlinked after full commit: the log
    // directory ends up exactly as in the crash-free run (only the
    // new active log remains).
    let names = |sys: &mut System, pid| -> Vec<String> {
        let mut v: Vec<String> = sys
            .kernel
            .readdir(pid, "/.pass")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        v.sort();
        v
    };
    let ref_pid = reference.pid();
    let rec_pid = recovered.pid();
    assert_eq!(names(&mut ref_sys, ref_pid), names(&mut sys, rec_pid));
}

/// Like `assert_same_db` but over whatever objects exist (the
/// end-to-end run's pnodes are allocated by the volume).
fn assert_same_db_dyn(a: &Store, b: &Store) {
    assert_eq!(a.object_count(), b.object_count());
    assert_eq!(a.size(), b.size(), "duplicate replay would inflate sizes");
    let mut pnodes: Vec<Pnode> = a.all_pnodes();
    pnodes.sort();
    let mut other: Vec<Pnode> = b.all_pnodes();
    other.sort();
    assert_eq!(pnodes, other);
    for p in pnodes {
        let (oa, ob) = (a.object(p).unwrap(), b.object(p).unwrap());
        assert_eq!(oa.current, ob.current, "pnode {p:?}");
        for v in oa.versions.keys() {
            assert_eq!(oa.attrs(Version(*v)), ob.attrs(Version(*v)), "pnode {p:?}");
            assert_eq!(
                oa.inputs(Version(*v)),
                ob.inputs(Version(*v)),
                "pnode {p:?}"
            );
        }
    }
}

// ---- machine-crash matrix ---------------------------------------------

/// One scripted filesystem history shared by the reference run and
/// every crash run: two waves of writes, with a full checkpoint
/// between them. Returns the system and a durably-attached daemon
/// that has ingested everything, with wave-2 logs committed and WAL-
/// framed but not yet covered by a checkpoint.
fn durable_history(crash: Option<waldo::CheckpointCrash>) -> (System, Waldo) {
    let mut sys = System::single_volume();
    let cfg = WaldoConfig {
        shards: 8,
        ingest_batch: 5,
        ancestry_cache: 0,
        checkpoint_commits: 0, // manual checkpoints only
        checkpoint_wal_bytes: 0,
        ..WaldoConfig::default()
    };
    let waldo_pid = sys.kernel.spawn_init("waldo");
    sys.pass.exempt(waldo_pid);
    let mut waldo = Waldo::with_config(waldo_pid, cfg);
    waldo.attach_db_dir(&mut sys.kernel, "/waldo-db").unwrap();

    let (_, m, _) = sys.volumes[0];
    let worker = sys.spawn("sh");
    // Wave 1: ingest + full checkpoint.
    for i in 0..8 {
        sys.kernel
            .write_file(worker, &format!("/wave1-{i}"), b"first wave")
            .unwrap();
    }
    sys.kernel.dpapi_at(m).unwrap().force_log_rotation();
    waldo.poll_volume(&mut sys.kernel, m, "/");
    assert!(waldo.checkpoint(&mut sys.kernel).unwrap());
    // Wave 2: committed and WAL-framed, but past the checkpoint.
    for i in 0..8 {
        sys.kernel
            .write_file(worker, &format!("/wave2-{i}"), b"second wave")
            .unwrap();
    }
    sys.kernel.dpapi_at(m).unwrap().force_log_rotation();
    waldo.poll_volume(&mut sys.kernel, m, "/");
    // The crashing run attempts a second checkpoint and dies at the
    // injected step; `None` crashes before any publication begins.
    if let Some(step) = crash {
        waldo.checkpoint_crashing_at(&mut sys.kernel, step).unwrap();
    }
    (sys, waldo)
}

/// Simulated machine crash before, during (each step of), and after
/// checkpoint publication — and during WAL truncation: a cold restart
/// always rebuilds a store **byte-equivalent** to the daemon that
/// never crashed, with retained logs replayed exactly once.
#[test]
fn machine_crash_matrix_restarts_byte_equivalent() {
    use waldo::CheckpointCrash::*;
    let (_, reference) = durable_history(None);
    let reference_images = reference.db.segment_images();

    let matrix = [
        None, // crash with wave 2 only in WAL + logs
        Some(AfterSegments),
        Some(AfterTempManifest),
        Some(AfterPublish),
        Some(MidWalTruncate),
        Some(AfterWalTruncate),
    ];
    for crash in matrix {
        let (mut sys, crashed) = durable_history(crash);
        let cfg = crashed.db.config();
        // The machine dies: the daemon and its in-memory store are
        // gone; only the kernel's disks survive.
        drop(crashed);
        let pid = sys.kernel.spawn_init("waldo-restarted");
        sys.pass.exempt(pid);
        let restarted = Waldo::restart(pid, &mut sys.kernel, cfg, "/waldo-db", &["/"]).unwrap();
        let report = restarted.restart_report().unwrap().clone();
        assert!(
            report.loaded_seq.is_some(),
            "{crash:?}: a complete checkpoint must load"
        );
        assert_eq!(
            restarted.db.segment_images(),
            reference_images,
            "{crash:?}: cold restart must be byte-equivalent"
        );
        assert_same_db_dyn(&reference.db, &restarted.db);
        // The published-checkpoint steps rehydrate everything and
        // replay nothing; the earlier steps fall back to the wave-1
        // checkpoint and must re-derive wave 2 from retained logs.
        match crash {
            Some(AfterPublish) | Some(MidWalTruncate) | Some(AfterWalTruncate) => {
                assert_eq!(report.replayed_entries, 0, "{crash:?}");
            }
            _ => assert!(report.replayed_entries > 0, "{crash:?}"),
        }
    }
}

/// A crash with a transaction open across the checkpoint: the
/// manifest carries the open-transaction buffer, so the transaction
/// commits exactly once when its end arrives after restart.
#[test]
fn open_transaction_survives_checkpoint_and_restart() {
    let entries = stream();
    // Split inside the transaction (entry 14 is mid-txn: begin at 12,
    // end at 27).
    let split = 15;
    let cfg = WaldoConfig {
        shards: 4,
        ingest_batch: 3,
        ancestry_cache: 0,
        checkpoint_commits: 0,
        checkpoint_wal_bytes: 0,
        ..WaldoConfig::default()
    };
    let reference = reference_db(&entries);

    let mut sys = System::single_volume();
    let pid = sys.kernel.spawn_init("waldo");
    sys.pass.exempt(pid);
    let mut waldo = Waldo::with_config(pid, cfg);
    waldo.attach_db_dir(&mut sys.kernel, "/waldo-db").unwrap();
    let mut stats = IngestStats::default();
    // The source must exist on disk: restart prunes marks for files
    // that are gone (an unlinked-after-manifest tombstone otherwise).
    sys.kernel.write_file(pid, "/stream-log", b"raw").unwrap();
    let (src, _) = waldo.db.register_source("/stream-log");
    waldo.db.begin_stream();
    for e in entries.iter().take(split).cloned() {
        waldo.db.stage(e, Some(src));
        if waldo.db.staged_len() >= 3 {
            waldo.db.commit_staged(&mut stats);
        }
    }
    waldo.db.commit_staged(&mut stats);
    assert_eq!(waldo.db.open_txns(), vec![42], "txn must be open");
    assert!(waldo.checkpoint(&mut sys.kernel).unwrap());

    // Machine crash; cold restart (no volume rescan — the "log" here
    // is a synthetic stream, so we feed the suffix by hand exactly as
    // a surviving log replay would, from the restored mark).
    drop(waldo);
    let pid2 = sys.kernel.spawn_init("waldo2");
    sys.pass.exempt(pid2);
    let restarted = Waldo::restart(pid2, &mut sys.kernel, cfg, "/waldo-db", &[]).unwrap();
    assert_eq!(restarted.db.open_txns(), vec![42], "txn buffer restored");
    let (src2, mark) = restarted.db.register_source("/stream-log");
    assert_eq!(mark, split, "restored mark resumes after the prefix");
    for e in entries.iter().skip(mark).cloned() {
        restarted.db.stage(e, Some(src2));
        if restarted.db.staged_len() >= 3 {
            restarted.db.commit_staged(&mut stats);
        }
    }
    restarted.db.commit_staged(&mut stats);
    assert!(restarted.db.open_txns().is_empty());
    assert_same_db(&reference, &restarted.db);
}
