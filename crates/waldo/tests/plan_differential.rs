//! Differential test of the planned PQL pipeline against the naive
//! evaluator, over the *real* storage backend: random entry streams
//! ingested into the sharded store, random queries answered both
//! ways. This is where the index-backed `lookup_attr` override is
//! exercised end to end — a divergence between the store's secondary
//! indexes and its scan semantics shows up here as a planned/naive
//! mismatch.

use dpapi::{Attribute, ObjectRef, Pnode, ProvenanceRecord, Value, Version, VolumeId};
use lasagna::LogEntry;
use proptest::prelude::*;
use waldo::{ProvDb, WaldoConfig};

fn p(n: u64) -> Pnode {
    Pnode::new(VolumeId(1), n)
}

fn prov(subject: ObjectRef, attr: Attribute, value: Value) -> LogEntry {
    LogEntry::Prov {
        subject,
        record: ProvenanceRecord::new(attr, value),
    }
}

/// A bounded random stream: names/types/app-attrs from small pools
/// (so predicates hit), ancestry edges only toward lower pnodes (so
/// closures terminate), and an occasional FREEZE for multi-version
/// objects.
fn arb_entry() -> impl Strategy<Value = LogEntry> {
    let subject = (1u64..24, 0u32..2).prop_map(|(n, v)| ObjectRef::new(p(n), Version(v)));
    prop_oneof![
        (subject.clone(), 0u32..3).prop_map(|(s, i)| {
            let name = ["/data/a.gif", "/data/b.img", "/tmp/x"][i as usize];
            prov(s, Attribute::Name, Value::str(name))
        }),
        (subject.clone(), 0u32..2).prop_map(|(s, t)| {
            prov(s, Attribute::Type, Value::str(["FILE", "PROC"][t as usize]))
        }),
        (subject.clone(), 0u32..2).prop_map(|(s, i)| {
            prov(
                s,
                Attribute::Other("PHASE".into()),
                Value::str(["align", "slice"][i as usize]),
            )
        }),
        (1u64..24, 0u32..2, 1u64..24).prop_map(|(n, v, a)| {
            let lo = a.min(n.saturating_sub(1)).max(1);
            prov(
                ObjectRef::new(p(n.max(2)), Version(v)),
                Attribute::Input,
                Value::Xref(ObjectRef::new(p(lo), Version(0))),
            )
        }),
        subject.prop_map(|s| prov(s, Attribute::Freeze, Value::Int(1))),
    ]
}

const QUERIES: [&str; 10] = [
    "select A from Provenance.file as F F.input* as A where F.name = '/data/a.gif'",
    "select A from Provenance.file as F F.input+ as A where F.name like '/data/*'",
    "select F.name from Provenance.file as F where F.name like '*.gif'",
    "select F from Provenance.obj as F where F.phase = 'align'",
    "select F from Provenance.file as F where F.type = 'FILE' and F.phase = 'slice'",
    "select D from Provenance.file as F F.input~* as D where F.name = '/data/b.img'",
    "select count(A) from Provenance.file as F F.input* as A where F.name = '/tmp/x'",
    "select O, F from Provenance.proc as O Provenance.file as F where F.name = '/data/a.gif'",
    "select F from Provenance.file as F \
     where F.name in (select G.name from Provenance.obj as G where G.phase = 'align')",
    "select F.name, F.version from Provenance.file as F where F.version = 1",
];

fn canonical(rs: &pql::ResultSet) -> Vec<String> {
    let mut rows: Vec<String> = rs.rows.iter().map(|r| format!("{r:?}")).collect();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn planned_matches_naive_on_the_sharded_store(
        entries in proptest::collection::vec(arb_entry(), 1..80),
        shards in 1usize..9,
        qi in 0usize..QUERIES.len(),
    ) {
        let db = ProvDb::with_config(WaldoConfig {
            shards,
            ingest_batch: 16,
            ancestry_cache: 64,
            ..WaldoConfig::default()
        });
        db.ingest(&entries);
        let query = QUERIES[qi];
        let parsed = pql::parse(query).unwrap();
        let naive = pql::execute_naive(&parsed, &db).unwrap();
        let planned = pql::plan::execute(&parsed, &db).unwrap();
        prop_assert_eq!(&planned.result.columns, &naive.columns);
        if planned.stats.bindings_reordered {
            prop_assert_eq!(canonical(&planned.result), canonical(&naive));
        } else {
            prop_assert_eq!(&planned.result.rows, &naive.rows);
        }
    }
}
