//! Property tests for volume-salted batch replay detection.
//!
//! A `KIND_GROUP` frame carries a batch transaction id salted with
//! its volume and sequence (`lasagna::batch_txn_id`). The store keeps
//! a per-volume committed high-water mark (persisted in checkpoint
//! manifests since format v3), so a group whose id was already
//! committed — a literal replay of the frame bytes, or a forgery
//! reusing the id — is skipped *wholesale*, exactly once per
//! duplicate, without disturbing a single byte of the database. The
//! properties here drive that contract through both faces of the
//! engine: the pure store, and a durable daemon crashed and
//! cold-restarted between the commit and the replay.

use bytes::BytesMut;
use dpapi::{Attribute, ObjectRef, Pnode, ProvenanceRecord, Value, Version, VolumeId};
use lasagna::{batch_txn_id, encode_entry, encode_group, parse_log, LogEntry, LogTail};
use proptest::prelude::*;
use waldo::{Store, Waldo, WaldoConfig};

fn p(volume: u32, n: u64) -> Pnode {
    Pnode::new(VolumeId(volume), n)
}

fn prov(subject: ObjectRef, attr: Attribute, value: Value) -> LogEntry {
    LogEntry::Prov {
        subject,
        record: ProvenanceRecord::new(attr, value),
    }
}

/// A batch member: plain provenance or data writes, never nested
/// transaction markers (groups do not nest).
fn arb_member(volume: u32) -> impl Strategy<Value = LogEntry> {
    let subject =
        (1u64..64, 0u32..3).prop_map(move |(n, v)| ObjectRef::new(p(volume, n), Version(v)));
    prop_oneof![
        (subject.clone(), "[a-z]{1,8}").prop_map(|(s, name)| prov(
            s,
            Attribute::Name,
            Value::Str(format!("/{name}"))
        )),
        (subject.clone(), 0u32..3).prop_map(|(s, t)| {
            let ty = ["FILE", "PROC", "PIPE"][t as usize];
            prov(s, Attribute::Type, Value::str(ty))
        }),
        (subject.clone(), 1u64..64).prop_map(move |(s, n)| prov(
            s,
            Attribute::Input,
            Value::Xref(ObjectRef::new(p(volume, n), Version(0))),
        )),
        (subject, 0u64..4096, 1u32..4096).prop_map(|(s, off, len)| LogEntry::DataWrite {
            subject: s,
            offset: off,
            len,
            digest: [3u8; 16],
        }),
    ]
}

/// Wraps `members` as a committed batch of (`volume`, `seq`).
fn batch(volume: u32, seq: u64, members: &[LogEntry]) -> Vec<LogEntry> {
    let id = batch_txn_id(VolumeId(volume), seq);
    let mut out = vec![LogEntry::TxnBegin { id }];
    out.extend_from_slice(members);
    out.push(LogEntry::TxnEnd { id });
    out
}

fn small_store(shards: usize, ingest_batch: usize) -> Store {
    Store::with_config(WaldoConfig {
        shards,
        ingest_batch,
        ancestry_cache: 0,
        ..WaldoConfig::default()
    })
}

proptest! {
    /// Replaying a committed group — any number of times, at any
    /// batch granularity — bumps the replay counter once per
    /// duplicate and leaves the database byte-equal to a single
    /// ingest. A later batch with a *fresh* sequence still applies.
    #[test]
    fn duplicated_groups_are_skipped_exactly(
        volume in 1u32..8,
        members1 in proptest::collection::vec(arb_member(2), 1..8),
        members2 in proptest::collection::vec(arb_member(2), 1..8),
        dups in 1usize..4,
        ingest_batch in 1usize..16,
        shards in 1usize..8,
    ) {
        let group1 = batch(volume, 1, &members1);
        let group2 = batch(volume, 2, &members2);

        let reference = small_store(shards, ingest_batch);
        reference.ingest(&group1);
        reference.ingest(&group2);
        prop_assert_eq!(reference.replayed_batches(), 0);

        // The tampered stream: group1, then `dups` byte-identical
        // replays of it, then the legitimate follow-up batch.
        let tampered = small_store(shards, ingest_batch);
        tampered.ingest(&group1);
        for _ in 0..dups {
            let stats = tampered.ingest(&group1);
            prop_assert_eq!(stats.replayed_batches, 1);
            prop_assert_eq!(stats.applied, 0);
        }
        tampered.ingest(&group2);

        prop_assert_eq!(tampered.replayed_batches(), dups as u64);
        prop_assert_eq!(tampered.segment_images(), reference.segment_images());
    }

    /// The satellite contract end to end: a durable daemon commits a
    /// group and checkpoints; the machine crashes; the restarted
    /// daemon is fed a log whose tail repeats that last committed
    /// group. The repeat is skipped — the high-water mark survived
    /// the manifest round-trip — and ingestion stays exactly-once,
    /// byte-equal to a crash-free reference.
    #[test]
    fn replayed_tail_is_skipped_across_restart(
        volume in 1u32..6,
        members1 in proptest::collection::vec(arb_member(3), 1..6),
        members2 in proptest::collection::vec(arb_member(3), 1..6),
        prefix in proptest::collection::vec(arb_member(3), 0..4),
        ingest_batch in 1usize..8,
    ) {
        let group1 = batch(volume, 1, &members1);
        let group2 = batch(volume, 2, &members2);
        let cfg = WaldoConfig {
            shards: 4,
            ingest_batch,
            ancestry_cache: 0,
            checkpoint_commits: 0,
            checkpoint_wal_bytes: 0,
            keep_checkpoints: 2,
        };

        let reference = small_store(4, ingest_batch);
        reference.ingest(&prefix);
        reference.ingest(&group1);
        reference.ingest(&group2);

        let mut sys = passv2::System::single_volume();
        let agent = sys.kernel.spawn_init("writer");
        sys.pass.exempt(agent);

        // First epoch: plain prefix plus the committed group.
        let mut log_a = BytesMut::new();
        for e in &prefix {
            encode_entry(&mut log_a, e).unwrap();
        }
        encode_group(&mut log_a, &group1).unwrap();
        sys.kernel.write_file(agent, "/epoch.a", &log_a).unwrap();

        let waldo_pid = sys.kernel.spawn_init("waldo");
        sys.pass.exempt(waldo_pid);
        let mut daemon = Waldo::with_config(waldo_pid, cfg);
        daemon.attach_db_dir(&mut sys.kernel, "/waldo-db").unwrap();
        let stats = daemon.ingest_log_file(&mut sys.kernel, "/epoch.a");
        prop_assert_eq!(stats.replayed_batches, 0);
        daemon.checkpoint(&mut sys.kernel).unwrap();
        drop(daemon); // machine crash: memory gone, disks survive

        // Second epoch, written post-crash: the log's *tail repeats
        // the last committed group* before the legitimate next batch.
        let mut log_b = BytesMut::new();
        encode_group(&mut log_b, &group1).unwrap();
        encode_group(&mut log_b, &group2).unwrap();
        prop_assert_eq!(parse_log(&log_b).1, LogTail::Clean);
        sys.kernel.write_file(agent, "/epoch.b", &log_b).unwrap();

        let pid = sys.kernel.spawn_init("waldo-restarted");
        sys.pass.exempt(pid);
        let mut restarted =
            Waldo::restart(pid, &mut sys.kernel, cfg, "/waldo-db", &[]).unwrap();
        prop_assert_eq!(restarted.db.replayed_batches(), 0);
        let stats = restarted.ingest_log_file(&mut sys.kernel, "/epoch.b");
        prop_assert_eq!(stats.replayed_batches, 1);
        prop_assert_eq!(restarted.db.replayed_batches(), 1);
        prop_assert_eq!(restarted.db.segment_images(), reference.segment_images());
    }
}
