//! Concurrency spike: N writer threads ingesting complete transactions
//! into one shared [`Store`] while M reader threads hammer the
//! epoch-validated query surface. Three properties are on trial:
//!
//! 1. **Atomic visibility** — a reader never observes a torn
//!    transaction: for every (writer, round) marker value the set of
//!    subjects visible through `find_by_attr` has size 0 or exactly K
//!    (the transaction's full membership), never in between.
//! 2. **Reader progress** — commits do not starve readers: after
//!    *every* commit the writer blocks until the global read counter
//!    advances, so nonzero read throughput is demonstrated inside
//!    every commit window of the run.
//! 3. **Determinism** — the final store is byte-equal
//!    (`segment_images`) to a sequential replay of the same
//!    transactions, because transactions touch disjoint subjects and
//!    shard state is order-independent across disjoint commits.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use dpapi::{Attribute, ObjectRef, Pnode, ProvenanceRecord, Value, Version, VolumeId};
use lasagna::LogEntry;
use waldo::{Store, WaldoConfig};

const WRITERS: usize = 4;
const READERS: usize = 3;
const ROUNDS: u64 = 40;
/// Subjects per transaction; the torn-visibility oracle checks the
/// visible marker set is exactly 0 or K.
const K: u64 = 6;

fn node(n: u64) -> ObjectRef {
    ObjectRef::new(Pnode::new(VolumeId(9), n), Version(0))
}

fn prov(subject: ObjectRef, attribute: Attribute, value: Value) -> LogEntry {
    LogEntry::Prov {
        subject,
        record: ProvenanceRecord::new(attribute, value),
    }
}

fn marker(writer: usize, round: u64) -> String {
    format!("w{writer}r{round}")
}

/// One complete transaction: K marker-attributed subjects plus a ring
/// of Input cross-references among them, so every commit exercises
/// multi-shard apply *and* reverse-edge routing. Transaction ids are
/// plain (not in the tagged batch space), so replay suppression never
/// triggers.
fn txn(writer: usize, round: u64) -> Vec<LogEntry> {
    let id = 1 + writer as u64 * ROUNDS + round;
    let base = 1_000_000 * (writer as u64 + 1) + round * 100;
    let mut entries = vec![LogEntry::TxnBegin { id }];
    for j in 0..K {
        let subject = node(base + j);
        entries.push(prov(
            subject,
            Attribute::Other("SPIKE".to_string()),
            Value::str(marker(writer, round)),
        ));
        entries.push(prov(
            subject,
            Attribute::Input,
            Value::Xref(node(base + (j + 1) % K)),
        ));
    }
    entries.push(LogEntry::TxnEnd { id });
    entries
}

fn spike_config() -> WaldoConfig {
    WaldoConfig {
        shards: 8,
        ancestry_cache: 64,
        ..WaldoConfig::default()
    }
}

#[test]
fn concurrent_writers_and_readers_stay_consistent() {
    let store = Store::with_config(spike_config());
    let reads = AtomicU64::new(0);
    let writers_left = AtomicU64::new(WRITERS as u64);
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for writer in 0..WRITERS {
            let (store, reads) = (&store, &reads);
            let (writers_left, done) = (&writers_left, &done);
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    store.ingest(&txn(writer, round));
                    // Property 2: some reader completes a query inside
                    // this commit window. If commits blocked readers
                    // for their whole duration this would time out.
                    let seen = reads.load(Ordering::Acquire);
                    let deadline = Instant::now() + Duration::from_secs(30);
                    while reads.load(Ordering::Acquire) == seen {
                        assert!(
                            Instant::now() < deadline,
                            "no reader progress after writer {writer} round {round}"
                        );
                        std::thread::yield_now();
                    }
                }
                if writers_left.fetch_sub(1, Ordering::AcqRel) == 1 {
                    done.store(true, Ordering::Release);
                }
            });
        }
        for reader in 0..READERS {
            let (store, reads, done) = (&store, &reads, &done);
            scope.spawn(move || {
                let mut sweep = 0u64;
                while !done.load(Ordering::Acquire) {
                    // Rotate the probe across writers/rounds so every
                    // transaction gets checked mid-flight many times.
                    let writer = (sweep as usize + reader) % WRITERS;
                    let round = (sweep / WRITERS as u64) % ROUNDS;
                    let visible = store.find_by_attr("SPIKE", &marker(writer, round));
                    assert!(
                        visible.is_empty() || visible.len() as u64 == K,
                        "torn transaction: {} of {K} subjects visible for {}",
                        visible.len(),
                        marker(writer, round)
                    );
                    // Exercise the traversal path (epoch-wrapped BFS
                    // plus generation-validated caches) under
                    // concurrent commits too: the ring makes every
                    // committed subject an ancestor of the others.
                    if let Some(&p) = visible.first() {
                        let ancestors = store.ancestors(ObjectRef::new(p, Version(0)));
                        assert!(
                            ancestors.len() as u64 >= K - 1,
                            "ring ancestry truncated: {} < {}",
                            ancestors.len(),
                            K - 1
                        );
                    }
                    reads.fetch_add(1, Ordering::Release);
                    sweep += 1;
                }
            });
        }
    });

    // Every transaction fully visible at quiescence.
    for writer in 0..WRITERS {
        for round in 0..ROUNDS {
            assert_eq!(
                store.find_by_attr("SPIKE", &marker(writer, round)).len() as u64,
                K,
                "missing members for {}",
                marker(writer, round)
            );
        }
    }

    // Property 3: byte-equal to a sequential replay in fixed writer
    // order. The interleaving the threads actually produced is
    // unknown; the store's final bytes may not depend on it.
    let replay = Store::with_config(spike_config());
    for writer in 0..WRITERS {
        for round in 0..ROUNDS {
            replay.ingest(&txn(writer, round));
        }
    }
    assert_eq!(
        store.segment_images(),
        replay.segment_images(),
        "threaded final state diverged from sequential replay"
    );

    // The contention profile observed the run: every commit opened an
    // epoch window, and the readers went through the epoch-validated
    // path. Retries/fallbacks are schedule-dependent, but the seqlock
    // accounting must balance: a fallback implies retries preceded it.
    let c = store.contention_stats();
    assert!(c.commit_windows >= WRITERS as u64 * ROUNDS);
    assert!(c.epoch_reads > 0);
    let mut reg = provscope::Registry::new();
    store.export_contention("waldo.", &mut reg);
    assert_eq!(
        reg.counter("waldo.contention.commit_windows"),
        c.commit_windows
    );
    assert_eq!(reg.counter("waldo.contention.epoch_reads"), c.epoch_reads);
}

/// Readers racing a single large commit: start a store with half the
/// transactions committed, then let one writer apply the other half
/// while readers continuously assert the all-or-nothing invariant on
/// *every* marker. This narrows the race window to exactly the commit
/// path (no writer-side queueing noise).
#[test]
fn snapshot_reads_never_tear_across_one_commit() {
    let store = Store::with_config(spike_config());
    for round in 0..ROUNDS / 2 {
        store.ingest(&txn(0, round));
    }
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let (s, d) = (&store, &done);
        scope.spawn(move || {
            for round in ROUNDS / 2..ROUNDS {
                s.ingest(&txn(0, round));
            }
            d.store(true, Ordering::Release);
        });
        for _ in 0..2 {
            let (s, d) = (&store, &done);
            scope.spawn(move || {
                let mut round = 0u64;
                while !d.load(Ordering::Acquire) {
                    let visible = s.find_by_attr("SPIKE", &marker(0, round % ROUNDS));
                    assert!(
                        visible.is_empty() || visible.len() as u64 == K,
                        "torn commit: {} of {K} visible",
                        visible.len()
                    );
                    round += 1;
                }
            });
        }
    });
    assert_eq!(store.object_count() as u64, ROUNDS * K);
}
