//! Property tests for shard routing and batching.
//!
//! The two invariants the sharded engine rests on:
//!
//! * routing is a pure function of the pnode and the shard count —
//!   the same pnode always lands on the same shard, regardless of
//!   ingest order, batch boundaries, or which store instance routes;
//! * batch granularity is invisible: the same entry stream ingested
//!   at any batch size (including record-at-a-time) produces an
//!   identical database.

use dpapi::{Attribute, ObjectRef, Pnode, ProvenanceRecord, Value, Version, VolumeId};
use lasagna::LogEntry;
use proptest::prelude::*;
use waldo::{IngestStats, Store, WaldoConfig};

fn p(volume: u32, n: u64) -> Pnode {
    Pnode::new(VolumeId(volume), n)
}

fn prov(subject: ObjectRef, attr: Attribute, value: Value) -> LogEntry {
    LogEntry::Prov {
        subject,
        record: ProvenanceRecord::new(attr, value),
    }
}

/// A small random provenance stream over a bounded id space.
fn arb_entry() -> impl Strategy<Value = LogEntry> {
    let subject =
        (1u32..4, 1u64..64, 0u32..3).prop_map(|(vol, n, v)| ObjectRef::new(p(vol, n), Version(v)));
    prop_oneof![
        (subject.clone(), "[a-z]{1,8}")
            .prop_map(|(s, name)| { prov(s, Attribute::Name, Value::Str(format!("/{name}"))) }),
        (subject.clone(), 0u32..3).prop_map(|(s, t)| {
            let ty = ["FILE", "PROC", "PIPE"][t as usize];
            prov(s, Attribute::Type, Value::str(ty))
        }),
        (subject.clone(), 1u64..64, 0u32..3).prop_map(|(s, n, v)| {
            prov(
                s,
                Attribute::Input,
                Value::Xref(ObjectRef::new(p(1, n), Version(v))),
            )
        }),
        (subject, 0u64..4096, 1u32..4096).prop_map(|(s, off, len)| LogEntry::DataWrite {
            subject: s,
            offset: off,
            len,
            digest: [7u8; 16],
        }),
    ]
}

proptest! {
    /// The same pnode routes to the same shard on every store with the
    /// same shard count, and every route is in range.
    #[test]
    fn routing_is_stable_and_in_range(
        vol in 1u32..8,
        n in 0u64..1_000_000,
        shards in 1usize..64,
    ) {
        let cfg = WaldoConfig {
            shards,
            ingest_batch: 64,
            ancestry_cache: 0,
            ..WaldoConfig::default()
        };
        let a = Store::with_config(cfg);
        let b = Store::with_config(cfg);
        let node = p(vol, n);
        prop_assert_eq!(a.shard_of(node), b.shard_of(node));
        prop_assert!(a.shard_of(node) < a.shard_count());
        // Routing does not change as the store ingests (rehash
        // stability): ingest something unrelated and re-route.
        let c = Store::with_config(cfg);
        c.ingest(&[prov(
            ObjectRef::new(p(vol, n.wrapping_add(1)), Version(0)),
            Attribute::Name,
            Value::str("/x"),
        )]);
        prop_assert_eq!(c.shard_of(node), a.shard_of(node));
    }

    /// Pnodes spread across shards: 256 distinct pnodes on 8 shards
    /// never collapse onto a single shard.
    #[test]
    fn routing_distributes(seed in 0u64..10_000) {
        let store = Store::with_config(WaldoConfig {
            shards: 8,
            ingest_batch: 64,
            ancestry_cache: 0,
            ..WaldoConfig::default()
        });
        let mut used = std::collections::HashSet::new();
        for i in 0..256u64 {
            used.insert(store.shard_of(p(1, seed * 256 + i)));
        }
        prop_assert!(used.len() > 1, "all 256 pnodes routed to one shard");
    }

    /// Batch boundaries are invisible: any stream ingested whole, per
    /// record, and in random-size batches yields identical databases
    /// (objects, sizes, indexes, traversals).
    #[test]
    fn batching_is_transparent(
        entries in proptest::collection::vec(arb_entry(), 1..120),
        batch in 1usize..40,
        shards in 1usize..16,
    ) {
        let whole = Store::with_config(WaldoConfig {
            shards: 1,
            ingest_batch: 1 << 20,
            ancestry_cache: 0,
            ..WaldoConfig::default()
        });
        whole.ingest(&entries);

        let batched = Store::with_config(WaldoConfig {
            shards,
            ingest_batch: batch,
            ancestry_cache: 8,
            ..WaldoConfig::default()
        });
        // Drive the staging path the daemon uses, committing at the
        // configured granularity.
        let mut stats = IngestStats::default();
        batched.begin_stream();
        for e in entries.iter().cloned() {
            batched.stage(e, None);
            if batched.staged_len() >= batch {
                batched.commit_staged(&mut stats);
            }
        }
        batched.commit_staged(&mut stats);

        prop_assert_eq!(whole.object_count(), batched.object_count());
        prop_assert_eq!(whole.size(), batched.size());
        prop_assert_eq!(whole.open_txns(), batched.open_txns());
        for vol in 1u32..4 {
            for n in 1u64..64 {
                let node = p(vol, n);
                prop_assert_eq!(whole.descendants(node), batched.descendants(node));
                for v in 0u32..3 {
                    let r = ObjectRef::new(node, Version(v));
                    prop_assert_eq!(whole.ancestors(r), batched.ancestors(r));
                    prop_assert_eq!(whole.inputs_of(r), batched.inputs_of(r));
                    // Reverse-edge order is unspecified (it follows
                    // commit grouping); compare as sets.
                    let mut wo = whole.outputs_of(r);
                    let mut bo = batched.outputs_of(r);
                    wo.sort_by(|a, b| (a.1, &a.0).cmp(&(b.1, &b.0)));
                    bo.sort_by(|a, b| (a.1, &a.0).cmp(&(b.1, &b.0)));
                    prop_assert_eq!(wo, bo);
                }
            }
        }
        prop_assert_eq!(whole.find_by_type("FILE"), batched.find_by_type("FILE"));
        prop_assert_eq!(whole.find_by_type("PROC"), batched.find_by_type("PROC"));
    }
}
