//! The cluster fan-in tier at the store level: merge semantics,
//! volume→member routing stability, batch-id alias freedom, and the
//! counter roll-ups the tier aggregates with.
//!
//! The central invariant (ProvMark's oracle, arXiv:1909.11187): a
//! scaled-out collector must record *the same graph* as the
//! single-node reference. Here that is `Store::merge` of per-volume
//! stores being byte-equivalent — under `Store::segment_images`'s
//! canonical encoding — to one store that ingested every volume
//! itself. The end-to-end version (real daemons, real logs) lives in
//! `core/tests/cluster.rs`.

use dpapi::{Attribute, ObjectRef, Pnode, ProvenanceRecord, Value, Version, VolumeId};
use lasagna::LogEntry;
use proptest::prelude::*;
use waldo::cluster::route_volume;
use waldo::{IngestStats, MergeError, QueryOps, Store, WaldoConfig};

fn r(volume: u32, n: u64, v: u32) -> ObjectRef {
    ObjectRef::new(Pnode::new(VolumeId(volume), n), Version(v))
}

fn prov(subject: ObjectRef, attr: Attribute, value: Value) -> LogEntry {
    LogEntry::Prov {
        subject,
        record: ProvenanceRecord::new(attr, value),
    }
}

/// A deterministic per-volume stream: named, typed files with
/// in-volume ancestry, an application attribute, data writes — and a
/// cross-volume reference into volume 1, so reverse edges land in a
/// *foreign* member's store.
fn volume_stream(volume: u32, files: u64) -> Vec<LogEntry> {
    let mut out = Vec::new();
    for i in 1..=files {
        let s = r(volume, i, 0);
        out.push(prov(
            s,
            Attribute::Name,
            Value::str(format!("/v{volume}/f{i}")),
        ));
        out.push(prov(s, Attribute::Type, Value::str("FILE")));
        out.push(prov(
            s,
            Attribute::Other("PHASE".into()),
            Value::str(if i % 2 == 0 { "align" } else { "scan" }),
        ));
        if i > 1 {
            out.push(prov(s, Attribute::Input, Value::Xref(r(volume, i - 1, 0))));
        }
        // Cross-volume ancestry: every volume's even files depend on
        // volume 1's first file.
        if volume != 1 && i % 2 == 0 {
            out.push(prov(s, Attribute::Input, Value::Xref(r(1, 1, 0))));
        }
        out.push(LogEntry::DataWrite {
            subject: s,
            offset: 0,
            len: 256 + (i as u32 % 512),
            digest: [3u8; 16],
        });
    }
    out
}

fn cfg() -> WaldoConfig {
    WaldoConfig {
        shards: 8,
        ingest_batch: 16,
        ancestry_cache: 64,
        ..WaldoConfig::default()
    }
}

/// Per-volume stores merged in any member order are byte-equivalent
/// to the single store that ingested every volume — the differential
/// oracle the whole tier rests on.
#[test]
fn merge_of_per_volume_stores_matches_single_store() {
    let volumes: Vec<u32> = vec![1, 2, 3, 4];
    // The single-node reference ingests volumes in sequence.
    let single = Store::with_config(cfg());
    for &v in &volumes {
        single.ingest(&volume_stream(v, 12));
    }
    // Per-volume member stores.
    let members: Vec<Store> = volumes
        .iter()
        .map(|&v| {
            let s = Store::with_config(cfg());
            s.ingest(&volume_stream(v, 12));
            s
        })
        .collect();
    // Merge forward and in reverse member order: both must equal the
    // reference (the canonical images erase arrival order).
    for order in [[0usize, 1, 2, 3], [3, 2, 1, 0]] {
        let merged = Store::with_config(cfg());
        for &i in &order {
            merged.merge(&members[i]).unwrap();
        }
        assert_eq!(merged.segment_images(), single.segment_images());
        assert_eq!(merged.object_count(), single.object_count());
        assert_eq!(merged.size(), single.size());
    }
}

/// Merged stores answer queries identically to the reference,
/// including descendant traversals that cross member boundaries
/// through scattered reverse edges.
#[test]
fn merged_store_answers_cross_volume_queries() {
    let single = Store::with_config(cfg());
    let merged = Store::with_config(cfg());
    for v in [1u32, 2, 3] {
        let stream = volume_stream(v, 8);
        single.ingest(&stream);
        let member = Store::with_config(cfg());
        member.ingest(&stream);
        merged.merge(&member).unwrap();
    }
    // Descendants of volume 1's first file span every volume.
    let desc_merged = merged.descendants(Pnode::new(VolumeId(1), 1));
    let desc_single = single.descendants(Pnode::new(VolumeId(1), 1));
    assert_eq!(desc_merged, desc_single);
    assert!(desc_merged.iter().any(|n| n.pnode.volume == VolumeId(2)));
    assert!(desc_merged.iter().any(|n| n.pnode.volume == VolumeId(3)));
    // Ancestors of a cross-referencing file reach back into volume 1.
    let anc_merged = merged.ancestors(r(3, 8, 0));
    assert_eq!(anc_merged, single.ancestors(r(3, 8, 0)));
    assert!(anc_merged.contains(&r(1, 1, 0)));
    // Index lookups agree.
    assert_eq!(
        merged.find_by_attr("PHASE", "align"),
        single.find_by_attr("PHASE", "align")
    );
    assert_eq!(
        merged.find_by_name_prefix("/v2/"),
        single.find_by_name_prefix("/v2/")
    );
}

/// Open (unterminated) transactions merge by id; the volume-salted id
/// space guarantees members never collide.
#[test]
fn merge_unions_open_transactions() {
    // Each member saw a transaction open in one log image whose end
    // never arrived; the next image started (stream reset), so the
    // member is no longer *mid-commit* — the buffered records simply
    // wait for a later TxnEnd.
    let close_scope = |s: &mut Store| {
        s.begin_stream();
        let mut stats = IngestStats::default();
        s.commit_staged(&mut stats);
    };
    let mut a = Store::with_config(cfg());
    a.ingest(&[
        LogEntry::TxnBegin {
            id: lasagna::batch_txn_id(VolumeId(1), 7),
        },
        prov(r(1, 1, 0), Attribute::Name, Value::str("/a")),
    ]);
    close_scope(&mut a);
    let mut b = Store::with_config(cfg());
    b.ingest(&[
        LogEntry::TxnBegin {
            id: lasagna::batch_txn_id(VolumeId(2), 7),
        },
        prov(r(2, 1, 0), Attribute::Name, Value::str("/b")),
    ]);
    close_scope(&mut b);
    let merged = Store::with_config(cfg());
    merged.merge(&a).unwrap();
    merged.merge(&b).unwrap();
    assert_eq!(merged.open_txns().len(), 2);
    // Completing one transaction applies exactly its buffered records.
    let stats = merged.ingest(&[LogEntry::TxnEnd {
        id: lasagna::batch_txn_id(VolumeId(1), 7),
    }]);
    assert_eq!(stats.txns_committed, 1);
    assert_eq!(merged.find_by_name("/a").len(), 1);
    assert!(merged.find_by_name("/b").is_empty());
}

/// Two stores both *mid-commit* (an open transaction at the very end
/// of each committed stream) cannot merge: only one open-commit
/// marker can survive, and dropping the other would interleave its
/// untagged continuation records into the wrong transaction later.
/// The rejection is a typed error — and the failed merge leaves the
/// target untouched, so a caller can classify and continue.
#[test]
fn merge_rejects_two_mid_commit_streams() {
    let a = Store::with_config(cfg());
    a.ingest(&[LogEntry::TxnBegin {
        id: lasagna::batch_txn_id(VolumeId(1), 1),
    }]);
    let b = Store::with_config(cfg());
    b.ingest(&[LogEntry::TxnBegin {
        id: lasagna::batch_txn_id(VolumeId(2), 1),
    }]);
    let merged = Store::with_config(cfg());
    merged.merge(&a).unwrap();
    let before = merged.segment_images();
    match merged.merge(&b) {
        Err(MergeError::BothMidCommit { ours, theirs }) => {
            assert_eq!(ours, lasagna::batch_txn_id(VolumeId(1), 1));
            assert_eq!(theirs, lasagna::batch_txn_id(VolumeId(2), 1));
        }
        other => panic!("expected BothMidCommit, got {other:?}"),
    }
    assert_eq!(
        merged.segment_images(),
        before,
        "a rejected merge must not mutate the target"
    );
}

/// Shard-count mismatches are a routing disagreement, not a merge.
#[test]
fn merge_rejects_mismatched_shard_counts() {
    let a = Store::with_config(WaldoConfig { shards: 4, ..cfg() });
    let b = Store::with_config(WaldoConfig {
        shards: 16,
        ..cfg()
    });
    assert_eq!(
        a.merge(&b),
        Err(MergeError::ShardCountMismatch {
            ours: 4,
            theirs: 16
        })
    );
}

/// An open transaction with the *same* volume-salted id on both sides
/// (only possible with a forged or replayed id — the legitimate id
/// space is alias-free) is a typed collision, not a panic.
#[test]
fn merge_rejects_forged_txn_id_collision() {
    let forged = lasagna::batch_txn_id(VolumeId(1), 5);
    let open_with = |id: u64| {
        let s = Store::with_config(cfg());
        s.ingest(&[
            LogEntry::TxnBegin { id },
            prov(r(1, 1, 0), Attribute::Name, Value::str("/x")),
        ]);
        s.begin_stream();
        let mut stats = IngestStats::default();
        s.commit_staged(&mut stats);
        s
    };
    let merged = Store::with_config(cfg());
    merged.merge(&open_with(forged)).unwrap();
    assert_eq!(
        merged.merge(&open_with(forged)),
        Err(MergeError::TxnIdCollision { id: forged })
    );
}

/// `segment_images` is the byte-equivalence oracle: images come back
/// sorted by shard id (image `i` decodes as shard `i`'s canonical
/// encoding), so two equal stores compare image-for-image.
#[test]
fn segment_images_are_ordered_by_shard_id() {
    let s = Store::with_config(cfg());
    s.ingest(&volume_stream(1, 16));
    let images = s.segment_images();
    assert_eq!(images.len(), s.shard_count());
    // Each image round-trips through the store restored from exactly
    // that image set; a second encoding is bit-identical (canonical).
    assert_eq!(images, s.segment_images());
    // The header's shard index (bytes 6..10, little-endian, after the
    // 4-byte magic and u16 version) matches the position.
    for (i, img) in images.iter().enumerate() {
        let idx = u32::from_le_bytes(img[6..10].try_into().unwrap());
        assert_eq!(idx as usize, i, "image {i} must carry shard id {i}");
    }
}

/// The counter roll-ups aggregate by `+=`/`sum` exactly as the
/// hand-written field adds they replace.
#[test]
fn stats_roll_up_with_add_assign_and_sum() {
    let a = IngestStats {
        applied: 3,
        pending: 1,
        txns_committed: 2,
        group_commits: 4,
        checkpoints: 1,
        replayed_batches: 1,
        tails_truncated: 1,
        tails_corrupt: 0,
    };
    let b = IngestStats {
        applied: 10,
        pending: 0,
        txns_committed: 1,
        group_commits: 2,
        checkpoints: 0,
        replayed_batches: 0,
        tails_truncated: 0,
        tails_corrupt: 2,
    };
    let total: IngestStats = [a, b].into_iter().sum();
    assert_eq!(total.applied, 13);
    assert_eq!(total.pending, 1);
    assert_eq!(total.txns_committed, 3);
    assert_eq!(total.group_commits, 6);
    assert_eq!(total.checkpoints, 1);
    assert_eq!(total.replayed_batches, 1);
    assert_eq!(total.tails_truncated, 1);
    assert_eq!(total.tails_corrupt, 2);
    let mut acc = a;
    acc += b;
    assert_eq!(acc, total);

    let q1 = QueryOps {
        queries: 2,
        planner: pql::PlanStats {
            index_hits: 5,
            ..pql::PlanStats::default()
        },
    };
    let q2 = QueryOps {
        queries: 1,
        planner: pql::PlanStats {
            index_hits: 1,
            naive_fallbacks: 1,
            ..pql::PlanStats::default()
        },
    };
    let q: QueryOps = [q1, q2].into_iter().sum();
    assert_eq!(q.queries, 3);
    assert_eq!(q.planner.index_hits, 6);
    assert_eq!(q.planner.naive_fallbacks, 1);
}

proptest! {
    /// Volume→member routing is a pure function of `(volume,
    /// members)`: the same volume always routes to the same member,
    /// and every route is in range.
    #[test]
    fn volume_routing_is_stable_and_in_range(
        vol in 1u32..u32::MAX,
        members in 1usize..16,
    ) {
        let first = route_volume(VolumeId(vol), members);
        prop_assert!(first < members);
        for _ in 0..3 {
            prop_assert_eq!(route_volume(VolumeId(vol), members), first);
        }
    }

    /// The volume-salted batch-id space is alias-free: two distinct
    /// volumes can never produce the same disclosure-batch id, at any
    /// pair of sequence numbers — which is why member stores merge
    /// without transaction-id renumbering.
    #[test]
    fn batch_ids_never_collide_across_volumes(
        v1 in 1u32..u32::MAX,
        v2 in 1u32..u32::MAX,
        s1 in 0u64..(1 << 28),
        s2 in 0u64..(1 << 28),
    ) {
        if v1 == v2 { return Ok(()); }
        prop_assert!(
            lasagna::batch_txn_id(VolumeId(v1), s1)
                != lasagna::batch_txn_id(VolumeId(v2), s2)
        );
    }

    /// Within one volume, distinct sequence numbers yield distinct
    /// ids (no wrap inside the sequence space).
    #[test]
    fn batch_ids_are_unique_within_a_volume(
        vol in 1u32..u32::MAX,
        s1 in 0u64..(1 << 28),
        s2 in 0u64..(1 << 28),
    ) {
        if s1 == s2 { return Ok(()); }
        prop_assert!(
            lasagna::batch_txn_id(VolumeId(vol), s1)
                != lasagna::batch_txn_id(VolumeId(vol), s2)
        );
    }
}
