//! The checkpoint **segment** format: one shard, serialized.
//!
//! A segment is the durable image of one shard — its object table
//! (per-version attributes, ancestry inputs, data-write accounting),
//! the name/type secondary indexes, the reverse ancestry index, and
//! the footprint accounting — in a versioned, CRC-closed binary
//! layout built from the same little-endian codec idioms as
//! [`dpapi::wire`]:
//!
//! ```text
//! segment := magic "WSEG", version u16, shard u32, generation u64,
//!            db_bytes u64, index_bytes u64,
//!            objects, names, types, reverse, attrs,   (attrs: v2+)
//!            crc32(everything before) u32
//! objects := u32 n, n × (pnode, current u32,
//!            u32 nv, nv × (v u32, u32 na, na × record,
//!                          u32 ni, ni × (attr, objref),
//!                          writes u64, bytes_written u64))
//! names   := u32 n, n × (str, u32 k, k × pnode)     (types likewise)
//! reverse := u32 n, n × (pnode, u32 k, k × (objref, attr, aversion u32))
//! attrs   := u32 n, n × (str attr-name,
//!                        u32 m, m × (str value, u32 k, k × pnode))
//! pnode   := volume u32, number u64
//! attr    := u16 len, len bytes          record := dpapi::wire record
//! ```
//!
//! Format **v2** appends the generalized attribute index (the PQL
//! pushdown index, `Shard::attr_index`) after the reverse section, so
//! indexed queries survive a cold restart without a rebuild scan.
//! **v1** images (no `attrs` section) still decode: the loader
//! rebuilds the attribute index from the object table it just
//! rehydrated — the upgrade path for pre-v2 checkpoints.
//!
//! The encoding is **canonical**: objects sort by pnode, index entries
//! by key, and reverse-edge lists by `(descendant, ancestor version,
//! attribute)`. Per-subject state is already deterministic (entries of
//! one subject apply in arrival order regardless of batching), so two
//! stores with equal contents — e.g. a restarted store and the store
//! that never crashed — encode to **identical bytes**, which is what
//! the crash-matrix tests assert.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dpapi::{wire, Attribute, DpapiError, Pnode, Result, Version, VolumeId};

use crate::db::{ObjectEntry, VersionEntry};
use crate::shard::Shard;

const MAGIC: &[u8; 4] = b"WSEG";
/// Current segment format version: v2 carries the generalized
/// attribute index; v1 images are still readable (the index is
/// rebuilt from the object table at load).
pub const SEGMENT_VERSION: u16 = 2;
/// Oldest format version the decoder accepts.
pub const SEGMENT_MIN_VERSION: u16 = 1;

fn put_pnode(buf: &mut BytesMut, p: Pnode) {
    buf.put_u32_le(p.volume.0);
    buf.put_u64_le(p.number);
}

fn get_pnode(buf: &mut Bytes) -> Result<Pnode> {
    if buf.remaining() < 12 {
        return Err(DpapiError::Malformed("truncated pnode".into()));
    }
    let volume = VolumeId(buf.get_u32_le());
    let number = buf.get_u64_le();
    Ok(Pnode::new(volume, number))
}

fn put_attr(buf: &mut BytesMut, attr: &Attribute) {
    let name = attr.as_str();
    buf.put_u16_le(name.len() as u16);
    buf.put_slice(name.as_bytes());
}

fn get_attr(buf: &mut Bytes) -> Result<Attribute> {
    if buf.remaining() < 2 {
        return Err(DpapiError::Malformed("truncated attribute".into()));
    }
    let len = buf.get_u16_le() as usize;
    if buf.remaining() < len {
        return Err(DpapiError::Malformed("truncated attribute name".into()));
    }
    let raw = buf.split_to(len);
    let name = std::str::from_utf8(&raw)
        .map_err(|_| DpapiError::Malformed("invalid UTF-8 attribute".into()))?;
    Ok(Attribute::from_name(name))
}

fn get_u32(buf: &mut Bytes, what: &str) -> Result<u32> {
    if buf.remaining() < 4 {
        return Err(DpapiError::Malformed(format!("truncated {what}")));
    }
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut Bytes, what: &str) -> Result<u64> {
    if buf.remaining() < 8 {
        return Err(DpapiError::Malformed(format!("truncated {what}")));
    }
    Ok(buf.get_u64_le())
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes, what: &str) -> Result<String> {
    let len = get_u32(buf, what)? as usize;
    if buf.remaining() < len {
        return Err(DpapiError::Malformed(format!("truncated {what}")));
    }
    let raw = buf.split_to(len);
    String::from_utf8(raw.to_vec())
        .map_err(|_| DpapiError::Malformed(format!("invalid UTF-8 {what}")))
}

fn put_index(
    buf: &mut BytesMut,
    index: &std::collections::BTreeMap<String, std::collections::BTreeSet<Pnode>>,
) {
    buf.put_u32_le(index.len() as u32);
    for (key, set) in index {
        put_str(buf, key);
        buf.put_u32_le(set.len() as u32);
        for p in set {
            put_pnode(buf, *p);
        }
    }
}

fn get_index(
    buf: &mut Bytes,
) -> Result<std::collections::BTreeMap<String, std::collections::BTreeSet<Pnode>>> {
    let n = get_u32(buf, "index size")? as usize;
    let mut index = std::collections::BTreeMap::new();
    for _ in 0..n {
        let key = get_str(buf, "index key")?;
        let k = get_u32(buf, "index entry count")? as usize;
        let mut set = std::collections::BTreeSet::new();
        for _ in 0..k {
            set.insert(get_pnode(buf)?);
        }
        index.insert(key, set);
    }
    Ok(index)
}

/// Serializes one shard into its canonical segment image.
///
/// `generation` is written into the header rather than taken from the
/// shard so callers choose its meaning: checkpoints record the real
/// generation (the manifest binds to it), while the byte-equivalence
/// oracle (`Store::segment_images`) normalizes it to zero — the
/// counter tracks how commits were *grouped*, not what the shard
/// contains, and replay after a crash may group commits differently.
pub(crate) fn encode_shard(shard_index: u32, shard: &Shard, generation: u64) -> Vec<u8> {
    encode_shard_versioned(shard_index, shard, generation, SEGMENT_VERSION)
}

/// Versioned encoder: v2 (current) appends the attribute-index
/// section, v1 reproduces the pre-index layout byte for byte. v1
/// encoding exists for the upgrade-path tests — production
/// checkpoints always write the current version.
pub(crate) fn encode_shard_versioned(
    shard_index: u32,
    shard: &Shard,
    generation: u64,
    version: u16,
) -> Vec<u8> {
    debug_assert!((SEGMENT_MIN_VERSION..=SEGMENT_VERSION).contains(&version));
    let mut buf = BytesMut::with_capacity(4096);
    buf.put_slice(MAGIC);
    buf.put_u16_le(version);
    buf.put_u32_le(shard_index);
    buf.put_u64_le(generation);
    buf.put_u64_le(shard.size.db_bytes);
    buf.put_u64_le(shard.size.index_bytes);

    let mut pnodes: Vec<&Pnode> = shard.objects.keys().collect();
    pnodes.sort_unstable();
    buf.put_u32_le(pnodes.len() as u32);
    for p in pnodes {
        let obj = &shard.objects[p];
        put_pnode(&mut buf, *p);
        buf.put_u32_le(obj.current);
        buf.put_u32_le(obj.versions.len() as u32);
        for (v, entry) in &obj.versions {
            buf.put_u32_le(*v);
            buf.put_u32_le(entry.attrs.len() as u32);
            for (attr, value) in &entry.attrs {
                // Stored attributes were parsed from a log image (or
                // came through validated disclosure), so they are
                // wire-representable by construction.
                wire::put_record(
                    &mut buf,
                    &dpapi::ProvenanceRecord::new(attr.clone(), value.clone()),
                )
                .expect("stored records always encode");
            }
            buf.put_u32_le(entry.inputs.len() as u32);
            for (attr, r) in &entry.inputs {
                put_attr(&mut buf, attr);
                wire::put_object_ref(&mut buf, *r);
            }
            buf.put_u64_le(entry.writes);
            buf.put_u64_le(entry.bytes_written);
        }
    }

    put_index(&mut buf, &shard.name_index);
    put_index(&mut buf, &shard.type_index);

    let mut ancestors: Vec<&Pnode> = shard.reverse_index.keys().collect();
    ancestors.sort_unstable();
    buf.put_u32_le(ancestors.len() as u32);
    for a in ancestors {
        put_pnode(&mut buf, *a);
        // Reverse-edge list order follows commit grouping in memory
        // and is unspecified to queries; sort it so the image is
        // canonical.
        let mut edges = shard.reverse_index[a].clone();
        edges.sort_unstable_by(|x, y| (x.0, x.2, &x.1).cmp(&(y.0, y.2, &y.1)));
        buf.put_u32_le(edges.len() as u32);
        for (descendant, attr, aversion) in &edges {
            wire::put_object_ref(&mut buf, *descendant);
            put_attr(&mut buf, attr);
            buf.put_u32_le(aversion.0);
        }
    }

    if version >= 2 {
        buf.put_u32_le(shard.attr_index.len() as u32);
        for (attr, values) in &shard.attr_index {
            put_str(&mut buf, attr);
            buf.put_u32_le(values.len() as u32);
            for (value, set) in values {
                put_str(&mut buf, value);
                buf.put_u32_le(set.len() as u32);
                for p in set {
                    put_pnode(&mut buf, *p);
                }
            }
        }
    }

    let crc = lasagna::crc32(&buf);
    buf.put_u32_le(crc);
    buf.to_vec()
}

/// Deserializes a segment image, validating magic, version and CRC.
/// Returns the shard index it was written for and the rehydrated
/// shard.
pub(crate) fn decode_shard(data: &[u8]) -> Result<(u32, Shard)> {
    if data.len() < MAGIC.len() + 2 + 4 + 8 + 16 + 4 {
        return Err(DpapiError::Malformed("segment too short".into()));
    }
    let (body, crc_bytes) = data.split_at(data.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if lasagna::crc32(body) != stored {
        return Err(DpapiError::Malformed("segment CRC mismatch".into()));
    }
    let mut buf = Bytes::copy_from_slice(body);
    let magic = buf.split_to(4);
    if magic.as_ref() != MAGIC {
        return Err(DpapiError::Malformed("bad segment magic".into()));
    }
    let version = buf.get_u16_le();
    if !(SEGMENT_MIN_VERSION..=SEGMENT_VERSION).contains(&version) {
        return Err(DpapiError::Malformed(format!(
            "unsupported segment version {version}"
        )));
    }
    let shard_index = buf.get_u32_le();
    let mut shard = Shard {
        generation: buf.get_u64_le(),
        ..Shard::default()
    };
    shard.size.db_bytes = buf.get_u64_le();
    shard.size.index_bytes = buf.get_u64_le();

    let n_objects = get_u32(&mut buf, "object count")? as usize;
    for _ in 0..n_objects {
        let pnode = get_pnode(&mut buf)?;
        let current = get_u32(&mut buf, "current version")?;
        let nv = get_u32(&mut buf, "version count")? as usize;
        let mut obj = ObjectEntry {
            current,
            ..ObjectEntry::default()
        };
        for _ in 0..nv {
            let v = get_u32(&mut buf, "version number")?;
            let mut entry = VersionEntry::default();
            let na = get_u32(&mut buf, "attr count")? as usize;
            for _ in 0..na {
                let rec = wire::get_record(&mut buf)?;
                entry.attrs.push((rec.attribute, rec.value));
            }
            let ni = get_u32(&mut buf, "input count")? as usize;
            for _ in 0..ni {
                let attr = get_attr(&mut buf)?;
                let r = wire::get_object_ref(&mut buf)?;
                entry.inputs.push((attr, r));
            }
            entry.writes = get_u64(&mut buf, "writes")?;
            entry.bytes_written = get_u64(&mut buf, "bytes written")?;
            obj.versions.insert(v, entry);
        }
        shard.objects.insert(pnode, obj);
    }

    shard.name_index = get_index(&mut buf)?;
    shard.type_index = get_index(&mut buf)?;

    let n_reverse = get_u32(&mut buf, "reverse count")? as usize;
    for _ in 0..n_reverse {
        let ancestor = get_pnode(&mut buf)?;
        let k = get_u32(&mut buf, "reverse edge count")? as usize;
        let mut edges = Vec::with_capacity(k.min(4096));
        for _ in 0..k {
            let descendant = wire::get_object_ref(&mut buf)?;
            let attr = get_attr(&mut buf)?;
            let aversion = Version(get_u32(&mut buf, "ancestor version")?);
            edges.push((descendant, attr, aversion));
        }
        shard.reverse_index.insert(ancestor, edges);
    }

    if version >= 2 {
        let n_attrs = get_u32(&mut buf, "attr index size")? as usize;
        for _ in 0..n_attrs {
            let attr = get_str(&mut buf, "attr index name")?;
            let m = get_u32(&mut buf, "attr value count")? as usize;
            let mut values = std::collections::BTreeMap::new();
            for _ in 0..m {
                let value = get_str(&mut buf, "attr index value")?;
                let k = get_u32(&mut buf, "attr entry count")? as usize;
                let mut set = std::collections::BTreeSet::new();
                for _ in 0..k {
                    set.insert(get_pnode(&mut buf)?);
                }
                values.insert(value, set);
            }
            shard.attr_index.insert(attr, values);
        }
    } else {
        // v1 image: the attribute index predates the format — rebuild
        // it from the object table just rehydrated (the one-time
        // upgrade scan v2 makes unnecessary).
        shard.rebuild_attr_index();
    }

    if buf.has_remaining() {
        return Err(DpapiError::Malformed("trailing bytes in segment".into()));
    }
    Ok((shard_index, shard))
}

/// The CRC a manifest records for a segment image: over the **whole**
/// file, including its trailing self-check.
pub(crate) fn segment_crc(data: &[u8]) -> u32 {
    lasagna::crc32(data)
}

/// The format version stamped in a segment image's header (0 for
/// images too short to carry one — callers only compare against
/// [`SEGMENT_VERSION`], and such images fail decode anyway).
pub(crate) fn image_format_version(data: &[u8]) -> u16 {
    if data.len() < 6 || &data[..4] != MAGIC {
        return 0;
    }
    u16::from_le_bytes([data[4], data[5]])
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpapi::{ObjectRef, ProvenanceRecord, Value};
    use lasagna::LogEntry;

    fn sample_shard() -> Shard {
        let mut shard = Shard::default();
        let p1 = Pnode::new(VolumeId(1), 10);
        let p2 = Pnode::new(VolumeId(1), 20);
        let sub = ObjectRef::new(p1, Version(0));
        let entries: Vec<LogEntry> = vec![
            LogEntry::Prov {
                subject: sub,
                record: ProvenanceRecord::new(Attribute::Name, Value::str("/a")),
            },
            LogEntry::Prov {
                subject: sub,
                record: ProvenanceRecord::new(Attribute::Type, Value::str("FILE")),
            },
            LogEntry::Prov {
                subject: sub,
                record: ProvenanceRecord::input(ObjectRef::new(p2, Version(3))),
            },
            // An application attribute, so the v2 attribute index is
            // populated and round-tripped.
            LogEntry::Prov {
                subject: sub,
                record: ProvenanceRecord::new(
                    Attribute::Other("PHASE".into()),
                    Value::str("align"),
                ),
            },
            LogEntry::DataWrite {
                subject: sub,
                offset: 0,
                len: 512,
                digest: [9; 16],
            },
        ];
        let refs: Vec<&LogEntry> = entries.iter().collect();
        let mut reverse = Vec::new();
        shard.apply_run(p1, &refs, &mut reverse);
        for edge in reverse {
            shard.add_reverse_edge(edge);
        }
        shard.generation = 7;
        shard
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let shard = sample_shard();
        let img = encode_shard(3, &shard, shard.generation);
        let (idx, back) = decode_shard(&img).unwrap();
        assert_eq!(idx, 3);
        assert_eq!(back.generation, 7);
        assert_eq!(back.size, shard.size);
        assert_eq!(back.objects.len(), shard.objects.len());
        assert_eq!(back.name_index, shard.name_index);
        assert_eq!(back.type_index, shard.type_index);
        assert_eq!(back.attr_index, shard.attr_index);
        assert!(
            !back.attr_index.is_empty(),
            "the sample must exercise the attribute index"
        );
        // Canonical re-encode is byte-identical.
        assert_eq!(encode_shard(3, &back, back.generation), img);
    }

    /// A v1 image (no attribute-index section) decodes, the index is
    /// rebuilt from the object table, and re-encoding upgrades it to
    /// bytes identical to a direct v2 encoding of the same shard.
    #[test]
    fn v1_segment_upgrades_and_rebuilds_the_attr_index() {
        let shard = sample_shard();
        let v1 = encode_shard_versioned(3, &shard, shard.generation, 1);
        let v2 = encode_shard(3, &shard, shard.generation);
        assert_ne!(v1, v2, "v2 must actually extend the format");
        let (idx, back) = decode_shard(&v1).unwrap();
        assert_eq!(idx, 3);
        assert_eq!(
            back.attr_index, shard.attr_index,
            "index rebuilt from objects"
        );
        assert_eq!(encode_shard(3, &back, back.generation), v2);
    }

    /// Unknown future versions are rejected outright.
    #[test]
    fn future_segment_version_is_rejected() {
        let shard = sample_shard();
        let mut img = encode_shard(9, &shard, shard.generation);
        // Patch the version field (offset 4, little-endian u16) and
        // re-close the CRC so only the version check can fail.
        img[4] = 3;
        let body_len = img.len() - 4;
        let crc = lasagna::crc32(&img[..body_len]).to_le_bytes();
        img[body_len..].copy_from_slice(&crc);
        assert!(decode_shard(&img).is_err());
    }

    #[test]
    fn empty_shard_roundtrips() {
        let img = encode_shard(0, &Shard::default(), 0);
        let (idx, back) = decode_shard(&img).unwrap();
        assert_eq!(idx, 0);
        assert!(back.objects.is_empty());
        assert_eq!(encode_shard(0, &back, 0), img);
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let img = encode_shard(1, &sample_shard(), 7);
        for flip in 0..img.len() {
            let mut bad = img.clone();
            bad[flip] ^= 0x01;
            assert!(
                decode_shard(&bad).is_err(),
                "flip at byte {flip} went undetected"
            );
        }
    }

    #[test]
    fn truncation_at_every_length_is_rejected() {
        let img = encode_shard(1, &sample_shard(), 7);
        for cut in 0..img.len() {
            assert!(
                decode_shard(&img[..cut]).is_err(),
                "{cut}-byte prefix accepted"
            );
        }
    }
}
