//! The database write-ahead log's frame codec.
//!
//! Every group commit appends one **durability frame** to the db WAL
//! (see `Waldo::attach_db_dir`): the commit sequence number, the
//! applied-entry count, the touched-shard mask with the new generation
//! of every touched shard, and the replay high-water mark of every
//! active source log. Frames are length-prefixed and CRC-closed so a
//! cold restart can walk the WAL, validate it, and stop cleanly at a
//! torn tail — the same framing discipline as the Lasagna log:
//!
//! ```text
//! frame   := len u32le, payload[len], crc32(payload) u32le
//! payload := seq u64, applied u64, touched u64,
//!            popcount(touched) × generation u64,
//!            n_sources u32, n_sources × (path_crc u32, mark u64)
//! ```
//!
//! Frames carry *accounting*, not entries: the entries themselves live
//! in the Lasagna logs, which the daemon retains until a checkpoint
//! covers them. Restart therefore replays **logs** (from the
//! checkpoint's marks), and uses WAL frames only to validate the
//! durable commit history past the checkpoint — advancing marks from
//! frames alone would skip entries whose in-memory effects died with
//! the crash.

use lasagna::crc32;

/// One decoded durability frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalFrame {
    /// Group-commit sequence number (1-based, monotonic).
    pub seq: u64,
    /// Entries applied by this commit.
    pub applied: u64,
    /// Bitmask of shards the commit touched.
    pub touched: u64,
    /// New generation of each touched shard, in ascending shard order.
    pub gens: Vec<u64>,
    /// `(crc32(path), committed high-water mark)` per active source
    /// log at commit time.
    pub sources: Vec<(u32, u64)>,
}

/// How a WAL image ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalTail {
    /// The WAL ended exactly at a frame boundary.
    Clean,
    /// The WAL ended mid-frame at the given byte offset (crash while
    /// appending).
    Truncated {
        /// Offset of the first incomplete frame.
        at: usize,
    },
    /// A frame failed its CRC at the given byte offset.
    Corrupt {
        /// Offset of the corrupt frame.
        at: usize,
    },
}

/// Encodes one frame, appending to `out`.
pub fn encode_frame(out: &mut Vec<u8>, frame: &WalFrame) {
    debug_assert_eq!(frame.gens.len(), frame.touched.count_ones() as usize);
    let mut payload = Vec::with_capacity(32 + 8 * frame.gens.len() + 12 * frame.sources.len());
    payload.extend_from_slice(&frame.seq.to_le_bytes());
    payload.extend_from_slice(&frame.applied.to_le_bytes());
    payload.extend_from_slice(&frame.touched.to_le_bytes());
    for g in &frame.gens {
        payload.extend_from_slice(&g.to_le_bytes());
    }
    payload.extend_from_slice(&(frame.sources.len() as u32).to_le_bytes());
    for (path_crc, mark) in &frame.sources {
        payload.extend_from_slice(&path_crc.to_le_bytes());
        payload.extend_from_slice(&mark.to_le_bytes());
    }
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
}

fn decode_payload(payload: &[u8]) -> Option<WalFrame> {
    let take_u64 = |at: &mut usize| -> Option<u64> {
        let v = u64::from_le_bytes(payload.get(*at..*at + 8)?.try_into().ok()?);
        *at += 8;
        Some(v)
    };
    let mut at = 0usize;
    let seq = take_u64(&mut at)?;
    let applied = take_u64(&mut at)?;
    let touched = take_u64(&mut at)?;
    let mut gens = Vec::with_capacity(touched.count_ones() as usize);
    for _ in 0..touched.count_ones() {
        gens.push(take_u64(&mut at)?);
    }
    let n = u32::from_le_bytes(payload.get(at..at + 4)?.try_into().ok()?) as usize;
    at += 4;
    let mut sources = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let path_crc = u32::from_le_bytes(payload.get(at..at + 4)?.try_into().ok()?);
        at += 4;
        let mark = take_u64(&mut at)?;
        sources.push((path_crc, mark));
    }
    if at != payload.len() {
        return None;
    }
    Some(WalFrame {
        seq,
        applied,
        touched,
        gens,
        sources,
    })
}

/// Parses a WAL image into frames plus a tail condition. Like
/// [`lasagna::parse_log`], a torn or corrupt tail terminates parsing
/// and is reported instead of silently ignored.
pub fn parse_wal(data: &[u8]) -> (Vec<WalFrame>, WalTail) {
    let mut frames = Vec::new();
    let mut at = 0usize;
    while at < data.len() {
        let remaining = data.len() - at;
        if remaining < 4 {
            return (frames, WalTail::Truncated { at });
        }
        let len = u32::from_le_bytes(data[at..at + 4].try_into().unwrap()) as usize;
        if remaining < 4 + len + 4 {
            return (frames, WalTail::Truncated { at });
        }
        let payload = &data[at + 4..at + 4 + len];
        let stored = u32::from_le_bytes(data[at + 4 + len..at + 8 + len].try_into().unwrap());
        if crc32(payload) != stored {
            return (frames, WalTail::Corrupt { at });
        }
        match decode_payload(payload) {
            Some(f) => frames.push(f),
            None => return (frames, WalTail::Corrupt { at }),
        }
        at += 4 + len + 4;
    }
    (frames, WalTail::Clean)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<WalFrame> {
        vec![
            WalFrame {
                seq: 1,
                applied: 4,
                touched: 0b101,
                gens: vec![1, 1],
                sources: vec![(0xdead_beef, 4)],
            },
            WalFrame {
                seq: 2,
                applied: 0,
                touched: 0,
                gens: vec![],
                sources: vec![(0xdead_beef, 6), (7, 2)],
            },
        ]
    }

    #[test]
    fn roundtrip() {
        let frames = sample();
        let mut buf = Vec::new();
        for f in &frames {
            encode_frame(&mut buf, f);
        }
        let (parsed, tail) = parse_wal(&buf);
        assert_eq!(tail, WalTail::Clean);
        assert_eq!(parsed, frames);
    }

    #[test]
    fn truncation_stops_at_frame_boundary() {
        let frames = sample();
        let mut buf = Vec::new();
        encode_frame(&mut buf, &frames[0]);
        let boundary = buf.len();
        encode_frame(&mut buf, &frames[1]);
        let (parsed, tail) = parse_wal(&buf[..buf.len() - 3]);
        assert_eq!(parsed.len(), 1);
        assert_eq!(tail, WalTail::Truncated { at: boundary });
    }

    #[test]
    fn corruption_is_detected() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, &sample()[0]);
        for flip in 0..buf.len() {
            let mut bad = buf.clone();
            bad[flip] ^= 0x40;
            let (parsed, tail) = parse_wal(&bad);
            // A flipped length byte may read as truncation instead of
            // corruption; what a parse must never do is return the
            // original frame with a clean tail.
            assert!(
                !(tail == WalTail::Clean && parsed == sample()[..1]),
                "flip at {flip} silently accepted"
            );
        }
    }

    #[test]
    fn empty_wal_is_clean() {
        let (frames, tail) = parse_wal(&[]);
        assert!(frames.is_empty());
        assert_eq!(tail, WalTail::Clean);
    }
}
