//! PQL graph adapter: the sharded [`Store`] as a [`pql::GraphSource`].
//!
//! Waldo "is also responsible for accessing the database on behalf of
//! the query engine" (paper §5.6); this module is that access path.
//! Edge expansions — the query evaluator's hot operation — go through
//! the store's generation-validated edge cache, so repeating an
//! ancestry query over an unchanged (or partially changed) database
//! re-reads only the shards that moved. Planner pushdown
//! ([`GraphSource::lookup_attr`]) answers sargable `where` predicates
//! from the per-shard secondary indexes — name, type, and the
//! generalized string-attribute index — instead of scanning
//! `class_members`, which is what makes the paper's §5.7
//! name-equality ancestry query O(result) instead of O(volume).

use dpapi::{Attribute, ObjectRef, Pnode, Value, Version};
use pql::{AttrLookup, AttrPredicate, EdgeLabel, GraphSource};

use crate::store::Store;

/// The attribute label of the implicit previous-version edge.
fn version_edge() -> Attribute {
    Attribute::Other("version".into())
}

fn edge_matches(label: &EdgeLabel, attr: &Attribute) -> bool {
    match label {
        EdgeLabel::Any => true,
        EdgeLabel::Input => *attr == Attribute::Input || *attr == version_edge(),
        EdgeLabel::Version => *attr == version_edge(),
        EdgeLabel::VisitedUrl => *attr == Attribute::VisitedUrl,
        EdgeLabel::FileUrl => *attr == Attribute::FileUrl,
        EdgeLabel::CurrentUrl => *attr == Attribute::CurrentUrl,
        EdgeLabel::Named(n) => match attr {
            Attribute::Other(o) => o.eq_ignore_ascii_case(n),
            other => other.as_str().eq_ignore_ascii_case(n),
        },
    }
}

fn attr_for_name(name: &str) -> Attribute {
    match name.to_ascii_lowercase().as_str() {
        "name" => Attribute::Name,
        "type" => Attribute::Type,
        "argv" => Attribute::Argv,
        "env" => Attribute::Env,
        "params" => Attribute::Params,
        other => Attribute::Other(other.to_ascii_uppercase()),
    }
}

impl GraphSource for Store {
    fn class_members(&self, class: &str) -> Vec<ObjectRef> {
        let lower = class.to_ascii_lowercase();
        let pnodes: Vec<dpapi::Pnode> = if lower == "obj" {
            self.all_pnodes()
        } else {
            self.find_by_type(&lower.to_ascii_uppercase())
        };
        let mut out = Vec::new();
        for p in pnodes {
            if let Some(obj) = self.object(p) {
                for v in obj.versions.keys() {
                    out.push(ObjectRef::new(p, Version(*v)));
                }
            }
        }
        out.sort();
        out
    }

    fn attr(&self, node: ObjectRef, name: &str) -> Option<Value> {
        match name.to_ascii_lowercase().as_str() {
            "pnode" => return Some(Value::Int(node.pnode.number as i64)),
            "version" => return Some(Value::Int(node.version.0 as i64)),
            "volume" => return Some(Value::Int(node.pnode.volume.0 as i64)),
            _ => {}
        }
        let attr = attr_for_name(name);
        let obj = self.object(node.pnode)?;
        // Prefer the value recorded at this exact version, then fall
        // back to any version (names and types are usually recorded
        // once, at version 0).
        obj.attrs(node.version)
            .iter()
            .find(|(a, _)| *a == attr)
            .map(|(_, v)| v.clone())
            .or_else(|| obj.first_attr(&attr).cloned())
    }

    fn out_edges(&self, node: ObjectRef, label: &EdgeLabel) -> Vec<ObjectRef> {
        self.edges_cached(node, label, true, || {
            self.inputs_of(node)
                .into_iter()
                .filter(|(a, _)| edge_matches(label, a))
                .map(|(_, r)| r)
                .collect()
        })
    }

    fn in_edges(&self, node: ObjectRef, label: &EdgeLabel) -> Vec<ObjectRef> {
        self.edges_cached(node, label, false, || {
            self.outputs_of(node)
                .into_iter()
                .filter(|(a, _)| edge_matches(label, a))
                .map(|(_, r)| r)
                .collect()
        })
    }

    fn closure(&self, node: ObjectRef, label: &EdgeLabel, inverse: bool) -> Vec<ObjectRef> {
        self.closure_cached(node, label, inverse, |n| {
            let raw = if inverse {
                self.outputs_of(n)
            } else {
                self.inputs_of(n)
            };
            raw.into_iter()
                .filter(|(a, _)| edge_matches(label, a))
                .map(|(_, r)| r)
                .collect()
        })
    }

    /// Index-backed predicate pushdown: equality and prefix lookups
    /// on NAME, TYPE and any string application attribute answer from
    /// the per-shard secondary indexes instead of scanning
    /// `class_members`. The narrow candidate set is then verified
    /// per version-ref against the exact scan semantics (`attr` +
    /// predicate), so the result is identical to the default's —
    /// same refs, same sorted order — just without the scan.
    fn lookup_attr(&self, class: &str, attr: &str, pred: &AttrPredicate) -> AttrLookup {
        let candidates: Option<Vec<Pnode>> = match (attr.to_ascii_lowercase().as_str(), pred) {
            ("name", AttrPredicate::Eq(Value::Str(s))) => Some(self.find_by_name(s)),
            ("name", AttrPredicate::LikePrefix(p)) => Some(self.find_by_name_prefix(p)),
            ("type", AttrPredicate::Eq(Value::Str(s))) => Some(self.find_by_type(s)),
            ("type", AttrPredicate::LikePrefix(p)) => Some(self.find_by_type_prefix(p)),
            (lower, AttrPredicate::Eq(Value::Str(s))) => {
                // Application attributes are stored (and indexed)
                // under their canonical upper-case record name.
                Some(self.find_by_attr(&lower.to_ascii_uppercase(), s))
            }
            (lower, AttrPredicate::LikePrefix(p)) => {
                Some(self.find_by_attr_prefix(&lower.to_ascii_uppercase(), p))
            }
            // Non-string equality (pnode/version/volume pseudo-attrs,
            // integer app attributes): no index covers it.
            _ => None,
        };
        let Some(pnodes) = candidates else {
            // Fall back to the trait's scan-based behavior (the one
            // shared copy of the scan semantics).
            return pql::plan::scan_lookup(self, class, attr, pred);
        };
        let class_upper = class.to_ascii_uppercase();
        let any_class = class.eq_ignore_ascii_case("obj");
        let mut nodes = Vec::new();
        for p in pnodes {
            if !any_class && !self.has_type(p, &class_upper) {
                continue;
            }
            let Some(obj) = self.object(p) else { continue };
            for v in obj.versions.keys() {
                let r = ObjectRef::new(p, Version(*v));
                if pred.matches(GraphSource::attr(self, r, attr).as_ref()) {
                    nodes.push(r);
                }
            }
        }
        nodes.sort();
        AttrLookup {
            nodes,
            indexed: true,
        }
    }

    /// Planner-statistics hint: the class's member count, from the
    /// TYPE index set sizes alone — O(shards), no object or attribute
    /// reads, so the hint never erodes an O(result) indexed lookup.
    /// Counts pnodes, not version-refs; for the pruning *estimates*
    /// it feeds that is close enough.
    fn class_size(&self, class: &str) -> Option<usize> {
        Some(if class.eq_ignore_ascii_case("obj") {
            self.object_count()
        } else {
            self.type_index_size(&class.to_ascii_uppercase())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::ProvDb;
    use dpapi::{Pnode, ProvenanceRecord, VolumeId};
    use lasagna::LogEntry;

    fn p(n: u64) -> Pnode {
        Pnode::new(VolumeId(1), n)
    }

    fn r(n: u64, v: u32) -> ObjectRef {
        ObjectRef::new(p(n), Version(v))
    }

    fn prov(subject: ObjectRef, attr: Attribute, value: Value) -> LogEntry {
        LogEntry::Prov {
            subject,
            record: ProvenanceRecord::new(attr, value),
        }
    }

    fn sample_db() -> ProvDb {
        let db = ProvDb::new();
        db.ingest(&[
            prov(r(1, 0), Attribute::Name, Value::str("/data/atlas-x.gif")),
            prov(r(1, 0), Attribute::Type, Value::str("FILE")),
            prov(r(2, 0), Attribute::Name, Value::str("softmean")),
            prov(r(2, 0), Attribute::Type, Value::str("PROC")),
            prov(r(3, 0), Attribute::Name, Value::str("/data/anatomy1.img")),
            prov(r(3, 0), Attribute::Type, Value::str("FILE")),
            prov(r(1, 0), Attribute::Input, Value::Xref(r(2, 0))),
            prov(r(2, 0), Attribute::Input, Value::Xref(r(3, 0))),
            // A browser-style edge for label filtering.
            prov(r(4, 0), Attribute::Type, Value::str("SESSION")),
            prov(r(1, 0), Attribute::CurrentUrl, Value::Xref(r(4, 0))),
        ]);
        db
    }

    #[test]
    fn paper_query_runs_against_the_database() {
        let db = sample_db();
        let rs = pql::query(
            r#"select Ancestor
               from Provenance.file as Atlas
                    Atlas.input* as Ancestor
               where Atlas.name = "/data/atlas-x.gif""#,
            &db,
        )
        .unwrap();
        let nodes = rs.nodes();
        assert!(nodes.contains(&r(1, 0)));
        assert!(nodes.contains(&r(2, 0)));
        assert!(nodes.contains(&r(3, 0)));
    }

    #[test]
    fn class_members_split_by_type() {
        let db = sample_db();
        assert_eq!(db.class_members("proc"), vec![r(2, 0)]);
        assert_eq!(db.class_members("session"), vec![r(4, 0)]);
        assert_eq!(db.class_members("file").len(), 2);
        assert_eq!(db.class_members("obj").len(), 4);
    }

    #[test]
    fn edge_label_filtering() {
        let db = sample_db();
        // current_url edges are not input edges.
        assert_eq!(db.out_edges(r(1, 0), &EdgeLabel::Input), vec![r(2, 0)]);
        assert_eq!(db.out_edges(r(1, 0), &EdgeLabel::CurrentUrl), vec![r(4, 0)]);
        assert_eq!(db.out_edges(r(1, 0), &EdgeLabel::Any).len(), 2);
    }

    #[test]
    fn pseudo_attributes() {
        let db = sample_db();
        assert_eq!(db.attr(r(3, 0), "pnode"), Some(Value::Int(3)));
        assert_eq!(db.attr(r(3, 0), "version"), Some(Value::Int(0)));
        assert_eq!(db.attr(r(3, 0), "volume"), Some(Value::Int(1)));
        assert_eq!(db.attr(r(3, 0), "nonexistent"), None);
    }

    #[test]
    fn descendant_query_via_inverse_edges() {
        let db = sample_db();
        let rs = pql::query(
            "select D from Provenance.file as F F.input~+ as D \
             where F.name = '/data/anatomy1.img'",
            &db,
        )
        .unwrap();
        let nodes = rs.nodes();
        assert!(nodes.contains(&r(2, 0)), "proc descends from input");
        assert!(nodes.contains(&r(1, 0)), "output descends transitively");
    }

    /// Re-running a PQL ancestry query against an unchanged store
    /// answers its `label+` closures from the cache; ingesting
    /// afterwards invalidates only what the commit touched.
    #[test]
    fn repeated_queries_hit_the_closure_cache() {
        let db = sample_db();
        let q = "select D from Provenance.file as F F.input~+ as D \
                 where F.name = '/data/anatomy1.img'";
        let first = pql::query(q, &db).unwrap().nodes();
        let before = db.closure_cache_stats();
        let second = pql::query(q, &db).unwrap().nodes();
        let after = db.closure_cache_stats();
        assert_eq!(first, second);
        assert!(
            after.hits > before.hits,
            "second run must hit the closure cache: {after:?}"
        );
        // New ancestry through pnode 3 must invalidate its closures.
        db.ingest(&[prov(r(5, 0), Attribute::Input, Value::Xref(r(3, 0)))]);
        let third = pql::query(q, &db).unwrap().nodes();
        assert!(third.contains(&r(5, 0)), "stale closure cache served");
    }
}
